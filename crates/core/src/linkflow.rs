//! Per-generation stage decompositions for the streaming flowgraph.
//!
//! Each [`crate::linksim::PhyLink`] that opts into the `wlan-flow` runtime
//! exposes its TX→channel→RX chain as three [`Stage`]s over the same
//! batched kernels the monolithic path uses (thread-local
//! `ViterbiKernel`, FFT plan cache, `LinearDetector`). The monolithic
//! `frame_trial_faulted` bodies in `linksim` are kept verbatim as the
//! reference oracle; `tests/flow_equivalence.rs` pins the two paths
//! bit-identical for every generation × injector × thread count.
//!
//! # RNG draw-order contract
//!
//! Bit-identity holds because **transmit stages draw no RNG**: a frame's
//! draw sequence is payload bytes (before the graph), then every channel
//! draw (fade, multipath/MIMO realization, AWGN, fault injection) inside
//! the channel stage, then nothing in the receiver. The monolithic
//! `MimoLink`/`StbcLink` oracles realize their channel *before* calling
//! `transmit` and `HtLink` draws its fade first — moving those draws into
//! the channel stage is sequence-preserving precisely because the
//! transmit call between them consumes no randomness. Any new stage type
//! inserted into a chain must either consume no RNG or accept that it
//! defines a *new* sweep (the reordering tests will say so loudly).

use wlan_channel::mimo::MimoMultipathChannel;
use wlan_channel::{Awgn, MultipathChannel, PowerDelayProfile};
use wlan_dsss::fhss::FskModem;
use wlan_dsss::DsssPhy;
use wlan_fault::FaultChain;
use wlan_flow::{FrameJob, PortKind, Stage};
use wlan_math::special::db_to_lin;
use wlan_math::WlanError;
use wlan_mimo::phy::{propagate, MimoOfdmPhy};
use wlan_ofdm::OfdmPhy;

/// Single-antenna channel stage shared by the DSSS, FHSS, OFDM, and HT
/// links: optional per-frame flat fade, optional multipath realization,
/// AWGN at the job's SNR, then fault injection — in exactly the oracle's
/// draw order (fade first, because `HtLink` draws it before anything
/// else; no link combines fade and multipath).
pub struct SampleChannel<'a> {
    pub(crate) multipath: Option<PowerDelayProfile>,
    pub(crate) fading: bool,
    pub(crate) faults: &'a FaultChain,
}

impl Stage for SampleChannel<'_> {
    fn name(&self) -> &'static str {
        "channel"
    }
    fn input(&self) -> PortKind {
        PortKind::Samples
    }
    fn output(&self) -> PortKind {
        PortKind::Samples
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        if self.fading {
            let fade = wlan_channel::noise::complex_gaussian(&mut job.rng);
            for s in job.samples.iter_mut() {
                *s *= fade;
            }
        }
        if let Some(pdp) = &self.multipath {
            let ch = MultipathChannel::realize(pdp, &mut job.rng);
            let mut out = ch.filter(&job.samples);
            out.truncate(job.samples.len());
            job.samples = out;
        }
        Awgn::from_snr_db(job.snr_db).apply_in_place(&mut job.samples, &mut job.rng);
        self.faults.inject(&mut job.samples, &mut job.rng);
        Ok(())
    }
}

/// Multi-antenna channel stage shared by the MIMO and STBC links:
/// realizes the per-antenna-pair multipath channel, propagates the
/// transmit streams through it with AWGN at the job's SNR, then injects
/// faults per receive stream.
pub struct StreamChannel<'a> {
    pub(crate) n_rx: usize,
    pub(crate) n_tx: usize,
    pub(crate) pdp: PowerDelayProfile,
    pub(crate) faults: &'a FaultChain,
}

impl Stage for StreamChannel<'_> {
    fn name(&self) -> &'static str {
        "channel"
    }
    fn input(&self) -> PortKind {
        PortKind::Streams
    }
    fn output(&self) -> PortKind {
        PortKind::Streams
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        let n0 = db_to_lin(-job.snr_db);
        let ch = MimoMultipathChannel::realize(self.n_rx, self.n_tx, &self.pdp, &mut job.rng);
        let mut rx = propagate(&ch, &job.streams, n0, &mut job.rng);
        self.faults.inject_streams(&mut rx, &mut job.rng);
        job.streams = rx;
        Ok(())
    }
}

/// DSSS/CCK transmit: payload → bits → spread chips.
pub struct DsssTx {
    pub(crate) phy: DsssPhy,
}

impl Stage for DsssTx {
    fn name(&self) -> &'static str {
        "tx"
    }
    fn input(&self) -> PortKind {
        PortKind::Payload
    }
    fn output(&self) -> PortKind {
        PortKind::Samples
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        job.bits = wlan_coding::bits::bytes_to_bits(&job.payload);
        job.samples = self.phy.transmit(&job.bits);
        job.sent = job.samples.len();
        Ok(())
    }
}

/// DSSS/CCK receive: despread and compare against the transmitted bits.
/// The despreaders demand whole symbols, so a fault-shortened chip
/// stream is a detected loss (typed erasure), not a panic.
pub struct DsssRx {
    pub(crate) phy: DsssPhy,
}

impl Stage for DsssRx {
    fn name(&self) -> &'static str {
        "rx"
    }
    fn input(&self) -> PortKind {
        PortKind::Samples
    }
    fn output(&self) -> PortKind {
        PortKind::Verdict
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        if job.samples.len() < job.sent {
            return Err(WlanError::FrameTruncated {
                needed: job.sent,
                got: job.samples.len(),
            });
        }
        let rx = self.phy.receive(&job.samples);
        job.verdict = Some(Ok(rx[..job.bits.len()] == job.bits[..]));
        Ok(())
    }
}

/// FHSS transmit: payload → bits → noncoherent 2-FSK samples.
pub struct FhssTx {
    pub(crate) modem: FskModem,
}

impl Stage for FhssTx {
    fn name(&self) -> &'static str {
        "tx"
    }
    fn input(&self) -> PortKind {
        PortKind::Payload
    }
    fn output(&self) -> PortKind {
        PortKind::Samples
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        job.bits = wlan_coding::bits::bytes_to_bits(&job.payload);
        job.samples = self.modem.modulate(&job.bits);
        job.sent = job.samples.len();
        Ok(())
    }
}

/// FHSS receive: noncoherent detection over whole FSK symbols; a
/// shortened dwell is a detected loss.
pub struct FhssRx {
    pub(crate) modem: FskModem,
}

impl Stage for FhssRx {
    fn name(&self) -> &'static str {
        "rx"
    }
    fn input(&self) -> PortKind {
        PortKind::Samples
    }
    fn output(&self) -> PortKind {
        PortKind::Verdict
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        if job.samples.len() < job.sent {
            return Err(WlanError::FrameTruncated {
                needed: job.sent,
                got: job.samples.len(),
            });
        }
        let demodulated = self.modem.demodulate(&job.samples);
        job.verdict = Some(Ok(demodulated == job.bits));
        Ok(())
    }
}

/// 802.11a OFDM transmit.
pub struct OfdmTx {
    pub(crate) phy: OfdmPhy,
}

impl Stage for OfdmTx {
    fn name(&self) -> &'static str {
        "tx"
    }
    fn input(&self) -> PortKind {
        PortKind::Payload
    }
    fn output(&self) -> PortKind {
        PortKind::Samples
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        job.samples = self.phy.transmit(&job.payload);
        job.sent = job.samples.len();
        Ok(())
    }
}

/// 802.11a OFDM receive: the receiver is already fallible — a stream it
/// cannot frame (short, bad SIGNAL parity, rate mismatch) is a detected
/// erasure, surfaced as the same `SignalInvalid` the oracle returns.
pub struct OfdmRx {
    pub(crate) phy: OfdmPhy,
}

impl Stage for OfdmRx {
    fn name(&self) -> &'static str {
        "rx"
    }
    fn input(&self) -> PortKind {
        PortKind::Samples
    }
    fn output(&self) -> PortKind {
        PortKind::Verdict
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        match self.phy.receive(&job.samples) {
            Ok(p) => {
                job.verdict = Some(Ok(p == job.payload));
                Ok(())
            }
            Err(_) => Err(WlanError::SignalInvalid),
        }
    }
}

/// The HT-20 PHY behind the single-stream 802.11n stages: BCC builds its
/// own modem; LDPC shares the process-wide cached code tables.
pub enum HtPhyKind {
    /// Convolutionally coded (Viterbi-decoded) HT PHY.
    Bcc(wlan_mimo::ht::HtPhy),
    /// LDPC-coded HT PHY (cached: the parity structure is expensive).
    Ldpc(&'static wlan_mimo::ht_ldpc::HtLdpcPhy),
}

/// HT-20 transmit (BCC or LDPC).
pub struct HtTx {
    pub(crate) phy: HtPhyKind,
}

impl Stage for HtTx {
    fn name(&self) -> &'static str {
        "tx"
    }
    fn input(&self) -> PortKind {
        PortKind::Payload
    }
    fn output(&self) -> PortKind {
        PortKind::Samples
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        job.samples = match &self.phy {
            HtPhyKind::Bcc(phy) => phy.transmit(&job.payload),
            HtPhyKind::Ldpc(phy) => phy.transmit(&job.payload),
        };
        job.sent = job.samples.len();
        Ok(())
    }
}

/// HT-20 receive (BCC or LDPC): truncation surfaces as the receiver's own
/// typed `FrameTruncated`.
pub struct HtRx {
    pub(crate) phy: HtPhyKind,
}

impl Stage for HtRx {
    fn name(&self) -> &'static str {
        "rx"
    }
    fn input(&self) -> PortKind {
        PortKind::Samples
    }
    fn output(&self) -> PortKind {
        PortKind::Verdict
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        let decoded = match &self.phy {
            HtPhyKind::Bcc(phy) => phy.try_receive(&job.samples, job.payload.len())?,
            HtPhyKind::Ldpc(phy) => phy.try_receive(&job.samples, job.payload.len())?,
        };
        job.verdict = Some(Ok(decoded == job.payload));
        Ok(())
    }
}

/// 802.11n MIMO-OFDM transmit: payload → per-antenna spatial streams.
pub struct MimoTx {
    pub(crate) phy: MimoOfdmPhy,
}

impl Stage for MimoTx {
    fn name(&self) -> &'static str {
        "tx"
    }
    fn input(&self) -> PortKind {
        PortKind::Payload
    }
    fn output(&self) -> PortKind {
        PortKind::Streams
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        job.streams = self.phy.transmit(&job.payload);
        job.sent = job.streams.iter().map(Vec::len).max().unwrap_or(0);
        Ok(())
    }
}

/// 802.11n MIMO-OFDM receive: linear detection plus decoding; a singular
/// channel or truncated stream is the receiver's typed erasure.
pub struct MimoRx {
    pub(crate) phy: MimoOfdmPhy,
}

impl Stage for MimoRx {
    fn name(&self) -> &'static str {
        "rx"
    }
    fn input(&self) -> PortKind {
        PortKind::Streams
    }
    fn output(&self) -> PortKind {
        PortKind::Verdict
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        let n0 = db_to_lin(-job.snr_db);
        let decoded = self.phy.try_receive(&job.streams, n0, job.payload.len())?;
        job.verdict = Some(Ok(decoded == job.payload));
        Ok(())
    }
}

/// Alamouti STBC transmit: payload → two space-time-coded streams.
pub struct StbcTx {
    pub(crate) phy: wlan_mimo::stbc_phy::StbcOfdmPhy,
}

impl Stage for StbcTx {
    fn name(&self) -> &'static str {
        "tx"
    }
    fn input(&self) -> PortKind {
        PortKind::Payload
    }
    fn output(&self) -> PortKind {
        PortKind::Streams
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        job.streams = self.phy.transmit(&job.payload);
        job.sent = job.streams.iter().map(Vec::len).max().unwrap_or(0);
        Ok(())
    }
}

/// Alamouti STBC receive.
pub struct StbcRx {
    pub(crate) phy: wlan_mimo::stbc_phy::StbcOfdmPhy,
}

impl Stage for StbcRx {
    fn name(&self) -> &'static str {
        "rx"
    }
    fn input(&self) -> PortKind {
        PortKind::Streams
    }
    fn output(&self) -> PortKind {
        PortKind::Verdict
    }
    fn process(&self, job: &mut FrameJob) -> Result<(), WlanError> {
        let n0 = db_to_lin(-job.snr_db);
        let decoded = self.phy.try_receive(&job.streams, n0, job.payload.len())?;
        job.verdict = Some(Ok(decoded == job.payload));
        Ok(())
    }
}
