//! Range estimation — experiment E5.
//!
//! The paper: spatial diversity extends range "several-fold relative to a
//! conventional single antenna or SISO system". We measure it directly:
//! walk distance outward, convert to SNR through the breakpoint path-loss
//! model, run the full link at that SNR, and find where PER crosses the
//! threshold.

use crate::linksim::PhyLink;
use wlan_math::rng::{Rng, WlanRng};
use wlan_channel::pathloss::{LinkBudget, PathLossModel};

/// Result of a range search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeEstimate {
    /// Largest distance (m) at which PER ≤ the target.
    pub range_m: f64,
    /// Measured PER at that distance.
    pub per_at_range: f64,
}

/// Measures PER of a link at one distance.
pub fn per_at_distance(
    link: &dyn PhyLink,
    budget: &LinkBudget,
    model: &PathLossModel,
    distance_m: f64,
    payload_len: usize,
    frames: usize,
    seed: u64,
) -> f64 {
    let snr_db = budget.snr_at_distance_db(model, distance_m);
    let mut rng = WlanRng::seed_from_u64(seed);
    let mut errors = 0usize;
    for _ in 0..frames {
        let payload: Vec<u8> = (0..payload_len).map(|_| rng.gen()).collect();
        if !link.frame_trial(snr_db, &payload, &mut rng) {
            errors += 1;
        }
    }
    errors as f64 / frames as f64
}

/// Finds the largest distance keeping PER at or below `per_target`, by
/// doubling outward then bisecting. Fading links should use enough frames
/// for the PER estimate to be stable (the bisection tolerates ~1/frames
/// granularity).
///
/// # Panics
///
/// Panics if `per_target` is not in `(0, 1)` or `frames` is zero.
pub fn find_range(
    link: &dyn PhyLink,
    budget: &LinkBudget,
    model: &PathLossModel,
    per_target: f64,
    payload_len: usize,
    frames: usize,
    seed: u64,
) -> RangeEstimate {
    assert!((0.0..1.0).contains(&per_target) && per_target > 0.0);
    assert!(frames > 0, "need frames");
    let meets = |d: f64| -> (bool, f64) {
        let per = per_at_distance(link, budget, model, d, payload_len, frames, seed);
        (per <= per_target, per)
    };

    let mut lo = 1.0;
    let (ok, per) = meets(lo);
    if !ok {
        return RangeEstimate {
            range_m: 0.0,
            per_at_range: per,
        };
    }
    // Double outward until failure (cap at 100 km).
    let mut hi = 2.0;
    loop {
        let (ok, _) = meets(hi);
        if !ok || hi > 1e5 {
            break;
        }
        lo = hi;
        hi *= 2.0;
    }
    // Bisect to ~2 % distance resolution.
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        let (ok, _) = meets(mid);
        if ok {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (_, per) = meets(lo);
    RangeEstimate {
        range_m: lo,
        per_at_range: per,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linksim::{DsssLink, MimoLink};
    use wlan_dsss::DsssRate;

    #[test]
    fn per_grows_with_distance() {
        let link = DsssLink {
            rate: DsssRate::Dbpsk1M,
        };
        let budget = LinkBudget::typical_wlan();
        let model = PathLossModel::tgn_model_d();
        let near = per_at_distance(&link, &budget, &model, 10.0, 40, 25, 3);
        let far = per_at_distance(&link, &budget, &model, 2_000.0, 40, 25, 3);
        assert!(near < 0.1, "near PER {near}");
        assert!(far > 0.9, "far PER {far}");
    }

    #[test]
    fn range_search_brackets_the_transition() {
        let link = DsssLink {
            rate: DsssRate::Dqpsk2M,
        };
        let budget = LinkBudget::typical_wlan();
        let model = PathLossModel::tgn_model_d();
        let est = find_range(&link, &budget, &model, 0.1, 40, 25, 5);
        assert!(est.range_m > 10.0, "range {}", est.range_m);
        assert!(est.per_at_range <= 0.1);
        // Just beyond the range the link must degrade.
        let beyond = per_at_distance(&link, &budget, &model, est.range_m * 1.5, 40, 25, 5);
        assert!(beyond > est.per_at_range, "beyond {} vs {}", beyond, est.per_at_range);
    }

    #[test]
    fn diversity_extends_range() {
        // The E5 claim in miniature: 1×4 receive diversity reaches farther
        // than 1×1 at the same PER target in fading.
        let budget = LinkBudget::typical_wlan();
        let model = PathLossModel::tgn_model_d();
        let siso = find_range(&MimoLink::flat(1, 1), &budget, &model, 0.1, 30, 20, 11);
        let mimo = find_range(&MimoLink::flat(1, 4), &budget, &model, 0.1, 30, 20, 11);
        assert!(
            mimo.range_m > 1.2 * siso.range_m,
            "1x4 range {} vs 1x1 range {}",
            mimo.range_m,
            siso.range_m
        );
    }

    #[test]
    fn impossible_target_returns_zero() {
        let link = MimoLink::flat(1, 1);
        let budget = LinkBudget {
            tx_power_dbm: -80.0,
            ..LinkBudget::typical_wlan()
        };
        let model = PathLossModel::tgn_model_d();
        let est = find_range(&link, &budget, &model, 0.01, 30, 10, 13);
        assert_eq!(est.range_m, 0.0);
    }
}
