//! The unified Monte-Carlo link simulator (experiment E4).
//!
//! Every generation's PHY implements [`PhyLink`]: one fallible frame
//! transmission at a given SNR through its real TX→channel→RX chain. The
//! harness sweeps SNR and counts frame errors, producing the PER curves
//! that rank the generations by robustness.
//!
//! SNR convention: average received signal power over noise power per
//! complex sample (per receive antenna), i.e. Es/N0 at the channel
//! bandwidth. Transmit chains in this workspace are unit-power, so noise
//! variance is simply `10^(−SNR/10)`.

use wlan_math::rng::{Rng, WlanRng};
use wlan_channel::mimo::MimoMultipathChannel;
use wlan_channel::{Awgn, MultipathChannel, PowerDelayProfile};
use wlan_dsss::{DsssPhy, DsssRate};
use wlan_math::special::db_to_lin;
use wlan_mimo::detect::Detector;
use wlan_mimo::phy::{propagate, MimoOfdmConfig, MimoOfdmPhy};
use wlan_ofdm::params::Modulation;
use wlan_ofdm::{OfdmPhy, OfdmRate};

/// One point of a PER sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerPoint {
    /// SNR in dB.
    pub snr_db: f64,
    /// Measured frame error rate.
    pub per: f64,
}

/// A complete PER-versus-SNR curve for one link.
#[derive(Debug, Clone, PartialEq)]
pub struct PerCurve {
    /// Link name (for reports).
    pub name: String,
    /// PHY rate in Mbps.
    pub rate_mbps: f64,
    /// Sweep points, ascending in SNR.
    pub points: Vec<PerPoint>,
}

impl PerCurve {
    /// The lowest swept SNR achieving `per_target`, linearly interpolated;
    /// `None` when even the top of the sweep fails.
    pub fn snr_for_per(&self, per_target: f64) -> Option<f64> {
        for w in self.points.windows(2) {
            if w[0].per >= per_target && w[1].per <= per_target {
                let span = w[0].per - w[1].per;
                if span <= 0.0 {
                    return Some(w[1].snr_db);
                }
                let frac = (w[0].per - per_target) / span;
                return Some(w[0].snr_db + frac * (w[1].snr_db - w[0].snr_db));
            }
        }
        self.points
            .last()
            .filter(|p| p.per <= per_target)
            .map(|p| p.snr_db)
    }
}

/// A physical link that can attempt one frame at a given SNR.
pub trait PhyLink {
    /// Human-readable link name.
    fn name(&self) -> String;

    /// Nominal PHY rate in Mbps.
    fn rate_mbps(&self) -> f64;

    /// Transmits one frame of `payload` bytes at `snr_db`; returns `true`
    /// when the receiver recovered it bit-exactly.
    fn frame_trial(&self, snr_db: f64, payload: &[u8], rng: &mut WlanRng) -> bool;
}

/// Sweeps SNR and measures PER with `frames` trials per point.
///
/// # Panics
///
/// Panics if `frames` is zero or `payload_len` is zero.
pub fn sweep_per(
    link: &dyn PhyLink,
    snrs_db: &[f64],
    payload_len: usize,
    frames: usize,
    seed: u64,
) -> PerCurve {
    assert!(frames > 0, "need at least one frame per point");
    assert!(payload_len > 0, "payload must be nonempty");
    let mut rng = WlanRng::seed_from_u64(seed);
    let points = snrs_db
        .iter()
        .map(|&snr| {
            let mut errors = 0usize;
            for _ in 0..frames {
                let payload: Vec<u8> = (0..payload_len).map(|_| rng.gen()).collect();
                if !link.frame_trial(snr, &payload, &mut rng) {
                    errors += 1;
                }
            }
            PerPoint {
                snr_db: snr,
                per: errors as f64 / frames as f64,
            }
        })
        .collect();
    PerCurve {
        name: link.name(),
        rate_mbps: link.rate_mbps(),
        points,
    }
}

/// A first-generation DSSS/CCK link over AWGN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsssLink {
    /// The DSSS-family rate.
    pub rate: DsssRate,
}

impl PhyLink for DsssLink {
    fn name(&self) -> String {
        format!("{} (AWGN)", self.rate)
    }

    fn rate_mbps(&self) -> f64 {
        self.rate.rate_mbps()
    }

    fn frame_trial(&self, snr_db: f64, payload: &[u8], rng: &mut WlanRng) -> bool {
        let phy = DsssPhy::new(self.rate);
        let bits = wlan_coding::bits::bytes_to_bits(payload);
        let chips = phy.transmit(&bits);
        let noisy = Awgn::from_snr_db(snr_db).apply(&chips, rng);
        let rx = phy.receive(&noisy);
        rx[..bits.len()] == bits[..]
    }
}

/// An 802.11a OFDM link, optionally through multipath.
#[derive(Debug, Clone, PartialEq)]
pub struct OfdmLink {
    /// The OFDM rate.
    pub rate: OfdmRate,
    /// Multipath profile; `None` = pure AWGN.
    pub multipath: Option<PowerDelayProfile>,
}

impl OfdmLink {
    /// An AWGN-only link.
    pub fn awgn(rate: OfdmRate) -> Self {
        OfdmLink {
            rate,
            multipath: None,
        }
    }
}

impl PhyLink for OfdmLink {
    fn name(&self) -> String {
        match &self.multipath {
            Some(_) => format!("{} (multipath)", self.rate),
            None => format!("{} (AWGN)", self.rate),
        }
    }

    fn rate_mbps(&self) -> f64 {
        self.rate.rate_mbps()
    }

    fn frame_trial(&self, snr_db: f64, payload: &[u8], rng: &mut WlanRng) -> bool {
        let phy = OfdmPhy::new(self.rate);
        let frame = phy.transmit(payload);
        let faded = match &self.multipath {
            Some(pdp) => {
                let ch = MultipathChannel::realize(pdp, rng);
                let mut out = ch.filter(&frame);
                out.truncate(frame.len());
                out
            }
            None => frame,
        };
        let noisy = Awgn::from_snr_db(snr_db).apply(&faded, rng);
        phy.receive(&noisy).map(|p| p == payload).unwrap_or(false)
    }
}

/// An 802.11n MIMO-OFDM link through per-antenna-pair multipath.
#[derive(Debug, Clone, PartialEq)]
pub struct MimoLink {
    /// Spatial streams (= TX antennas).
    pub n_streams: usize,
    /// Receive antennas.
    pub n_rx: usize,
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// Code rate.
    pub code_rate: wlan_coding::CodeRate,
    /// Detector.
    pub detector: Detector,
    /// Multipath profile shared by all antenna pairs.
    pub pdp: PowerDelayProfile,
}

impl MimoLink {
    /// A QPSK rate-1/2 MMSE link with the given antenna configuration over
    /// flat Rayleigh fading.
    pub fn flat(n_streams: usize, n_rx: usize) -> Self {
        MimoLink {
            n_streams,
            n_rx,
            modulation: Modulation::Qpsk,
            code_rate: wlan_coding::CodeRate::R1_2,
            detector: Detector::Mmse,
            pdp: PowerDelayProfile::flat(),
        }
    }

    fn phy(&self) -> MimoOfdmPhy {
        MimoOfdmPhy::new(MimoOfdmConfig {
            n_streams: self.n_streams,
            n_rx: self.n_rx,
            modulation: self.modulation,
            code_rate: self.code_rate,
            detector: self.detector,
        })
    }
}

impl PhyLink for MimoLink {
    fn name(&self) -> String {
        format!(
            "{}x{} {} r={} ({:?})",
            self.n_streams, self.n_rx, self.modulation, self.code_rate, self.detector
        )
    }

    fn rate_mbps(&self) -> f64 {
        self.phy().rate_mbps()
    }

    fn frame_trial(&self, snr_db: f64, payload: &[u8], rng: &mut WlanRng) -> bool {
        let phy = self.phy();
        let n0 = db_to_lin(-snr_db);
        let ch = MimoMultipathChannel::realize(self.n_rx, self.n_streams, &self.pdp, rng);
        let tx = phy.transmit(payload);
        let rx = propagate(&ch, &tx, n0, rng);
        phy.receive(&rx, n0, payload.len()) == payload
    }
}

/// A single-stream HT-20 link (52-carrier 802.11n numerology), BCC or LDPC
/// coded, over AWGN plus optional flat fading.
#[derive(Debug, Clone, PartialEq)]
pub struct HtLink {
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// Code rate.
    pub code_rate: wlan_coding::CodeRate,
    /// Use the LDPC option instead of BCC.
    pub ldpc: bool,
    /// Apply a flat Rayleigh fade per frame.
    pub fading: bool,
}

impl PhyLink for HtLink {
    fn name(&self) -> String {
        format!(
            "HT20 {} r={} ({})",
            self.modulation,
            self.code_rate,
            if self.ldpc { "LDPC" } else { "BCC" }
        )
    }

    fn rate_mbps(&self) -> f64 {
        if self.ldpc {
            wlan_mimo::ht_ldpc::HtLdpcPhy::new(self.modulation, self.code_rate).rate_mbps()
        } else {
            wlan_mimo::ht::HtPhy::new(self.modulation, self.code_rate).rate_mbps()
        }
    }

    fn frame_trial(&self, snr_db: f64, payload: &[u8], rng: &mut WlanRng) -> bool {
        let fade = if self.fading {
            wlan_channel::noise::complex_gaussian(rng)
        } else {
            wlan_math::Complex::ONE
        };
        let apply = |frame: Vec<wlan_math::Complex>, rng: &mut WlanRng| {
            let faded: Vec<wlan_math::Complex> =
                frame.into_iter().map(|s| s * fade).collect();
            Awgn::from_snr_db(snr_db).apply(&faded, rng)
        };
        if self.ldpc {
            let phy = wlan_mimo::ht_ldpc::HtLdpcPhy::new(self.modulation, self.code_rate);
            let rx = apply(phy.transmit(payload), rng);
            phy.receive(&rx, payload.len()) == payload
        } else {
            let phy = wlan_mimo::ht::HtPhy::new(self.modulation, self.code_rate);
            let rx = apply(phy.transmit(payload), rng);
            phy.receive(&rx, payload.len()) == payload
        }
    }
}

/// The 802.11-1999 FHSS alternative PHY: 1 Mbps binary FSK on one hop
/// dwell (noncoherent detection), over AWGN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FhssLink;

impl PhyLink for FhssLink {
    fn name(&self) -> String {
        "1 Mbps FHSS 2-FSK (AWGN)".into()
    }

    fn rate_mbps(&self) -> f64 {
        1.0
    }

    fn frame_trial(&self, snr_db: f64, payload: &[u8], rng: &mut WlanRng) -> bool {
        use wlan_dsss::fhss::FskModem;
        let modem = FskModem::new(8);
        let bits = wlan_coding::bits::bytes_to_bits(payload);
        let samples = modem.modulate(&bits);
        let noisy = Awgn::from_snr_db(snr_db).apply(&samples, rng);
        modem.demodulate(&noisy) == bits
    }
}

/// An Alamouti STBC OFDM link: two transmit antennas spent on diversity
/// (single-stream rate), `n_rx` receive antennas.
#[derive(Debug, Clone, PartialEq)]
pub struct StbcLink {
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// Code rate.
    pub code_rate: wlan_coding::CodeRate,
    /// Receive antennas.
    pub n_rx: usize,
    /// Multipath profile shared by all antenna pairs.
    pub pdp: PowerDelayProfile,
}

impl StbcLink {
    /// A QPSK rate-1/2 STBC link over flat Rayleigh fading.
    pub fn flat(n_rx: usize) -> Self {
        StbcLink {
            modulation: Modulation::Qpsk,
            code_rate: wlan_coding::CodeRate::R1_2,
            n_rx,
            pdp: PowerDelayProfile::flat(),
        }
    }

    fn phy(&self) -> wlan_mimo::stbc_phy::StbcOfdmPhy {
        wlan_mimo::stbc_phy::StbcOfdmPhy::new(self.modulation, self.code_rate, self.n_rx)
    }
}

impl PhyLink for StbcLink {
    fn name(&self) -> String {
        format!("STBC 2x{} {} r={}", self.n_rx, self.modulation, self.code_rate)
    }

    fn rate_mbps(&self) -> f64 {
        self.phy().rate_mbps()
    }

    fn frame_trial(&self, snr_db: f64, payload: &[u8], rng: &mut WlanRng) -> bool {
        let phy = self.phy();
        let n0 = db_to_lin(-snr_db);
        let ch = MimoMultipathChannel::realize(self.n_rx, 2, &self.pdp, rng);
        let tx = phy.transmit(payload);
        let rx = propagate(&ch, &tx, n0, rng);
        phy.receive(&rx, n0, payload.len()) == payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stbc_link_beats_siso_at_same_rate() {
        let snr = [10.0];
        // Enough frames that the diversity gain clears Monte-Carlo noise.
        let siso = sweep_per(&MimoLink::flat(1, 1), &snr, 40, 150, 21);
        let stbc = sweep_per(&StbcLink::flat(1), &snr, 40, 150, 21);
        assert_eq!(siso.rate_mbps, stbc.rate_mbps, "same data rate");
        assert!(
            stbc.points[0].per < siso.points[0].per,
            "STBC {} vs SISO {}",
            stbc.points[0].per,
            siso.points[0].per
        );
    }

    #[test]
    fn per_is_monotone_decreasing_for_dsss() {
        let link = DsssLink {
            rate: DsssRate::Dqpsk2M,
        };
        let curve = sweep_per(&link, &[-4.0, 2.0, 8.0], 50, 40, 42);
        assert!(curve.points[0].per >= curve.points[2].per);
        // At 8 dB chip SNR (18 dB post-despreading) DQPSK is clean.
        assert!(curve.points[2].per < 0.1, "per {}", curve.points[2].per);
    }

    #[test]
    fn ofdm_rate_ladder_orders_by_required_snr() {
        // 6 Mbps decodes at an SNR where 54 Mbps fails outright.
        let snr = [4.0];
        let slow = sweep_per(&OfdmLink::awgn(OfdmRate::R6), &snr, 60, 25, 1);
        let fast = sweep_per(&OfdmLink::awgn(OfdmRate::R54), &snr, 60, 25, 1);
        assert!(slow.points[0].per < 0.3, "6 Mbps per {}", slow.points[0].per);
        assert!(fast.points[0].per > 0.7, "54 Mbps per {}", fast.points[0].per);
    }

    #[test]
    fn snr_for_per_interpolates() {
        let curve = PerCurve {
            name: "test".into(),
            rate_mbps: 1.0,
            points: vec![
                PerPoint {
                    snr_db: 0.0,
                    per: 1.0,
                },
                PerPoint {
                    snr_db: 10.0,
                    per: 0.0,
                },
            ],
        };
        assert!((curve.snr_for_per(0.5).unwrap() - 5.0).abs() < 1e-9);
        assert!((curve.snr_for_per(0.01).unwrap() - 9.9).abs() < 1e-9);
    }

    #[test]
    fn snr_for_per_none_when_unreachable() {
        let curve = PerCurve {
            name: "bad".into(),
            rate_mbps: 1.0,
            points: vec![PerPoint {
                snr_db: 0.0,
                per: 0.9,
            }],
        };
        assert_eq!(curve.snr_for_per(0.01), None);
    }

    #[test]
    fn receive_diversity_lowers_per() {
        let snr = [8.0];
        let siso = sweep_per(&MimoLink::flat(1, 1), &snr, 40, 30, 7);
        let div = sweep_per(&MimoLink::flat(1, 4), &snr, 40, 30, 7);
        assert!(
            div.points[0].per < siso.points[0].per,
            "1x4 {} vs 1x1 {}",
            div.points[0].per,
            siso.points[0].per
        );
    }

    #[test]
    fn ht_ldpc_link_is_competitive_near_threshold() {
        let common = HtLink {
            modulation: Modulation::Qpsk,
            code_rate: wlan_coding::CodeRate::R1_2,
            ldpc: false,
            fading: false,
        };
        let ldpc = HtLink {
            ldpc: true,
            ..common.clone()
        };
        assert!((common.rate_mbps() - ldpc.rate_mbps()).abs() < 1e-9);
        let snr = [4.5];
        let bcc_curve = sweep_per(&common, &snr, 60, 30, 23);
        let ldpc_curve = sweep_per(&ldpc, &snr, 60, 30, 23);
        // At the PER≈10 % operating point the two codes sit within a
        // fraction of a dB of each other; LDPC's decisive win is in the
        // low-BER waterfall (see bench e06). Here we assert comparability.
        assert!(
            ldpc_curve.points[0].per <= bcc_curve.points[0].per + 0.15,
            "LDPC {} vs BCC {}",
            ldpc_curve.points[0].per,
            bcc_curve.points[0].per
        );
    }

    #[test]
    fn fhss_link_works_at_moderate_snr() {
        let curve = sweep_per(&FhssLink, &[0.0, 12.0], 40, 30, 19);
        assert!(curve.points[0].per > curve.points[1].per);
        assert!(curve.points[1].per < 0.1, "per {}", curve.points[1].per);
    }

    #[test]
    fn sweep_is_deterministic() {
        let link = DsssLink {
            rate: DsssRate::Cck11M,
        };
        let a = sweep_per(&link, &[5.0], 30, 20, 9);
        let b = sweep_per(&link, &[5.0], 30, 20, 9);
        assert_eq!(a, b);
    }
}
