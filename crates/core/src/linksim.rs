//! The unified Monte-Carlo link simulator (experiment E4).
//!
//! Every generation's PHY implements [`PhyLink`]: one fallible frame
//! transmission at a given SNR through its real TX→channel→RX chain. The
//! harness sweeps SNR and counts frame errors, producing the PER curves
//! that rank the generations by robustness.
//!
//! SNR convention: average received signal power over noise power per
//! complex sample (per receive antenna), i.e. Es/N0 at the channel
//! bandwidth. Transmit chains in this workspace are unit-power, so noise
//! variance is simply `10^(−SNR/10)`.
//!
//! # Parallel determinism
//!
//! Sweeps fan frame trials out over [`wlan_math::par`]: each trial `(point
//! i, frame j)` runs on its own RNG stream `master.fork(i).fork(j)`, so a
//! trial's noise depends only on the master seed and its coordinates —
//! never on which thread ran it, how frames were batched, or how many
//! trials ran before it. Error counts are integers summed per point, so
//! the reduction is order-independent too, and a sweep is **bit-identical
//! at any `WLAN_THREADS` setting** (`1` = the serial loop, no threads
//! spawned). The tier-1 harness `tests/tests/parallel_determinism.rs`
//! asserts this for every generation and every fault injector.
//!
//! # Batched RX kernels per worker
//!
//! The receive chains lean on reusable per-thread kernels: every worker
//! thread owns a thread-local [`wlan_coding::ViterbiKernel`] (survivor
//! arena + branch-metric tables, reached through `ViterbiDecoder`) and a
//! thread-local FFT plan cache (`wlan_math::fft::cached_plan`, precomputed
//! bit-reversal and twiddle tables). Workers therefore share *no* mutable
//! decode state — each one gets its own kernel set the first time it
//! touches a frame — and kernel reuse only recycles scratch buffers, never
//! numeric state, so the bit-identical-at-any-thread-count contract above
//! is unaffected by the batching.
//!
//! # The streaming flowgraph path
//!
//! Sweeps run by default on the `wlan-flow` streaming runtime: every
//! generation decomposes its chain into typed tx → channel → rx stages
//! (see [`crate::linkflow`]) and a window of in-flight frames moves
//! through them concurrently on a work-stealing scheduler. The monolithic
//! [`PhyLink::frame_trial_faulted`] implementations below are kept
//! verbatim as the *reference oracle* — [`sweep_per_faulted_oracle`] runs
//! them — and `tests/flow_equivalence.rs` pins the two paths bit-identical
//! (`f64::to_bits`) for every generation × injector × thread count. The
//! duplication is deliberate: the oracle is the spec the flowgraph is
//! measured against. Campaign runners (`wlan-runner`, `wlan-dist`) address
//! single trials via [`frame_trial_at`] and stay on the oracle path.

use std::sync::OnceLock;

use wlan_flow::{Flowgraph, Stage};

use crate::linkflow;

use wlan_math::par;
use wlan_math::rng::{Rng, WlanRng};
use wlan_channel::mimo::MimoMultipathChannel;
use wlan_channel::{Awgn, MultipathChannel, PowerDelayProfile};
use wlan_dsss::{DsssPhy, DsssRate};
use wlan_fault::FaultChain;
use wlan_math::special::db_to_lin;
use wlan_math::WlanError;
use wlan_mimo::detect::Detector;
use wlan_mimo::phy::{propagate, MimoOfdmConfig, MimoOfdmPhy};
use wlan_ofdm::params::Modulation;
use wlan_ofdm::{OfdmPhy, OfdmRate};

/// Per-stage wall-clock histograms for the TX→channel→RX pipeline, in
/// nanoseconds. `tx` covers modulation and FEC encoding, `channel`
/// covers channel realization, noise and fault injection, and `rx`
/// covers the receiver — Viterbi/LDPC decoding, FFT demodulation and
/// MIMO detection all land there. Observability is strictly write-only
/// (see the `wlan_obs` determinism guarantee): clocks are read only
/// while the recorder is enabled, and readings never feed back into a
/// simulation decision.
struct StageTimers {
    tx: wlan_obs::Histogram,
    channel: wlan_obs::Histogram,
    rx: wlan_obs::Histogram,
}

fn stage_timers() -> &'static StageTimers {
    static TIMERS: OnceLock<StageTimers> = OnceLock::new();
    TIMERS.get_or_init(|| {
        let obs = wlan_obs::global();
        StageTimers {
            tx: obs.histogram("linksim.tx"),
            channel: obs.histogram("linksim.channel"),
            rx: obs.histogram("linksim.rx"),
        }
    })
}

/// Trial-outcome counters, bumped in [`frame_trial_at`] so every frame
/// path — sweeps, campaigns, quarantine replay — is counted. A frame
/// trial runs a full PHY pipeline, so the 1–3 relaxed atomic adds (one
/// gate load when disabled) are noise next to the work they count.
fn trial_counters() -> &'static (wlan_obs::Counter, wlan_obs::Counter, wlan_obs::Counter) {
    static COUNTERS: OnceLock<(wlan_obs::Counter, wlan_obs::Counter, wlan_obs::Counter)> =
        OnceLock::new();
    COUNTERS.get_or_init(|| {
        let obs = wlan_obs::global();
        (
            obs.counter("linksim.frames"),
            obs.counter("linksim.frame_errors"),
            obs.counter("linksim.erasures"),
        )
    })
}

/// One point of a PER sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerPoint {
    /// SNR in dB.
    pub snr_db: f64,
    /// Measured frame error rate.
    pub per: f64,
}

/// A complete PER-versus-SNR curve for one link.
#[derive(Debug, Clone, PartialEq)]
pub struct PerCurve {
    /// Link name (for reports).
    pub name: String,
    /// PHY rate in Mbps.
    pub rate_mbps: f64,
    /// Sweep points, ascending in SNR.
    pub points: Vec<PerPoint>,
}

impl PerCurve {
    /// The lowest swept SNR achieving `per_target`, linearly interpolated;
    /// `None` when even the top of the sweep fails.
    ///
    /// The curve is *assumed* monotone non-increasing in SNR — more signal
    /// never hurts a sane receiver. Measured curves can still wiggle from
    /// Monte-Carlo noise, so this scans for the first bracketing pair
    /// rather than bisecting, which keeps the answer at the *lowest*
    /// qualifying SNR even through a local non-monotonic dip. Points whose
    /// PER is NaN (e.g. placeholder entries from an aborted sweep) are
    /// skipped rather than poisoning every comparison around them.
    ///
    /// Endpoint contract: when the lowest (finite-PER) swept point already
    /// meets `per_target` — including meeting it exactly — the answer is
    /// that point's SNR, returned bit-exactly with **no extrapolation
    /// below the sweep** (the sweep carries no evidence about lower SNRs).
    /// `tests/tests/regression.rs::golden_snr_for_per_endpoint_contract`
    /// pins this.
    pub fn snr_for_per(&self, per_target: f64) -> Option<f64> {
        if !per_target.is_finite() {
            return None;
        }
        let pts: Vec<&PerPoint> = self.points.iter().filter(|p| p.per.is_finite()).collect();
        if let Some(first) = pts.first() {
            if first.per <= per_target {
                return Some(first.snr_db);
            }
        }
        for w in pts.windows(2) {
            if w[0].per >= per_target && w[1].per <= per_target {
                let span = w[0].per - w[1].per;
                if span <= 0.0 {
                    return Some(w[1].snr_db);
                }
                let frac = (w[0].per - per_target) / span;
                return Some(w[0].snr_db + frac * (w[1].snr_db - w[0].snr_db));
            }
        }
        pts.last()
            .filter(|p| p.per <= per_target)
            .map(|p| p.snr_db)
    }
}

/// A physical link that can attempt one frame at a given SNR.
///
/// `Send + Sync` so sweeps can share the link across the `wlan_math::par`
/// workers; links are immutable parameter bundles (all per-trial state
/// lives in the `rng` argument and locals).
pub trait PhyLink: Send + Sync {
    /// Human-readable link name.
    fn name(&self) -> String;

    /// Nominal PHY rate in Mbps.
    fn rate_mbps(&self) -> f64;

    /// Transmits one frame of `payload` bytes at `snr_db` with `faults`
    /// applied to the received samples (after the channel and noise, i.e.
    /// at the receiver front end).
    ///
    /// Returns `Ok(true)` when the receiver recovered the payload
    /// bit-exactly, `Ok(false)` when it produced the wrong bits, and
    /// `Err` when the receiver *detected* the frame was undecodable (a
    /// typed erasure — truncated stream, singular channel, bad SIGNAL
    /// field). Implementations must never panic on faulted input, and
    /// with a clean chain must consume exactly the RNG draws the
    /// pre-fault [`PhyLink::frame_trial`] consumed, so seeded sweeps stay
    /// bit-identical.
    fn frame_trial_faulted(
        &self,
        snr_db: f64,
        payload: &[u8],
        faults: &FaultChain,
        rng: &mut WlanRng,
    ) -> Result<bool, WlanError>;

    /// Transmits one frame of `payload` bytes at `snr_db` over the clean
    /// (fault-free) link; returns `true` when the receiver recovered it
    /// bit-exactly. Erasures count as failures.
    fn frame_trial(&self, snr_db: f64, payload: &[u8], rng: &mut WlanRng) -> bool {
        self.frame_trial_faulted(snr_db, payload, &FaultChain::clean(), rng)
            .unwrap_or(false)
    }

    /// The link's chain decomposed into typed `wlan-flow` stages, or
    /// `None` when the link has no streaming decomposition (sweeps then
    /// fall back to the monolithic oracle).
    ///
    /// Contract: running the returned stages over a job charged with the
    /// same `(snr_db, rng, payload)` must produce exactly the verdict —
    /// and consume exactly the RNG draws — of
    /// [`PhyLink::frame_trial_faulted`]. In practice that means transmit
    /// stages draw no RNG and the channel stage performs every draw in the
    /// oracle's order (see the [`crate::linkflow`] module docs).
    fn flow_stages<'a>(&'a self, faults: &'a FaultChain) -> Option<Vec<Box<dyn Stage + 'a>>> {
        let _ = faults;
        None
    }
}

/// One point of a faulted PER sweep: the PER plus how much of it the
/// receiver *detected* (typed erasures) versus silently got wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSweepPoint {
    /// SNR in dB.
    pub snr_db: f64,
    /// Measured frame error rate (erasures plus wrong payloads).
    pub per: f64,
    /// Fraction of trials ending in a typed erasure ([`WlanError`]).
    pub erasure_rate: f64,
}

/// A PER-versus-SNR curve measured under a fault chain.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweep {
    /// Link name (for reports).
    pub name: String,
    /// Fault chain name ("clean" when no faults).
    pub fault: String,
    /// PHY rate in Mbps.
    pub rate_mbps: f64,
    /// Sweep points, ascending in SNR.
    pub points: Vec<FaultSweepPoint>,
}

impl FaultSweep {
    /// Drops the erasure accounting, leaving the plain PER curve.
    pub fn into_per_curve(self) -> PerCurve {
        PerCurve {
            name: self.name,
            rate_mbps: self.rate_mbps,
            points: self
                .points
                .into_iter()
                .map(|p| PerPoint {
                    snr_db: p.snr_db,
                    per: p.per,
                })
                .collect(),
        }
    }
}

/// Sweeps SNR and measures PER with `frames` trials per point.
///
/// Runs on the streaming flowgraph when the link decomposes
/// ([`PhyLink::flow_stages`]), the monolithic oracle otherwise — the two
/// are bit-identical by contract. Trials run in parallel on the
/// `WLAN_THREADS` pool with per-trial forked RNG streams; the curve is
/// bit-identical at any thread count (see the module docs).
///
/// # Panics
///
/// Panics if `frames` is zero or `payload_len` is zero.
pub fn sweep_per(
    link: &dyn PhyLink,
    snrs_db: &[f64],
    payload_len: usize,
    frames: usize,
    seed: u64,
) -> PerCurve {
    sweep_per_faulted(link, &FaultChain::clean(), snrs_db, payload_len, frames, seed)
        .into_per_curve()
}

/// [`sweep_per`] forced onto the monolithic reference oracle.
///
/// # Panics
///
/// Panics if `frames` is zero or `payload_len` is zero.
pub fn sweep_per_oracle(
    link: &dyn PhyLink,
    snrs_db: &[f64],
    payload_len: usize,
    frames: usize,
    seed: u64,
) -> PerCurve {
    sweep_per_faulted_oracle(link, &FaultChain::clean(), snrs_db, payload_len, frames, seed)
        .into_per_curve()
}

/// Frames per parallel work item. Small enough that a single-point sweep
/// still fans out, large enough that scheduling overhead stays invisible
/// next to a PHY chain. Results never depend on this value — only
/// wall-clock does — because every frame has its own forked stream.
const FRAMES_PER_BATCH: usize = 8;

/// Error counts from one batch of frame trials at one SNR point.
#[derive(Debug, Clone, Copy, Default)]
struct TrialTally {
    errors: usize,
    erasures: usize,
}

/// Runs the single sweep trial at stream coordinates `(point, frame)`.
///
/// The trial's whole universe — payload bits, channel realization, noise,
/// fault draws — comes from `point_rng.fork(frame)`, where `point_rng =
/// master.fork(point)` and `master = WlanRng::seed_from_u64(seed)`. This
/// is *the* addressing scheme every sweep uses, exposed so campaign
/// runners can resume a sweep mid-point and quarantine replay can
/// re-execute any trial from its `(seed, point, frame)` coordinates alone
/// — both bit-identical to the trial's first execution.
pub fn frame_trial_at(
    link: &dyn PhyLink,
    faults: &FaultChain,
    snr_db: f64,
    payload_len: usize,
    point_rng: &WlanRng,
    frame: u64,
) -> Result<bool, WlanError> {
    let mut rng = point_rng.fork(frame);
    let payload: Vec<u8> = (0..payload_len).map(|_| rng.gen()).collect();
    let result = link.frame_trial_faulted(snr_db, &payload, faults, &mut rng);
    let (c_frames, c_errors, c_erasures) = trial_counters();
    c_frames.inc();
    match &result {
        Ok(true) => {}
        Ok(false) => c_errors.inc(),
        Err(_) => {
            c_errors.inc();
            c_erasures.inc();
        }
    }
    result
}

/// Runs frames `frame_range` of point `point` (integer counts only, so the
/// per-point reduction over batches is order-independent).
fn run_frame_batch(
    link: &dyn PhyLink,
    faults: &FaultChain,
    snr_db: f64,
    payload_len: usize,
    point_rng: &WlanRng,
    frame_range: std::ops::Range<usize>,
) -> TrialTally {
    let mut tally = TrialTally::default();
    for frame in frame_range {
        match frame_trial_at(link, faults, snr_db, payload_len, point_rng, frame as u64) {
            Ok(true) => {}
            Ok(false) => tally.errors += 1,
            Err(_) => {
                tally.errors += 1;
                tally.erasures += 1;
            }
        }
    }
    tally
}

/// Sweeps SNR under a fault chain, counting typed erasures separately
/// from silent payload corruption.
///
/// Runs on the streaming flowgraph when the link decomposes
/// ([`PhyLink::flow_stages`]); links without a decomposition fall back to
/// [`sweep_per_faulted_oracle`]. Both paths address every trial as
/// `master.fork(point).fork(frame)` and fold integer tallies in frame
/// order, so the sweep is bit-identical across `WLAN_THREADS` settings
/// *and* across the two execution paths (pinned by
/// `tests/flow_equivalence.rs`).
///
/// With a clean chain this draws exactly the same RNG sequence as
/// [`sweep_per`] (the chain consumes no draws), so the two agree
/// bit-for-bit for a given seed.
///
/// # Panics
///
/// Panics if `frames` is zero or `payload_len` is zero.
pub fn sweep_per_faulted(
    link: &dyn PhyLink,
    faults: &FaultChain,
    snrs_db: &[f64],
    payload_len: usize,
    frames: usize,
    seed: u64,
) -> FaultSweep {
    assert!(frames > 0, "need at least one frame per point");
    assert!(payload_len > 0, "payload must be nonempty");
    match sweep_flow(link, faults, snrs_db, payload_len, frames, seed) {
        Some(sweep) => sweep,
        None => sweep_per_faulted_oracle(link, faults, snrs_db, payload_len, frames, seed),
    }
}

/// In-flight frame window per scheduler worker: enough pipeline depth
/// that a worker finishing its frame's rx stage immediately finds another
/// frame's tx/channel work, small enough that the job pool stays cache-
/// resident. Results never depend on this value — only wall-clock does.
const FLOW_WINDOW_PER_WORKER: usize = 4;

/// Runs a sweep on the streaming flowgraph; `None` when the link has no
/// stage decomposition (or its stages fail port validation, which the
/// flow unit tests rule out for every shipped link).
fn sweep_flow(
    link: &dyn PhyLink,
    faults: &FaultChain,
    snrs_db: &[f64],
    payload_len: usize,
    frames: usize,
    seed: u64,
) -> Option<FaultSweep> {
    let stages = link.flow_stages(faults)?;
    let graph = Flowgraph::new("linksim", stages).ok()?;
    let master = WlanRng::seed_from_u64(seed);
    let point_rngs: Vec<WlanRng> = (0..snrs_db.len() as u64).map(|i| master.fork(i)).collect();
    let total = snrs_db.len() * frames;
    let threads = par::num_threads();
    let window = threads.saturating_mul(FLOW_WINDOW_PER_WORKER);
    let verdicts = graph.run(threads, total, window, &|i, job| {
        let point = i / frames;
        job.snr_db = snrs_db[point];
        job.rng = point_rngs[point].fork((i % frames) as u64);
        // Same draws as `frame_trial_at`: payload bytes come first from
        // the frame's stream, before any stage runs.
        for _ in 0..payload_len {
            let b: u8 = job.rng.gen();
            job.payload.push(b);
        }
    });

    // Deterministic reduction: integer sums per point, folded in frame
    // order; identical to the oracle's PER arithmetic bit for bit.
    let (c_frames, c_errors, c_erasures) = trial_counters();
    let mut totals: Vec<TrialTally> = vec![TrialTally::default(); snrs_db.len()];
    for (i, verdict) in verdicts.iter().enumerate() {
        let point = i / frames;
        c_frames.inc();
        match verdict {
            Ok(true) => {}
            Ok(false) => {
                c_errors.inc();
                totals[point].errors += 1;
            }
            Err(_) => {
                c_errors.inc();
                c_erasures.inc();
                totals[point].errors += 1;
                totals[point].erasures += 1;
            }
        }
    }

    let points = snrs_db
        .iter()
        .zip(&totals)
        .map(|(&snr, t)| FaultSweepPoint {
            snr_db: snr,
            per: t.errors as f64 / frames as f64,
            erasure_rate: t.erasures as f64 / frames as f64,
        })
        .collect();
    Some(FaultSweep {
        name: link.name(),
        fault: faults.name(),
        rate_mbps: link.rate_mbps(),
        points,
    })
}

/// Per-frame flowgraph verdicts for one SNR point — the test-facing
/// window into partial pipeline results. Frame `j` runs on
/// `point_rng.fork(j)` exactly like [`frame_trial_at`], so each verdict
/// (including the typed `WlanError` of a mid-pipeline erasure) must equal
/// the oracle's. Returns `None` when the link has no stage decomposition.
/// Unlike the sweeps, this does **not** bump the trial counters.
pub fn flow_verdicts(
    link: &dyn PhyLink,
    faults: &FaultChain,
    snr_db: f64,
    payload_len: usize,
    point_rng: &WlanRng,
    frames: usize,
) -> Option<Vec<Result<bool, WlanError>>> {
    let stages = link.flow_stages(faults)?;
    let graph = Flowgraph::new("linksim", stages).ok()?;
    Some(graph.run(1, frames, 1, &|j, job| {
        job.snr_db = snr_db;
        job.rng = point_rng.fork(j as u64);
        for _ in 0..payload_len {
            let b: u8 = job.rng.gen();
            job.payload.push(b);
        }
    }))
}

/// [`sweep_per_faulted`] forced onto the monolithic reference oracle: the
/// original `(point, frame-batch)` fan-out over
/// [`PhyLink::frame_trial_faulted`]. This is the spec path the flowgraph
/// is measured against.
///
/// # Panics
///
/// Panics if `frames` is zero or `payload_len` is zero.
pub fn sweep_per_faulted_oracle(
    link: &dyn PhyLink,
    faults: &FaultChain,
    snrs_db: &[f64],
    payload_len: usize,
    frames: usize,
    seed: u64,
) -> FaultSweep {
    assert!(frames > 0, "need at least one frame per point");
    assert!(payload_len > 0, "payload must be nonempty");
    let master = WlanRng::seed_from_u64(seed);

    // Flatten the sweep into (point, frame-batch) work items so a
    // single-point robustness sweep parallelizes as well as a 12-point
    // waterfall.
    let batches = par::batches(frames, FRAMES_PER_BATCH);
    let work: Vec<(usize, std::ops::Range<usize>)> = snrs_db
        .iter()
        .enumerate()
        .flat_map(|(i, _)| batches.iter().map(move |b| (i, b.clone())))
        .collect();

    let tallies = par::parallel_map(&work, |_, (point, frame_range)| {
        run_frame_batch(
            link,
            faults,
            snrs_db[*point],
            payload_len,
            &master.fork(*point as u64),
            frame_range.clone(),
        )
    });

    // Deterministic reduction: integer sums per point, folded in work-item
    // order.
    let mut totals: Vec<TrialTally> = vec![TrialTally::default(); snrs_db.len()];
    for ((point, _), tally) in work.iter().zip(&tallies) {
        totals[*point].errors += tally.errors;
        totals[*point].erasures += tally.erasures;
    }

    let points = snrs_db
        .iter()
        .zip(&totals)
        .map(|(&snr, t)| FaultSweepPoint {
            snr_db: snr,
            per: t.errors as f64 / frames as f64,
            erasure_rate: t.erasures as f64 / frames as f64,
        })
        .collect();
    FaultSweep {
        name: link.name(),
        fault: faults.name(),
        rate_mbps: link.rate_mbps(),
        points,
    }
}

/// A first-generation DSSS/CCK link over AWGN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsssLink {
    /// The DSSS-family rate.
    pub rate: DsssRate,
}

impl PhyLink for DsssLink {
    fn name(&self) -> String {
        format!("{} (AWGN)", self.rate)
    }

    fn rate_mbps(&self) -> f64 {
        self.rate.rate_mbps()
    }

    fn frame_trial_faulted(
        &self,
        snr_db: f64,
        payload: &[u8],
        faults: &FaultChain,
        rng: &mut WlanRng,
    ) -> Result<bool, WlanError> {
        let timers = stage_timers();
        let span = timers.tx.start();
        let phy = DsssPhy::new(self.rate);
        let bits = wlan_coding::bits::bytes_to_bits(payload);
        let chips = phy.transmit(&bits);
        span.stop();
        let sent = chips.len();
        let span = timers.channel.start();
        // In-place AWGN: same draws and sums as `apply`, minus one
        // frame-sized allocation per trial.
        let mut noisy = chips;
        Awgn::from_snr_db(snr_db).apply_in_place(&mut noisy, rng);
        faults.inject(&mut noisy, rng);
        span.stop();
        // The despreaders demand whole symbols; a shortened chip stream is
        // a detected loss, not a panic.
        if noisy.len() < sent {
            return Err(WlanError::FrameTruncated {
                needed: sent,
                got: noisy.len(),
            });
        }
        let span = timers.rx.start();
        let rx = phy.receive(&noisy);
        span.stop();
        Ok(rx[..bits.len()] == bits[..])
    }

    fn flow_stages<'a>(&'a self, faults: &'a FaultChain) -> Option<Vec<Box<dyn Stage + 'a>>> {
        Some(vec![
            Box::new(linkflow::DsssTx {
                phy: DsssPhy::new(self.rate),
            }),
            Box::new(linkflow::SampleChannel {
                multipath: None,
                fading: false,
                faults,
            }),
            Box::new(linkflow::DsssRx {
                phy: DsssPhy::new(self.rate),
            }),
        ])
    }
}

/// An 802.11a OFDM link, optionally through multipath.
#[derive(Debug, Clone, PartialEq)]
pub struct OfdmLink {
    /// The OFDM rate.
    pub rate: OfdmRate,
    /// Multipath profile; `None` = pure AWGN.
    pub multipath: Option<PowerDelayProfile>,
}

impl OfdmLink {
    /// An AWGN-only link.
    pub fn awgn(rate: OfdmRate) -> Self {
        OfdmLink {
            rate,
            multipath: None,
        }
    }
}

impl PhyLink for OfdmLink {
    fn name(&self) -> String {
        match &self.multipath {
            Some(_) => format!("{} (multipath)", self.rate),
            None => format!("{} (AWGN)", self.rate),
        }
    }

    fn rate_mbps(&self) -> f64 {
        self.rate.rate_mbps()
    }

    fn frame_trial_faulted(
        &self,
        snr_db: f64,
        payload: &[u8],
        faults: &FaultChain,
        rng: &mut WlanRng,
    ) -> Result<bool, WlanError> {
        let timers = stage_timers();
        let phy = OfdmPhy::new(self.rate);
        let span = timers.tx.start();
        let frame = phy.transmit(payload);
        span.stop();
        let span = timers.channel.start();
        let faded = match &self.multipath {
            Some(pdp) => {
                let ch = MultipathChannel::realize(pdp, rng);
                let mut out = ch.filter(&frame);
                out.truncate(frame.len());
                out
            }
            None => frame,
        };
        let mut noisy = faded;
        Awgn::from_snr_db(snr_db).apply_in_place(&mut noisy, rng);
        faults.inject(&mut noisy, rng);
        span.stop();
        let span = timers.rx.start();
        // The OFDM receiver is already fallible: a stream it cannot frame
        // (short, bad SIGNAL parity, rate mismatch) is a detected erasure.
        let received = phy.receive(&noisy);
        span.stop();
        match received {
            Ok(p) => Ok(p == payload),
            Err(_) => Err(WlanError::SignalInvalid),
        }
    }

    fn flow_stages<'a>(&'a self, faults: &'a FaultChain) -> Option<Vec<Box<dyn Stage + 'a>>> {
        Some(vec![
            Box::new(linkflow::OfdmTx {
                phy: OfdmPhy::new(self.rate),
            }),
            Box::new(linkflow::SampleChannel {
                multipath: self.multipath.clone(),
                fading: false,
                faults,
            }),
            Box::new(linkflow::OfdmRx {
                phy: OfdmPhy::new(self.rate),
            }),
        ])
    }
}

/// An 802.11n MIMO-OFDM link through per-antenna-pair multipath.
#[derive(Debug, Clone, PartialEq)]
pub struct MimoLink {
    /// Spatial streams (= TX antennas).
    pub n_streams: usize,
    /// Receive antennas.
    pub n_rx: usize,
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// Code rate.
    pub code_rate: wlan_coding::CodeRate,
    /// Detector.
    pub detector: Detector,
    /// Multipath profile shared by all antenna pairs.
    pub pdp: PowerDelayProfile,
}

impl MimoLink {
    /// A QPSK rate-1/2 MMSE link with the given antenna configuration over
    /// flat Rayleigh fading.
    pub fn flat(n_streams: usize, n_rx: usize) -> Self {
        MimoLink {
            n_streams,
            n_rx,
            modulation: Modulation::Qpsk,
            code_rate: wlan_coding::CodeRate::R1_2,
            detector: Detector::Mmse,
            pdp: PowerDelayProfile::flat(),
        }
    }

    fn phy(&self) -> MimoOfdmPhy {
        MimoOfdmPhy::new(MimoOfdmConfig {
            n_streams: self.n_streams,
            n_rx: self.n_rx,
            modulation: self.modulation,
            code_rate: self.code_rate,
            detector: self.detector,
        })
    }
}

impl PhyLink for MimoLink {
    fn name(&self) -> String {
        format!(
            "{}x{} {} r={} ({:?})",
            self.n_streams, self.n_rx, self.modulation, self.code_rate, self.detector
        )
    }

    fn rate_mbps(&self) -> f64 {
        self.phy().rate_mbps()
    }

    fn frame_trial_faulted(
        &self,
        snr_db: f64,
        payload: &[u8],
        faults: &FaultChain,
        rng: &mut WlanRng,
    ) -> Result<bool, WlanError> {
        let timers = stage_timers();
        let phy = self.phy();
        let n0 = db_to_lin(-snr_db);
        let ch = MimoMultipathChannel::realize(self.n_rx, self.n_streams, &self.pdp, rng);
        let span = timers.tx.start();
        let tx = phy.transmit(payload);
        span.stop();
        let span = timers.channel.start();
        let mut rx = propagate(&ch, &tx, n0, rng);
        faults.inject_streams(&mut rx, rng);
        span.stop();
        let span = timers.rx.start();
        let decoded = phy.try_receive(&rx, n0, payload.len());
        span.stop();
        Ok(decoded? == payload)
    }

    fn flow_stages<'a>(&'a self, faults: &'a FaultChain) -> Option<Vec<Box<dyn Stage + 'a>>> {
        // The oracle realizes its channel *before* transmit; the channel
        // stage realizes it after. Sequence-preserving because MimoTx
        // draws no RNG (see the linkflow module docs).
        Some(vec![
            Box::new(linkflow::MimoTx { phy: self.phy() }),
            Box::new(linkflow::StreamChannel {
                n_rx: self.n_rx,
                n_tx: self.n_streams,
                pdp: self.pdp.clone(),
                faults,
            }),
            Box::new(linkflow::MimoRx { phy: self.phy() }),
        ])
    }
}

/// A single-stream HT-20 link (52-carrier 802.11n numerology), BCC or LDPC
/// coded, over AWGN plus optional flat fading.
#[derive(Debug, Clone, PartialEq)]
pub struct HtLink {
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// Code rate.
    pub code_rate: wlan_coding::CodeRate,
    /// Use the LDPC option instead of BCC.
    pub ldpc: bool,
    /// Apply a flat Rayleigh fade per frame.
    pub fading: bool,
}

impl PhyLink for HtLink {
    fn name(&self) -> String {
        format!(
            "HT20 {} r={} ({})",
            self.modulation,
            self.code_rate,
            if self.ldpc { "LDPC" } else { "BCC" }
        )
    }

    fn rate_mbps(&self) -> f64 {
        if self.ldpc {
            wlan_mimo::ht_ldpc::HtLdpcPhy::cached(self.modulation, self.code_rate).rate_mbps()
        } else {
            wlan_mimo::ht::HtPhy::new(self.modulation, self.code_rate).rate_mbps()
        }
    }

    fn frame_trial_faulted(
        &self,
        snr_db: f64,
        payload: &[u8],
        faults: &FaultChain,
        rng: &mut WlanRng,
    ) -> Result<bool, WlanError> {
        let fade = if self.fading {
            wlan_channel::noise::complex_gaussian(rng)
        } else {
            wlan_math::Complex::ONE
        };
        let timers = stage_timers();
        let apply = |frame: Vec<wlan_math::Complex>, rng: &mut WlanRng| {
            let span = timers.channel.start();
            let mut noisy = frame;
            for s in noisy.iter_mut() {
                *s *= fade;
            }
            Awgn::from_snr_db(snr_db).apply_in_place(&mut noisy, rng);
            faults.inject(&mut noisy, rng);
            span.stop();
            noisy
        };
        if self.ldpc {
            let phy = wlan_mimo::ht_ldpc::HtLdpcPhy::cached(self.modulation, self.code_rate);
            let span = timers.tx.start();
            let tx = phy.transmit(payload);
            span.stop();
            let rx = apply(tx, rng);
            let span = timers.rx.start();
            let decoded = phy.try_receive(&rx, payload.len());
            span.stop();
            Ok(decoded? == payload)
        } else {
            let phy = wlan_mimo::ht::HtPhy::new(self.modulation, self.code_rate);
            let span = timers.tx.start();
            let tx = phy.transmit(payload);
            span.stop();
            let rx = apply(tx, rng);
            let span = timers.rx.start();
            let decoded = phy.try_receive(&rx, payload.len());
            span.stop();
            Ok(decoded? == payload)
        }
    }

    fn flow_stages<'a>(&'a self, faults: &'a FaultChain) -> Option<Vec<Box<dyn Stage + 'a>>> {
        // The oracle draws its flat fade before transmit; the channel
        // stage draws it first thing after. Sequence-preserving because
        // HtTx draws no RNG (see the linkflow module docs).
        let phy = || {
            if self.ldpc {
                linkflow::HtPhyKind::Ldpc(wlan_mimo::ht_ldpc::HtLdpcPhy::cached(
                    self.modulation,
                    self.code_rate,
                ))
            } else {
                linkflow::HtPhyKind::Bcc(wlan_mimo::ht::HtPhy::new(self.modulation, self.code_rate))
            }
        };
        Some(vec![
            Box::new(linkflow::HtTx { phy: phy() }),
            Box::new(linkflow::SampleChannel {
                multipath: None,
                fading: self.fading,
                faults,
            }),
            Box::new(linkflow::HtRx { phy: phy() }),
        ])
    }
}

/// The 802.11-1999 FHSS alternative PHY: 1 Mbps binary FSK on one hop
/// dwell (noncoherent detection), over AWGN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FhssLink;

impl PhyLink for FhssLink {
    fn name(&self) -> String {
        "1 Mbps FHSS 2-FSK (AWGN)".into()
    }

    fn rate_mbps(&self) -> f64 {
        1.0
    }

    fn frame_trial_faulted(
        &self,
        snr_db: f64,
        payload: &[u8],
        faults: &FaultChain,
        rng: &mut WlanRng,
    ) -> Result<bool, WlanError> {
        use wlan_dsss::fhss::FskModem;
        let timers = stage_timers();
        let span = timers.tx.start();
        let modem = FskModem::new(8);
        let bits = wlan_coding::bits::bytes_to_bits(payload);
        let samples = modem.modulate(&bits);
        span.stop();
        let sent = samples.len();
        let span = timers.channel.start();
        let mut noisy = samples;
        Awgn::from_snr_db(snr_db).apply_in_place(&mut noisy, rng);
        faults.inject(&mut noisy, rng);
        span.stop();
        // The noncoherent detector demands whole FSK symbols; a shortened
        // dwell is a detected loss, not a panic.
        if noisy.len() < sent {
            return Err(WlanError::FrameTruncated {
                needed: sent,
                got: noisy.len(),
            });
        }
        let span = timers.rx.start();
        let demodulated = modem.demodulate(&noisy);
        span.stop();
        Ok(demodulated == bits)
    }

    fn flow_stages<'a>(&'a self, faults: &'a FaultChain) -> Option<Vec<Box<dyn Stage + 'a>>> {
        use wlan_dsss::fhss::FskModem;
        Some(vec![
            Box::new(linkflow::FhssTx {
                modem: FskModem::new(8),
            }),
            Box::new(linkflow::SampleChannel {
                multipath: None,
                fading: false,
                faults,
            }),
            Box::new(linkflow::FhssRx {
                modem: FskModem::new(8),
            }),
        ])
    }
}

/// An Alamouti STBC OFDM link: two transmit antennas spent on diversity
/// (single-stream rate), `n_rx` receive antennas.
#[derive(Debug, Clone, PartialEq)]
pub struct StbcLink {
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// Code rate.
    pub code_rate: wlan_coding::CodeRate,
    /// Receive antennas.
    pub n_rx: usize,
    /// Multipath profile shared by all antenna pairs.
    pub pdp: PowerDelayProfile,
}

impl StbcLink {
    /// A QPSK rate-1/2 STBC link over flat Rayleigh fading.
    pub fn flat(n_rx: usize) -> Self {
        StbcLink {
            modulation: Modulation::Qpsk,
            code_rate: wlan_coding::CodeRate::R1_2,
            n_rx,
            pdp: PowerDelayProfile::flat(),
        }
    }

    fn phy(&self) -> wlan_mimo::stbc_phy::StbcOfdmPhy {
        wlan_mimo::stbc_phy::StbcOfdmPhy::new(self.modulation, self.code_rate, self.n_rx)
    }
}

impl PhyLink for StbcLink {
    fn name(&self) -> String {
        format!("STBC 2x{} {} r={}", self.n_rx, self.modulation, self.code_rate)
    }

    fn rate_mbps(&self) -> f64 {
        self.phy().rate_mbps()
    }

    fn frame_trial_faulted(
        &self,
        snr_db: f64,
        payload: &[u8],
        faults: &FaultChain,
        rng: &mut WlanRng,
    ) -> Result<bool, WlanError> {
        let timers = stage_timers();
        let phy = self.phy();
        let n0 = db_to_lin(-snr_db);
        let ch = MimoMultipathChannel::realize(self.n_rx, 2, &self.pdp, rng);
        let span = timers.tx.start();
        let tx = phy.transmit(payload);
        span.stop();
        let span = timers.channel.start();
        let mut rx = propagate(&ch, &tx, n0, rng);
        faults.inject_streams(&mut rx, rng);
        span.stop();
        let span = timers.rx.start();
        let decoded = phy.try_receive(&rx, n0, payload.len());
        span.stop();
        Ok(decoded? == payload)
    }

    fn flow_stages<'a>(&'a self, faults: &'a FaultChain) -> Option<Vec<Box<dyn Stage + 'a>>> {
        // Channel realized after transmit instead of before — sequence-
        // preserving because StbcTx draws no RNG.
        Some(vec![
            Box::new(linkflow::StbcTx { phy: self.phy() }),
            Box::new(linkflow::StreamChannel {
                n_rx: self.n_rx,
                n_tx: 2,
                pdp: self.pdp.clone(),
                faults,
            }),
            Box::new(linkflow::StbcRx { phy: self.phy() }),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stbc_link_beats_siso_at_same_rate() {
        let snr = [10.0];
        // Enough frames that the diversity gain clears Monte-Carlo noise.
        let siso = sweep_per(&MimoLink::flat(1, 1), &snr, 40, 150, 21);
        let stbc = sweep_per(&StbcLink::flat(1), &snr, 40, 150, 21);
        assert_eq!(siso.rate_mbps, stbc.rate_mbps, "same data rate");
        assert!(
            stbc.points[0].per < siso.points[0].per,
            "STBC {} vs SISO {}",
            stbc.points[0].per,
            siso.points[0].per
        );
    }

    #[test]
    fn per_is_monotone_decreasing_for_dsss() {
        let link = DsssLink {
            rate: DsssRate::Dqpsk2M,
        };
        let curve = sweep_per(&link, &[-4.0, 2.0, 8.0], 50, 40, 42);
        assert!(curve.points[0].per >= curve.points[2].per);
        // At 8 dB chip SNR (18 dB post-despreading) DQPSK is clean.
        assert!(curve.points[2].per < 0.1, "per {}", curve.points[2].per);
    }

    #[test]
    fn ofdm_rate_ladder_orders_by_required_snr() {
        // 6 Mbps decodes at an SNR where 54 Mbps fails outright.
        let snr = [4.0];
        let slow = sweep_per(&OfdmLink::awgn(OfdmRate::R6), &snr, 60, 25, 1);
        let fast = sweep_per(&OfdmLink::awgn(OfdmRate::R54), &snr, 60, 25, 1);
        assert!(slow.points[0].per < 0.3, "6 Mbps per {}", slow.points[0].per);
        assert!(fast.points[0].per > 0.7, "54 Mbps per {}", fast.points[0].per);
    }

    #[test]
    fn snr_for_per_interpolates() {
        let curve = PerCurve {
            name: "test".into(),
            rate_mbps: 1.0,
            points: vec![
                PerPoint {
                    snr_db: 0.0,
                    per: 1.0,
                },
                PerPoint {
                    snr_db: 10.0,
                    per: 0.0,
                },
            ],
        };
        assert!((curve.snr_for_per(0.5).unwrap() - 5.0).abs() < 1e-9);
        assert!((curve.snr_for_per(0.01).unwrap() - 9.9).abs() < 1e-9);
    }

    #[test]
    fn snr_for_per_none_when_unreachable() {
        let curve = PerCurve {
            name: "bad".into(),
            rate_mbps: 1.0,
            points: vec![PerPoint {
                snr_db: 0.0,
                per: 0.9,
            }],
        };
        assert_eq!(curve.snr_for_per(0.01), None);
    }

    #[test]
    fn receive_diversity_lowers_per() {
        let snr = [8.0];
        let siso = sweep_per(&MimoLink::flat(1, 1), &snr, 40, 30, 7);
        let div = sweep_per(&MimoLink::flat(1, 4), &snr, 40, 30, 7);
        assert!(
            div.points[0].per < siso.points[0].per,
            "1x4 {} vs 1x1 {}",
            div.points[0].per,
            siso.points[0].per
        );
    }

    #[test]
    fn ht_ldpc_link_is_competitive_near_threshold() {
        let common = HtLink {
            modulation: Modulation::Qpsk,
            code_rate: wlan_coding::CodeRate::R1_2,
            ldpc: false,
            fading: false,
        };
        let ldpc = HtLink {
            ldpc: true,
            ..common.clone()
        };
        assert!((common.rate_mbps() - ldpc.rate_mbps()).abs() < 1e-9);
        let snr = [4.5];
        let bcc_curve = sweep_per(&common, &snr, 60, 30, 23);
        let ldpc_curve = sweep_per(&ldpc, &snr, 60, 30, 23);
        // At the PER≈10 % operating point the two codes sit within a
        // fraction of a dB of each other; LDPC's decisive win is in the
        // low-BER waterfall (see bench e06). Here we assert comparability.
        assert!(
            ldpc_curve.points[0].per <= bcc_curve.points[0].per + 0.15,
            "LDPC {} vs BCC {}",
            ldpc_curve.points[0].per,
            bcc_curve.points[0].per
        );
    }

    #[test]
    fn fhss_link_works_at_moderate_snr() {
        let curve = sweep_per(&FhssLink, &[0.0, 12.0], 40, 30, 19);
        assert!(curve.points[0].per > curve.points[1].per);
        assert!(curve.points[1].per < 0.1, "per {}", curve.points[1].per);
    }

    #[test]
    fn sweep_is_deterministic() {
        let link = DsssLink {
            rate: DsssRate::Cck11M,
        };
        let a = sweep_per(&link, &[5.0], 30, 20, 9);
        let b = sweep_per(&link, &[5.0], 30, 20, 9);
        assert_eq!(a, b);
    }

    fn curve_of(pairs: &[(f64, f64)]) -> PerCurve {
        PerCurve {
            name: "test".into(),
            rate_mbps: 1.0,
            points: pairs
                .iter()
                .map(|&(snr_db, per)| PerPoint { snr_db, per })
                .collect(),
        }
    }

    #[test]
    fn snr_for_per_skips_nan_points() {
        let curve = curve_of(&[(0.0, 1.0), (5.0, f64::NAN), (10.0, 0.0)]);
        let snr = curve.snr_for_per(0.5).unwrap();
        assert!((snr - 5.0).abs() < 1e-9, "interpolated across NaN: {snr}");
        assert_eq!(curve_of(&[(0.0, f64::NAN)]).snr_for_per(0.1), None);
    }

    #[test]
    fn snr_for_per_survives_monte_carlo_wiggle() {
        // A non-monotonic dip below target followed by a bounce back up:
        // the first bracketing pair wins, and nothing panics or lies.
        let curve = curve_of(&[(0.0, 0.9), (2.0, 0.05), (4.0, 0.2), (6.0, 0.0)]);
        let snr = curve.snr_for_per(0.1).unwrap();
        assert!(snr > 0.0 && snr < 2.0, "first crossing, got {snr}");
    }

    #[test]
    fn snr_for_per_honours_an_already_good_first_point() {
        let curve = curve_of(&[(3.0, 0.02), (6.0, 0.0)]);
        assert_eq!(curve.snr_for_per(0.1), Some(3.0));
    }

    #[test]
    fn snr_for_per_rejects_nan_target() {
        let curve = curve_of(&[(0.0, 1.0), (10.0, 0.0)]);
        assert_eq!(curve.snr_for_per(f64::NAN), None);
    }

    #[test]
    fn clean_faulted_sweep_matches_sweep_per_bit_for_bit() {
        use wlan_fault::FaultChain;
        let link = OfdmLink::awgn(OfdmRate::R12);
        let plain = sweep_per(&link, &[6.0, 10.0], 40, 15, 31);
        let faulted =
            sweep_per_faulted(&link, &FaultChain::clean(), &[6.0, 10.0], 40, 15, 31);
        assert_eq!(faulted.fault, "clean");
        assert_eq!(faulted.clone().into_per_curve(), plain);
        assert!(faulted.points.iter().all(|p| p.erasure_rate == 0.0));
    }

    #[test]
    fn truncation_faults_surface_as_erasures_not_panics() {
        use wlan_fault::FaultKind;
        let chain = FaultKind::FrameTruncation.chain(1.0);
        for link in [
            &DsssLink {
                rate: DsssRate::Dbpsk1M,
            } as &dyn PhyLink,
            &FhssLink,
        ] {
            let sweep = sweep_per_faulted(link, &chain, &[20.0], 30, 10, 5);
            let p = sweep.points[0];
            assert!(p.per >= p.erasure_rate);
            assert!(
                p.erasure_rate > 0.0,
                "{}: hard truncation must be detected",
                sweep.name
            );
        }
    }

    #[test]
    fn every_link_decomposes_into_a_valid_flowgraph() {
        let chain = FaultChain::clean();
        let links: Vec<Box<dyn PhyLink>> = vec![
            Box::new(FhssLink),
            Box::new(DsssLink {
                rate: DsssRate::Cck11M,
            }),
            Box::new(OfdmLink::awgn(OfdmRate::R12)),
            Box::new(HtLink {
                modulation: Modulation::Qpsk,
                code_rate: wlan_coding::CodeRate::R1_2,
                ldpc: true,
                fading: true,
            }),
            Box::new(MimoLink::flat(2, 2)),
            Box::new(StbcLink::flat(1)),
        ];
        for link in &links {
            let stages = link.flow_stages(&chain).expect("every link decomposes");
            let graph = Flowgraph::new("linksim", stages).expect("ports line up");
            assert_eq!(graph.stage_names(), vec!["tx", "channel", "rx"], "{}", link.name());
        }
    }

    #[test]
    fn flow_sweep_matches_oracle_bit_for_bit() {
        // The full generation × injector × thread matrix lives in
        // tests/flow_equivalence.rs; this is the in-crate canary.
        let link = DsssLink {
            rate: DsssRate::Dqpsk2M,
        };
        let chain = wlan_fault::FaultKind::CollisionPulse.chain(0.8);
        let flow = sweep_per_faulted(&link, &chain, &[2.0, 8.0], 30, 20, 77);
        let oracle = sweep_per_faulted_oracle(&link, &chain, &[2.0, 8.0], 30, 20, 77);
        assert_eq!(flow, oracle);
        for (f, o) in flow.points.iter().zip(&oracle.points) {
            assert_eq!(f.per.to_bits(), o.per.to_bits());
            assert_eq!(f.erasure_rate.to_bits(), o.erasure_rate.to_bits());
        }
    }

    #[test]
    fn flow_verdicts_match_frame_trial_at_including_typed_errors() {
        use wlan_fault::FaultKind;
        let link = FhssLink;
        let chain = FaultKind::FrameTruncation.chain(1.0);
        let point_rng = WlanRng::seed_from_u64(5).fork(0);
        let flow = flow_verdicts(&link, &chain, 20.0, 30, &point_rng, 10).expect("decomposes");
        let oracle: Vec<Result<bool, WlanError>> = (0..10)
            .map(|j| frame_trial_at(&link, &chain, 20.0, 30, &point_rng, j))
            .collect();
        assert_eq!(flow, oracle);
        assert!(
            flow.iter()
                .any(|v| matches!(v, Err(WlanError::FrameTruncated { .. }))),
            "hard truncation must surface as the typed erasure through the flowgraph"
        );
    }

    #[test]
    fn burst_interference_degrades_ofdm() {
        use wlan_fault::FaultKind;
        let link = OfdmLink::awgn(OfdmRate::R24);
        let clean = sweep_per(&link, &[12.0], 60, 20, 11);
        let jammed = sweep_per_faulted(
            &link,
            &FaultKind::BurstInterference.chain(1.0),
            &[12.0],
            60,
            20,
            11,
        );
        assert!(
            jammed.points[0].per >= clean.points[0].per,
            "jammed {} vs clean {}",
            jammed.points[0].per,
            clean.points[0].per
        );
    }
}
