//! `wlan-core` — the facade of the *wlan-evolve* workspace.
//!
//! This crate ties the whole reproduction of *"Wireless LAN: Past, Present,
//! and Future"* (Keith Holt, DATE 2005) together:
//!
//! - [`standard`] — the four 802.11 generations the paper retraces, with
//!   their rates, bandwidths and spectral efficiencies,
//! - [`evolution`] — the headline tables (experiments E1/E2): the
//!   0.1 → 0.5 → 2.7 → 15 bps/Hz fivefold ladder,
//! - [`linksim`] — a unified Monte-Carlo link simulator (`PhyLink`) running
//!   every generation's full TX→channel→RX chain for PER-vs-SNR curves
//!   (experiment E4),
//! - [`range`] — PER-threshold range estimation over the breakpoint
//!   path-loss model (experiment E5),
//! - [`adaptation`] — SNR-driven rate selection,
//! - re-exports of every substrate crate under one roof.
//!
//! # Quickstart
//!
//! ```
//! use wlan_core::standard::Standard;
//!
//! for s in Standard::all() {
//!     println!(
//!         "{:>8}: {:>5} Mbps in {:>2} MHz = {:.1} bps/Hz",
//!         s.name(),
//!         s.peak_rate_mbps(),
//!         s.bandwidth_mhz(),
//!         s.spectral_efficiency()
//!     );
//! }
//! // The paper's fivefold-per-generation trend:
//! let se: Vec<f64> = Standard::all().iter().map(|s| s.spectral_efficiency()).collect();
//! assert!(se.windows(2).all(|w| w[1] / w[0] > 4.0));
//! ```

pub mod adaptation;
pub mod evolution;
pub mod goodput;
pub mod linkflow;
pub mod linksim;
pub mod range;
pub mod standard;

pub use standard::Standard;

// One-stop re-exports of the substrate crates.
pub use wlan_channel as channel;
pub use wlan_coding as coding;
pub use wlan_coop as coop;
pub use wlan_dsss as dsss;
pub use wlan_fault as fault;
pub use wlan_flow as flow;
pub use wlan_mac as mac;
pub use wlan_math as math;
pub use wlan_mesh as mesh;
pub use wlan_mimo as mimo;
pub use wlan_ofdm as ofdm;
pub use wlan_power as power;
pub use wlan_sim as sim;
