//! User goodput versus distance — the cross-layer synthesis.
//!
//! Combines the path-loss model, per-standard rate adaptation and the MAC
//! overhead model into the curve end users actually experience: application
//! throughput as a function of distance, per generation. This is the
//! extension experiment (E15) behind the paper's overall narrative that
//! each generation multiplied *rate* while diversity and robustness decide
//! *range*.

use crate::adaptation::select_rate;
use wlan_channel::pathloss::{LinkBudget, PathLossModel};
use wlan_mac::aggregation::aggregated_throughput_mbps;
use wlan_mac::params::MacProfile;
use wlan_mac::protection::erp_throughput_mbps;
use wlan_mimo::mcs::{Bandwidth, GuardInterval, HtMcs};

/// DSSS/CCK rate steps with required SNR (dB), calibrated against the E4
/// link-simulation measurements (PER ≤ 10 %, 100-byte frames).
pub const DSSS_RATE_SNR_TABLE: [(f64, f64); 4] =
    [(1.0, 0.5), (2.0, 4.0), (5.5, 7.0), (11.0, 9.0)];

/// The fastest DSSS-family rate sustainable at the given SNR.
pub fn dsss_rate_for_snr(snr_db: f64) -> Option<f64> {
    DSSS_RATE_SNR_TABLE
        .iter()
        .rev()
        .find(|(_, req)| snr_db >= *req)
        .map(|(rate, _)| *rate)
}

/// The fastest 2-stream HT MCS (20 MHz, long GI) sustainable at the given
/// SNR, using a documented heuristic: the same-modulation OFDM sensitivity
/// plus 3 dB per additional spatial stream for stream separation.
pub fn ht_mcs_for_snr(snr_db: f64, n_streams: usize) -> Option<HtMcs> {
    let penalty = 3.0 * (n_streams.saturating_sub(1)) as f64;
    // Walk the 8 base MCS rows top-down with the OFDM-equivalent threshold.
    let thresholds = [5.0, 8.0, 11.0, 14.5, 18.5, 23.0, 24.5, 26.5];
    let base = (0..8u8)
        .rev()
        .find(|&i| snr_db >= thresholds[i as usize] + penalty)?;
    HtMcs::new((n_streams as u8 - 1) * 8 + base)
}

/// The 802.11 flavour whose goodput is being evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoodputStandard {
    /// DSSS/CCK with the 802.11b MAC timing.
    Dot11b,
    /// OFDM with the 802.11a MAC timing.
    Dot11a,
    /// OFDM in 2.4 GHz; `protected` adds the DSSS CTS-to-self.
    Dot11g {
        /// Legacy stations present → CTS-to-self protection.
        protected: bool,
    },
    /// 2-stream 802.11n with A-MPDU aggregation.
    Dot11n {
        /// Subframes per A-MPDU (1 = no aggregation).
        ampdu: usize,
    },
}

impl GoodputStandard {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            GoodputStandard::Dot11b => "802.11b".into(),
            GoodputStandard::Dot11a => "802.11a".into(),
            GoodputStandard::Dot11g { protected } => {
                if *protected {
                    "802.11g+prot".into()
                } else {
                    "802.11g".into()
                }
            }
            GoodputStandard::Dot11n { ampdu } => format!("802.11n(A{ampdu})"),
        }
    }
}

/// Single-user goodput (Mbps) at a distance, with 1500-byte frames.
///
/// Returns 0 when the link is below every rate's sensitivity.
pub fn goodput_at_distance(
    standard: GoodputStandard,
    budget: &LinkBudget,
    model: &PathLossModel,
    distance_m: f64,
) -> f64 {
    let snr_db = budget.snr_at_distance_db(model, distance_m);
    let payload = 1500;
    match standard {
        GoodputStandard::Dot11b => dsss_rate_for_snr(snr_db)
            .map(|r| MacProfile::dot11b(r).ideal_throughput_mbps(payload))
            .unwrap_or(0.0),
        GoodputStandard::Dot11a => select_rate(snr_db)
            .map(|r| MacProfile::dot11a(r.rate_mbps()).ideal_throughput_mbps(payload))
            .unwrap_or(0.0),
        GoodputStandard::Dot11g { protected } => select_rate(snr_db)
            .map(|r| erp_throughput_mbps(r.rate_mbps(), payload, protected, 1.0))
            .unwrap_or(0.0),
        GoodputStandard::Dot11n { ampdu } => ht_mcs_for_snr(snr_db, 2)
            .map(|mcs| {
                let rate = mcs.data_rate_mbps(Bandwidth::Mhz20, GuardInterval::Long);
                aggregated_throughput_mbps(&MacProfile::dot11n(rate), ampdu.max(1), payload)
            })
            .unwrap_or(0.0),
    }
}

/// Goodput curve over a distance sweep.
pub fn goodput_curve(
    standard: GoodputStandard,
    budget: &LinkBudget,
    model: &PathLossModel,
    distances_m: &[f64],
) -> Vec<f64> {
    distances_m
        .iter()
        .map(|&d| goodput_at_distance(standard, budget, model, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> (LinkBudget, PathLossModel) {
        (LinkBudget::typical_wlan(), PathLossModel::tgn_model_d())
    }

    #[test]
    fn curves_are_monotone_nonincreasing() {
        let (budget, model) = env();
        let d: Vec<f64> = (1..=60).map(|i| 5.0 * i as f64).collect();
        for std in [
            GoodputStandard::Dot11b,
            GoodputStandard::Dot11a,
            GoodputStandard::Dot11g { protected: true },
            GoodputStandard::Dot11n { ampdu: 32 },
        ] {
            let curve = goodput_curve(std, &budget, &model, &d);
            for w in curve.windows(2) {
                assert!(w[0] >= w[1] - 1e-9, "{}: {w:?}", std.label());
            }
        }
    }

    #[test]
    fn n_dominates_at_short_range() {
        let (budget, model) = env();
        let a = goodput_at_distance(GoodputStandard::Dot11a, &budget, &model, 5.0);
        let n = goodput_at_distance(GoodputStandard::Dot11n { ampdu: 32 }, &budget, &model, 5.0);
        assert!(n > 2.0 * a, "11n {n} vs 11a {a} at 5 m");
    }

    #[test]
    fn b_reaches_farther_than_a() {
        // The classic crossover: at extreme range 802.11b's 1 Mbps DSSS
        // (needs ~0.5 dB) still works where OFDM's 6 Mbps (needs 5 dB) died.
        let (budget, model) = env();
        let mut b_range = 0.0;
        let mut a_range = 0.0;
        for i in 1..=400 {
            let d = i as f64;
            if goodput_at_distance(GoodputStandard::Dot11b, &budget, &model, d) > 0.0 {
                b_range = d;
            }
            if goodput_at_distance(GoodputStandard::Dot11a, &budget, &model, d) > 0.0 {
                a_range = d;
            }
        }
        assert!(b_range > a_range, "b range {b_range} vs a range {a_range}");
    }

    #[test]
    fn protection_costs_throughput_everywhere_it_matters() {
        let (budget, model) = env();
        let plain = goodput_at_distance(
            GoodputStandard::Dot11g { protected: false },
            &budget,
            &model,
            10.0,
        );
        let prot = goodput_at_distance(
            GoodputStandard::Dot11g { protected: true },
            &budget,
            &model,
            10.0,
        );
        assert!(prot < 0.8 * plain, "protected {prot} vs plain {plain}");
    }

    #[test]
    fn aggregation_multiplies_11n_goodput() {
        let (budget, model) = env();
        let single =
            goodput_at_distance(GoodputStandard::Dot11n { ampdu: 1 }, &budget, &model, 5.0);
        let agg =
            goodput_at_distance(GoodputStandard::Dot11n { ampdu: 64 }, &budget, &model, 5.0);
        assert!(agg > 1.5 * single, "A64 {agg} vs A1 {single}");
    }

    #[test]
    fn ht_mcs_heuristic_is_sane() {
        assert_eq!(ht_mcs_for_snr(40.0, 2).map(|m| m.index()), Some(15));
        assert_eq!(ht_mcs_for_snr(8.5, 2).map(|m| m.index()), Some(8));
        assert_eq!(ht_mcs_for_snr(2.0, 2), None);
        assert_eq!(ht_mcs_for_snr(5.5, 1).map(|m| m.index()), Some(0));
    }

    #[test]
    fn dsss_rate_table_ordering() {
        assert_eq!(dsss_rate_for_snr(20.0), Some(11.0));
        assert_eq!(dsss_rate_for_snr(5.0), Some(2.0));
        assert_eq!(dsss_rate_for_snr(-2.0), None);
    }
}
