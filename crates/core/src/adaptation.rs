//! SNR-driven rate adaptation.
//!
//! Every generation since 802.11b has shipped multiple rates precisely so
//! links can trade speed for robustness with distance. This module selects
//! the throughput-maximizing 802.11a rate for a given SNR using the same
//! sensitivity table the mesh crate uses for link rates, and estimates the
//! resulting throughput-versus-distance staircase.

use wlan_channel::pathloss::{LinkBudget, PathLossModel};
use wlan_mesh::topology::{best_rate_for_snr, RATE_SNR_TABLE};
use wlan_ofdm::OfdmRate;

/// The throughput-optimal 802.11a rate at a given SNR, or `None` below the
/// 6 Mbps sensitivity.
pub fn select_rate(snr_db: f64) -> Option<OfdmRate> {
    let mbps = best_rate_for_snr(snr_db)?;
    OfdmRate::all().into_iter().find(|r| r.rate_mbps() == mbps)
}

/// The SNR margin (dB) of a selected rate: how far above its sensitivity
/// the link sits. Zero margin means the next fade drops the rate.
pub fn margin_db(snr_db: f64, rate: OfdmRate) -> f64 {
    // Every OFDM rate appears in the table; a hypothetical miss reports an
    // infinite requirement (no margin) rather than panicking.
    let required = RATE_SNR_TABLE
        .iter()
        .find(|(mbps, _)| *mbps == rate.rate_mbps())
        .map(|(_, snr)| *snr)
        .unwrap_or(f64::INFINITY);
    snr_db - required
}

/// One step of the rate-versus-distance staircase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateAtDistance {
    /// Distance in metres.
    pub distance_m: f64,
    /// Median SNR there.
    pub snr_db: f64,
    /// Selected rate (`None` = out of range).
    pub rate: Option<OfdmRate>,
}

/// Sweeps distance and reports the adapted rate at each point.
pub fn rate_vs_distance(
    budget: &LinkBudget,
    model: &PathLossModel,
    distances_m: &[f64],
) -> Vec<RateAtDistance> {
    distances_m
        .iter()
        .map(|&d| {
            let snr_db = budget.snr_at_distance_db(model, d);
            RateAtDistance {
                distance_m: d,
                snr_db,
                rate: select_rate(snr_db),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_snr_selects_top_rate() {
        assert_eq!(select_rate(40.0), Some(OfdmRate::R54));
    }

    #[test]
    fn low_snr_selects_robust_rate() {
        assert_eq!(select_rate(5.5), Some(OfdmRate::R6));
        assert_eq!(select_rate(-3.0), None);
    }

    #[test]
    fn selection_is_monotone_in_snr() {
        let mut prev = 0.0;
        for snr in [5.0, 8.0, 11.0, 15.0, 19.0, 23.0, 25.0, 30.0] {
            let rate = select_rate(snr).expect("in range").rate_mbps();
            assert!(rate >= prev, "snr {snr}: {rate} < {prev}");
            prev = rate;
        }
    }

    #[test]
    fn margin_is_zero_at_sensitivity() {
        assert!((margin_db(24.5, OfdmRate::R54) - 0.0).abs() < 1e-12);
        assert!((margin_db(30.0, OfdmRate::R54) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn staircase_descends_with_distance() {
        let budget = LinkBudget::typical_wlan();
        let model = PathLossModel::tgn_model_d();
        let steps = rate_vs_distance(&budget, &model, &[5.0, 30.0, 80.0, 150.0, 400.0]);
        // Rates must be non-increasing with distance.
        let rates: Vec<f64> = steps
            .iter()
            .map(|s| s.rate.map(|r| r.rate_mbps()).unwrap_or(0.0))
            .collect();
        for w in rates.windows(2) {
            assert!(w[0] >= w[1], "{rates:?}");
        }
        // Near: top rate; far: dead.
        assert_eq!(steps[0].rate, Some(OfdmRate::R54));
        assert_eq!(steps[4].rate, None);
    }
}
