//! The 802.11 generations the paper retraces.

use wlan_dsss::DsssRate;
use wlan_mimo::mcs::{Bandwidth, GuardInterval, HtMcs};
use wlan_ofdm::OfdmRate;

/// One generation of the 802.11 family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Standard {
    /// 802.11-1999: DSSS/FHSS, 1–2 Mbps.
    Dot11,
    /// 802.11b: CCK, up to 11 Mbps.
    Dot11b,
    /// 802.11a/g: OFDM, up to 54 Mbps.
    Dot11a,
    /// 802.11n (draft at the paper's writing): MIMO-OFDM, up to 600 Mbps.
    Dot11n,
}

impl Standard {
    /// All generations in chronological order.
    pub fn all() -> [Standard; 4] {
        [
            Standard::Dot11,
            Standard::Dot11b,
            Standard::Dot11a,
            Standard::Dot11n,
        ]
    }

    /// Short name.
    pub fn name(&self) -> &'static str {
        match self {
            Standard::Dot11 => "802.11",
            Standard::Dot11b => "802.11b",
            Standard::Dot11a => "802.11a/g",
            Standard::Dot11n => "802.11n",
        }
    }

    /// Ratification (or, for 11n, expected) year.
    pub fn year(&self) -> u16 {
        match self {
            Standard::Dot11 => 1997,
            Standard::Dot11b => 1999,
            Standard::Dot11a => 1999,
            Standard::Dot11n => 2008,
        }
    }

    /// Peak PHY data rate in Mbps, computed from the implemented PHYs (not
    /// hard-coded constants).
    pub fn peak_rate_mbps(&self) -> f64 {
        match self {
            Standard::Dot11 => DsssRate::Dqpsk2M.rate_mbps(),
            Standard::Dot11b => DsssRate::Cck11M.rate_mbps(),
            Standard::Dot11a => OfdmRate::R54.rate_mbps(),
            Standard::Dot11n => wlan_mimo::mcs::peak_rate_mbps(),
        }
    }

    /// Channel bandwidth at the peak rate, in MHz.
    pub fn bandwidth_mhz(&self) -> f64 {
        match self {
            Standard::Dot11 => DsssRate::Dqpsk2M.bandwidth_mhz(),
            Standard::Dot11b => DsssRate::Cck11M.bandwidth_mhz(),
            Standard::Dot11a => OfdmRate::R54.bandwidth_mhz(),
            Standard::Dot11n => Bandwidth::Mhz40.mhz(),
        }
    }

    /// Peak spectral efficiency in bps/Hz — the paper's headline metric.
    pub fn spectral_efficiency(&self) -> f64 {
        match self {
            Standard::Dot11 => DsssRate::Dqpsk2M.spectral_efficiency(),
            Standard::Dot11b => DsssRate::Cck11M.spectral_efficiency(),
            Standard::Dot11a => OfdmRate::R54.spectral_efficiency(),
            // MCS 31 is always constructible; the fallback is its known
            // 600 Mbps / 40 MHz efficiency, keeping this total.
            Standard::Dot11n => HtMcs::new(31)
                .map(|mcs| mcs.spectral_efficiency(Bandwidth::Mhz40, GuardInterval::Short))
                .unwrap_or(15.0),
        }
    }

    /// One-line description of the enabling technology.
    pub fn technology(&self) -> &'static str {
        match self {
            Standard::Dot11 => "DSSS (Barker-11) / FHSS, DBPSK/DQPSK",
            Standard::Dot11b => "CCK codeword modulation",
            Standard::Dot11a => "OFDM, 48 carriers, BCC + QAM",
            Standard::Dot11n => "MIMO-OFDM, 4 streams, 40 MHz, LDPC/STBC/beamforming",
        }
    }
}

impl std::fmt::Display for Standard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_are_reproduced() {
        // Intro: "2 Mbps (802.11) to 11 Mbps (802.11b) and now to 54 Mbps
        // (802.11a/g) ... potentially as high as 600 Mbps".
        let rates: Vec<f64> = Standard::all().iter().map(|s| s.peak_rate_mbps()).collect();
        assert_eq!(rates, vec![2.0, 11.0, 54.0, 600.0]);
    }

    #[test]
    fn spectral_efficiency_ladder_matches_paper() {
        // 0.1 (Historical), 0.5 (CCK), 2.7 (OFDM), 15 (MIMO).
        let want = [0.1, 0.5, 2.7, 15.0];
        for (s, w) in Standard::all().iter().zip(want) {
            assert!(
                (s.spectral_efficiency() - w).abs() < 1e-9,
                "{s}: {} vs {w}",
                s.spectral_efficiency()
            );
        }
    }

    #[test]
    fn fivefold_increases() {
        // "representing yet again an approximately fivefold increase".
        let se: Vec<f64> = Standard::all()
            .iter()
            .map(|s| s.spectral_efficiency())
            .collect();
        for w in se.windows(2) {
            let ratio = w[1] / w[0];
            assert!((4.5..=6.5).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn chronological_order() {
        let years: Vec<u16> = Standard::all().iter().map(|s| s.year()).collect();
        for w in years.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
