//! The evolution tables — experiments E1 and E2.
//!
//! These functions regenerate, from the implemented PHYs, the quantitative
//! story the paper tells: data rate and spectral efficiency climbing
//! roughly fivefold with each generation.

use crate::standard::Standard;

/// One row of the evolution table.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolutionRow {
    /// The generation.
    pub standard: Standard,
    /// Ratification year.
    pub year: u16,
    /// Peak PHY rate in Mbps.
    pub peak_rate_mbps: f64,
    /// Channel bandwidth in MHz.
    pub bandwidth_mhz: f64,
    /// Spectral efficiency in bps/Hz.
    pub spectral_efficiency: f64,
    /// Ratio to the previous generation's spectral efficiency (1.0 for the
    /// first row).
    pub efficiency_gain: f64,
}

/// Builds the full evolution table.
///
/// # Examples
///
/// ```
/// let table = wlan_core::evolution::evolution_table();
/// assert_eq!(table.len(), 4);
/// assert!((table[3].spectral_efficiency - 15.0).abs() < 1e-9);
/// ```
pub fn evolution_table() -> Vec<EvolutionRow> {
    let mut rows = Vec::with_capacity(4);
    let mut prev_se: Option<f64> = None;
    for s in Standard::all() {
        let se = s.spectral_efficiency();
        rows.push(EvolutionRow {
            standard: s,
            year: s.year(),
            peak_rate_mbps: s.peak_rate_mbps(),
            bandwidth_mhz: s.bandwidth_mhz(),
            spectral_efficiency: se,
            efficiency_gain: prev_se.map_or(1.0, |p| se / p),
        });
        prev_se = Some(se);
    }
    rows
}

/// Formats the table as aligned text (what the E1/E2 benches print).
pub fn format_table(rows: &[EvolutionRow]) -> String {
    let mut out = String::from(
        "standard    year  rate_mbps  bw_mhz  bps_per_hz  gain\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:<5} {:>9.1} {:>7.0} {:>11.2} {:>5.1}x\n",
            r.standard.name(),
            r.year,
            r.peak_rate_mbps,
            r.bandwidth_mhz,
            r.spectral_efficiency,
            r.efficiency_gain,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_four_generations() {
        let t = evolution_table();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].standard, Standard::Dot11);
        assert_eq!(t[3].standard, Standard::Dot11n);
    }

    #[test]
    fn gains_chain_multiplicatively() {
        let t = evolution_table();
        let product: f64 = t.iter().map(|r| r.efficiency_gain).product();
        let direct = t[3].spectral_efficiency / t[0].spectral_efficiency;
        assert!((product - direct).abs() < 1e-9);
        // 0.1 → 15 bps/Hz is a 150× climb over the decade.
        assert!((direct - 150.0).abs() < 1e-6);
    }

    #[test]
    fn formatted_table_contains_all_rows() {
        let text = format_table(&evolution_table());
        for s in Standard::all() {
            assert!(text.contains(s.name()), "missing {s}");
        }
        assert_eq!(text.lines().count(), 5);
    }
}
