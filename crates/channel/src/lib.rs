//! Wireless channel models for the `wlan-evolve` simulator.
//!
//! These models stand in for the 2.4/5 GHz radio environment that the paper's
//! real systems operated in (see DESIGN.md, substitution table):
//!
//! - [`noise`] — complex AWGN at a specified SNR,
//! - [`fading`] — flat Rayleigh/Ricean block fading with optional Jakes
//!   Doppler time evolution,
//! - [`multipath`] — tapped-delay-line frequency-selective channels with
//!   exponential power-delay profiles (TGn-model-like presets),
//! - [`pathloss`] — IEEE breakpoint log-distance path loss, noise floor and
//!   link-budget arithmetic,
//! - [`mimo`] — i.i.d. and Kronecker-correlated MIMO channel matrices,
//!   flat or per-subcarrier.
//!
//! Everything takes an explicit `&mut impl Rng` so Monte-Carlo experiments
//! are reproducible from a seed.
//!
//! # Examples
//!
//! ```
//! use wlan_math::rng::WlanRng;
//! use wlan_channel::noise::Awgn;
//! use wlan_math::Complex;
//!
//! let mut rng = WlanRng::seed_from_u64(7);
//! let tx = vec![Complex::ONE; 1000];
//! let rx = Awgn::from_snr_db(10.0).apply(&tx, &mut rng);
//! // Received power ≈ signal + noise power.
//! let p = wlan_math::complex::mean_power(&rx);
//! assert!((p - 1.1).abs() < 0.05);
//! ```

pub mod fading;
pub mod interference;
pub mod mimo;
pub mod multipath;
pub mod noise;
pub mod pathloss;

pub use fading::RayleighFading;
pub use mimo::MimoChannel;
pub use multipath::{MultipathChannel, PowerDelayProfile};
pub use noise::Awgn;
pub use pathloss::PathLossModel;
