//! Path loss, noise floor and link-budget arithmetic.
//!
//! The range experiments (E5, E8) convert distance to SNR with the IEEE
//! breakpoint model used by the 802.11 task groups: free-space (exponent 2)
//! out to a breakpoint distance, then a steeper indoor exponent beyond it,
//! plus optional log-normal shadowing.

use wlan_math::rng::Rng;

/// Boltzmann's constant times 290 K in dBm/Hz: the thermal noise density.
pub const THERMAL_NOISE_DBM_PER_HZ: f64 = -174.0;

/// Breakpoint log-distance path loss model.
///
/// # Examples
///
/// ```
/// use wlan_channel::PathLossModel;
///
/// let pl = PathLossModel::tgn_model_d();
/// // Path loss grows monotonically with distance.
/// assert!(pl.path_loss_db(50.0) > pl.path_loss_db(5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLossModel {
    /// Carrier frequency in Hz (sets the 1 m reference loss).
    carrier_hz: f64,
    /// Breakpoint distance in metres.
    breakpoint_m: f64,
    /// Exponent before the breakpoint.
    exp_before: f64,
    /// Exponent after the breakpoint.
    exp_after: f64,
    /// Log-normal shadowing standard deviation in dB (0 = none).
    shadowing_db: f64,
}

impl PathLossModel {
    /// Creates a custom breakpoint model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is nonpositive (except `shadowing_db`, which
    /// may be zero) .
    pub fn new(
        carrier_hz: f64,
        breakpoint_m: f64,
        exp_before: f64,
        exp_after: f64,
        shadowing_db: f64,
    ) -> Self {
        assert!(carrier_hz > 0.0, "carrier must be positive");
        assert!(breakpoint_m > 0.0, "breakpoint must be positive");
        assert!(exp_before > 0.0 && exp_after > 0.0, "exponents must be positive");
        assert!(shadowing_db >= 0.0, "shadowing must be nonnegative");
        PathLossModel {
            carrier_hz,
            breakpoint_m,
            exp_before,
            exp_after,
            shadowing_db,
        }
    }

    /// TGn model D (typical office): 2.4 GHz, 10 m breakpoint, exponents
    /// 2.0 / 3.5, 5 dB shadowing after the breakpoint (ignored before).
    pub fn tgn_model_d() -> Self {
        PathLossModel::new(2.4e9, 10.0, 2.0, 3.5, 5.0)
    }

    /// TGn model B (residential): 5 m breakpoint.
    pub fn tgn_model_b() -> Self {
        PathLossModel::new(2.4e9, 5.0, 2.0, 3.5, 4.0)
    }

    /// Free-space at 5 GHz (for 802.11a outdoor comparisons).
    pub fn free_space_5ghz() -> Self {
        PathLossModel::new(5.2e9, 1e6, 2.0, 2.0, 0.0)
    }

    /// Free-space path loss at 1 m for this carrier (Friis).
    pub fn reference_loss_db(&self) -> f64 {
        // FSPL(d, f) = 20 log10(4π d f / c), at d = 1 m.
        let c = 299_792_458.0;
        20.0 * (4.0 * std::f64::consts::PI * self.carrier_hz / c).log10()
    }

    /// Median path loss in dB at `distance_m` metres (no shadowing).
    ///
    /// # Panics
    ///
    /// Panics if `distance_m <= 0`.
    pub fn path_loss_db(&self, distance_m: f64) -> f64 {
        assert!(distance_m > 0.0, "distance must be positive");
        let l0 = self.reference_loss_db();
        if distance_m <= self.breakpoint_m {
            l0 + 10.0 * self.exp_before * distance_m.log10()
        } else {
            l0 + 10.0 * self.exp_before * self.breakpoint_m.log10()
                + 10.0 * self.exp_after * (distance_m / self.breakpoint_m).log10()
        }
    }

    /// Path loss with a log-normal shadowing draw (applied only beyond the
    /// breakpoint, per the TGn convention).
    pub fn path_loss_shadowed_db(&self, distance_m: f64, rng: &mut impl Rng) -> f64 {
        let median = self.path_loss_db(distance_m);
        if distance_m <= self.breakpoint_m || self.shadowing_db == 0.0 {
            median
        } else {
            median + crate::noise::gaussian(rng) * self.shadowing_db
        }
    }
}

/// A transmit/receive link budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Combined antenna gains in dBi.
    pub antenna_gain_dbi: f64,
    /// Receiver noise figure in dB.
    pub noise_figure_db: f64,
    /// Receiver bandwidth in Hz.
    pub bandwidth_hz: f64,
}

impl LinkBudget {
    /// A typical 802.11 client: 15 dBm TX, 0 dBi antennas, 6 dB NF, 20 MHz.
    pub fn typical_wlan() -> Self {
        LinkBudget {
            tx_power_dbm: 15.0,
            antenna_gain_dbi: 0.0,
            noise_figure_db: 6.0,
            bandwidth_hz: 20e6,
        }
    }

    /// Receiver noise floor in dBm: `−174 + 10·log10(B) + NF`.
    pub fn noise_floor_dbm(&self) -> f64 {
        THERMAL_NOISE_DBM_PER_HZ + 10.0 * self.bandwidth_hz.log10() + self.noise_figure_db
    }

    /// Received power in dBm after the given path loss.
    pub fn rx_power_dbm(&self, path_loss_db: f64) -> f64 {
        self.tx_power_dbm + self.antenna_gain_dbi - path_loss_db
    }

    /// Median SNR in dB at a distance under a path-loss model.
    pub fn snr_at_distance_db(&self, model: &PathLossModel, distance_m: f64) -> f64 {
        self.rx_power_dbm(model.path_loss_db(distance_m)) - self.noise_floor_dbm()
    }

    /// Largest distance (by bisection) at which the median SNR still meets
    /// `required_snr_db`, searched in `[0.1, max_m]` metres. Returns `None`
    /// when even 0.1 m fails.
    pub fn range_for_snr_m(
        &self,
        model: &PathLossModel,
        required_snr_db: f64,
        max_m: f64,
    ) -> Option<f64> {
        let mut lo = 0.1;
        if self.snr_at_distance_db(model, lo) < required_snr_db {
            return None;
        }
        if self.snr_at_distance_db(model, max_m) >= required_snr_db {
            return Some(max_m);
        }
        let mut hi = max_m;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.snr_at_distance_db(model, mid) >= required_snr_db {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;

    #[test]
    fn reference_loss_matches_friis_at_2_4ghz() {
        // FSPL(1 m, 2.4 GHz) ≈ 40.05 dB.
        let pl = PathLossModel::tgn_model_d();
        assert!((pl.reference_loss_db() - 40.05).abs() < 0.1);
    }

    #[test]
    fn slope_changes_at_breakpoint() {
        let pl = PathLossModel::tgn_model_d();
        // Before breakpoint: 2.0 decades/decade → doubling adds ~6 dB.
        let before = pl.path_loss_db(8.0) - pl.path_loss_db(4.0);
        assert!((before - 6.02).abs() < 0.1, "before {before}");
        // After: 3.5 → doubling adds ~10.5 dB.
        let after = pl.path_loss_db(80.0) - pl.path_loss_db(40.0);
        assert!((after - 10.54).abs() < 0.1, "after {after}");
    }

    #[test]
    fn path_loss_is_continuous_at_breakpoint() {
        let pl = PathLossModel::tgn_model_d();
        let eps = 1e-6;
        let below = pl.path_loss_db(10.0 - eps);
        let above = pl.path_loss_db(10.0 + eps);
        assert!((below - above).abs() < 1e-3);
    }

    #[test]
    fn noise_floor_typical_value() {
        // −174 + 73 + 6 = −95 dBm for 20 MHz, NF 6 dB.
        let lb = LinkBudget::typical_wlan();
        assert!((lb.noise_floor_dbm() + 95.0).abs() < 0.1);
    }

    #[test]
    fn snr_decreases_with_distance() {
        let lb = LinkBudget::typical_wlan();
        let pl = PathLossModel::tgn_model_d();
        let mut prev = f64::INFINITY;
        for d in [1.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
            let snr = lb.snr_at_distance_db(&pl, d);
            assert!(snr < prev);
            prev = snr;
        }
    }

    #[test]
    fn range_search_is_consistent() {
        let lb = LinkBudget::typical_wlan();
        let pl = PathLossModel::tgn_model_d();
        let required = 20.0;
        let range = lb.range_for_snr_m(&pl, required, 1000.0).unwrap();
        let at_range = lb.snr_at_distance_db(&pl, range);
        assert!((at_range - required).abs() < 0.01, "snr at range {at_range}");
        // Lower requirement → longer range.
        let longer = lb.range_for_snr_m(&pl, 5.0, 1000.0).unwrap();
        assert!(longer > range);
    }

    #[test]
    fn impossible_requirement_returns_none() {
        let lb = LinkBudget::typical_wlan();
        let pl = PathLossModel::tgn_model_d();
        assert_eq!(lb.range_for_snr_m(&pl, 200.0, 1000.0), None);
    }

    #[test]
    fn shadowing_only_after_breakpoint() {
        let mut rng = WlanRng::seed_from_u64(31);
        let pl = PathLossModel::tgn_model_d();
        // Before breakpoint: deterministic.
        let a = pl.path_loss_shadowed_db(5.0, &mut rng);
        let b = pl.path_loss_shadowed_db(5.0, &mut rng);
        assert_eq!(a, b);
        // After: varies with σ = 5 dB.
        let draws: Vec<f64> = (0..2000)
            .map(|_| pl.path_loss_shadowed_db(50.0, &mut rng))
            .collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let sd = (draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws.len() as f64)
            .sqrt();
        assert!((sd - 5.0).abs() < 0.5, "shadowing σ {sd}");
        assert!((mean - pl.path_loss_db(50.0)).abs() < 0.5);
    }
}
