//! MIMO channel matrices.
//!
//! The "several-fold" range and rate gains the paper attributes to MIMO all
//! flow from the statistics of the channel matrix `H` (N_rx × N_tx). This
//! module draws i.i.d. Rayleigh and Kronecker-correlated realizations, both
//! flat and per-subcarrier (by pairing a [`crate::multipath`] delay profile
//! with every antenna pair).

use crate::multipath::{MultipathChannel, PowerDelayProfile};
use crate::noise::complex_gaussian;
use wlan_math::rng::Rng;
use wlan_math::{CMatrix, Complex};

/// A flat MIMO channel realization.
///
/// # Examples
///
/// ```
/// use wlan_math::rng::WlanRng;
/// use wlan_channel::MimoChannel;
///
/// let mut rng = WlanRng::seed_from_u64(9);
/// let ch = MimoChannel::iid_rayleigh(2, 2, &mut rng);
/// assert_eq!(ch.matrix().rows(), 2);
/// assert!(ch.capacity_bps_hz(10.0) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MimoChannel {
    h: CMatrix,
}

impl MimoChannel {
    /// Draws an `n_rx × n_tx` i.i.d. `CN(0, 1)` channel.
    ///
    /// # Panics
    ///
    /// Panics if either antenna count is zero.
    pub fn iid_rayleigh(n_rx: usize, n_tx: usize, rng: &mut impl Rng) -> Self {
        assert!(n_rx > 0 && n_tx > 0, "antenna counts must be positive");
        let mut h = CMatrix::zeros(n_rx, n_tx);
        for r in 0..n_rx {
            for c in 0..n_tx {
                h.set(r, c, complex_gaussian(rng));
            }
        }
        MimoChannel { h }
    }

    /// Draws a Kronecker-correlated channel `H = R_rx^{1/2}·H_w·R_tx^{1/2}`
    /// with exponential correlation `ρ^{|i−j|}` at both ends.
    ///
    /// Correlation is what separates the optimistic i.i.d. capacity numbers
    /// from what closely-spaced laptop antennas actually achieve.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `[0, 1)` or an antenna count is zero.
    pub fn kronecker(n_rx: usize, n_tx: usize, rho: f64, rng: &mut impl Rng) -> Self {
        assert!((0.0..1.0).contains(&rho), "correlation must be in [0, 1)");
        let w = MimoChannel::iid_rayleigh(n_rx, n_tx, rng);
        let r_rx_sqrt = exp_correlation_sqrt(n_rx, rho);
        let r_tx_sqrt = exp_correlation_sqrt(n_tx, rho);
        let h = &(&r_rx_sqrt * w.matrix()) * &r_tx_sqrt;
        MimoChannel { h }
    }

    /// Draws a Ricean MIMO channel with linear K-factor `k`:
    /// `H = √(K/(K+1))·H_LOS + √(1/(K+1))·H_w`, where the line-of-sight
    /// component is the rank-one all-ones matrix (boresight arrays).
    ///
    /// A strong LOS is *good* for SISO links but *bad* for spatial
    /// multiplexing: as K → ∞ the channel collapses to rank one and the
    /// extra streams have nowhere to go.
    ///
    /// # Panics
    ///
    /// Panics if `k < 0` or an antenna count is zero.
    pub fn ricean(n_rx: usize, n_tx: usize, k: f64, rng: &mut impl Rng) -> Self {
        assert!(k >= 0.0, "K-factor must be nonnegative");
        let w = MimoChannel::iid_rayleigh(n_rx, n_tx, rng);
        let los_amp = (k / (k + 1.0)).sqrt();
        let nlos_amp = (1.0 / (k + 1.0)).sqrt();
        let mut h = CMatrix::zeros(n_rx, n_tx);
        for r in 0..n_rx {
            for c in 0..n_tx {
                h.set(
                    r,
                    c,
                    Complex::from_re(los_amp) + w.matrix().get(r, c).scale(nlos_amp),
                );
            }
        }
        MimoChannel { h }
    }

    /// Wraps an explicit channel matrix.
    pub fn from_matrix(h: CMatrix) -> Self {
        MimoChannel { h }
    }

    /// The channel matrix `H` (N_rx × N_tx).
    pub fn matrix(&self) -> &CMatrix {
        &self.h
    }

    /// Receive antenna count.
    pub fn n_rx(&self) -> usize {
        self.h.rows()
    }

    /// Transmit antenna count.
    pub fn n_tx(&self) -> usize {
        self.h.cols()
    }

    /// Applies the channel to one vector of transmit symbols (one per TX
    /// antenna), without noise.
    ///
    /// # Panics
    ///
    /// Panics if `tx.len() != self.n_tx()`.
    pub fn apply(&self, tx: &[Complex]) -> Vec<Complex> {
        self.h.mul_vec(tx)
    }

    /// Open-loop MIMO capacity `log2 det(I + (ρ/N_tx)·H·Hᴴ)` in bps/Hz at
    /// the given SNR (dB), with equal power allocation.
    pub fn capacity_bps_hz(&self, snr_db: f64) -> f64 {
        let snr = wlan_math::special::db_to_lin(snr_db);
        let scale = snr / self.n_tx() as f64;
        let hh = &self.h * &self.h.hermitian();
        let m = hh.scale(scale).add_diagonal(1.0);
        log2_det_hermitian(&m)
    }

    /// SISO Shannon capacity at the same SNR, for comparison.
    pub fn siso_capacity_bps_hz(snr_db: f64) -> f64 {
        (1.0 + wlan_math::special::db_to_lin(snr_db)).log2()
    }
}

/// A frequency-selective MIMO channel: one tapped delay line per antenna
/// pair, all sharing a power-delay profile.
#[derive(Debug, Clone)]
pub struct MimoMultipathChannel {
    n_rx: usize,
    n_tx: usize,
    /// Row-major per-pair channels: `pair[r * n_tx + c]`.
    pairs: Vec<MultipathChannel>,
}

impl MimoMultipathChannel {
    /// Draws independent multipath realizations for every antenna pair.
    ///
    /// # Panics
    ///
    /// Panics if an antenna count is zero.
    pub fn realize(
        n_rx: usize,
        n_tx: usize,
        pdp: &PowerDelayProfile,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(n_rx > 0 && n_tx > 0, "antenna counts must be positive");
        let pairs = (0..n_rx * n_tx)
            .map(|_| MultipathChannel::realize(pdp, rng))
            .collect();
        MimoMultipathChannel { n_rx, n_tx, pairs }
    }

    /// Receive antenna count.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Transmit antenna count.
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// The tapped-delay-line channel from TX antenna `tx` to RX antenna `rx`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn pair(&self, rx: usize, tx: usize) -> &MultipathChannel {
        assert!(rx < self.n_rx && tx < self.n_tx, "antenna index out of range");
        &self.pairs[rx * self.n_tx + tx]
    }

    /// The per-subcarrier channel matrices for an `n_fft`-point OFDM system:
    /// element `k` is the `n_rx × n_tx` matrix at subcarrier `k`.
    pub fn frequency_response(&self, n_fft: usize) -> Vec<CMatrix> {
        let responses: Vec<Vec<Complex>> = self
            .pairs
            .iter()
            .map(|p| p.frequency_response(n_fft))
            .collect();
        (0..n_fft)
            .map(|k| {
                let mut m = CMatrix::zeros(self.n_rx, self.n_tx);
                for r in 0..self.n_rx {
                    for c in 0..self.n_tx {
                        m.set(r, c, responses[r * self.n_tx + c][k]);
                    }
                }
                m
            })
            .collect()
    }
}

/// Square root of the exponential correlation matrix `R_{ij} = ρ^{|i−j|}` via
/// eigen-free symmetric factorization (Cholesky, valid since R ≻ 0 for ρ<1).
fn exp_correlation_sqrt(n: usize, rho: f64) -> CMatrix {
    // Build R.
    let mut r = CMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            r.set(i, j, Complex::from_re(rho.powi((i as i32 - j as i32).abs())));
        }
    }
    // Real Cholesky: R = L·Lᵀ.
    let mut l = CMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = r.get(i, j).re;
            for k in 0..j {
                sum -= l.get(i, k).re * l.get(j, k).re;
            }
            if i == j {
                l.set(i, j, Complex::from_re(sum.max(0.0).sqrt()));
            } else {
                let d = l.get(j, j).re;
                l.set(i, j, Complex::from_re(if d > 0.0 { sum / d } else { 0.0 }));
            }
        }
    }
    l
}

/// `log2 det(M)` for a Hermitian positive-definite `M`, via LU-free
/// Cholesky-style elimination on the real diagonal.
fn log2_det_hermitian(m: &CMatrix) -> f64 {
    let n = m.rows();
    let mut a = m.clone();
    let mut logdet = 0.0;
    for k in 0..n {
        let pivot = a.get(k, k).re;
        if pivot <= 0.0 {
            return f64::NEG_INFINITY;
        }
        logdet += pivot.log2();
        for i in (k + 1)..n {
            let factor = a.get(i, k) / a.get(k, k);
            for j in k..n {
                let v = a.get(i, j) - factor * a.get(k, j);
                a.set(i, j, v);
            }
        }
    }
    logdet
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;

    #[test]
    fn iid_entries_have_unit_power() {
        let mut rng = WlanRng::seed_from_u64(50);
        let mut acc = 0.0;
        let trials = 5_000;
        for _ in 0..trials {
            let ch = MimoChannel::iid_rayleigh(2, 2, &mut rng);
            acc += ch.matrix().frobenius_norm().powi(2);
        }
        let per_entry = acc / (trials as f64 * 4.0);
        assert!((per_entry - 1.0).abs() < 0.05, "per-entry power {per_entry}");
    }

    #[test]
    fn capacity_grows_with_antennas() {
        // Ergodic capacity: 4×4 ≫ 2×2 ≫ 1×1 at high SNR.
        let mut rng = WlanRng::seed_from_u64(51);
        let snr_db = 20.0;
        let trials = 500;
        let mut caps = [0.0f64; 3];
        for _ in 0..trials {
            caps[0] += MimoChannel::iid_rayleigh(1, 1, &mut rng).capacity_bps_hz(snr_db);
            caps[1] += MimoChannel::iid_rayleigh(2, 2, &mut rng).capacity_bps_hz(snr_db);
            caps[2] += MimoChannel::iid_rayleigh(4, 4, &mut rng).capacity_bps_hz(snr_db);
        }
        for c in &mut caps {
            *c /= trials as f64;
        }
        assert!(caps[1] > 1.7 * caps[0], "2x2 {:.2} vs 1x1 {:.2}", caps[1], caps[0]);
        assert!(caps[2] > 1.7 * caps[1], "4x4 {:.2} vs 2x2 {:.2}", caps[2], caps[1]);
    }

    #[test]
    fn identity_channel_capacity_matches_shannon() {
        let h = CMatrix::identity(1);
        let ch = MimoChannel::from_matrix(h);
        let c = ch.capacity_bps_hz(10.0);
        let want = (1.0 + 10.0f64).log2();
        assert!((c - want).abs() < 1e-9);
        assert!((MimoChannel::siso_capacity_bps_hz(10.0) - want).abs() < 1e-12);
    }

    #[test]
    fn correlation_reduces_capacity() {
        let mut rng = WlanRng::seed_from_u64(52);
        let trials = 2_000;
        let mut c_iid = 0.0;
        let mut c_corr = 0.0;
        for _ in 0..trials {
            c_iid += MimoChannel::iid_rayleigh(4, 4, &mut rng).capacity_bps_hz(20.0);
            c_corr += MimoChannel::kronecker(4, 4, 0.9, &mut rng).capacity_bps_hz(20.0);
        }
        assert!(
            c_corr < 0.85 * c_iid,
            "high correlation should cost capacity: {c_corr} vs {c_iid}"
        );
    }

    #[test]
    fn kronecker_preserves_mean_power() {
        let mut rng = WlanRng::seed_from_u64(53);
        let trials = 5_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            acc += MimoChannel::kronecker(3, 3, 0.7, &mut rng)
                .matrix()
                .frobenius_norm()
                .powi(2);
        }
        let per_entry = acc / (trials as f64 * 9.0);
        assert!((per_entry - 1.0).abs() < 0.06, "per-entry power {per_entry}");
    }

    #[test]
    fn strong_los_collapses_multiplexing_capacity() {
        // The counter-intuitive MIMO fact: a clean line of sight (rank-1)
        // is the worst case for spatial multiplexing.
        let mut rng = WlanRng::seed_from_u64(56);
        let snr_db = 20.0;
        let trials = 2_000;
        let mut caps = Vec::new();
        for k in [0.0f64, 3.0, 30.0] {
            let mut acc = 0.0;
            for _ in 0..trials {
                acc += MimoChannel::ricean(4, 4, k, &mut rng).capacity_bps_hz(snr_db);
            }
            caps.push(acc / trials as f64);
        }
        assert!(caps[0] > caps[1] && caps[1] > caps[2], "caps {caps:?}");
        // K = 30 is nearly rank-1: capacity approaches the SISO+array-gain
        // value, far below the rich-scattering 4×4 number.
        assert!(caps[2] < 0.6 * caps[0], "caps {caps:?}");
    }

    #[test]
    fn ricean_preserves_mean_power() {
        let mut rng = WlanRng::seed_from_u64(57);
        let trials = 5_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            acc += MimoChannel::ricean(2, 2, 5.0, &mut rng)
                .matrix()
                .frobenius_norm()
                .powi(2);
        }
        let per_entry = acc / (trials as f64 * 4.0);
        assert!((per_entry - 1.0).abs() < 0.05, "per-entry power {per_entry}");
    }

    #[test]
    fn apply_matches_matrix_product() {
        let mut rng = WlanRng::seed_from_u64(54);
        let ch = MimoChannel::iid_rayleigh(3, 2, &mut rng);
        let tx = [Complex::ONE, Complex::I];
        let rx = ch.apply(&tx);
        assert_eq!(rx.len(), 3);
        let manual = ch.matrix().mul_vec(&tx);
        for (a, b) in rx.iter().zip(&manual) {
            assert!((*a - *b).norm() < 1e-15);
        }
    }

    #[test]
    fn multipath_mimo_shapes() {
        let mut rng = WlanRng::seed_from_u64(55);
        let pdp = PowerDelayProfile::tgn_model('D');
        let ch = MimoMultipathChannel::realize(2, 3, &pdp, &mut rng);
        let fr = ch.frequency_response(64);
        assert_eq!(fr.len(), 64);
        assert_eq!((fr[0].rows(), fr[0].cols()), (2, 3));
        // Subcarrier 0 response equals the tap sum of each pair.
        let sum0: Complex = ch.pair(1, 2).taps().iter().copied().sum();
        assert!((fr[0].get(1, 2) - sum0).norm() < 1e-9);
    }

    #[test]
    fn exp_correlation_sqrt_squares_to_r() {
        let l = exp_correlation_sqrt(3, 0.6);
        let r = &l * &l.transpose();
        for i in 0..3 {
            for j in 0..3 {
                let want = 0.6f64.powi((i as i32 - j as i32).abs());
                assert!((r.get(i, j).re - want).abs() < 1e-10, "({i},{j})");
            }
        }
    }
}
