//! Frequency-selective tapped-delay-line channels.
//!
//! Indoor WLAN channels spread energy over tens to hundreds of nanoseconds.
//! The standard modelling practice (followed by the 802.11 TGn channel
//! models) is a tapped delay line whose tap powers decay exponentially with
//! delay. At 20 MHz the sample period is 50 ns, so even "Model D" office
//! environments span several taps and notch individual OFDM subcarriers —
//! exactly the frequency selectivity that motivates per-subcarrier
//! equalization and interleaving.

use crate::noise::complex_gaussian;
use wlan_math::rng::Rng;
use wlan_math::Complex;

/// An exponential power-delay profile sampled at the system rate.
///
/// Profiles are normalized to unit total power so they do not change the
/// link budget, only the frequency selectivity.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerDelayProfile {
    /// Mean power of each tap (sums to 1).
    tap_powers: Vec<f64>,
}

impl PowerDelayProfile {
    /// Single-tap (flat fading) profile — "Model A" in TGn terms.
    pub fn flat() -> Self {
        PowerDelayProfile {
            tap_powers: vec![1.0],
        }
    }

    /// Exponential profile with the given RMS delay spread, sampled at
    /// `sample_rate_hz`. Taps are kept until 30 dB below the first.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive.
    pub fn exponential(rms_delay_spread_s: f64, sample_rate_hz: f64) -> Self {
        assert!(rms_delay_spread_s > 0.0, "delay spread must be positive");
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        let dt = 1.0 / sample_rate_hz;
        // For a sampled exponential profile p_k ∝ e^{−k·dt/τ}, τ equals the
        // RMS delay spread in the continuous limit.
        let tau = rms_delay_spread_s;
        let mut powers = Vec::new();
        let mut k = 0usize;
        loop {
            let p = (-(k as f64) * dt / tau).exp();
            if p < 1e-3 && k > 0 {
                break;
            }
            powers.push(p);
            k += 1;
            if k > 256 {
                break; // hard cap against pathological parameters
            }
        }
        let total: f64 = powers.iter().sum();
        for p in &mut powers {
            *p /= total;
        }
        PowerDelayProfile { tap_powers: powers }
    }

    /// TGn-like presets at 20 MHz sampling: RMS delay spreads of
    /// (A, B, C, D, E) = (flat, 15 ns, 30 ns, 50 ns, 100 ns).
    ///
    /// # Panics
    ///
    /// Panics (via `assert!`) on a letter outside A-E; use
    /// [`PowerDelayProfile::try_tgn_model`] when the letter is not a
    /// compile-time constant.
    pub fn tgn_model(model: char) -> Self {
        let profile = Self::try_tgn_model(model);
        assert!(profile.is_some(), "unknown TGn model '{model}' (expected A-E)");
        profile.unwrap_or_else(Self::flat)
    }

    /// Fallible form of [`PowerDelayProfile::tgn_model`]: `None` on a
    /// letter outside A-E (case-insensitive).
    pub fn try_tgn_model(model: char) -> Option<Self> {
        const FS: f64 = 20e6;
        match model.to_ascii_uppercase() {
            'A' => Some(Self::flat()),
            'B' => Some(Self::exponential(15e-9, FS)),
            'C' => Some(Self::exponential(30e-9, FS)),
            'D' => Some(Self::exponential(50e-9, FS)),
            'E' => Some(Self::exponential(100e-9, FS)),
            _ => None,
        }
    }

    /// Number of taps.
    pub fn num_taps(&self) -> usize {
        self.tap_powers.len()
    }

    /// Mean power of each tap.
    pub fn tap_powers(&self) -> &[f64] {
        &self.tap_powers
    }
}

/// One realization of a tapped-delay-line Rayleigh channel.
///
/// # Examples
///
/// ```
/// use wlan_math::rng::WlanRng;
/// use wlan_channel::{MultipathChannel, PowerDelayProfile};
/// use wlan_math::Complex;
///
/// let mut rng = WlanRng::seed_from_u64(5);
/// let pdp = PowerDelayProfile::tgn_model('D');
/// let ch = MultipathChannel::realize(&pdp, &mut rng);
/// let rx = ch.filter(&[Complex::ONE; 80]);
/// assert_eq!(rx.len(), 80 + ch.num_taps() - 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultipathChannel {
    taps: Vec<Complex>,
}

impl MultipathChannel {
    /// Draws an independent Rayleigh realization of each tap of `pdp`.
    pub fn realize(pdp: &PowerDelayProfile, rng: &mut impl Rng) -> Self {
        let taps = pdp
            .tap_powers
            .iter()
            .map(|&p| complex_gaussian(rng).scale(p.sqrt()))
            .collect();
        MultipathChannel { taps }
    }

    /// A channel with explicit taps (for tests and analytic cases).
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn from_taps(taps: Vec<Complex>) -> Self {
        assert!(!taps.is_empty(), "need at least one tap");
        MultipathChannel { taps }
    }

    /// An ideal (identity) channel.
    pub fn identity() -> Self {
        MultipathChannel {
            taps: vec![Complex::ONE],
        }
    }

    /// The tap gains.
    pub fn taps(&self) -> &[Complex] {
        &self.taps
    }

    /// Number of taps.
    pub fn num_taps(&self) -> usize {
        self.taps.len()
    }

    /// Linear convolution of the signal with the channel impulse response.
    ///
    /// Output length is `signal.len() + num_taps − 1`.
    pub fn filter(&self, signal: &[Complex]) -> Vec<Complex> {
        let n = signal.len();
        let l = self.taps.len();
        let mut out = vec![Complex::ZERO; n + l - 1];
        for (i, &s) in signal.iter().enumerate() {
            if s.norm_sqr() == 0.0 {
                continue;
            }
            for (j, &h) in self.taps.iter().enumerate() {
                out[i + j] += s * h;
            }
        }
        out
    }

    /// Frequency response at `num_bins` uniformly spaced frequencies
    /// (the subcarrier gains an OFDM receiver sees).
    pub fn frequency_response(&self, num_bins: usize) -> Vec<Complex> {
        (0..num_bins)
            .map(|k| {
                self.taps
                    .iter()
                    .enumerate()
                    .map(|(t, &h)| {
                        h * Complex::from_polar(
                            1.0,
                            -2.0 * std::f64::consts::PI * (k * t) as f64 / num_bins as f64,
                        )
                    })
                    .sum()
            })
            .collect()
    }

    /// Total channel power `Σ|h_t|²`.
    pub fn power(&self) -> f64 {
        self.taps.iter().map(|t| t.norm_sqr()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;

    #[test]
    fn pdp_is_normalized() {
        for model in ['A', 'B', 'C', 'D', 'E'] {
            let pdp = PowerDelayProfile::tgn_model(model);
            let total: f64 = pdp.tap_powers().iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "model {model}");
        }
    }

    #[test]
    fn longer_delay_spread_means_more_taps() {
        let b = PowerDelayProfile::tgn_model('B').num_taps();
        let d = PowerDelayProfile::tgn_model('D').num_taps();
        let e = PowerDelayProfile::tgn_model('E').num_taps();
        assert!(b <= d && d < e, "taps: B={b} D={d} E={e}");
        assert_eq!(PowerDelayProfile::flat().num_taps(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown TGn model")]
    fn unknown_model_panics() {
        let _ = PowerDelayProfile::tgn_model('Z');
    }

    #[test]
    fn realized_power_is_calibrated() {
        let mut rng = WlanRng::seed_from_u64(20);
        let pdp = PowerDelayProfile::tgn_model('E');
        let mean: f64 = (0..20_000)
            .map(|_| MultipathChannel::realize(&pdp, &mut rng).power())
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean channel power {mean}");
    }

    #[test]
    fn identity_channel_is_transparent() {
        let x: Vec<Complex> = (0..10).map(|i| Complex::new(i as f64, -1.0)).collect();
        assert_eq!(MultipathChannel::identity().filter(&x), x);
    }

    #[test]
    fn convolution_matches_manual() {
        let ch = MultipathChannel::from_taps(vec![Complex::ONE, Complex::from_re(0.5)]);
        let x = [Complex::from_re(1.0), Complex::from_re(2.0)];
        let y = ch.filter(&x);
        assert_eq!(y.len(), 3);
        assert!((y[0] - Complex::from_re(1.0)).norm() < 1e-12);
        assert!((y[1] - Complex::from_re(2.5)).norm() < 1e-12);
        assert!((y[2] - Complex::from_re(1.0)).norm() < 1e-12);
    }

    #[test]
    fn frequency_response_matches_fft_of_taps() {
        let mut rng = WlanRng::seed_from_u64(21);
        let pdp = PowerDelayProfile::tgn_model('D');
        let ch = MultipathChannel::realize(&pdp, &mut rng);
        let n = 64;
        let mut padded = ch.taps().to_vec();
        padded.resize(n, Complex::ZERO);
        let via_fft = wlan_math::fft::fft(&padded);
        let direct = ch.frequency_response(n);
        for (a, b) in via_fft.iter().zip(&direct) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn flat_channel_has_flat_response() {
        let ch = MultipathChannel::from_taps(vec![Complex::new(0.6, -0.8)]);
        let h = ch.frequency_response(16);
        for v in &h {
            assert!((*v - Complex::new(0.6, -0.8)).norm() < 1e-12);
        }
    }

    #[test]
    fn multipath_creates_frequency_selectivity() {
        let mut rng = WlanRng::seed_from_u64(22);
        let pdp = PowerDelayProfile::tgn_model('E');
        let ch = MultipathChannel::realize(&pdp, &mut rng);
        let h = ch.frequency_response(64);
        let mags: Vec<f64> = h.iter().map(|v| v.norm()).collect();
        let max = mags.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = mags.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(max / min > 1.5, "expected visible selectivity, got {max}/{min}");
    }
}
