//! Additive white Gaussian noise.

use wlan_math::rng::Rng;
use wlan_math::Complex;

/// Draws a standard normal (ziggurat; see [`wlan_math::ziggurat`]).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    rng.gen_gaussian()
}

/// Draws a circularly-symmetric complex Gaussian with unit total variance
/// (`E|z|² = 1`, i.e. 0.5 per real dimension).
pub fn complex_gaussian(rng: &mut impl Rng) -> Complex {
    Complex::new(
        gaussian(rng) * std::f64::consts::FRAC_1_SQRT_2,
        gaussian(rng) * std::f64::consts::FRAC_1_SQRT_2,
    )
}

/// An AWGN channel with fixed noise power.
///
/// The convention throughout the workspace is that transmit constellations
/// are normalized to unit average energy per sample, so "SNR" is the ratio of
/// unit signal power to the noise power this struct injects.
///
/// # Examples
///
/// ```
/// use wlan_math::rng::WlanRng;
/// use wlan_channel::Awgn;
/// use wlan_math::Complex;
///
/// let mut rng = WlanRng::seed_from_u64(1);
/// let noisy = Awgn::from_snr_db(20.0).apply(&[Complex::ONE; 4], &mut rng);
/// assert_eq!(noisy.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Awgn {
    noise_power: f64,
}

impl Awgn {
    /// Channel whose noise power is `1/snr_linear` (unit signal power).
    ///
    /// # Panics
    ///
    /// Panics if `snr_linear <= 0`.
    pub fn from_snr_linear(snr_linear: f64) -> Self {
        assert!(snr_linear > 0.0, "SNR must be positive");
        Awgn {
            noise_power: 1.0 / snr_linear,
        }
    }

    /// Channel at the given SNR in dB (unit signal power).
    pub fn from_snr_db(snr_db: f64) -> Self {
        Self::from_snr_linear(wlan_math::special::db_to_lin(snr_db))
    }

    /// Channel with an explicit noise power `N0` per complex sample.
    ///
    /// # Panics
    ///
    /// Panics if `noise_power < 0`.
    pub fn from_noise_power(noise_power: f64) -> Self {
        assert!(noise_power >= 0.0, "noise power must be nonnegative");
        Awgn { noise_power }
    }

    /// The injected noise power per complex sample.
    pub fn noise_power(&self) -> f64 {
        self.noise_power
    }

    /// Adds noise to a block of samples, returning the noisy copy.
    pub fn apply(&self, signal: &[Complex], rng: &mut impl Rng) -> Vec<Complex> {
        let sigma = self.noise_power.sqrt();
        signal
            .iter()
            .map(|&s| s + complex_gaussian(rng).scale(sigma))
            .collect()
    }

    /// Adds noise in place.
    pub fn apply_in_place(&self, signal: &mut [Complex], rng: &mut impl Rng) {
        let sigma = self.noise_power.sqrt();
        for s in signal.iter_mut() {
            *s += complex_gaussian(rng).scale(sigma);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;
    use wlan_math::complex::mean_power;

    #[test]
    fn gaussian_moments() {
        let mut rng = WlanRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn complex_gaussian_is_circular_unit_power() {
        let mut rng = WlanRng::seed_from_u64(43);
        let n = 100_000;
        let samples: Vec<Complex> = (0..n).map(|_| complex_gaussian(&mut rng)).collect();
        let power = mean_power(&samples);
        assert!((power - 1.0).abs() < 0.02, "power {power}");
        // Circularity: E[z²] ≈ 0 (not just E[|z|²]).
        let pseudo: Complex = samples.iter().map(|z| *z * *z).sum::<Complex>() / n as f64;
        assert!(pseudo.norm() < 0.02, "pseudo-variance {pseudo:?}");
    }

    #[test]
    fn noise_power_matches_requested_snr() {
        let mut rng = WlanRng::seed_from_u64(44);
        let clean = vec![Complex::ZERO; 100_000];
        for snr_db in [0.0, 10.0, 20.0] {
            let ch = Awgn::from_snr_db(snr_db);
            let noisy = ch.apply(&clean, &mut rng);
            let measured = mean_power(&noisy);
            let expected = wlan_math::special::db_to_lin(-snr_db);
            assert!(
                (measured / expected - 1.0).abs() < 0.05,
                "snr {snr_db}: measured {measured}, expected {expected}"
            );
        }
    }

    #[test]
    fn zero_noise_power_is_transparent() {
        let mut rng = WlanRng::seed_from_u64(45);
        let signal = vec![Complex::new(0.3, -0.7); 16];
        let out = Awgn::from_noise_power(0.0).apply(&signal, &mut rng);
        assert_eq!(out, signal);
    }

    #[test]
    fn in_place_matches_functional() {
        let signal = vec![Complex::ONE; 64];
        let ch = Awgn::from_snr_db(5.0);
        let mut a = signal.clone();
        ch.apply_in_place(&mut a, &mut WlanRng::seed_from_u64(9));
        let b = ch.apply(&signal, &mut WlanRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "SNR must be positive")]
    fn rejects_nonpositive_snr() {
        let _ = Awgn::from_snr_linear(0.0);
    }
}
