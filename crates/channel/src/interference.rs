//! Co-channel interference and hidden nodes.
//!
//! The unlicensed band the paper's history revolves around is shared: other
//! cells on the same channel raise the noise floor, and transmitters that
//! cannot hear each other (hidden nodes) collide at the receiver. This
//! module provides the SINR arithmetic for overlapping-BSS scenarios and a
//! Monte-Carlo hidden-node probability estimator.

use crate::pathloss::{LinkBudget, PathLossModel};
use wlan_math::rng::Rng;
use wlan_math::special::{db_to_lin, lin_to_db};

/// One co-channel interferer: distance from the victim receiver and the
/// fraction of time it transmits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interferer {
    /// Distance from the victim receiver in metres.
    pub distance_m: f64,
    /// Transmit duty cycle in `[0, 1]`.
    pub duty_cycle: f64,
}

/// Mean SINR (dB) of a link of length `signal_distance_m` in the presence
/// of co-channel interferers (mean interference = duty-weighted received
/// power; all stations use the same budget).
///
/// # Panics
///
/// Panics if a distance is nonpositive or a duty cycle is outside `[0, 1]`.
pub fn co_channel_sinr_db(
    budget: &LinkBudget,
    model: &PathLossModel,
    signal_distance_m: f64,
    interferers: &[Interferer],
) -> f64 {
    assert!(signal_distance_m > 0.0, "signal distance must be positive");
    let signal_dbm = budget.rx_power_dbm(model.path_loss_db(signal_distance_m));
    let noise_mw = db_to_lin(budget.noise_floor_dbm());
    let mut interference_mw = 0.0;
    for i in interferers {
        assert!(i.distance_m > 0.0, "interferer distance must be positive");
        assert!(
            (0.0..=1.0).contains(&i.duty_cycle),
            "duty cycle must be in [0, 1]"
        );
        let rx_dbm = budget.rx_power_dbm(model.path_loss_db(i.distance_m));
        interference_mw += i.duty_cycle * db_to_lin(rx_dbm);
    }
    signal_dbm - lin_to_db(noise_mw + interference_mw)
}

/// Monte-Carlo hidden-node probability: place two contending transmitters
/// uniformly in a disc of radius `cell_radius_m` around the receiver and
/// count how often they are mutually out of carrier-sense range
/// (`cs_range_m`) while both are within `cell_radius_m` of the receiver —
/// the configuration where CSMA fails and RTS/CTS earns its keep
/// (experiment E13's ablation).
///
/// # Panics
///
/// Panics if radii are nonpositive or `trials` is zero.
pub fn hidden_node_probability(
    cell_radius_m: f64,
    cs_range_m: f64,
    trials: usize,
    rng: &mut impl Rng,
) -> f64 {
    assert!(cell_radius_m > 0.0 && cs_range_m > 0.0, "radii must be positive");
    assert!(trials > 0, "need at least one trial");
    let mut hidden = 0usize;
    for _ in 0..trials {
        let a = random_point_in_disc(cell_radius_m, rng);
        let b = random_point_in_disc(cell_radius_m, rng);
        let d2 = (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2);
        if d2 > cs_range_m * cs_range_m {
            hidden += 1;
        }
    }
    hidden as f64 / trials as f64
}

fn random_point_in_disc(radius: f64, rng: &mut impl Rng) -> (f64, f64) {
    // Inverse-CDF radius for a uniform disc.
    let r = radius * rng.gen::<f64>().sqrt();
    let theta = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;

    fn env() -> (LinkBudget, PathLossModel) {
        (LinkBudget::typical_wlan(), PathLossModel::tgn_model_d())
    }

    #[test]
    fn no_interferers_matches_plain_snr() {
        let (budget, model) = env();
        let sinr = co_channel_sinr_db(&budget, &model, 20.0, &[]);
        let snr = budget.snr_at_distance_db(&model, 20.0);
        assert!((sinr - snr).abs() < 1e-9);
    }

    #[test]
    fn closer_interferer_hurts_more() {
        let (budget, model) = env();
        let far = co_channel_sinr_db(
            &budget,
            &model,
            20.0,
            &[Interferer {
                distance_m: 200.0,
                duty_cycle: 1.0,
            }],
        );
        let near = co_channel_sinr_db(
            &budget,
            &model,
            20.0,
            &[Interferer {
                distance_m: 30.0,
                duty_cycle: 1.0,
            }],
        );
        assert!(near < far - 10.0, "near {near} vs far {far}");
    }

    #[test]
    fn duty_cycle_scales_interference() {
        let (budget, model) = env();
        let make = |duty: f64| {
            co_channel_sinr_db(
                &budget,
                &model,
                20.0,
                &[Interferer {
                    distance_m: 50.0,
                    duty_cycle: duty,
                }],
            )
        };
        let idle = make(0.0);
        let busy = make(1.0);
        let half = make(0.5);
        assert!((idle - budget.snr_at_distance_db(&model, 20.0)).abs() < 1e-9);
        assert!(busy < half && half < idle);
        // Interference-limited regime: halving duty buys ~3 dB.
        assert!((half - busy - 3.0).abs() < 0.5, "half {half} busy {busy}");
    }

    #[test]
    fn a_loud_neighbour_kills_the_top_rate() {
        // Tie to the mesh rate table: a full-duty interferer at equal
        // distance drives SINR to ~0 dB, below any OFDM sensitivity.
        let (budget, model) = env();
        let sinr = co_channel_sinr_db(
            &budget,
            &model,
            30.0,
            &[Interferer {
                distance_m: 30.0,
                duty_cycle: 1.0,
            }],
        );
        assert!(sinr < 1.0, "equal-distance interferer leaves SINR {sinr}");
    }

    #[test]
    fn hidden_node_probability_shrinks_with_cs_range() {
        let mut rng = WlanRng::seed_from_u64(600);
        let p_short = hidden_node_probability(100.0, 100.0, 50_000, &mut rng);
        let p_long = hidden_node_probability(100.0, 200.0, 50_000, &mut rng);
        assert!(p_short > 0.2, "short CS range: {p_short}");
        assert!(p_long == 0.0, "CS covering the cell leaves none: {p_long}");
    }

    #[test]
    fn hidden_node_known_geometry() {
        // For cs = cell radius R, P(two uniform points in a disc of radius
        // R are farther than R apart) ≈ 0.4135 (known disc-line-picking
        // result).
        let mut rng = WlanRng::seed_from_u64(601);
        let p = hidden_node_probability(1.0, 1.0, 200_000, &mut rng);
        assert!((p - 0.4135).abs() < 0.01, "measured {p}");
    }
}
