//! Co-channel interference and hidden nodes.
//!
//! The unlicensed band the paper's history revolves around is shared: other
//! cells on the same channel raise the noise floor, and transmitters that
//! cannot hear each other (hidden nodes) collide at the receiver. This
//! module provides the SINR arithmetic for overlapping-BSS scenarios and a
//! Monte-Carlo hidden-node probability estimator.
//!
//! Both entry points are `try_*` functions returning a typed
//! [`WlanError`] on degenerate inputs (the PR 2 policy every other public
//! path follows): the city-scale simulator evaluates them once per
//! station per epoch inside a long campaign, and a malformed layout must
//! surface as a typed configuration error, never a panic mid-run.

use crate::pathloss::{LinkBudget, PathLossModel};
use wlan_math::rng::Rng;
use wlan_math::special::{db_to_lin, lin_to_db};
use wlan_math::WlanError;

/// One co-channel interferer: distance from the victim receiver and the
/// fraction of time it transmits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interferer {
    /// Distance from the victim receiver in metres.
    pub distance_m: f64,
    /// Transmit duty cycle in `[0, 1]`.
    pub duty_cycle: f64,
}

/// Mean SINR (dB) of a link of length `signal_distance_m` in the presence
/// of co-channel interferers (mean interference = duty-weighted received
/// power; all stations use the same budget).
///
/// # Errors
///
/// [`WlanError::InvalidConfig`] if a distance is nonpositive, infinite, or
/// NaN, or a duty cycle is outside `[0, 1]` (NaN included).
pub fn try_co_channel_sinr_db(
    budget: &LinkBudget,
    model: &PathLossModel,
    signal_distance_m: f64,
    interferers: &[Interferer],
) -> Result<f64, WlanError> {
    if !(signal_distance_m > 0.0 && signal_distance_m.is_finite()) {
        return Err(WlanError::InvalidConfig(
            "signal distance must be positive and finite",
        ));
    }
    let signal_dbm = budget.rx_power_dbm(model.path_loss_db(signal_distance_m));
    let noise_mw = db_to_lin(budget.noise_floor_dbm());
    let mut interference_mw = 0.0;
    for i in interferers {
        if !(i.distance_m > 0.0 && i.distance_m.is_finite()) {
            return Err(WlanError::InvalidConfig(
                "interferer distance must be positive and finite",
            ));
        }
        if !(0.0..=1.0).contains(&i.duty_cycle) {
            return Err(WlanError::InvalidConfig("duty cycle must be in [0, 1]"));
        }
        let rx_dbm = budget.rx_power_dbm(model.path_loss_db(i.distance_m));
        interference_mw += i.duty_cycle * db_to_lin(rx_dbm);
    }
    Ok(signal_dbm - lin_to_db(noise_mw + interference_mw))
}

/// Monte-Carlo hidden-node probability: place two contending transmitters
/// uniformly in a disc of radius `cell_radius_m` around the receiver and
/// count how often they are mutually out of carrier-sense range
/// (`cs_range_m`) while both are within `cell_radius_m` of the receiver —
/// the configuration where CSMA fails and RTS/CTS earns its keep
/// (experiment E13's ablation).
///
/// # Errors
///
/// [`WlanError::InvalidConfig`] if either radius is nonpositive, infinite,
/// or NaN, or `trials` is zero.
pub fn try_hidden_node_probability(
    cell_radius_m: f64,
    cs_range_m: f64,
    trials: usize,
    rng: &mut impl Rng,
) -> Result<f64, WlanError> {
    if !(cell_radius_m > 0.0 && cell_radius_m.is_finite()) {
        return Err(WlanError::InvalidConfig(
            "cell radius must be positive and finite",
        ));
    }
    if !(cs_range_m > 0.0 && cs_range_m.is_finite()) {
        return Err(WlanError::InvalidConfig(
            "carrier-sense range must be positive and finite",
        ));
    }
    if trials == 0 {
        return Err(WlanError::InvalidConfig("need at least one trial"));
    }
    let mut hidden = 0usize;
    for _ in 0..trials {
        let a = random_point_in_disc(cell_radius_m, rng);
        let b = random_point_in_disc(cell_radius_m, rng);
        let d2 = (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2);
        if d2 > cs_range_m * cs_range_m {
            hidden += 1;
        }
    }
    Ok(hidden as f64 / trials as f64)
}

fn random_point_in_disc(radius: f64, rng: &mut impl Rng) -> (f64, f64) {
    // Inverse-CDF radius for a uniform disc.
    let r = radius * rng.gen::<f64>().sqrt();
    let theta = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;

    fn env() -> (LinkBudget, PathLossModel) {
        (LinkBudget::typical_wlan(), PathLossModel::tgn_model_d())
    }

    fn sinr(
        budget: &LinkBudget,
        model: &PathLossModel,
        d: f64,
        interferers: &[Interferer],
    ) -> f64 {
        try_co_channel_sinr_db(budget, model, d, interferers).expect("valid geometry")
    }

    #[test]
    fn no_interferers_matches_plain_snr() {
        let (budget, model) = env();
        let s = sinr(&budget, &model, 20.0, &[]);
        let snr = budget.snr_at_distance_db(&model, 20.0);
        assert!((s - snr).abs() < 1e-9);
    }

    #[test]
    fn closer_interferer_hurts_more() {
        let (budget, model) = env();
        let far = sinr(
            &budget,
            &model,
            20.0,
            &[Interferer {
                distance_m: 200.0,
                duty_cycle: 1.0,
            }],
        );
        let near = sinr(
            &budget,
            &model,
            20.0,
            &[Interferer {
                distance_m: 30.0,
                duty_cycle: 1.0,
            }],
        );
        assert!(near < far - 10.0, "near {near} vs far {far}");
    }

    #[test]
    fn duty_cycle_scales_interference() {
        let (budget, model) = env();
        let make = |duty: f64| {
            sinr(
                &budget,
                &model,
                20.0,
                &[Interferer {
                    distance_m: 50.0,
                    duty_cycle: duty,
                }],
            )
        };
        let idle = make(0.0);
        let busy = make(1.0);
        let half = make(0.5);
        assert!((idle - budget.snr_at_distance_db(&model, 20.0)).abs() < 1e-9);
        assert!(busy < half && half < idle);
        // Interference-limited regime: halving duty buys ~3 dB.
        assert!((half - busy - 3.0).abs() < 0.5, "half {half} busy {busy}");
    }

    #[test]
    fn a_loud_neighbour_kills_the_top_rate() {
        // Tie to the mesh rate table: a full-duty interferer at equal
        // distance drives SINR to ~0 dB, below any OFDM sensitivity.
        let (budget, model) = env();
        let s = sinr(
            &budget,
            &model,
            30.0,
            &[Interferer {
                distance_m: 30.0,
                duty_cycle: 1.0,
            }],
        );
        assert!(s < 1.0, "equal-distance interferer leaves SINR {s}");
    }

    #[test]
    fn degenerate_inputs_are_typed_errors_not_panics() {
        let (budget, model) = env();
        let bad = |d: f64, interferers: &[Interferer]| {
            try_co_channel_sinr_db(&budget, &model, d, interferers).unwrap_err()
        };
        assert!(matches!(bad(0.0, &[]), WlanError::InvalidConfig(_)));
        assert!(matches!(bad(-5.0, &[]), WlanError::InvalidConfig(_)));
        assert!(matches!(bad(f64::NAN, &[]), WlanError::InvalidConfig(_)));
        assert!(matches!(bad(f64::INFINITY, &[]), WlanError::InvalidConfig(_)));
        let bad_i = |distance_m: f64, duty_cycle: f64| {
            bad(
                20.0,
                &[Interferer {
                    distance_m,
                    duty_cycle,
                }],
            )
        };
        assert!(matches!(bad_i(0.0, 0.5), WlanError::InvalidConfig(_)));
        assert!(matches!(bad_i(10.0, -0.1), WlanError::InvalidConfig(_)));
        assert!(matches!(bad_i(10.0, 1.5), WlanError::InvalidConfig(_)));
        assert!(matches!(bad_i(10.0, f64::NAN), WlanError::InvalidConfig(_)));
    }

    #[test]
    fn hidden_node_rejects_degenerate_geometry() {
        let mut rng = WlanRng::seed_from_u64(599);
        assert!(try_hidden_node_probability(0.0, 1.0, 10, &mut rng).is_err());
        assert!(try_hidden_node_probability(1.0, f64::NAN, 10, &mut rng).is_err());
        assert!(try_hidden_node_probability(1.0, 1.0, 0, &mut rng).is_err());
    }

    #[test]
    fn hidden_node_probability_shrinks_with_cs_range() {
        let mut rng = WlanRng::seed_from_u64(600);
        let p_short =
            try_hidden_node_probability(100.0, 100.0, 50_000, &mut rng).expect("valid");
        let p_long =
            try_hidden_node_probability(100.0, 200.0, 50_000, &mut rng).expect("valid");
        assert!(p_short > 0.2, "short CS range: {p_short}");
        assert!(p_long == 0.0, "CS covering the cell leaves none: {p_long}");
    }

    #[test]
    fn hidden_node_known_geometry() {
        // For cs = cell radius R, P(two uniform points in a disc of radius
        // R are farther than R apart) ≈ 0.4135 (known disc-line-picking
        // result).
        let mut rng = WlanRng::seed_from_u64(601);
        let p = try_hidden_node_probability(1.0, 1.0, 200_000, &mut rng).expect("valid");
        assert!((p - 0.4135).abs() < 0.01, "measured {p}");
    }
}
