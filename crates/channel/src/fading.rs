//! Flat fading processes.
//!
//! Rayleigh fading is the canonical model for the non-line-of-sight indoor
//! multipath the paper's range discussion assumes; Ricean fading adds a
//! line-of-sight component. [`JakesProcess`] evolves a coefficient in time
//! with the classical Clarke/Jakes autocorrelation `J₀(2π f_d τ)`.

use crate::noise::complex_gaussian;
use wlan_math::rng::Rng;
use wlan_math::special::bessel_j0;
use wlan_math::Complex;

/// Block Rayleigh fading: an i.i.d. `CN(0, 1)` gain per block.
///
/// # Examples
///
/// ```
/// use wlan_math::rng::WlanRng;
/// use wlan_channel::RayleighFading;
///
/// let mut rng = WlanRng::seed_from_u64(3);
/// let h = RayleighFading::unit().sample(&mut rng);
/// assert!(h.norm() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayleighFading {
    mean_power: f64,
}

impl RayleighFading {
    /// Fading with unit mean power (`E|h|² = 1`).
    pub fn unit() -> Self {
        RayleighFading { mean_power: 1.0 }
    }

    /// Fading with the given mean power.
    ///
    /// # Panics
    ///
    /// Panics if `mean_power <= 0`.
    pub fn with_mean_power(mean_power: f64) -> Self {
        assert!(mean_power > 0.0, "mean power must be positive");
        RayleighFading { mean_power }
    }

    /// Draws one complex channel gain.
    pub fn sample(&self, rng: &mut impl Rng) -> Complex {
        complex_gaussian(rng).scale(self.mean_power.sqrt())
    }

    /// Draws `n` independent gains (e.g. one per frame for block fading).
    pub fn sample_block(&self, n: usize, rng: &mut impl Rng) -> Vec<Complex> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

impl Default for RayleighFading {
    fn default() -> Self {
        RayleighFading::unit()
    }
}

/// Ricean fading with K-factor `k` (ratio of LOS to scattered power).
///
/// `k = 0` reduces to Rayleigh; `k → ∞` approaches a deterministic channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiceanFading {
    k_factor: f64,
    mean_power: f64,
}

impl RiceanFading {
    /// Unit-mean-power Ricean fading with the given linear K-factor.
    ///
    /// # Panics
    ///
    /// Panics if `k_factor < 0`.
    pub fn new(k_factor: f64) -> Self {
        assert!(k_factor >= 0.0, "K-factor must be nonnegative");
        RiceanFading {
            k_factor,
            mean_power: 1.0,
        }
    }

    /// Draws one complex channel gain.
    pub fn sample(&self, rng: &mut impl Rng) -> Complex {
        let los = (self.k_factor / (self.k_factor + 1.0)).sqrt();
        let nlos = (1.0 / (self.k_factor + 1.0)).sqrt();
        (Complex::from_re(los) + complex_gaussian(rng).scale(nlos)).scale(self.mean_power.sqrt())
    }
}

/// A time-correlated Rayleigh process with Jakes autocorrelation, realized
/// as a first-order autoregressive recursion
/// `h[t+1] = ρ·h[t] + √(1−ρ²)·w`, `ρ = J₀(2π·f_d·Δt)`.
///
/// This captures how quickly the channel decorrelates at a given Doppler
/// spread — the knob that decides whether closed-loop beamforming feedback
/// (experiment E7) is stale by the time it is applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JakesProcess {
    rho: f64,
    current: Complex,
}

impl JakesProcess {
    /// Creates a process for Doppler frequency `doppler_hz` sampled every
    /// `dt_s` seconds, drawing the initial state from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `doppler_hz < 0` or `dt_s <= 0`.
    pub fn new(doppler_hz: f64, dt_s: f64, rng: &mut impl Rng) -> Self {
        assert!(doppler_hz >= 0.0, "Doppler must be nonnegative");
        assert!(dt_s > 0.0, "sample interval must be positive");
        let rho = bessel_j0(2.0 * std::f64::consts::PI * doppler_hz * dt_s)
            .clamp(-0.999_999, 0.999_999);
        JakesProcess {
            rho,
            current: complex_gaussian(rng),
        }
    }

    /// The one-step correlation coefficient ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The current channel gain.
    pub fn gain(&self) -> Complex {
        self.current
    }

    /// Advances one step and returns the new gain.
    pub fn step(&mut self, rng: &mut impl Rng) -> Complex {
        let innovation = complex_gaussian(rng).scale((1.0 - self.rho * self.rho).sqrt());
        self.current = self.current.scale(self.rho) + innovation;
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;
    use wlan_math::complex::mean_power;

    #[test]
    fn rayleigh_mean_power_is_calibrated() {
        let mut rng = WlanRng::seed_from_u64(10);
        for target in [0.25, 1.0, 4.0] {
            let gains = RayleighFading::with_mean_power(target).sample_block(100_000, &mut rng);
            let p = mean_power(&gains);
            assert!((p / target - 1.0).abs() < 0.05, "target {target}, got {p}");
        }
    }

    #[test]
    fn rayleigh_envelope_distribution() {
        // P(|h|² < x) = 1 − e^{−x} for unit Rayleigh; check the median.
        let mut rng = WlanRng::seed_from_u64(11);
        let gains = RayleighFading::unit().sample_block(100_000, &mut rng);
        let below: usize = gains
            .iter()
            .filter(|h| h.norm_sqr() < std::f64::consts::LN_2)
            .count();
        let frac = below as f64 / gains.len() as f64;
        assert!((frac - 0.5).abs() < 0.01, "median check failed: {frac}");
    }

    #[test]
    fn ricean_k_zero_is_rayleigh_like() {
        let mut rng = WlanRng::seed_from_u64(12);
        let gains: Vec<Complex> = (0..50_000)
            .map(|_| RiceanFading::new(0.0).sample(&mut rng))
            .collect();
        let mean: Complex = gains.iter().sum::<Complex>() / gains.len() as f64;
        assert!(mean.norm() < 0.02, "zero-K Ricean must have zero mean");
        assert!((mean_power(&gains) - 1.0).abs() < 0.05);
    }

    #[test]
    fn ricean_large_k_concentrates_on_los() {
        let mut rng = WlanRng::seed_from_u64(13);
        let gains: Vec<Complex> = (0..20_000)
            .map(|_| RiceanFading::new(100.0).sample(&mut rng))
            .collect();
        let mean: Complex = gains.iter().sum::<Complex>() / gains.len() as f64;
        assert!((mean.re - 1.0).abs() < 0.05, "LOS mean should dominate");
        assert!((mean_power(&gains) - 1.0).abs() < 0.05, "unit mean power");
    }

    #[test]
    fn jakes_zero_doppler_is_static() {
        let mut rng = WlanRng::seed_from_u64(14);
        let mut p = JakesProcess::new(0.0, 1e-3, &mut rng);
        let h0 = p.gain();
        for _ in 0..100 {
            p.step(&mut rng);
        }
        // ρ = J0(0) clipped just below 1: nearly static.
        assert!((p.gain() - h0).norm() < 0.05);
    }

    #[test]
    fn jakes_high_doppler_decorrelates() {
        let mut rng = WlanRng::seed_from_u64(15);
        // fd·dt = 0.4 → J0(2π·0.4) ≈ −0.05: one step nearly decorrelates.
        let mut p = JakesProcess::new(400.0, 1e-3, &mut rng);
        assert!(p.rho().abs() < 0.1);
        // Stationarity: power stays near 1 over many steps.
        let mut acc = 0.0;
        let n = 50_000;
        for _ in 0..n {
            acc += p.step(&mut rng).norm_sqr();
        }
        assert!((acc / n as f64 - 1.0).abs() < 0.05);
    }

    #[test]
    fn jakes_measured_autocorrelation_matches_rho() {
        let mut rng = WlanRng::seed_from_u64(16);
        let mut p = JakesProcess::new(50.0, 1e-3, &mut rng);
        let rho = p.rho();
        let mut num = Complex::ZERO;
        let mut den = 0.0;
        let mut prev = p.gain();
        for _ in 0..200_000 {
            let next = p.step(&mut rng);
            num += next * prev.conj();
            den += prev.norm_sqr();
            prev = next;
        }
        let measured = (num / den).re;
        assert!((measured - rho).abs() < 0.02, "rho {rho} vs measured {measured}");
    }
}
