//! Numerical foundations for the `wlan-evolve` simulator.
//!
//! This crate provides the small, self-contained numerical toolkit that the
//! physical-layer crates build on:
//!
//! - [`Complex`] — double-precision complex arithmetic for baseband samples,
//! - [`fft`] — radix-2 FFT/IFFT used by the OFDM modulator/demodulator,
//! - [`matrix::CMatrix`] — dense complex matrices with inverse/Gram products
//!   for MIMO detection,
//! - [`svd`] — singular value decomposition for SVD transmit beamforming,
//! - [`special`] — Q-function, erfc and dB conversions for analytic BER/SNR
//!   work,
//! - [`stats`] — running statistics, percentiles and CCDF estimation used by
//!   the experiment harness (e.g. PAPR CCDFs),
//! - [`par`] — the deterministic scoped thread pool behind every parallel
//!   Monte-Carlo sweep (`WLAN_THREADS` knob; bit-identical at any thread
//!   count),
//! - [`ci`] — Wilson score and Hoeffding confidence bounds on Bernoulli
//!   tallies, the substrate for sequential early stopping and the CI
//!   half-widths campaign reports quote.
//!
//! # Examples
//!
//! ```
//! use wlan_math::{Complex, fft};
//!
//! // A pure tone occupies a single FFT bin.
//! let n = 64;
//! let tone: Vec<Complex> = (0..n)
//!     .map(|k| Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * 3.0 * k as f64 / n as f64))
//!     .collect();
//! let spectrum = fft::fft(&tone);
//! let peak = spectrum
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
//!     .map(|(i, _)| i);
//! assert_eq!(peak, Some(3));
//! ```

pub mod ci;
pub mod complex;
pub mod error;
pub mod fft;
pub mod matrix;
pub mod par;
pub mod rng;
pub mod special;
pub mod stats;
pub mod svd;
pub mod ziggurat;

pub use complex::Complex;
pub use error::WlanError;
pub use matrix::CMatrix;
pub use rng::{Rng, WlanRng};
