//! Confidence intervals for Monte-Carlo tallies.
//!
//! Every campaign in this workspace estimates a Bernoulli proportion (a
//! frame either errored or it didn't, a sample point is either covered or
//! it isn't) by counting `k` successes in `n` trials. This module turns
//! those integer tallies into confidence intervals so sweeps can (a)
//! report *how sure* they are alongside the point estimate and (b) stop
//! sequentially as soon as the interval is tighter than a target
//! half-width, instead of burning a fixed worst-case trial count at every
//! point.
//!
//! Two bounds, with different contracts:
//!
//! - [`wilson`] — the Wilson score interval. Approximate (asymptotically
//!   nominal coverage) but tight, and well-behaved at the `k = 0` / `k = n`
//!   extremes where the naive Wald interval collapses to zero width. This
//!   is what campaign reports quote.
//! - [`hoeffding`] — a distribution-free bound from Hoeffding's
//!   inequality. Conservative (true coverage is at least the nominal level
//!   at *every* `n`, not just asymptotically) and its half-width is a pure
//!   function of `n`, which makes trial-count planning trivial:
//!   [`hoeffding_trials`] inverts it.
//!
//! Both are pure functions of integer tallies, so any stopping rule built
//! on them is deterministic: a resumed campaign that reaches the same
//! `(k, n)` makes exactly the same stop/continue decision as an
//! uninterrupted one (the bit-identical-resume guarantee of
//! `wlan-runner` leans on this).

/// A two-sided confidence interval on a proportion, clamped to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
}

impl Interval {
    /// Half the interval width — the "± this much" a report quotes.
    pub fn half_width(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// `true` when `p` lies inside the (closed) interval.
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }
}

/// The two-sided z-score for 95 % confidence (`Φ⁻¹(0.975)`).
pub const Z_95: f64 = 1.959963984540054;

/// Wilson score interval for a Bernoulli proportion: `k` successes in `n`
/// trials at z-score `z`.
///
/// Unlike the Wald interval it never collapses at `k = 0` or `k = n`
/// (the bound away from the boundary shrinks like `z²/n`, reflecting that
/// `n` clean trials genuinely bound the rate), and it stays inside
/// `[0, 1]` by construction (clamped against last-ulp rounding).
///
/// `n == 0` returns the full-width interval `[0, 1]`: zero trials carry
/// zero information about the proportion, so the only honest bound is
/// vacuous. (This keeps degenerate tallies — an empty resumed journal, a
/// point whose every trial was quarantined — finite instead of dividing
/// by zero, and no stopping rule can fire on it: the half-width is `0.5`,
/// above any meaningful target.)
///
/// # Panics
///
/// Panics if `k > n` or `z` is not positive and finite.
pub fn wilson(k: u64, n: u64, z: f64) -> Interval {
    assert!(k <= n, "successes cannot exceed trials");
    assert!(z.is_finite() && z > 0.0, "z-score must be positive and finite");
    if n == 0 {
        return Interval { lo: 0.0, hi: 1.0 };
    }
    let (k, n) = (k as f64, n as f64);
    let z2 = z * z;
    let denom = n + z2;
    let center = (k + z2 / 2.0) / denom;
    let half = z * (k * (n - k) / n + z2 / 4.0).sqrt() / denom;
    Interval {
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

/// [`wilson`] at 95 % confidence — the workspace's reporting default.
pub fn wilson95(k: u64, n: u64) -> Interval {
    wilson(k, n, Z_95)
}

/// Hoeffding two-sided half-width for the mean of `n` `[0, 1]`-bounded
/// draws at confidence `1 − delta`: `sqrt(ln(2/δ) / 2n)`.
///
/// Distribution-free and non-asymptotic: `P(|p̂ − p| ≥ hw) ≤ δ` for every
/// `n`, at the price of being wider than Wilson away from `p = 1/2`.
///
/// `n == 0` returns `f64::INFINITY` — the `n → 0` limit of the formula
/// and the honest answer (no trials, no bound). Clamped consumers like
/// [`hoeffding`] still produce the finite full-width interval.
///
/// # Panics
///
/// Panics if `delta` is outside `(0, 1)`.
pub fn hoeffding_half_width(n: u64, delta: f64) -> f64 {
    assert!(
        delta > 0.0 && delta < 1.0,
        "confidence parameter must be in (0, 1)"
    );
    if n == 0 {
        return f64::INFINITY;
    }
    ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// Hoeffding interval around the empirical proportion `k / n`, clamped to
/// `[0, 1]`.
///
/// `n == 0` returns the full-width interval `[0, 1]` (see [`wilson`] for
/// the rationale — zero trials admit only the vacuous bound).
///
/// # Panics
///
/// Panics if `k > n` or `delta` is outside `(0, 1)`.
pub fn hoeffding(k: u64, n: u64, delta: f64) -> Interval {
    assert!(k <= n, "successes cannot exceed trials");
    let hw = hoeffding_half_width(n, delta);
    if n == 0 {
        return Interval { lo: 0.0, hi: 1.0 };
    }
    let p = k as f64 / n as f64;
    Interval {
        lo: (p - hw).max(0.0),
        hi: (p + hw).min(1.0),
    }
}

/// Trials needed for a Hoeffding half-width of at most `target` at
/// confidence `1 − delta` — the planning inverse of
/// [`hoeffding_half_width`].
///
/// Always returns at least 1: a target so loose that zero trials would
/// satisfy the formula still needs one trial before
/// [`hoeffding_half_width`] is finite, and a plan of "run zero trials"
/// deadlocks any campaign that sizes its waves from this.
///
/// # Panics
///
/// Panics if `target` is not positive and finite or `delta` is outside
/// `(0, 1)`.
pub fn hoeffding_trials(target: f64, delta: f64) -> u64 {
    assert!(
        target.is_finite() && target > 0.0,
        "target half-width must be positive and finite"
    );
    assert!(
        delta > 0.0 && delta < 1.0,
        "confidence parameter must be in (0, 1)"
    );
    (((2.0 / delta).ln() / (2.0 * target * target)).ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, WlanRng};

    const TOL: f64 = 1e-12;

    // ---- pinned references ----------------------------------------------
    //
    // Computed independently from the closed-form Wilson/Hoeffding
    // expressions at z = Φ⁻¹(0.975). These pin the exact arithmetic: a
    // change here silently shifts every early-stopping decision and every
    // reported CI in the campaign layer.

    #[test]
    fn wilson_pinned_midrange() {
        let ci = wilson95(5, 50);
        assert!((ci.lo - 0.0434757649318904).abs() < TOL, "lo {}", ci.lo);
        assert!((ci.hi - 0.213602314374797).abs() < TOL, "hi {}", ci.hi);
        let ci = wilson95(25, 50);
        assert!((ci.lo - 0.366445143168286).abs() < TOL, "lo {}", ci.lo);
        assert!((ci.hi - 0.633554856831714).abs() < TOL, "hi {}", ci.hi);
        // Symmetry around 1/2 at k = n/2.
        assert!((ci.lo + ci.hi - 1.0).abs() < TOL);
    }

    #[test]
    fn wilson_k_zero_touches_zero_but_bounds_above() {
        let ci = wilson95(0, 10);
        assert_eq!(ci.lo, 0.0, "k=0 lower bound is exactly 0");
        assert!((ci.hi - 0.277532799862889).abs() < TOL, "hi {}", ci.hi);
        // Ten clean trials do NOT prove the rate is zero.
        assert!(ci.hi > 0.2);
    }

    #[test]
    fn wilson_k_equals_n_touches_one() {
        let ci = wilson95(10, 10);
        assert!((ci.lo - 0.722467200137111).abs() < TOL, "lo {}", ci.lo);
        assert_eq!(ci.hi, 1.0, "k=n upper bound is exactly 1");
        // Mirror of the k=0 case.
        let zero = wilson95(0, 10);
        assert!((ci.lo - (1.0 - zero.hi)).abs() < TOL);
    }

    #[test]
    fn wilson_single_trial_is_nearly_vacuous() {
        let ci0 = wilson95(0, 1);
        assert_eq!(ci0.lo, 0.0);
        assert!((ci0.hi - 0.793450685622763).abs() < TOL, "hi {}", ci0.hi);
        let ci1 = wilson95(1, 1);
        assert!((ci1.lo - 0.206549314377237).abs() < TOL, "lo {}", ci1.lo);
        assert_eq!(ci1.hi, 1.0);
    }

    #[test]
    fn wilson_small_n_interior() {
        let ci = wilson95(1, 3);
        assert!((ci.lo - 0.0614919447203962).abs() < TOL, "lo {}", ci.lo);
        assert!((ci.hi - 0.792340399197952).abs() < TOL, "hi {}", ci.hi);
    }

    #[test]
    fn hoeffding_pinned() {
        assert!((hoeffding_half_width(100, 0.05) - 0.135810151574062).abs() < TOL);
        assert!((hoeffding_half_width(1, 0.05) - 1.35810151574062).abs() < 1e-11);
        let ci = hoeffding(0, 100, 0.05);
        assert_eq!(ci.lo, 0.0);
        assert!((ci.hi - 0.135810151574062).abs() < TOL);
        // Planning inverse round-trips.
        let n = hoeffding_trials(0.01, 0.05);
        assert!(hoeffding_half_width(n, 0.05) <= 0.01);
        assert!(hoeffding_half_width(n - 1, 0.05) > 0.01);
    }

    #[test]
    fn width_shrinks_with_n_and_grows_with_confidence() {
        assert!(wilson95(10, 100).half_width() > wilson95(100, 1000).half_width());
        assert!(wilson(10, 100, 2.575).half_width() > wilson95(10, 100).half_width());
        assert!(hoeffding_half_width(400, 0.05) < hoeffding_half_width(100, 0.05));
        assert!(hoeffding_half_width(100, 0.01) > hoeffding_half_width(100, 0.05));
    }

    #[test]
    fn interval_helpers() {
        let ci = Interval { lo: 0.2, hi: 0.6 };
        assert!((ci.half_width() - 0.2).abs() < TOL);
        assert!(ci.contains(0.2) && ci.contains(0.4) && ci.contains(0.6));
        assert!(!ci.contains(0.19) && !ci.contains(0.61));
    }

    // ---- coverage property sweep ----------------------------------------

    /// Empirical coverage on seeded Bernoulli draws: Hoeffding must be at
    /// least nominal (it is a finite-sample guarantee), Wilson must sit
    /// near nominal (it is asymptotic; we allow 2 points of slack).
    #[test]
    fn coverage_at_least_nominal_on_seeded_bernoulli_draws() {
        let master = WlanRng::seed_from_u64(0xC1C0FFEE);
        for (case, &p) in [0.05f64, 0.3, 0.5, 0.9].iter().enumerate() {
            let (n, reps) = (400u64, 400u64);
            let mut wilson_hits = 0u64;
            let mut hoeffding_hits = 0u64;
            for rep in 0..reps {
                let mut rng = master.fork(case as u64).fork(rep);
                let k = (0..n).filter(|_| rng.gen_bool(p)).count() as u64;
                wilson_hits += wilson95(k, n).contains(p) as u64;
                hoeffding_hits += hoeffding(k, n, 0.05).contains(p) as u64;
            }
            let wilson_cov = wilson_hits as f64 / reps as f64;
            let hoeffding_cov = hoeffding_hits as f64 / reps as f64;
            assert!(
                hoeffding_cov >= 0.95,
                "Hoeffding coverage {hoeffding_cov} < nominal at p={p}"
            );
            assert!(
                wilson_cov >= 0.93,
                "Wilson coverage {wilson_cov} far below nominal at p={p}"
            );
        }
    }

    // ---- degenerate tallies ---------------------------------------------

    /// Zero trials carry zero information: both interval families return
    /// the documented full-width `[0, 1]` — finite bounds, no NaN, no
    /// division by zero — and no half-width target can fire on them.
    #[test]
    fn zero_trials_give_full_width_intervals() {
        for ci in [wilson95(0, 0), hoeffding(0, 0, 0.05)] {
            assert_eq!(ci.lo, 0.0);
            assert_eq!(ci.hi, 1.0);
            assert!(ci.lo.is_finite() && ci.hi.is_finite());
            assert_eq!(ci.half_width(), 0.5);
            assert!(ci.contains(0.0) && ci.contains(0.5) && ci.contains(1.0));
        }
        // The raw half-width is the n → 0 limit of the formula, and the
        // interval construction still clamps it to full width.
        assert_eq!(hoeffding_half_width(0, 0.05), f64::INFINITY);
    }

    /// The planning inverse never prescribes zero trials, even for
    /// targets loose enough that the raw formula rounds to zero.
    #[test]
    fn hoeffding_trials_is_at_least_one() {
        assert_eq!(hoeffding_trials(1e6, 0.05), 1);
        assert_eq!(hoeffding_trials(2.0, 0.5), 1);
        assert!(hoeffding_trials(0.01, 0.05) > 1);
    }

    // ---- precondition panics --------------------------------------------

    #[test]
    #[should_panic(expected = "cannot exceed trials")]
    fn wilson_k_above_n_rejected() {
        let _ = wilson95(5, 4);
    }

    #[test]
    #[should_panic(expected = "cannot exceed trials")]
    fn hoeffding_k_above_n_rejected() {
        let _ = hoeffding(1, 0, 0.05);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn hoeffding_bad_delta_rejected() {
        let _ = hoeffding_half_width(10, 1.5);
    }
}
