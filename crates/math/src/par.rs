//! Deterministic parallel execution for Monte-Carlo sweeps.
//!
//! Every heavy loop in this workspace is embarrassingly parallel: PER
//! sweeps over independent frame trials, mesh coverage over independent
//! sample points, MAC ensembles over independent seeds. This module is the
//! one scheduling substrate they all share, built so that **parallelism can
//! never change a result**:
//!
//! - Work items are indexed, and every item derives whatever randomness it
//!   needs from a stream forked off the master seed with a *stable* stream
//!   id (see [`crate::rng::WlanRng::fork`]) — never from "whichever
//!   generator state the previous item left behind".
//! - [`parallel_map`] returns results **in item order** regardless of which
//!   worker computed what, so reductions run in a fixed order and floating
//!   point sums cannot be reassociated by scheduling.
//! - The worker count (the `WLAN_THREADS` knob) therefore only affects
//!   wall-clock time: `WLAN_THREADS=1` runs the exact serial loop in item
//!   order, and any other count produces bit-identical output.
//!
//! The pool is scoped [`std::thread`] — no registry dependencies, no global
//! state, threads live only for the duration of one call. Work is handed
//! out item-by-item from an atomic cursor, which load-balances well when
//! items have uneven cost (e.g. LDPC trials next to DSSS trials).
//!
//! # The `WLAN_THREADS` knob
//!
//! | value | meaning |
//! |---|---|
//! | unset | use [`std::thread::available_parallelism`] |
//! | `1` | exact serial path: no threads spawned |
//! | `N > 1` | at most `N` workers |
//! | `0` / unparsable | warn once on stderr, fall back to the default |
//!
//! # Examples
//!
//! ```
//! use wlan_math::par;
//! use wlan_math::rng::{Rng, WlanRng};
//!
//! let master = WlanRng::seed_from_u64(42);
//! let items: Vec<u64> = (0..64).collect();
//! let sums = par::parallel_map(&items, |i, _| {
//!     let mut rng = master.fork(i as u64); // stable per-item stream
//!     (0..100).map(|_| rng.gen::<f64>()).sum::<f64>()
//! });
//! // Bit-identical at any thread count:
//! let serial = par::parallel_map_with_threads(1, &items, |i, _| {
//!     let mut rng = master.fork(i as u64);
//!     (0..100).map(|_| rng.gen::<f64>()).sum::<f64>()
//! });
//! assert_eq!(sums, serial);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Once, OnceLock};

/// Environment variable selecting the worker count.
pub const THREADS_ENV: &str = "WLAN_THREADS";

/// Pool-level observability counters (`par.calls` fan-out invocations,
/// `par.items` work items scheduled). Resolved once per process; a
/// disabled recorder makes each update a single relaxed load. Recording
/// is write-only — it can never influence scheduling or results (see
/// the `wlan_obs` determinism guarantee).
fn obs_counters() -> &'static (wlan_obs::Counter, wlan_obs::Counter) {
    static COUNTERS: OnceLock<(wlan_obs::Counter, wlan_obs::Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let obs = wlan_obs::global();
        (obs.counter("par.calls"), obs.counter("par.items"))
    })
}

/// The worker count the harness will use: `WLAN_THREADS` if set and sane,
/// otherwise the machine's available parallelism.
///
/// A value of `0` or an unparsable string warns once on stderr and falls
/// back to the default rather than silently doing something surprising.
pub fn num_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                static WARN: Once = Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "warning: ignoring {THREADS_ENV}={raw:?} (want an integer >= 1); \
                         using available parallelism"
                    );
                });
                available_parallelism()
            }
        },
        Err(_) => available_parallelism(),
    }
}

/// The machine's available parallelism (1 when it cannot be determined).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on the [`num_threads`] worker pool, returning
/// results in item order.
///
/// `f` receives `(index, &item)` and **must be a pure function of those**
/// (derive per-item RNG streams from the index, never from shared mutable
/// state); under that contract the output is bit-identical at any thread
/// count. Results are collected and reordered by index before returning,
/// so callers can fold them in a fixed order.
///
/// If `f` panics on any item, the panic is propagated to the caller after
/// the pool drains (first panicking worker wins).
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_map_with_threads(num_threads(), items, f)
}

/// [`parallel_map`] with an explicit worker count, bypassing the
/// `WLAN_THREADS` environment knob (used by the determinism tests to pin
/// thread counts without process-global environment races).
pub fn parallel_map_with_threads<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let (calls, scheduled) = obs_counters();
    calls.inc();
    scheduled.add(n as u64);
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        // The exact serial path: same calls, same order, no threads.
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => indexed.extend(part),
                // A worker panicked: surface the original payload to the
                // caller exactly as the serial loop would have.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, u)| u).collect()
}

/// Spawns `workers` scoped worker threads, each running `f(worker_index)`,
/// and joins them all before returning.
///
/// This is the raw fan-out primitive under [`parallel_map`], exposed for
/// schedulers (e.g. the `wlan-flow` streaming runtime) that need long-lived
/// workers sharing their own queues rather than an item cursor. `workers <=
/// 1` runs `f(0)` on the calling thread — the exact serial path, no threads
/// spawned — so callers inherit the `WLAN_THREADS=1` contract for free.
///
/// If any worker panics, the panic is propagated to the caller after the
/// pool drains (first spawned panicking worker wins). `f` is responsible
/// for making sure its sibling workers still terminate when one of them
/// unwinds — a worker that waits forever on a peer's progress must watch an
/// abort flag (see `wlan-flow`'s scheduler), or the join here would block.
pub fn run_workers<F>(workers: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if workers <= 1 {
        f(0);
        return;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || f(w))
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// Splits `0..len` into contiguous batches of at most `batch` elements.
///
/// Batch boundaries are a pure function of `(len, batch)` — independent of
/// the worker count — so a caller that reduces per-batch partials in batch
/// order gets bit-identical floating-point sums at any thread count.
///
/// Returns an empty vector when `len == 0`; a `batch` of `0` is treated
/// as `1`.
pub fn batches(len: usize, batch: usize) -> Vec<std::ops::Range<usize>> {
    let batch = batch.max(1);
    (0..len)
        .step_by(batch)
        .map(|start| start..(start + batch).min(len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, WlanRng};

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 8] {
            let out = parallel_map_with_threads(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn thread_count_cannot_change_results() {
        let master = WlanRng::seed_from_u64(7);
        let items: Vec<u64> = (0..40).collect();
        let run = |threads| {
            parallel_map_with_threads(threads, &items, |i, _| {
                let mut rng = master.fork(i as u64);
                (0..50).map(|_| rng.gen::<f64>()).sum::<f64>()
            })
        };
        let serial = run(1);
        for threads in [2, 3, 4, 16] {
            assert_eq!(run(threads), serial, "{threads} threads diverged");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map_with_threads(4, &none, |_, &x| x).is_empty());
        assert_eq!(parallel_map_with_threads(4, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        let out = std::panic::catch_unwind(|| {
            parallel_map_with_threads(2, &items, |i, _| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(out.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn batches_cover_exactly_once() {
        for (len, batch) in [(0usize, 8usize), (1, 8), (7, 8), (8, 8), (9, 8), (40, 8), (5, 0)] {
            let bs = batches(len, batch);
            let mut covered = Vec::new();
            for b in &bs {
                covered.extend(b.clone());
            }
            assert_eq!(covered, (0..len).collect::<Vec<_>>(), "len {len} batch {batch}");
        }
    }

    #[test]
    fn batches_are_thread_count_independent_by_construction() {
        // The partition depends only on (len, batch): identical inputs give
        // identical boundaries, which is what lets float reductions over
        // per-batch partials stay bit-identical at any worker count.
        assert_eq!(batches(20, 8), batches(20, 8));
        assert_eq!(batches(20, 8), vec![0..8, 8..16, 16..20]);
    }

    #[test]
    fn run_workers_runs_every_index_once() {
        use std::sync::Mutex;
        for workers in [1, 2, 5] {
            let seen = Mutex::new(Vec::new());
            run_workers(workers, |w| {
                seen.lock().unwrap().push(w);
            });
            let mut got = seen.into_inner().unwrap();
            got.sort_unstable();
            assert_eq!(got, (0..workers.max(1)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_workers_propagates_panics() {
        let out = std::panic::catch_unwind(|| {
            run_workers(3, |w| {
                if w == 1 {
                    panic!("worker down");
                }
            })
        });
        assert!(out.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map_with_threads(0, &items, |_, &x| x), vec![1, 2, 3]);
    }
}
