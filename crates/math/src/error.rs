//! The workspace-wide typed error substrate.
//!
//! Decode chains historically aborted on degenerate inputs (singular
//! channel matrices, truncated sample streams, mismatched block lengths).
//! Under fault injection those inputs are *expected*, so every fallible
//! stage reports a [`WlanError`] instead: the link simulator counts the
//! frame as an erasure and the sweep keeps running. The variants are
//! deliberately coarse — callers branch on "which stage gave up", not on
//! numeric detail, and the payload fields exist for diagnostics.

use crate::matrix::SingularMatrixError;
use std::fmt;

/// A typed, non-panicking failure anywhere in a TX→channel→RX chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WlanError {
    /// A channel matrix (or its Gram) is singular / numerically
    /// rank-deficient, so linear detection cannot separate the streams.
    SingularChannel,
    /// The receive stream ends before the advertised frame does
    /// (mid-frame truncation, dropped samples).
    FrameTruncated {
        /// Samples the frame format requires.
        needed: usize,
        /// Samples actually available.
        got: usize,
    },
    /// A block has the wrong length for the processing stage
    /// (interleaver block, codeword, antenna count).
    LengthMismatch {
        /// Length the stage expects.
        expected: usize,
        /// Length it was handed.
        got: usize,
    },
    /// A header/control field failed its integrity check (e.g. the OFDM
    /// SIGNAL parity) so the frame cannot be parsed further.
    SignalInvalid,
    /// A numeric input that must be finite (noise variance, channel
    /// coefficient) is NaN or infinite; the stage names the culprit.
    NonFinite(&'static str),
    /// A configuration value outside the supported envelope.
    InvalidConfig(&'static str),
}

impl fmt::Display for WlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WlanError::SingularChannel => {
                write!(f, "channel matrix is singular or rank-deficient")
            }
            WlanError::FrameTruncated { needed, got } => {
                write!(f, "frame truncated: need {needed} samples, got {got}")
            }
            WlanError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            WlanError::SignalInvalid => write!(f, "signal/header field failed validation"),
            WlanError::NonFinite(what) => write!(f, "non-finite input: {what}"),
            WlanError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for WlanError {}

impl From<SingularMatrixError> for WlanError {
    fn from(_: SingularMatrixError) -> Self {
        WlanError::SingularChannel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CMatrix, Complex};

    #[test]
    fn singular_matrix_converts() {
        let h = CMatrix::from_rows(&[
            &[Complex::ONE, Complex::ONE],
            &[Complex::ONE, Complex::ONE],
        ]);
        let err: WlanError = h.inverse().unwrap_err().into();
        assert_eq!(err, WlanError::SingularChannel);
    }

    #[test]
    fn display_is_informative() {
        let e = WlanError::FrameTruncated {
            needed: 400,
            got: 100,
        };
        let s = e.to_string();
        assert!(s.contains("400") && s.contains("100"), "{s}");
        assert!(WlanError::SingularChannel.to_string().contains("singular"));
    }
}
