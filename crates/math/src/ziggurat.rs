//! Ziggurat sampling for the standard normal (Marsaglia & Tsang, in
//! Doornik's corrected formulation).
//!
//! AWGN generation draws two normals per complex sample, and a PER sweep
//! draws tens of millions of them; the Box–Muller `ln`/`cos` pair was the
//! single largest cost in the whole link simulator. The ziggurat's fast
//! path is one `u64` draw, two table reads, one multiply and one compare
//! (~98.5 % of draws at 256 layers), several times cheaper.
//!
//! The layer tables are built once per process by bisecting the ziggurat
//! closure condition — no magic constants to trust — and the construction
//! is pure `f64` arithmetic, so the sampler is exactly reproducible: a
//! given RNG stream yields the same normals on every run and thread.

use crate::rng::Rng;
use crate::special::erfc;
use std::sync::OnceLock;

const LAYERS: usize = 256;

struct Tables {
    /// Layer edges, decreasing: `x[0] = v/f(r)` (virtual base width),
    /// `x[1] = r`, …, `x[LAYERS] ≈ 0`.
    x: [f64; LAYERS + 1],
    /// `f(x[i])` for the wedge test, increasing towards `f(0) = 1`.
    f: [f64; LAYERS + 1],
    /// Tail split point.
    r: f64,
}

/// Unnormalized standard-normal density `exp(-x²/2)`.
fn density(x: f64) -> f64 {
    (-0.5 * x * x).exp()
}

/// `∫_r^∞ exp(-x²/2) dx = √(π/2)·erfc(r/√2)`.
fn tail_area(r: f64) -> f64 {
    (std::f64::consts::PI / 2.0).sqrt() * erfc(r / std::f64::consts::SQRT_2)
}

/// Builds the layer edges for a candidate split point `r` and returns the
/// closure error: how far `f` overshoots 1 at the topmost layer. The
/// correct `r` makes the error zero, i.e. the 256 equal-area layers tile
/// the region under the density exactly.
fn build(r: f64, x: &mut [f64; LAYERS + 1]) -> f64 {
    let v = r * density(r) + tail_area(r);
    x[0] = v / density(r);
    x[1] = r;
    let mut fi = density(r);
    for i in 1..LAYERS {
        fi += v / x[i];
        if fi >= 1.0 {
            // Overshot before the top: pad the rest with 0 edges.
            for e in x.iter_mut().skip(i + 1) {
                *e = 0.0;
            }
            return fi - 1.0 + (LAYERS - 1 - i) as f64;
        }
        x[i + 1] = (-2.0 * fi.ln()).sqrt();
    }
    // After the loop fi = f(x[LAYERS-1]) + v/x[LAYERS-1], i.e. the height
    // the top layer would need; closure wants it to be exactly f(0) = 1.
    fi - 1.0
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        // Smaller r means a fatter base layer (larger v), so the stack
        // overshoots f = 1 early: err(r) decreases with r. Bisect keeping
        // err(lo) > 0 > err(hi), and settle on the hi side so the final
        // table never overshoots (all edges stay real).
        let mut x = [0.0; LAYERS + 1];
        let (mut lo, mut hi) = (3.0f64, 4.0f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if build(mid, &mut x) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let r = hi;
        build(r, &mut x);
        x[LAYERS] = 0.0;
        let mut f = [0.0; LAYERS + 1];
        for i in 0..=LAYERS {
            f[i] = density(x[i]);
        }
        Tables { x, f, r }
    })
}

/// One standard-normal draw.
///
/// Layer choice and the in-layer uniform share a single `u64` (8 low bits
/// pick the layer, the top 53 make the signed uniform); rejected
/// candidates (wedges, the tail) draw more, so the per-sample draw count
/// is data-dependent but fully determined by the stream.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let t = tables();
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        let u = (bits >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0;
        let x = u * t.x[i];
        if x.abs() < t.x[i + 1] {
            return x;
        }
        if i == 0 {
            // Base layer outside the rectangle: sample the tail beyond r
            // (Marsaglia's exponential-rejection scheme).
            let sign = if u < 0.0 { -1.0 } else { 1.0 };
            loop {
                let e1 = -(1.0 - rng.next_f64()).ln() / t.r;
                let e2 = -(1.0 - rng.next_f64()).ln();
                if e2 + e2 > e1 * e1 {
                    return sign * (t.r + e1);
                }
            }
        }
        // Wedge: exact accept/reject against the density.
        let y = t.f[i] + rng.next_f64() * (t.f[i + 1] - t.f[i]);
        if y < density(x) {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::WlanRng;

    #[test]
    fn layers_have_equal_area() {
        let t = tables();
        let v = t.r * density(t.r) + tail_area(t.r);
        // Base layer: rectangle up to r plus the tail.
        let base = t.r * t.f[1] + tail_area(t.r);
        assert!((base - v).abs() < 1e-12, "base {base} vs v {v}");
        for i in 1..LAYERS {
            let area = t.x[i] * (t.f[i + 1] - t.f[i]);
            assert!((area - v).abs() < 1e-9, "layer {i}: {area} vs {v}");
        }
        // Split point lands in the classic 256-layer neighbourhood.
        assert!((3.6..3.7).contains(&t.r), "r = {}", t.r);
    }

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = WlanRng::seed_from_u64(7);
        let n = 400_000;
        let (mut m1, mut m2, mut m4) = (0.0, 0.0, 0.0);
        let mut beyond3 = 0usize;
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            m1 += z;
            m2 += z * z;
            m4 += z * z * z * z;
            if z.abs() > 3.0 {
                beyond3 += 1;
            }
        }
        let nf = n as f64;
        assert!((m1 / nf).abs() < 0.01, "mean {}", m1 / nf);
        assert!((m2 / nf - 1.0).abs() < 0.01, "variance {}", m2 / nf);
        assert!((m4 / nf - 3.0).abs() < 0.1, "kurtosis {}", m4 / nf);
        // Tail mass beyond 3σ: 2·Q(3) ≈ 2.70e-3. The ziggurat's explicit
        // tail path must populate it (Box–Muller equivalence check).
        let frac = beyond3 as f64 / nf;
        assert!(
            (2.0e-3..3.4e-3).contains(&frac),
            "3σ tail mass {frac}"
        );
    }

    #[test]
    fn deep_tail_is_reachable() {
        // The tail sampler must produce values beyond r, not clip there.
        let mut rng = WlanRng::seed_from_u64(11);
        let mut max = 0.0f64;
        for _ in 0..2_000_000 {
            max = max.max(standard_normal(&mut rng));
        }
        assert!(max > 4.0, "max of 2M draws only {max}");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = WlanRng::seed_from_u64(99);
        let mut b = WlanRng::seed_from_u64(99);
        for _ in 0..10_000 {
            assert_eq!(
                standard_normal(&mut a).to_bits(),
                standard_normal(&mut b).to_bits()
            );
        }
    }
}
