//! Radix-2 fast Fourier transform.
//!
//! The OFDM PHYs use 64-point (20 MHz) and 128-point (40 MHz) transforms.
//! The workhorse is [`FftPlan`]: a reusable plan holding the bit-reversal
//! permutation and direct-angle twiddle tables for one transform length,
//! with in-place single and batched execution and no per-call allocation.
//! The free functions ([`fft`], [`ifft`], [`fft_in_place`], …) route
//! through a thread-local plan cache, so casual callers get the same
//! tables the batched receive kernels use.
//!
//! Twiddles are tabulated from the angle directly (`e^{-2πik/len}` per
//! stage) rather than grown by the historical repeated multiplication
//! `w *= wlen`, which accumulated one rounding error per butterfly column
//! and cost the round trip `ifft(fft(x))` about half a decimal digit; the
//! `plan_roundtrip_precision` test pins the tabulated accuracy at a bound
//! the recurrence measurably failed.

use crate::Complex;
use crate::WlanError;
use std::cell::RefCell;
use std::f64::consts::PI;
use std::rc::Rc;

/// Returns `true` when `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// A reusable radix-2 FFT plan for one transform length.
///
/// Holds the bit-reversal swap list and per-stage twiddle tables, so
/// executing a transform performs no allocation and no trigonometry. One
/// plan serves both directions: the inverse conjugates the tabulated
/// twiddles (exact) and applies the 1/N normalization.
///
/// # Examples
///
/// ```
/// use wlan_math::{Complex, fft::FftPlan};
///
/// let plan = FftPlan::new(8);
/// let mut data = vec![Complex::ONE; 8];
/// plan.fft_in_place(&mut data);
/// assert!((data[0].re - 8.0).abs() < 1e-12); // DC bin collects everything
/// assert!(data[1].norm() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation as an `(i, j)` swap list with `i < j`.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles `e^{-2πik/len}`, stage `len` at offset `len/2 - 1`
    /// holding `len/2` entries (total `n − 1`).
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for `n`-point transforms.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two; see [`FftPlan::try_new`] for
    /// the non-panicking variant.
    pub fn new(n: usize) -> Self {
        assert!(is_power_of_two(n), "FFT length {n} must be a power of two");
        let mut swaps = Vec::new();
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                swaps.push((i as u32, j as u32));
            }
        }
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            for k in 0..len / 2 {
                twiddles.push(Complex::from_polar(1.0, -2.0 * PI * k as f64 / len as f64));
            }
            len <<= 1;
        }
        FftPlan { n, swaps, twiddles }
    }

    /// Like [`FftPlan::new`], but a non-power-of-two length returns a typed
    /// [`WlanError`] instead of panicking — the form the fault-injected
    /// receive paths rely on when a truncation injector hands them an
    /// arbitrary-length sample buffer.
    pub fn try_new(n: usize) -> Result<Self, WlanError> {
        if !is_power_of_two(n) {
            return Err(WlanError::InvalidConfig(
                "FFT length must be a nonzero power of two",
            ));
        }
        Ok(FftPlan::new(n))
    }

    /// The transform length this plan executes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate length-… never: plans are ≥ 1 point.
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn permute(&self, data: &mut [Complex]) {
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
    }

    /// Danielson-Lanczos butterflies over one `n`-sample block; `inverse`
    /// conjugates the tabulated forward twiddles (exact, no extra tables).
    #[inline]
    fn butterflies(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        let mut len = 2;
        let mut stage = 0usize;
        while len <= n {
            let half = len / 2;
            let stage_tw = &self.twiddles[stage..stage + half];
            let mut i = 0;
            while i < n {
                for (k, &tw) in stage_tw.iter().enumerate() {
                    let w = if inverse { tw.conj() } else { tw };
                    let u = data[i + k];
                    let v = data[i + k + half] * w;
                    data[i + k] = u + v;
                    data[i + k + half] = u - v;
                }
                i += len;
            }
            stage += half;
            len <<= 1;
        }
    }

    fn execute(&self, data: &mut [Complex], inverse: bool) {
        if self.n <= 1 {
            return;
        }
        self.permute(data);
        self.butterflies(data, inverse);
        if inverse {
            let scale = 1.0 / self.n as f64;
            for v in data.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }

    /// In-place forward FFT of one `n`-sample block.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`; see
    /// [`FftPlan::try_fft_in_place`].
    pub fn fft_in_place(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "plan length mismatch");
        self.execute(data, false);
    }

    /// In-place inverse FFT (1/N normalized) of one `n`-sample block.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`; see
    /// [`FftPlan::try_ifft_in_place`].
    pub fn ifft_in_place(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "plan length mismatch");
        self.execute(data, true);
    }

    /// Like [`FftPlan::fft_in_place`], but a mis-sized block returns
    /// [`WlanError::LengthMismatch`] instead of panicking.
    pub fn try_fft_in_place(&self, data: &mut [Complex]) -> Result<(), WlanError> {
        if data.len() != self.n {
            return Err(WlanError::LengthMismatch {
                expected: self.n,
                got: data.len(),
            });
        }
        self.execute(data, false);
        Ok(())
    }

    /// Like [`FftPlan::ifft_in_place`], but a mis-sized block returns
    /// [`WlanError::LengthMismatch`] instead of panicking.
    pub fn try_ifft_in_place(&self, data: &mut [Complex]) -> Result<(), WlanError> {
        if data.len() != self.n {
            return Err(WlanError::LengthMismatch {
                expected: self.n,
                got: data.len(),
            });
        }
        self.execute(data, true);
        Ok(())
    }

    /// In-place forward FFT of a batch of contiguous `n`-sample blocks:
    /// `data` holds `data.len() / n` transforms back to back. Each block is
    /// transformed independently, in order, with exactly the ops of
    /// [`FftPlan::fft_in_place`] — batch and scalar execution are
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `self.len()`; see
    /// [`FftPlan::try_fft_batch`].
    pub fn fft_batch(&self, data: &mut [Complex]) {
        assert_eq!(data.len() % self.n, 0, "batch must be whole blocks");
        for block in data.chunks_exact_mut(self.n) {
            self.execute(block, false);
        }
    }

    /// In-place inverse FFT (1/N normalized per block) of a batch of
    /// contiguous `n`-sample blocks; bit-identical to per-block
    /// [`FftPlan::ifft_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `self.len()`; see
    /// [`FftPlan::try_ifft_batch`].
    pub fn ifft_batch(&self, data: &mut [Complex]) {
        assert_eq!(data.len() % self.n, 0, "batch must be whole blocks");
        for block in data.chunks_exact_mut(self.n) {
            self.execute(block, true);
        }
    }

    /// Like [`FftPlan::fft_batch`], but a ragged batch returns
    /// [`WlanError::LengthMismatch`] instead of panicking.
    pub fn try_fft_batch(&self, data: &mut [Complex]) -> Result<(), WlanError> {
        if !data.len().is_multiple_of(self.n) {
            return Err(WlanError::LengthMismatch {
                expected: data.len().next_multiple_of(self.n.max(1)),
                got: data.len(),
            });
        }
        for block in data.chunks_exact_mut(self.n) {
            self.execute(block, false);
        }
        Ok(())
    }

    /// Like [`FftPlan::ifft_batch`], but a ragged batch returns
    /// [`WlanError::LengthMismatch`] instead of panicking.
    pub fn try_ifft_batch(&self, data: &mut [Complex]) -> Result<(), WlanError> {
        if !data.len().is_multiple_of(self.n) {
            return Err(WlanError::LengthMismatch {
                expected: data.len().next_multiple_of(self.n.max(1)),
                got: data.len(),
            });
        }
        for block in data.chunks_exact_mut(self.n) {
            self.execute(block, true);
        }
        Ok(())
    }
}

// Thread-local plan cache, indexed by log2(n). Each `wlan_math::par`
// worker (and the caller's thread) builds its own plans on first use, so
// sweeps share nothing mutable across threads and every thread runs
// allocation-free after warm-up. 64 slots cover every usize power of two.
thread_local! {
    static PLAN_CACHE: RefCell<Vec<Option<Rc<FftPlan>>>> =
        RefCell::new(vec![None; usize::BITS as usize]);
}

/// A cached plan for `n` from this thread's plan table.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn cached_plan(n: usize) -> Rc<FftPlan> {
    assert!(is_power_of_two(n), "FFT length {n} must be a power of two");
    let slot = n.trailing_zeros() as usize;
    PLAN_CACHE.with(|cache| {
        // A failed borrow (re-entrant use from inside the cache closure —
        // not a path the workspace has) falls back to a fresh plan rather
        // than panicking.
        match cache.try_borrow_mut() {
            Ok(mut plans) => {
                if plans[slot].is_none() {
                    plans[slot] = Some(Rc::new(FftPlan::new(n)));
                }
                plans[slot].clone().unwrap_or_else(|| Rc::new(FftPlan::new(n)))
            }
            Err(_) => Rc::new(FftPlan::new(n)),
        }
    })
}

/// Like [`cached_plan`], but a non-power-of-two length returns a typed
/// [`WlanError`] instead of panicking.
pub fn try_cached_plan(n: usize) -> Result<Rc<FftPlan>, WlanError> {
    if !is_power_of_two(n) {
        return Err(WlanError::InvalidConfig(
            "FFT length must be a nonzero power of two",
        ));
    }
    Ok(cached_plan(n))
}

/// In-place forward FFT.
///
/// Computes `X[k] = Σ_n x[n]·e^{-2πi·kn/N}` without normalization.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two; see [`try_fft_in_place`].
pub fn fft_in_place(data: &mut [Complex]) {
    cached_plan(data.len()).fft_in_place(data);
}

/// In-place inverse FFT with 1/N normalization.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two; see [`try_ifft_in_place`].
pub fn ifft_in_place(data: &mut [Complex]) {
    cached_plan(data.len()).ifft_in_place(data);
}

/// Like [`fft_in_place`], but a non-power-of-two buffer — e.g. a sample
/// stream clipped by a `wlan-fault` truncation injector — returns a typed
/// [`WlanError`] instead of panicking, leaving `data` untouched.
pub fn try_fft_in_place(data: &mut [Complex]) -> Result<(), WlanError> {
    try_cached_plan(data.len())?.try_fft_in_place(data)
}

/// Like [`ifft_in_place`], but a non-power-of-two buffer returns a typed
/// [`WlanError`] instead of panicking, leaving `data` untouched.
pub fn try_ifft_in_place(data: &mut [Complex]) -> Result<(), WlanError> {
    try_cached_plan(data.len())?.try_ifft_in_place(data)
}

/// Forward FFT returning a new vector.
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
///
/// ```
/// use wlan_math::{Complex, fft};
/// let x = vec![Complex::ONE; 8];
/// let spec = fft::fft(&x);
/// assert!((spec[0].re - 8.0).abs() < 1e-12); // DC bin collects everything
/// assert!(spec[1].norm() < 1e-12);
/// ```
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_in_place(&mut buf);
    buf
}

/// Inverse FFT returning a new vector (1/N normalized).
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    ifft_in_place(&mut buf);
    buf
}

/// Cyclically shifts the spectrum so the DC bin is centred (`fftshift`).
///
/// Useful when mapping OFDM subcarriers indexed `-N/2..N/2` onto FFT bins.
pub fn fftshift(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    let half = n / 2;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&data[half..]);
    out.extend_from_slice(&data[..half]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_batch_sizes_on_one_plan_match_single_transforms() {
        // Regression pin for the shrinking-batch hazard on the cached
        // plan: one thread alternating batch sizes (8 → 2 → 5 → 1 → 8
        // blocks) through the same thread-local plan must produce
        // bit-identical spectra to fresh per-block transforms — a batch
        // call must never see scratch left over from a larger batch.
        use crate::rng::{Rng, WlanRng};
        let mut rng = WlanRng::seed_from_u64(55);
        let n = 64;
        let plan = cached_plan(n);
        for &blocks in &[8usize, 2, 5, 1, 8, 3, 2] {
            let mut batch: Vec<Complex> = (0..blocks * n)
                .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                .collect();
            let mut singles = batch.clone();
            plan.fft_batch(&mut batch);
            for block in singles.chunks_exact_mut(n) {
                FftPlan::new(n).fft_in_place(block);
            }
            for (i, (a, b)) in batch.iter().zip(&singles).enumerate() {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "re diverged at {i} ({blocks} blocks)");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "im diverged at {i} ({blocks} blocks)");
            }
        }
    }

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex::from_polar(1.0, -2.0 * PI * (k * t) as f64 / n as f64)
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let fast = fft(&x);
        let slow = naive_dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).norm() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn plan_roundtrip_precision() {
        // The precision pin for the tabulated twiddles: amplitude-1000
        // inputs round-trip to within 1e-12 at the two WLAN transform
        // sizes. The retired recurrence (`w *= wlen` per butterfly
        // column) measured 1.4e-12 – 3.3e-12 on exactly these inputs, so
        // this bound fails on the old tolerance and pins the fix.
        for n in [64usize, 128] {
            for s in 0..8 {
                let x: Vec<Complex> = (0..n)
                    .map(|i| {
                        let t = i as f64 + s as f64 * 17.0;
                        Complex::new((t * 0.37).sin() * 1e3, (t * 1.13).cos() * 1e3)
                    })
                    .collect();
                let worst = ifft(&fft(&x))
                    .iter()
                    .zip(&x)
                    .map(|(a, b)| (*a - *b).norm())
                    .fold(0.0f64, f64::max);
                assert!(worst <= 1e-12, "n={n} s={s}: round-trip error {worst:e}");
            }
        }
    }

    #[test]
    fn plan_single_and_batch_are_bit_identical() {
        let n = 64;
        let frames = 5;
        let plan = FftPlan::new(n);
        let x: Vec<Complex> = (0..n * frames)
            .map(|i| Complex::new((i as f64 * 0.29).sin(), (i as f64 * 0.83).cos()))
            .collect();
        let mut batch = x.clone();
        plan.fft_batch(&mut batch);
        for (f, block) in x.chunks(n).enumerate() {
            let mut single = block.to_vec();
            plan.fft_in_place(&mut single);
            for (k, (a, b)) in single.iter().zip(&batch[f * n..(f + 1) * n]).enumerate() {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "frame {f} bin {k} re");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "frame {f} bin {k} im");
            }
        }
        let mut ibatch = x.clone();
        plan.ifft_batch(&mut ibatch);
        for (f, block) in x.chunks(n).enumerate() {
            let mut single = block.to_vec();
            plan.ifft_in_place(&mut single);
            assert_eq!(single, ibatch[f * n..(f + 1) * n].to_vec(), "ifft frame {f}");
        }
    }

    #[test]
    fn plan_matches_free_functions_bitwise() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::from_polar(1.0, i as f64 * 0.51))
            .collect();
        let plan = FftPlan::new(128);
        let mut planned = x.clone();
        plan.fft_in_place(&mut planned);
        assert_eq!(planned, fft(&x));
    }

    #[test]
    fn try_variants_report_typed_errors() {
        assert_eq!(
            FftPlan::try_new(48).unwrap_err(),
            WlanError::InvalidConfig("FFT length must be a nonzero power of two")
        );
        let plan = FftPlan::new(8);
        let mut short = vec![Complex::ZERO; 6];
        assert_eq!(
            plan.try_fft_in_place(&mut short).unwrap_err(),
            WlanError::LengthMismatch { expected: 8, got: 6 }
        );
        assert_eq!(
            plan.try_ifft_batch(&mut short).unwrap_err(),
            WlanError::LengthMismatch { expected: 8, got: 6 }
        );
        let mut ragged = vec![Complex::ZERO; 12];
        assert!(plan.try_fft_batch(&mut ragged).is_err());
        // Free-function forms: a truncated buffer is a typed error and the
        // data is left untouched.
        let mut odd = vec![Complex::ONE; 60];
        let before = odd.clone();
        assert!(try_fft_in_place(&mut odd).is_err());
        assert!(try_ifft_in_place(&mut odd).is_err());
        assert_eq!(odd, before);
        let mut fine = vec![Complex::ONE; 64];
        assert!(try_fft_in_place(&mut fine).is_ok());
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::from_polar(1.0, i as f64))
            .collect();
        let time_energy: f64 = x.iter().map(|s| s.norm_sqr()).sum();
        let spec = fft(&x);
        let freq_energy: f64 = spec.iter().map(|s| s.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    fn single_tone_lands_in_single_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::from_polar(1.0, 2.0 * PI * (k0 * t) as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (k, v) in spec.iter().enumerate() {
            if k == k0 {
                assert!((v.norm() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.norm() < 1e-9);
            }
        }
    }

    #[test]
    fn length_one_is_identity() {
        let x = vec![Complex::new(2.0, 3.0)];
        assert_eq!(fft(&x), x);
        assert_eq!(ifft(&x), x);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = fft(&vec![Complex::ZERO; 48]);
    }

    #[test]
    fn fftshift_centres_dc() {
        let x: Vec<Complex> = (0..8).map(|i| Complex::from_re(i as f64)).collect();
        let sh = fftshift(&x);
        assert_eq!(sh[4], Complex::from_re(0.0));
        assert_eq!(sh[0], Complex::from_re(4.0));
    }
}
