//! Radix-2 fast Fourier transform.
//!
//! The OFDM PHYs use 64-point (20 MHz) and 128-point (40 MHz) transforms;
//! this module implements an iterative in-place radix-2 decimation-in-time
//! FFT for any power-of-two length, with the 1/N normalization on the
//! inverse transform (so `ifft(fft(x)) == x`).

use crate::Complex;
use std::f64::consts::PI;

/// Returns `true` when `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place forward FFT.
///
/// Computes `X[k] = Σ_n x[n]·e^{-2πi·kn/N}` without normalization.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    transform(data, -1.0);
}

/// In-place inverse FFT with 1/N normalization.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    transform(data, 1.0);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = *v / n;
    }
}

/// Forward FFT returning a new vector.
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
///
/// ```
/// use wlan_math::{Complex, fft};
/// let x = vec![Complex::ONE; 8];
/// let spec = fft::fft(&x);
/// assert!((spec[0].re - 8.0).abs() < 1e-12); // DC bin collects everything
/// assert!(spec[1].norm() < 1e-12);
/// ```
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_in_place(&mut buf);
    buf
}

/// Inverse FFT returning a new vector (1/N normalized).
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    ifft_in_place(&mut buf);
    buf
}

fn transform(data: &mut [Complex], sign: f64) {
    let n = data.len();
    assert!(is_power_of_two(n), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Danielson-Lanczos butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Cyclically shifts the spectrum so the DC bin is centred (`fftshift`).
///
/// Useful when mapping OFDM subcarriers indexed `-N/2..N/2` onto FFT bins.
pub fn fftshift(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    let half = n / 2;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&data[half..]);
    out.extend_from_slice(&data[..half]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex::from_polar(1.0, -2.0 * PI * (k * t) as f64 / n as f64)
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let fast = fft(&x);
        let slow = naive_dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).norm() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::from_polar(1.0, i as f64))
            .collect();
        let time_energy: f64 = x.iter().map(|s| s.norm_sqr()).sum();
        let spec = fft(&x);
        let freq_energy: f64 = spec.iter().map(|s| s.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    fn single_tone_lands_in_single_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::from_polar(1.0, 2.0 * PI * (k0 * t) as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (k, v) in spec.iter().enumerate() {
            if k == k0 {
                assert!((v.norm() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.norm() < 1e-9);
            }
        }
    }

    #[test]
    fn length_one_is_identity() {
        let x = vec![Complex::new(2.0, 3.0)];
        assert_eq!(fft(&x), x);
        assert_eq!(ifft(&x), x);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = fft(&vec![Complex::ZERO; 48]);
    }

    #[test]
    fn fftshift_centres_dc() {
        let x: Vec<Complex> = (0..8).map(|i| Complex::from_re(i as f64)).collect();
        let sh = fftshift(&x);
        assert_eq!(sh[4], Complex::from_re(0.0));
        assert_eq!(sh[0], Complex::from_re(4.0));
    }
}
