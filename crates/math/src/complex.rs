//! Double-precision complex numbers for baseband signal processing.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` in double precision.
///
/// This is the sample type of every baseband signal in the workspace. It
/// implements the usual field operations, scalar multiplication/division by
/// `f64`, and the handful of transcendental helpers the PHY chains need.
///
/// # Examples
///
/// ```
/// use wlan_math::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// assert_eq!(a.conj(), Complex::new(1.0, -2.0));
/// assert!((a.norm_sqr() - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// ```
    /// use wlan_math::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`Complex::norm`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaN components when `z == 0`, mirroring `f64` division.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Complex::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}i", self.re, if self.im < 0.0 { "-" } else { "+" }, self.im.abs())
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    // Complex division *is* multiplication by the reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + *b)
    }
}

/// Mean power (average of `|z|²`) of a block of samples.
///
/// Returns 0 for an empty slice.
///
/// ```
/// use wlan_math::{Complex, complex::mean_power};
/// let s = [Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
/// assert!((mean_power(&s) - 1.0).abs() < 1e-12);
/// ```
pub fn mean_power(samples: &[Complex]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / samples.len() as f64
}

/// Peak instantaneous power (max of `|z|²`) of a block of samples.
pub fn peak_power(samples: &[Complex]) -> f64 {
    samples.iter().map(|s| s.norm_sqr()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_hold_on_samples() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.5, 3.0);
        let c = Complex::new(2.0, 0.25);
        let d = (a + b) * c - (a * c + b * c);
        assert!(d.norm() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(3.0, 4.0);
        let b = Complex::new(-1.0, 2.0);
        let q = (a * b) / b;
        assert!((q - a).norm() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::new(-2.0, 1.0);
        let back = Complex::from_polar(z.norm(), z.arg());
        assert!((z - back).norm() < 1e-12);
    }

    #[test]
    fn conjugate_gives_real_product() {
        let z = Complex::new(0.3, -0.7);
        let p = z * z.conj();
        assert!(p.im.abs() < 1e-15);
        assert!((p.re - z.norm_sqr()).abs() < 1e-15);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-3.0, 4.0);
        let r = z.sqrt();
        assert!((r * r - z).norm() < 1e-10);
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = (Complex::I * std::f64::consts::PI).exp();
        assert!((z - Complex::new(-1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn mean_and_peak_power() {
        let s = [
            Complex::new(1.0, 0.0),
            Complex::new(0.0, 2.0),
            Complex::ZERO,
        ];
        assert!((mean_power(&s) - (1.0 + 4.0) / 3.0).abs() < 1e-12);
        assert!((peak_power(&s) - 4.0).abs() < 1e-12);
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn sum_over_iterators() {
        let s = [Complex::ONE; 4];
        let total: Complex = s.iter().sum();
        assert_eq!(total, Complex::new(4.0, 0.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Complex::new(1.0, -1.0)).is_empty());
        assert_eq!(format!("{:?}", Complex::new(1.0, -1.0)), "1-1i");
    }
}
