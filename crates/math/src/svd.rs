//! Singular value decomposition of complex matrices.
//!
//! Implemented with the one-sided Jacobi method, which is compact, robust and
//! plenty fast for the ≤ 4×4 channel matrices 802.11n beamforming works with.
//! The decomposition `A = U·diag(σ)·Vᴴ` is the mathematical core of
//! closed-loop transmit beamforming: `V` is the transmit steering matrix and
//! `σ` are the per-stream channel gains.

use crate::{CMatrix, Complex};

/// Result of [`svd`]: `a == u · diag(sigma) · vh`.
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    /// Left singular vectors, `m × k` with orthonormal columns.
    pub u: CMatrix,
    /// Singular values in descending order (length `k = min(m, n)`).
    pub sigma: Vec<f64>,
    /// Hermitian transpose of the right singular vectors, `k × n`.
    pub vh: CMatrix,
}

impl Svd {
    /// Reconstructs `U·diag(σ)·Vᴴ` (mainly for testing/validation).
    pub fn reconstruct(&self) -> CMatrix {
        let k = self.sigma.len();
        let mut us = CMatrix::zeros(self.u.rows(), k);
        for r in 0..self.u.rows() {
            for c in 0..k {
                us.set(r, c, self.u.get(r, c).scale(self.sigma[c]));
            }
        }
        &us * &self.vh
    }

    /// The right singular vectors `V` (`n × k`), i.e. `vh.hermitian()`.
    pub fn v(&self) -> CMatrix {
        self.vh.hermitian()
    }
}

/// Computes the thin SVD of an arbitrary complex matrix.
///
/// Returns `k = min(m, n)` singular values in descending order, with the
/// corresponding left/right singular vectors.
///
/// # Examples
///
/// ```
/// use wlan_math::{CMatrix, Complex, svd::svd};
///
/// let a = CMatrix::from_rows(&[
///     &[Complex::new(3.0, 0.0), Complex::ZERO],
///     &[Complex::ZERO, Complex::new(2.0, 0.0)],
/// ]);
/// let d = svd(&a);
/// assert!((d.sigma[0] - 3.0).abs() < 1e-9);
/// assert!((d.sigma[1] - 2.0).abs() < 1e-9);
/// ```
pub fn svd(a: &CMatrix) -> Svd {
    if a.rows() < a.cols() {
        // Work on the transpose and swap factors back.
        let d = svd(&a.hermitian());
        return Svd {
            u: d.vh.hermitian(),
            sigma: d.sigma,
            vh: d.u.hermitian(),
        };
    }

    let m = a.rows();
    let n = a.cols();
    // Columns of `work` converge to U·diag(σ); `v` accumulates rotations.
    let mut work = a.clone();
    let mut v = CMatrix::identity(n);

    let max_sweeps = 60;
    let tol = 1e-14 * a.frobenius_norm().max(1e-300);

    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // 2×2 Hermitian Gram block of columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = Complex::ZERO;
                for r in 0..m {
                    let cp = work.get(r, p);
                    let cq = work.get(r, q);
                    app += cp.norm_sqr();
                    aqq += cq.norm_sqr();
                    apq += cp.conj() * cq;
                }
                let r_off = apq.norm();
                off = off.max(r_off);
                if r_off <= tol * tol {
                    continue;
                }
                // Phase-align then apply the real Jacobi rotation.
                let theta = apq.arg();
                let phase = Complex::from_polar(1.0, -theta);
                let tau = (aqq - app) / (2.0 * r_off);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                for r in 0..m {
                    let cp = work.get(r, p);
                    let cq = work.get(r, q) * phase;
                    work.set(r, p, cp.scale(c) - cq.scale(s));
                    work.set(r, q, cp.scale(s) + cq.scale(c));
                }
                for r in 0..n {
                    let vp = v.get(r, p);
                    let vq = v.get(r, q) * phase;
                    v.set(r, p, vp.scale(c) - vq.scale(s));
                    v.set(r, q, vp.scale(s) + vq.scale(c));
                }
            }
        }
        if off <= tol * tol {
            break;
        }
    }

    // Extract singular values and normalize U columns.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|c| (0..m).map(|r| work.get(r, c).norm_sqr()).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&i, &j| norms[j].total_cmp(&norms[i]));

    let mut u = CMatrix::zeros(m, n);
    let mut vh = CMatrix::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (out_col, &src_col) in order.iter().enumerate() {
        let s = norms[src_col];
        sigma.push(s);
        for r in 0..m {
            let val = if s > 1e-300 {
                work.get(r, src_col) / s
            } else {
                Complex::ZERO
            };
            u.set(r, out_col, val);
        }
        for r in 0..n {
            vh.set(out_col, r, v.get(r, src_col).conj());
        }
    }

    Svd { u, sigma, vh }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_reconstructs(a: &CMatrix) {
        let d = svd(a);
        let back = d.reconstruct();
        assert!(
            (&back - a).frobenius_norm() < 1e-8 * a.frobenius_norm().max(1.0),
            "reconstruction error too large"
        );
        // Columns of U orthonormal (skip zero columns from rank deficiency).
        let k = d.sigma.len();
        for i in 0..k {
            for j in 0..k {
                if d.sigma[i] < 1e-12 || d.sigma[j] < 1e-12 {
                    continue;
                }
                let dot: Complex = (0..a.rows())
                    .map(|r| d.u.get(r, i).conj() * d.u.get(r, j))
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot.norm() - expect).abs() < 1e-8, "U not orthonormal");
            }
        }
        // Descending singular values.
        for w in d.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = CMatrix::from_rows(&[
            &[Complex::from_re(5.0), Complex::ZERO],
            &[Complex::ZERO, Complex::from_re(1.0)],
        ]);
        let d = svd(&a);
        assert!((d.sigma[0] - 5.0).abs() < 1e-10);
        assert!((d.sigma[1] - 1.0).abs() < 1e-10);
        assert_reconstructs(&a);
    }

    #[test]
    fn generic_complex_square() {
        let a = CMatrix::from_rows(&[
            &[Complex::new(1.0, 0.5), Complex::new(-0.3, 2.0), Complex::new(0.7, 0.0)],
            &[Complex::new(0.0, -1.0), Complex::new(2.0, 1.0), Complex::new(-1.5, 0.4)],
            &[Complex::new(3.0, 0.2), Complex::new(0.1, 0.1), Complex::new(0.9, -2.0)],
        ]);
        assert_reconstructs(&a);
    }

    #[test]
    fn tall_matrix() {
        let a = CMatrix::from_rows(&[
            &[Complex::new(1.0, 1.0), Complex::new(0.0, 0.5)],
            &[Complex::new(-2.0, 0.0), Complex::new(1.0, -1.0)],
            &[Complex::new(0.5, 0.5), Complex::new(2.0, 0.0)],
            &[Complex::new(0.0, -0.7), Complex::new(-1.0, 0.2)],
        ]);
        assert_reconstructs(&a);
    }

    #[test]
    fn wide_matrix() {
        let a = CMatrix::from_rows(&[
            &[Complex::new(1.0, 0.0), Complex::new(2.0, -1.0), Complex::new(0.0, 3.0)],
            &[Complex::new(-1.0, 0.5), Complex::new(0.0, 0.0), Complex::new(1.0, 1.0)],
        ]);
        let d = svd(&a);
        assert_eq!(d.sigma.len(), 2);
        assert_reconstructs(&a);
    }

    #[test]
    fn rank_deficient_matrix() {
        // Second column is a multiple of the first.
        let a = CMatrix::from_rows(&[
            &[Complex::from_re(1.0), Complex::from_re(2.0)],
            &[Complex::from_re(2.0), Complex::from_re(4.0)],
        ]);
        let d = svd(&a);
        assert!(d.sigma[1] < 1e-9, "second singular value should vanish");
        let back = d.reconstruct();
        assert!((&back - &a).frobenius_norm() < 1e-8);
    }

    #[test]
    fn singular_values_match_frobenius() {
        let a = CMatrix::from_rows(&[
            &[Complex::new(0.3, -1.2), Complex::new(2.0, 0.0)],
            &[Complex::new(1.0, 1.0), Complex::new(-0.5, 0.5)],
        ]);
        let d = svd(&a);
        let s2: f64 = d.sigma.iter().map(|s| s * s).sum();
        let f2 = a.frobenius_norm().powi(2);
        assert!((s2 - f2).abs() < 1e-9);
    }

    #[test]
    fn v_is_unitary() {
        let a = CMatrix::from_rows(&[
            &[Complex::new(1.0, 2.0), Complex::new(0.0, -1.0)],
            &[Complex::new(-0.5, 0.3), Complex::new(2.0, 2.0)],
        ]);
        let d = svd(&a);
        let v = d.v();
        let prod = &v.hermitian() * &v;
        assert!((&prod - &CMatrix::identity(2)).frobenius_norm() < 1e-8);
    }
}
