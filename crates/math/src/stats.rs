//! Statistics helpers for Monte-Carlo experiments.
//!
//! Provides [`RunningStats`] (Welford single-pass mean/variance),
//! percentile estimation, and [`Ccdf`] — the complementary CDF estimator
//! used for PAPR curves (experiment E10).

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use wlan_math::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    ///
    /// Contract: with fewer than two observations there is no spread
    /// evidence, so this returns `0.0` (never NaN from a `0/0`), which is
    /// what a report wants for a degenerate one-sample ensemble.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    ///
    /// Contract: merging an empty `other` is the identity (no `0/0` NaN
    /// can leak into the mean), merging into an empty `self` copies
    /// `other`, and merging two empties leaves an empty accumulator —
    /// so per-batch partials from a parallel sweep can always be folded
    /// without special-casing batches that saw no data.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// Estimates the `p`-quantile (0 ≤ p ≤ 1) by linear interpolation on the
/// sorted sample.
///
/// Contract: NaN observations are treated as missing data and ignored —
/// a placeholder entry from an aborted sweep must not poison a whole
/// delay report. Returns `None` when no finite-or-infinite observations
/// remain (empty slice, or all NaN).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` (including NaN `p`).
pub fn percentile(data: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "p must be within [0, 1]");
    let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Empirical complementary CDF: `P(X > x)` evaluated on a fixed grid.
///
/// Used for PAPR CCDF plots (experiment E10): feed per-symbol PAPR values
/// in dB and query how often a threshold is exceeded.
///
/// # Examples
///
/// ```
/// use wlan_math::stats::Ccdf;
/// let mut c = Ccdf::new(0.0, 10.0, 11);
/// for x in [1.0, 3.0, 5.0, 9.0] {
///     c.push(x);
/// }
/// assert!((c.eval(4.0) - 0.5).abs() < 1e-12); // 5.0 and 9.0 exceed 4.0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ccdf {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Ccdf {
    /// Creates a CCDF estimator with `bins` grid points spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins < 2`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "grid must have positive width");
        assert!(bins >= 2, "need at least two grid points");
        Ccdf {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records an observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        // counts[i] accumulates observations exceeding grid point i.
        let bins = self.counts.len();
        for i in 0..bins {
            if x > self.grid_point(i) {
                self.counts[i] += 1;
            }
        }
    }

    /// The `i`-th grid point.
    pub fn grid_point(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / (self.counts.len() - 1) as f64
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Evaluates `P(X > x)` at the nearest grid point at or above `x`.
    ///
    /// Returns 0 when no observations have been recorded.
    pub fn eval(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let bins = self.counts.len();
        let pos = (x - self.lo) / (self.hi - self.lo) * (bins - 1) as f64;
        let idx = pos.ceil().clamp(0.0, (bins - 1) as f64) as usize;
        self.counts[idx] as f64 / self.total as f64
    }

    /// Iterates `(grid_point, P(X > grid_point))` pairs.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let total = self.total.max(1) as f64;
        (0..self.counts.len()).map(move |i| (self.grid_point(i), self.counts[i] as f64 / total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [2.5, -1.0, 3.7, 0.0, 8.2, -4.4];
        let s: RunningStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -4.4);
        assert_eq!(s.max(), 8.2);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut merged: RunningStats = a_data.iter().copied().collect();
        let b: RunningStats = b_data.iter().copied().collect();
        merged.merge(&b);
        let all: RunningStats = a_data.iter().chain(&b_data).copied().collect();
        assert!((merged.mean() - all.mean()).abs() < 1e-12);
        assert!((merged.variance() - all.variance()).abs() < 1e-12);
        assert_eq!(merged.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [5.0, 7.0].iter().copied().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        assert!(!s.mean().is_nan() && !s.variance().is_nan());
    }

    #[test]
    fn merge_empty_into_empty_stays_empty_and_nan_free() {
        let mut s = RunningStats::new();
        s.merge(&RunningStats::new());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        // min/max keep their empty-identity sentinels, ready for more merges.
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn merge_into_empty_copies_other() {
        let other: RunningStats = [1.0, 3.0, 5.0].iter().copied().collect();
        let mut s = RunningStats::new();
        s.merge(&other);
        assert_eq!(s, other);
    }

    #[test]
    fn single_sample_variance_is_zero_not_nan() {
        let mut s = RunningStats::new();
        s.push(4.2);
        assert_eq!(s.count(), 1);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.mean(), 4.2);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(4.0));
        assert_eq!(percentile(&data, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_ignores_nan_observations() {
        // NaN entries are missing data, not poison: the quantile is taken
        // over the remaining observations.
        let data = [f64::NAN, 1.0, 2.0, f64::NAN, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.5), Some(2.5));
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(4.0));
        // All-NaN behaves like an empty sample.
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "p must be within")]
    fn percentile_rejects_nan_p() {
        let _ = percentile(&[1.0, 2.0], f64::NAN);
    }

    #[test]
    fn ccdf_monotone_nonincreasing() {
        let mut c = Ccdf::new(0.0, 12.0, 25);
        for i in 0..1000 {
            c.push((i % 13) as f64);
        }
        let pts: Vec<(f64, f64)> = c.points().collect();
        for w in pts.windows(2) {
            assert!(w[0].1 >= w[1].1, "CCDF must not increase");
        }
        assert_eq!(c.count(), 1000);
    }

    #[test]
    fn ccdf_extremes() {
        let mut c = Ccdf::new(0.0, 10.0, 11);
        c.push(5.0);
        assert_eq!(c.eval(0.0), 1.0);
        assert_eq!(c.eval(10.0), 0.0);
    }
}
