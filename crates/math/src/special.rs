//! Special functions and unit conversions used across the workspace.
//!
//! Provides the Gaussian Q-function / complementary error function for
//! analytic BER expressions, and the dB ↔ linear conversions every link
//! budget needs.

/// Complementary error function `erfc(x)`, accurate to ~1.2e-7.
///
/// Uses the Numerical-Recipes rational Chebyshev approximation, which is far
/// more than accurate enough for BER work (probabilities down to 1e-15 keep
/// several significant digits).
///
/// ```
/// use wlan_math::special::erfc;
/// assert!((erfc(0.0) - 1.0).abs() < 1e-7);
/// assert!(erfc(3.0) < 3e-5);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
        .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x) = 1 - erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Gaussian Q-function: `Q(x) = P(N(0,1) > x) = erfc(x/√2)/2`.
///
/// The workhorse of analytic BER expressions, e.g. BPSK over AWGN has
/// `BER = Q(√(2·Eb/N0))`.
///
/// ```
/// use wlan_math::special::q_function;
/// assert!((q_function(0.0) - 0.5).abs() < 1e-7);
/// ```
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Converts a linear power ratio to decibels: `10·log10(x)`.
///
/// Returns `-inf` for zero and NaN for negative input, mirroring `log10`.
pub fn lin_to_db(x: f64) -> f64 {
    10.0 * x.log10()
}

/// Converts decibels to a linear power ratio: `10^(x/10)`.
///
/// ```
/// use wlan_math::special::{db_to_lin, lin_to_db};
/// assert!((db_to_lin(3.0) - 1.995).abs() < 1e-2);
/// assert!((lin_to_db(db_to_lin(-7.5)) + 7.5).abs() < 1e-12);
/// ```
pub fn db_to_lin(x: f64) -> f64 {
    10f64.powf(x / 10.0)
}

/// Converts milliwatts to dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    lin_to_db(mw)
}

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    db_to_lin(dbm)
}

/// Bessel function of the first kind, order zero, `J₀(x)`.
///
/// Abramowitz & Stegun 9.4.1/9.4.3 polynomial approximations (|error| <
/// 1.6e-8), sufficient for the Jakes Doppler autocorrelation
/// `ρ = J₀(2π·f_d·τ)` used by the fading channel models.
///
/// ```
/// use wlan_math::special::bessel_j0;
/// assert!((bessel_j0(0.0) - 1.0).abs() < 1e-8);
/// assert!(bessel_j0(2.404_825).abs() < 1e-5); // first zero of J0
/// ```
pub fn bessel_j0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 8.0 {
        let y = x * x;
        let p1 = 57_568_490_574.0
            + y * (-13_362_590_354.0
                + y * (651_619_640.7
                    + y * (-11_214_424.18 + y * (77_392.330_17 + y * (-184.905_245_6)))));
        let p2 = 57_568_490_411.0
            + y * (1_029_532_985.0
                + y * (9_494_680.718 + y * (59_272.648_53 + y * (267.853_271_2 + y))));
        p1 / p2
    } else {
        let z = 8.0 / ax;
        let y = z * z;
        let xx = ax - 0.785_398_164;
        let p1 = 1.0
            + y * (-0.109_862_862_7e-2
                + y * (0.273_451_040_7e-4 + y * (-0.207_337_063_9e-5 + y * 0.209_388_721_1e-6)));
        let p2 = -0.156_249_999_5e-1
            + y * (0.143_048_876_5e-3
                + y * (-0.691_114_765_1e-5 + y * (0.762_109_516_1e-6 + y * (-0.934_935_152e-7))));
        (std::f64::consts::FRAC_2_PI / ax).sqrt() * (xx.cos() * p1 - z * xx.sin() * p2)
    }
}

/// Analytic BER of coherent BPSK over AWGN at a given `Eb/N0` (linear).
pub fn ber_bpsk_awgn(ebn0: f64) -> f64 {
    q_function((2.0 * ebn0).sqrt())
}

/// Analytic BER of Gray-coded M-QAM over AWGN at a given `Es/N0` (linear).
///
/// Uses the standard nearest-neighbour approximation; exact for 4-QAM.
///
/// # Panics
///
/// Panics if `m` is not a power of two ≥ 2.
pub fn ber_mqam_awgn(m: u32, esn0: f64) -> f64 {
    assert!(m >= 2 && m.is_power_of_two(), "M must be a power of two >= 2");
    let k = (m as f64).log2();
    if m == 2 {
        return q_function((2.0 * esn0).sqrt());
    }
    let sqrt_m = (m as f64).sqrt();
    // Square QAM symbol-error based approximation.
    let arg = (3.0 * esn0 / (m as f64 - 1.0)).sqrt();
    let pser = 4.0 * (1.0 - 1.0 / sqrt_m) * q_function(arg);
    (pser / k).min(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        // Reference values from standard tables.
        let cases = [(0.0, 1.0), (0.5, 0.4795), (1.0, 0.1573), (2.0, 0.00468)];
        for (x, want) in cases {
            assert!((erfc(x) - want).abs() < 1e-3, "erfc({x})");
        }
    }

    #[test]
    fn erfc_is_antisymmetric_about_one() {
        for x in [-2.0, -0.5, 0.3, 1.7] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-10);
        }
    }

    #[test]
    fn q_function_monotone_decreasing() {
        let mut prev = 1.0;
        for i in 0..60 {
            let x = i as f64 * 0.2;
            let q = q_function(x);
            assert!(q <= prev + 1e-15);
            assert!(q >= 0.0);
            prev = q;
        }
    }

    #[test]
    fn db_roundtrip() {
        for x in [0.001, 0.5, 1.0, 42.0, 1e6] {
            assert!((db_to_lin(lin_to_db(x)) - x).abs() / x < 1e-12);
        }
    }

    #[test]
    fn dbm_conversions() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(30.0) - 1000.0).abs() < 1e-9);
        assert!((mw_to_dbm(100.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn bpsk_ber_reference_points() {
        // Eb/N0 = 0 dB → BER ≈ 0.0786; 9.6 dB → ≈ 1e-5.
        assert!((ber_bpsk_awgn(1.0) - 0.0786).abs() < 1e-3);
        let ber = ber_bpsk_awgn(db_to_lin(9.6));
        assert!(ber > 2e-6 && ber < 2e-5);
    }

    #[test]
    fn qam_ber_ordering() {
        // Higher-order QAM needs more SNR for the same BER.
        let esn0 = db_to_lin(12.0);
        let b4 = ber_mqam_awgn(4, esn0);
        let b16 = ber_mqam_awgn(16, esn0);
        let b64 = ber_mqam_awgn(64, esn0);
        assert!(b4 < b16 && b16 < b64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn qam_ber_rejects_bad_m() {
        let _ = ber_mqam_awgn(12, 1.0);
    }

    #[test]
    fn bessel_j0_reference_values() {
        // Tabulated values of J0.
        let cases = [
            (0.0, 1.0),
            (1.0, 0.765_197_7),
            (2.0, 0.223_890_8),
            (5.0, -0.177_596_8),
            (10.0, -0.245_935_8),
        ];
        for (x, want) in cases {
            assert!((bessel_j0(x) - want).abs() < 1e-6, "J0({x})");
        }
        // Even function.
        assert!((bessel_j0(-3.3) - bessel_j0(3.3)).abs() < 1e-12);
    }
}
