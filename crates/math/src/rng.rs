//! Deterministic random numbers for the whole workspace.
//!
//! Every Monte-Carlo result in this repository — PER-vs-SNR curves, PAPR
//! CCDFs, mesh coverage maps, DCF throughput — must be reproducible from a
//! single `u64` seed with **zero external dependencies**. This module is the
//! substrate that guarantees it:
//!
//! - [`SplitMix64`] — the seed expander. A 64-bit seed is stretched into the
//!   256-bit xoshiro state so that even seeds `0, 1, 2, …` yield well-mixed,
//!   decorrelated states.
//! - [`WlanRng`] — the workhorse generator, **xoshiro256++** (Blackman &
//!   Vigna). Fast (one rotation, one add, four xors per draw), 2²⁵⁶−1
//!   period, and passes BigCrush.
//! - [`Rng`] — the sampling interface every simulation function takes as
//!   `&mut impl Rng`: uniform integers/floats, ranges, Bernoulli, and the
//!   radio-specific distributions (Box–Muller Gaussian, Rayleigh,
//!   exponential).
//! - [`WlanRng::fork`] — decorrelated sub-streams. A master seed forks one
//!   independent stream per link/node/experiment, so adding a draw to one
//!   stream never perturbs another (crucial when comparing scenarios).
//!
//! # Examples
//!
//! ```
//! use wlan_math::rng::{Rng, RngCore, WlanRng};
//!
//! let mut master = WlanRng::seed_from_u64(42);
//! // Independent per-link streams: draws on one never affect the other.
//! let mut link_a = master.fork(0);
//! let mut link_b = master.fork(1);
//! let a: f64 = link_a.gen();
//! let b: f64 = link_b.gen();
//! assert_ne!(a, b);
//! // Same seed, same stream id => bit-identical sequence.
//! assert_eq!(WlanRng::seed_from_u64(42).fork(0).next_u64(), master.fork(0).next_u64());
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64 (Steele, Lea & Flood): a tiny generator whose only job here is
/// expanding a 64-bit seed into well-mixed state words for [`WlanRng`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace generator: xoshiro256++ seeded through [`SplitMix64`].
///
/// `Clone` + `PartialEq` make it easy to snapshot and compare generator
/// states in tests; `fork` derives decorrelated sub-streams from the seed
/// (not from the current position, so forking is insensitive to how many
/// draws the parent has made).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WlanRng {
    s: [u64; 4],
    seed: u64,
}

impl WlanRng {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        WlanRng {
            s: [mix.next_u64(), mix.next_u64(), mix.next_u64(), mix.next_u64()],
            seed,
        }
    }

    /// The seed this generator (or fork) was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream for `stream_id`.
    ///
    /// The child seed depends only on the parent's *seed* and `stream_id`,
    /// never on the parent's draw position, so `master.fork(k)` is stable no
    /// matter when it is called. Forks nest: `master.fork(i).fork(j)` is a
    /// well-defined third stream.
    pub fn fork(&self, stream_id: u64) -> Self {
        // Mix (seed, stream_id) through SplitMix64 so neighbouring ids give
        // unrelated child seeds.
        let mut mix = SplitMix64::new(self.seed ^ 0xA076_1D64_78BD_642F);
        let base = mix.next_u64();
        let mut child = SplitMix64::new(base ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self::seed_from_u64(child.next_u64())
    }
}

impl RngCore for WlanRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step (Blackman & Vigna, 2019).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The raw bit source; everything else in [`Rng`] derives from this.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling interface over any [`RngCore`].
///
/// Simulation code takes `rng: &mut impl Rng`, exactly as it previously took
/// `Rng`; the method names (`gen`, `gen_range`, `gen_bool`) keep the
/// same shape so call sites read identically.
pub trait Rng: RngCore {
    /// A uniform `f64` in `[0, 1)` with full 53-bit mantissa resolution.
    fn next_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample of a primitive type (`f64`/`f32` in `[0,1)`, integers
    /// over their full range, `bool` fair coin).
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(self)
    }

    /// Uniform sample from an integer `a..b` / `a..=b` or float `a..b` range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.next_f64() < p
    }

    /// Standard normal via a 256-layer ziggurat (see [`crate::ziggurat`]).
    ///
    /// Roughly 4× faster than Box–Muller: most draws cost a single `u64`
    /// and avoid `ln`/`cos` entirely, which matters because AWGN synthesis
    /// dominates the Monte-Carlo hot path.
    fn gen_gaussian(&mut self) -> f64 {
        crate::ziggurat::standard_normal(self)
    }

    /// Rayleigh sample with scale `sigma` (mode). `E[X²] = 2σ²`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive.
    fn gen_rayleigh(&mut self, sigma: f64) -> f64 {
        assert!(sigma > 0.0, "Rayleigh scale must be positive");
        let u = 1.0 - self.next_f64();
        sigma * (-2.0 * u.ln()).sqrt()
    }

    /// Exponential sample with the given `rate` (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    fn gen_exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.next_f64();
        -u.ln() / rate
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Unbiased uniform integer below `n` (Lemire's multiply-shift rejection).
/// `n == 0` means the full 64-bit range.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    if n == 0 {
        return rng.next_u64();
    }
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut low = m as u64;
    if low < n {
        let threshold = n.wrapping_neg() % n;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types with a canonical "uniform" distribution for [`Rng::gen`].
pub trait SampleUniform: Sized {
    /// Draws one uniform sample.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Top 24 bits scaled by 2^-24.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleUniform for bool {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait UniformRange {
    /// Element type produced.
    type Output;
    /// Draws one sample from the range.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_uniform_range_int {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                // span = end - start + 1; 0 encodes the full u64 range.
                let span = (end as i128 - start as i128 + 1) as u64;
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for Range<f64> {
    type Output = f64;
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- golden values -------------------------------------------------
    //
    // These pin the exact bit streams. If any of them ever changes, every
    // seeded Monte-Carlo result in the repository silently changes with it,
    // so treat a failure here as a breaking change, not a test to update.

    #[test]
    fn golden_splitmix64_from_zero() {
        // Reference vector from the SplitMix64 paper/prng.di.unimi.it.
        let mut mix = SplitMix64::new(0);
        assert_eq!(mix.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(mix.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(mix.next_u64(), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn golden_splitmix64_from_seed_1234567() {
        let mut mix = SplitMix64::new(1234567);
        assert_eq!(mix.next_u64(), 0x599E_D017_FB08_FC85);
        assert_eq!(mix.next_u64(), 0x2C73_F084_5854_0FA5);
    }

    #[test]
    fn golden_xoshiro_seed_0() {
        // Matches rand_xoshiro's Xoshiro256PlusPlus::seed_from_u64(0) test
        // vector (5987356902031041503, ...), since both expand the seed with
        // SplitMix64.
        let mut rng = WlanRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0x5317_5D61_490B_23DF,
                0x61DA_6F3D_C380_D507,
                0x5C0F_DF91_EC9A_7BFC,
                0x02EE_BF8C_3BBE_5E1A,
            ]
        );
    }

    #[test]
    fn golden_xoshiro_seed_42() {
        let mut rng = WlanRng::seed_from_u64(42);
        let got: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![0xD076_4D4F_4476_689F, 0x519E_4174_576F_3791, 0xFBE0_7CFB_0C24_ED8C]
        );
    }

    #[test]
    fn golden_uniform_f64_seed_7() {
        let mut rng = WlanRng::seed_from_u64(7);
        let u: f64 = rng.gen();
        assert!((0.0..1.0).contains(&u));
    }

    // ---- determinism & stream independence -----------------------------

    #[test]
    fn same_seed_same_stream() {
        let mut a = WlanRng::seed_from_u64(123);
        let mut b = WlanRng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WlanRng::seed_from_u64(1);
        let mut b = WlanRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_position_independent() {
        let mut parent = WlanRng::seed_from_u64(99);
        let early = parent.fork(5);
        for _ in 0..100 {
            parent.next_u64();
        }
        let late = parent.fork(5);
        assert_eq!(early, late);
    }

    #[test]
    fn forks_are_decorrelated() {
        let master = WlanRng::seed_from_u64(2024);
        let mut a = master.fork(0);
        let mut b = master.fork(1);
        let matches = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0, "adjacent forks must not share outputs");
        // And neither fork replays the master stream.
        let mut m = WlanRng::seed_from_u64(2024);
        let mut c = master.fork(0);
        let overlap = (0..256).filter(|_| m.next_u64() == c.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn nested_forks_are_distinct() {
        let master = WlanRng::seed_from_u64(5);
        let mut ij = master.fork(1).fork(2);
        let mut ji = master.fork(2).fork(1);
        assert_ne!(ij.next_u64(), ji.next_u64());
    }

    // ---- distribution sanity (fixed seeds, generous tolerances) ---------

    #[test]
    fn uniform_f64_mean_and_range() {
        let mut rng = WlanRng::seed_from_u64(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "uniform mean drifted: {mean}");
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut rng = WlanRng::seed_from_u64(12);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_range(0..8u8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
        for _ in 0..1000 {
            let v = rng.gen_range(3..=10u32);
            assert!((3..=10).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_range_is_unbiased_enough() {
        // 3 buckets over 30k draws: each within 3% of 10k.
        let mut rng = WlanRng::seed_from_u64(13);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 300, "bucket counts {counts:?}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = WlanRng::seed_from_u64(14);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = rng.gen_gaussian();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "gaussian variance {var}");
    }

    #[test]
    fn rayleigh_scale() {
        // E[X] = σ√(π/2), E[X²] = 2σ².
        let sigma = 1.7;
        let mut rng = WlanRng::seed_from_u64(15);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = rng.gen_rayleigh(sigma);
            assert!(x >= 0.0);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let second = sum_sq / n as f64;
        let want_mean = sigma * (std::f64::consts::PI / 2.0).sqrt();
        assert!((mean / want_mean - 1.0).abs() < 0.01, "rayleigh mean {mean}");
        assert!(
            (second / (2.0 * sigma * sigma) - 1.0).abs() < 0.01,
            "rayleigh power {second}"
        );
    }

    #[test]
    fn exponential_mean() {
        let rate = 2.5;
        let mut rng = WlanRng::seed_from_u64(16);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_exp(rate);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean * rate - 1.0).abs() < 0.01, "exp mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = WlanRng::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01, "p=0.3 hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = WlanRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5u32);
    }

    #[test]
    fn works_through_mut_references() {
        // The &mut blanket impl lets helpers take `&mut impl Rng` and
        // forward references without reborrow gymnastics.
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut rng = WlanRng::seed_from_u64(3);
        let via_ref = draw(&mut &mut rng);
        let _ = via_ref;
    }
}
