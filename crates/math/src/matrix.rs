//! Dense complex matrices for MIMO signal processing.
//!
//! [`CMatrix`] is a small row-major dense matrix over [`Complex`], sized for
//! the 1×1 … 4×4 systems that 802.11n uses. It provides exactly the
//! operations MIMO detection and beamforming need: products, Hermitian
//! transpose, Gram matrices, Gauss–Jordan inversion and solving.

use crate::Complex;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use wlan_math::{CMatrix, Complex};
///
/// let h = CMatrix::from_rows(&[
///     &[Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)],
///     &[Complex::new(0.0, -1.0), Complex::new(2.0, 0.0)],
/// ]);
/// let hinv = h.inverse().expect("nonsingular");
/// let eye = &h * &hinv;
/// assert!((eye.get(0, 0) - Complex::ONE).norm() < 1e-10);
/// assert!(eye.get(0, 1).norm() < 1e-10);
/// ```
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

/// Error returned when inverting or solving with a singular matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError;

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular or numerically rank-deficient")
    }
}

impl std::error::Error for SingularMatrixError {}

impl CMatrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, Complex::ONE);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have differing lengths.
    pub fn from_rows(rows: &[&[Complex]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        CMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        CMatrix { rows, cols, data }
    }

    /// Builds a column vector from a slice.
    pub fn column(v: &[Complex]) -> Self {
        CMatrix::from_vec(v.len(), 1, v.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Complex {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Complex) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major view of the elements.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Hermitian (conjugate) transpose `Aᴴ`.
    pub fn hermitian(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c).conj());
            }
        }
        out
    }

    /// Plain transpose `Aᵀ` (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Gram matrix `AᴴA` (used by MMSE/ZF detectors).
    pub fn gram(&self) -> CMatrix {
        &self.hermitian() * self
    }

    /// Scales every element by a real factor.
    pub fn scale(&self, k: f64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(k)).collect(),
        }
    }

    /// Adds `diag·I` to a square matrix (MMSE regularization).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&self, diag: f64) -> CMatrix {
        assert_eq!(self.rows, self.cols, "add_diagonal needs a square matrix");
        let mut out = self.clone();
        for i in 0..self.rows {
            let v = out.get(i, i) + Complex::from_re(diag);
            out.set(i, i, v);
        }
        out
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * x[c]).sum())
            .collect()
    }

    /// Like [`CMatrix::mul_vec`], but appends the product to a caller-owned
    /// buffer — the same accumulation order, so results are bit-identical,
    /// with no per-call allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec_append(&self, x: &[Complex], out: &mut Vec<Complex>) {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        out.extend(
            (0..self.rows).map(|r| (0..self.cols).map(|c| self.get(r, c) * x[c]).sum::<Complex>()),
        );
    }

    /// Inverse by Gauss–Jordan elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot underflows (the matrix is
    /// singular to working precision).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Result<CMatrix, SingularMatrixError> {
        assert_eq!(self.rows, self.cols, "inverse needs a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = CMatrix::identity(n);

        for col in 0..n {
            // Partial pivot on the largest magnitude.
            let pivot_row = (col..n)
                .max_by(|&i, &j| a.get(i, col).norm().total_cmp(&a.get(j, col).norm()))
                .expect("nonempty range");
            if a.get(pivot_row, col).norm() < 1e-300 {
                return Err(SingularMatrixError);
            }
            if pivot_row != col {
                for c in 0..n {
                    let (x, y) = (a.get(col, c), a.get(pivot_row, c));
                    a.set(col, c, y);
                    a.set(pivot_row, c, x);
                    let (x, y) = (inv.get(col, c), inv.get(pivot_row, c));
                    inv.set(col, c, y);
                    inv.set(pivot_row, c, x);
                }
            }
            let pivot = a.get(col, col);
            let inv_pivot = pivot.recip();
            for c in 0..n {
                a.set(col, c, a.get(col, c) * inv_pivot);
                inv.set(col, c, inv.get(col, c) * inv_pivot);
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor.norm_sqr() == 0.0 {
                    continue;
                }
                for c in 0..n {
                    let v = a.get(r, c) - factor * a.get(col, c);
                    a.set(r, c, v);
                    let v = inv.get(r, c) - factor * inv.get(col, c);
                    inv.set(r, c, v);
                }
            }
        }
        Ok(inv)
    }

    /// Solves `A·x = b` for a square `A`.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when `A` is singular.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, SingularMatrixError> {
        assert_eq!(self.rows, b.len(), "rhs length mismatch");
        Ok(self.inverse()?.mul_vec(b))
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:?} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a + *b).collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a - *b).collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a.norm_sqr() == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    let v = out.get(r, c) + a * rhs.get(k, c);
                    out.set(r, c, v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix() -> CMatrix {
        CMatrix::from_rows(&[
            &[Complex::new(2.0, 1.0), Complex::new(0.5, -0.5), Complex::new(0.0, 1.0)],
            &[Complex::new(-1.0, 0.0), Complex::new(3.0, 0.0), Complex::new(1.0, 1.0)],
            &[Complex::new(0.0, -2.0), Complex::new(1.0, 0.0), Complex::new(4.0, 0.5)],
        ])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = test_matrix();
        let eye = CMatrix::identity(3);
        assert!((&(&a * &eye) - &a).frobenius_norm() < 1e-12);
        assert!((&(&eye * &a) - &a).frobenius_norm() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = test_matrix();
        let inv = a.inverse().unwrap();
        let prod = &a * &inv;
        assert!((&prod - &CMatrix::identity(3)).frobenius_norm() < 1e-9);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = CMatrix::from_rows(&[
            &[Complex::ONE, Complex::ONE],
            &[Complex::ONE, Complex::ONE],
        ]);
        assert_eq!(a.inverse(), Err(SingularMatrixError));
    }

    #[test]
    fn hermitian_of_hermitian_is_original() {
        let a = test_matrix();
        assert!((&a.hermitian().hermitian() - &a).frobenius_norm() < 1e-15);
    }

    #[test]
    fn gram_is_hermitian_positive() {
        let a = test_matrix();
        let g = a.gram();
        for r in 0..3 {
            assert!(g.get(r, r).im.abs() < 1e-12);
            assert!(g.get(r, r).re > 0.0);
            for c in 0..3 {
                assert!((g.get(r, c) - g.get(c, r).conj()).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_direct_product() {
        let a = test_matrix();
        let x = vec![
            Complex::new(1.0, -1.0),
            Complex::new(0.0, 2.0),
            Complex::new(-3.0, 0.5),
        ];
        let b = a.mul_vec(&x);
        let x2 = a.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&x2) {
            assert!((*u - *v).norm() < 1e-9);
        }
    }

    #[test]
    fn mmse_regularization_shifts_diagonal() {
        let a = CMatrix::identity(2);
        let r = a.add_diagonal(0.5);
        assert!((r.get(0, 0) - Complex::from_re(1.5)).norm() < 1e-15);
        assert!((r.get(0, 1)).norm() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn product_shape_checked() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn column_vector_shape() {
        let v = CMatrix::column(&[Complex::ONE, Complex::I]);
        assert_eq!((v.rows(), v.cols()), (2, 1));
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = CMatrix::from_rows(&[&[Complex::new(3.0, 0.0), Complex::new(0.0, 4.0)]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
