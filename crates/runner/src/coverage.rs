//! Survivable mesh-coverage campaigns.
//!
//! Wraps `wlan_mesh::coverage::estimate_coverage_seeded` in budgets,
//! checkpoint/resume, and Wilson-score early stopping on the covered
//! fraction. Sample `i` always draws from `master.fork(i)` and the
//! covered-count/throughput fold walks samples singly in sample order —
//! the exact association the one-shot estimator uses — so a campaign run
//! to `max_samples` equals `estimate_coverage_seeded` bit-for-bit, and a
//! resumed campaign (throughput sum journaled as an IEEE bit pattern at
//! a round boundary) continues the same fold bit-identically.

use std::path::PathBuf;

use wlan_mesh::coverage::{coverage_sample, Coverage};
use wlan_math::ci::{wilson95, Interval};
use wlan_math::par;
use wlan_math::rng::WlanRng;

use crate::budget::{Budget, BudgetMeter, Outcome};
use crate::journal::{self, f64_to_hex, kv, kv_f64, kv_u64, JournalError};
use crate::Resume;

/// Samples per wave: budget checks, stopping decisions, and checkpoints
/// land only on these boundaries.
pub const SAMPLES_PER_ROUND: u64 = 64;
const SAMPLES_PER_BATCH: usize = 8;

/// Configuration for a survivable coverage campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCampaignConfig {
    /// Mesh node positions (node 0 is the gateway).
    pub infrastructure: Vec<(f64, f64)>,
    /// Side of the sampled square region, metres.
    pub side_m: f64,
    /// Hard cap on samples.
    pub max_samples: u64,
    /// No early stop before this many samples.
    pub min_samples: u64,
    /// Early-stop once the Wilson 95 % half-width on the covered
    /// fraction reaches this; `None` always runs `max_samples`.
    pub target_half_width: Option<f64>,
    /// Master seed; sample `i` uses stream `seed → fork(i)`.
    pub seed: u64,
    /// Resource limits: `max_trials` (= samples) is cumulative across
    /// resume, `wall_ms` is per-invocation (see [`crate::budget`]).
    pub budget: Budget,
    /// Checkpoint journal path; `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// Worker threads; `None` = the `WLAN_THREADS` pool.
    pub threads: Option<usize>,
}

impl CoverageCampaignConfig {
    /// A campaign equivalent to `estimate_coverage_seeded(infra, side_m,
    /// max_samples, seed)`: no early stopping, budget from the
    /// environment, no journal.
    pub fn new(infrastructure: &[(f64, f64)], side_m: f64, max_samples: u64, seed: u64) -> Self {
        Self {
            infrastructure: infrastructure.to_vec(),
            side_m,
            max_samples,
            min_samples: SAMPLES_PER_ROUND,
            target_half_width: None,
            seed,
            budget: Budget::from_env(),
            journal: None,
            threads: None,
        }
    }

    /// Enables Wilson-score early stopping at the given 95 % half-width.
    pub fn with_target_half_width(mut self, hw: f64) -> Self {
        self.target_half_width = Some(hw);
        self
    }

    /// Sets the checkpoint journal path.
    pub fn with_journal(mut self, path: PathBuf) -> Self {
        self.journal = Some(path);
        self
    }

    /// Replaces the budget (default: from the environment).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Pins the worker thread count (results are identical at any value).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    fn key(&self) -> String {
        let infra: Vec<String> = self
            .infrastructure
            .iter()
            .map(|&(x, y)| format!("{},{}", f64_to_hex(x), f64_to_hex(y)))
            .collect();
        let target = match self.target_half_width {
            Some(t) => f64_to_hex(t),
            None => "none".to_owned(),
        };
        format!(
            "coverage v1 seed={} side={} max={} min={} target={} infra={}",
            self.seed,
            f64_to_hex(self.side_m),
            self.max_samples,
            self.min_samples,
            target,
            infra.join(";"),
        )
    }
}

/// The full result of a coverage campaign invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCampaignReport {
    /// Samples evaluated.
    pub samples: u64,
    /// Samples that reached the gateway at some rate.
    pub covered: u64,
    /// Sum of end-to-end throughputs over covered samples (Mbps).
    pub throughput_sum: f64,
    /// `true` when the CI target stopped the campaign before
    /// `max_samples`.
    pub stopped_early: bool,
    /// Whether the campaign finished or hit a budget.
    pub outcome: Outcome,
    /// How this invocation started.
    pub resume: Resume,
    /// Set when a checkpoint failed to write.
    pub journal_error: Option<JournalError>,
}

impl CoverageCampaignReport {
    /// Wilson 95 % confidence interval on the covered fraction; `None`
    /// before any sample has run.
    pub fn ci(&self) -> Option<Interval> {
        (self.samples > 0).then(|| wilson95(self.covered, self.samples))
    }

    /// Compatibility view as the one-shot estimator's result type.
    pub fn to_coverage(&self) -> Coverage {
        Coverage {
            covered_fraction: if self.samples > 0 {
                self.covered as f64 / self.samples as f64
            } else {
                f64::NAN
            },
            mean_throughput_mbps: if self.covered > 0 {
                self.throughput_sum / self.covered as f64
            } else {
                0.0
            },
            samples: self.samples as usize,
        }
    }
}

/// Runs (or resumes) a survivable coverage campaign.
///
/// # Panics
///
/// Panics if `infrastructure` is empty, `max_samples` is zero, or
/// `min_samples` is zero.
pub fn run_coverage_campaign(cfg: &CoverageCampaignConfig) -> CoverageCampaignReport {
    assert!(!cfg.infrastructure.is_empty(), "need at least a gateway node");
    assert!(cfg.max_samples > 0, "need at least one sample");
    assert!(cfg.min_samples > 0, "min_samples must be at least 1");

    let master = WlanRng::seed_from_u64(cfg.seed);
    let key = cfg.key();
    let (mut samples, mut covered, mut throughput_sum, mut done, resume) = restore(cfg, &key);
    // Journal-restored samples are banked trials: the trial budget is
    // cumulative across resume (see `budget` module docs).
    let mut meter = BudgetMeter::resumed(cfg.budget, samples);
    let mut journal_error: Option<JournalError> = None;

    let obs = wlan_obs::global();
    let c_waves = obs.counter("runner.waves");
    let c_trials = obs.counter("runner.trials");
    let c_early = obs.counter("runner.early_stops");
    let t_journal = obs.histogram("runner.journal_write");

    let stop_reason = loop {
        done = done
            || samples >= cfg.max_samples
            || stop_rule_met(cfg, covered, samples);
        if done {
            break None;
        }
        if let Some(reason) = meter.exhausted() {
            break Some(reason);
        }

        let start = samples;
        let end = cfg.max_samples.min(start + SAMPLES_PER_ROUND);
        let work: Vec<std::ops::Range<u64>> = par::batches((end - start) as usize, SAMPLES_PER_BATCH)
            .into_iter()
            .map(|b| start + b.start as u64..start + b.end as u64)
            .collect();
        let run_batch = |_: usize, range: &std::ops::Range<u64>| {
            range
                .clone()
                .map(|i| coverage_sample(&cfg.infrastructure, cfg.side_m, &master, i))
                .collect::<Vec<(bool, f64)>>()
        };
        let batches = match cfg.threads {
            Some(t) => par::parallel_map_with_threads(t, &work, run_batch),
            None => par::parallel_map(&work, run_batch),
        };

        // Single-sample fold in sample order: the same float association
        // as `estimate_coverage_seeded`'s reduction.
        for (hit, t) in batches.iter().flatten() {
            covered += *hit as u64;
            throughput_sum += t;
        }
        samples = end;
        meter.add_trials(end - start);
        c_waves.inc();
        c_trials.add(end - start);

        let span = t_journal.start();
        let saved = checkpoint(cfg, &key, samples, covered, throughput_sum, false);
        span.stop();
        if let Err(e) = saved {
            journal_error.get_or_insert(e);
        }
    };

    if stop_reason.is_none() && samples < cfg.max_samples {
        c_early.inc();
    }

    let stopped_early = samples < cfg.max_samples && stop_reason.is_none();
    if stop_reason.is_none() {
        // Mark the journal done so re-invocation resumes as complete.
        if let Err(e) = checkpoint(cfg, &key, samples, covered, throughput_sum, true) {
            journal_error.get_or_insert(e);
        }
    }

    let outcome = match stop_reason {
        None => Outcome::Complete,
        Some(reason) => Outcome::Partial {
            completed: samples,
            remaining: cfg.max_samples - samples,
            reason,
        },
    };

    CoverageCampaignReport {
        samples,
        covered,
        throughput_sum,
        stopped_early,
        outcome,
        resume,
        journal_error,
    }
}

fn stop_rule_met(cfg: &CoverageCampaignConfig, covered: u64, samples: u64) -> bool {
    match cfg.target_half_width {
        Some(target) => {
            samples >= cfg.min_samples && wilson95(covered, samples).half_width() <= target
        }
        None => false,
    }
}

type CoverageState = (u64, u64, f64, bool, Resume);

fn restore(cfg: &CoverageCampaignConfig, key: &str) -> CoverageState {
    let fresh = (0u64, 0u64, 0.0f64, false, Resume::Fresh);
    let Some(path) = cfg.journal.as_deref() else {
        return fresh;
    };
    match journal::load(path, key) {
        Ok(body) => match parse_body(cfg, &body) {
            Ok((samples, covered, tsum, done)) => {
                (samples, covered, tsum, done, Resume::Resumed { trials: samples })
            }
            Err(error) => (0, 0, 0.0, false, Resume::ColdStart { error }),
        },
        Err(JournalError::Io(std::io::ErrorKind::NotFound)) => fresh,
        Err(error) => (0, 0, 0.0, false, Resume::ColdStart { error }),
    }
}

fn parse_body(
    cfg: &CoverageCampaignConfig,
    body: &[String],
) -> Result<(u64, u64, f64, bool), JournalError> {
    let malformed = JournalError::Malformed { line: 3 };
    let [line] = body else {
        return Err(JournalError::Truncated);
    };
    let rest = line.strip_prefix("cov ").ok_or(malformed.clone())?;
    let mut t = rest.split_whitespace();
    let parsed = (|| {
        let samples = kv_u64(t.next()?, "samples")?;
        let covered = kv_u64(t.next()?, "covered")?;
        let tsum = kv_f64(t.next()?, "tsum")?;
        let done = match kv(t.next()?, "done")? {
            "yes" => true,
            "no" => false,
            _ => return None,
        };
        if t.next().is_some() {
            return None;
        }
        Some((samples, covered, tsum, done))
    })();
    let Some((samples, covered, tsum, done)) = parsed else {
        return Err(malformed);
    };
    if samples > cfg.max_samples || covered > samples || !tsum.is_finite() {
        return Err(malformed);
    }
    Ok((samples, covered, tsum, done))
}

fn checkpoint(
    cfg: &CoverageCampaignConfig,
    key: &str,
    samples: u64,
    covered: u64,
    tsum: f64,
    done: bool,
) -> Result<(), JournalError> {
    let Some(path) = cfg.journal.as_deref() else {
        return Ok(());
    };
    let body = vec![format!(
        "cov samples={samples} covered={covered} tsum={} done={}",
        f64_to_hex(tsum),
        if done { "yes" } else { "no" }
    )];
    journal::save(path, key, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_mesh::coverage::estimate_coverage_seeded;

    fn mesh() -> Vec<(f64, f64)> {
        vec![(50.0, 50.0), (220.0, 50.0), (50.0, 220.0), (220.0, 220.0)]
    }

    #[test]
    fn complete_campaign_matches_one_shot_estimator() {
        let cfg = CoverageCampaignConfig::new(&mesh(), 450.0, 256, 5)
            .with_budget(Budget::unlimited())
            .with_threads(1);
        let report = run_coverage_campaign(&cfg);
        assert!(report.outcome.is_complete());
        assert!(!report.stopped_early);
        let one_shot = estimate_coverage_seeded(&mesh(), 450.0, 256, 5);
        assert_eq!(report.to_coverage(), one_shot);
    }

    #[test]
    fn early_stopping_reports_achieved_ci() {
        let cfg = CoverageCampaignConfig::new(&mesh(), 450.0, 100_000, 5)
            .with_budget(Budget::unlimited())
            .with_target_half_width(0.08)
            .with_threads(1);
        let report = run_coverage_campaign(&cfg);
        assert!(report.outcome.is_complete());
        assert!(report.stopped_early);
        assert!(report.samples < 100_000, "stopped at {}", report.samples);
        assert_eq!(report.samples % SAMPLES_PER_ROUND, 0);
        let ci = report.ci().unwrap();
        assert!(ci.half_width() <= 0.08, "achieved {}", ci.half_width());
        assert!(ci.contains(report.to_coverage().covered_fraction));
    }

    #[test]
    fn resume_is_bit_identical_to_uninterrupted() {
        let path = std::env::temp_dir()
            .join(format!("wlan_cov_resume_{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let uninterrupted = run_coverage_campaign(
            &CoverageCampaignConfig::new(&mesh(), 450.0, 256, 5)
                .with_budget(Budget::unlimited())
                .with_threads(1),
        );

        let mut loops: u64 = 0;
        let resumed = loop {
            // Cumulative trial budget: each invocation may bank one more
            // round beyond what the journal already holds.
            let cfg = CoverageCampaignConfig::new(&mesh(), 450.0, 256, 5)
                .with_budget(Budget::unlimited().with_max_trials(SAMPLES_PER_ROUND * (loops + 1)))
                .with_journal(path.clone())
                .with_threads(1);
            let r = run_coverage_campaign(&cfg);
            loops += 1;
            assert!(loops < 20, "failed to converge");
            if r.outcome.is_complete() {
                break r;
            }
        };
        assert!(loops > 1);
        assert_eq!(resumed.samples, uninterrupted.samples);
        assert_eq!(resumed.covered, uninterrupted.covered);
        assert_eq!(
            resumed.throughput_sum.to_bits(),
            uninterrupted.throughput_sum.to_bits(),
            "resumed fold must be bit-identical"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_journal_cold_starts() {
        let path = std::env::temp_dir()
            .join(format!("wlan_cov_corrupt_{}.journal", std::process::id()));
        std::fs::write(&path, "garbage\n").unwrap();
        let cfg = CoverageCampaignConfig::new(&mesh(), 450.0, 128, 5)
            .with_budget(Budget::unlimited())
            .with_journal(path.clone())
            .with_threads(1);
        let report = run_coverage_campaign(&cfg);
        assert!(matches!(report.resume, Resume::ColdStart { .. }));
        assert!(report.outcome.is_complete());
        let _ = std::fs::remove_file(&path);
    }
}
