//! Survivable gateway-capacity campaigns.
//!
//! Wraps `wlan_mesh::capacity::gateway_capacity` in budgets and
//! checkpoint/resume. The per-client routing unit is
//! `wlan_mesh::capacity::client_route`; clients are processed in list
//! order in fixed-size waves and the airtime sum folds client-by-client
//! — the same association as the one-shot analysis — so a campaign run
//! over all clients equals `gateway_capacity` bit-for-bit and a resumed
//! campaign (airtime sum journaled as an IEEE bit pattern) continues the
//! fold bit-identically.

use std::path::PathBuf;

use wlan_mesh::capacity::{client_route, GatewayCapacity};
use wlan_math::par;

use crate::budget::{Budget, BudgetMeter, Outcome};
use crate::journal::{self, f64_to_hex, kv_f64, kv_u64, JournalError};
use crate::Resume;

/// Clients routed per wave.
pub const CLIENTS_PER_WAVE: usize = 16;

/// Configuration for a survivable capacity campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityCampaignConfig {
    /// Mesh node positions (node 0 is the gateway).
    pub infrastructure: Vec<(f64, f64)>,
    /// Client positions to route, in order.
    pub clients: Vec<(f64, f64)>,
    /// Resource limits: `max_trials` (= clients) is cumulative across
    /// resume, `wall_ms` is per-invocation (see [`crate::budget`]).
    pub budget: Budget,
    /// Checkpoint journal path; `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// Worker threads; `None` = the `WLAN_THREADS` pool.
    pub threads: Option<usize>,
}

impl CapacityCampaignConfig {
    /// A campaign equivalent to `gateway_capacity(infrastructure,
    /// clients)`: budget from the environment, no journal.
    pub fn new(infrastructure: &[(f64, f64)], clients: &[(f64, f64)]) -> Self {
        Self {
            infrastructure: infrastructure.to_vec(),
            clients: clients.to_vec(),
            budget: Budget::from_env(),
            journal: None,
            threads: None,
        }
    }

    /// Sets the checkpoint journal path.
    pub fn with_journal(mut self, path: PathBuf) -> Self {
        self.journal = Some(path);
        self
    }

    /// Replaces the budget (default: from the environment).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Pins the worker thread count (results are identical at any value).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    fn key(&self) -> String {
        let pos = |v: &[(f64, f64)]| -> String {
            v.iter()
                .map(|&(x, y)| format!("{},{}", f64_to_hex(x), f64_to_hex(y)))
                .collect::<Vec<_>>()
                .join(";")
        };
        format!(
            "capacity v1 infra={} clients={}",
            pos(&self.infrastructure),
            pos(&self.clients)
        )
    }
}

/// The full result of a capacity campaign invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityCampaignReport {
    /// Clients routed so far (in list order; a prefix when partial).
    pub routed: u64,
    /// Routed clients that reached the gateway.
    pub connected: u64,
    /// Total round airtime over connected clients, µs.
    pub round_airtime_us: f64,
    /// Total hops over connected clients.
    pub hop_sum: u64,
    /// Whether the campaign finished or hit a budget.
    pub outcome: Outcome,
    /// How this invocation started.
    pub resume: Resume,
    /// Set when a checkpoint failed to write.
    pub journal_error: Option<JournalError>,
}

impl CapacityCampaignReport {
    /// Compatibility view as the one-shot analysis' result type (over the
    /// clients routed so far).
    pub fn to_gateway_capacity(&self) -> GatewayCapacity {
        let connected = self.connected as usize;
        let per_client_mbps = if connected > 0 && self.round_airtime_us > 0.0 {
            wlan_mesh::metric::AIRTIME_TEST_FRAME_BITS / self.round_airtime_us
        } else {
            0.0
        };
        GatewayCapacity {
            connected,
            round_airtime_us: self.round_airtime_us,
            per_client_mbps,
            mean_hops: if connected > 0 {
                self.hop_sum as f64 / connected as f64
            } else {
                0.0
            },
        }
    }
}

/// Runs (or resumes) a survivable capacity campaign.
///
/// # Panics
///
/// Panics if `infrastructure` is empty.
pub fn run_capacity_campaign(cfg: &CapacityCampaignConfig) -> CapacityCampaignReport {
    assert!(!cfg.infrastructure.is_empty(), "need at least the gateway");

    let key = cfg.key();
    let (mut routed, mut connected, mut airtime, mut hop_sum, resume) = restore(cfg, &key);
    // Journal-restored clients are banked trials: the trial budget is
    // cumulative across resume (see `budget` module docs).
    let mut meter = BudgetMeter::resumed(cfg.budget, routed);
    let mut journal_error: Option<JournalError> = None;
    let total = cfg.clients.len() as u64;

    let obs = wlan_obs::global();
    let c_waves = obs.counter("runner.waves");
    let c_trials = obs.counter("runner.trials");
    let t_journal = obs.histogram("runner.journal_write");

    let stop_reason = loop {
        if routed >= total {
            break None;
        }
        if let Some(reason) = meter.exhausted() {
            break Some(reason);
        }

        let start = routed as usize;
        let end = cfg.clients.len().min(start + CLIENTS_PER_WAVE);
        let wave = &cfg.clients[start..end];
        let route_one =
            |_: usize, &client: &(f64, f64)| client_route(&cfg.infrastructure, client);
        let routes = match cfg.threads {
            Some(t) => par::parallel_map_with_threads(t, wave, route_one),
            None => par::parallel_map(wave, route_one),
        };
        // Client-order fold, one client at a time — the one-shot
        // analysis' float association.
        for (airtime_us, hops) in routes.iter().flatten() {
            airtime += airtime_us;
            connected += 1;
            hop_sum += *hops as u64;
        }
        routed = end as u64;
        meter.add_trials((end - start) as u64);
        c_waves.inc();
        c_trials.add((end - start) as u64);

        let span = t_journal.start();
        let saved = checkpoint(cfg, &key, routed, connected, airtime, hop_sum);
        span.stop();
        if let Err(e) = saved {
            journal_error.get_or_insert(e);
        }
    };

    let outcome = match stop_reason {
        None => Outcome::Complete,
        Some(reason) => Outcome::Partial {
            completed: routed,
            remaining: total - routed,
            reason,
        },
    };

    CapacityCampaignReport {
        routed,
        connected,
        round_airtime_us: airtime,
        hop_sum,
        outcome,
        resume,
        journal_error,
    }
}

type CapacityState = (u64, u64, f64, u64, Resume);

fn restore(cfg: &CapacityCampaignConfig, key: &str) -> CapacityState {
    let fresh = (0u64, 0u64, 0.0f64, 0u64, Resume::Fresh);
    let Some(path) = cfg.journal.as_deref() else {
        return fresh;
    };
    match journal::load(path, key) {
        Ok(body) => match parse_body(cfg, &body) {
            Ok((routed, connected, airtime, hops)) => {
                (routed, connected, airtime, hops, Resume::Resumed { trials: routed })
            }
            Err(error) => (0, 0, 0.0, 0, Resume::ColdStart { error }),
        },
        Err(JournalError::Io(std::io::ErrorKind::NotFound)) => fresh,
        Err(error) => (0, 0, 0.0, 0, Resume::ColdStart { error }),
    }
}

fn parse_body(
    cfg: &CapacityCampaignConfig,
    body: &[String],
) -> Result<(u64, u64, f64, u64), JournalError> {
    let malformed = JournalError::Malformed { line: 3 };
    let [line] = body else {
        return Err(JournalError::Truncated);
    };
    let rest = line.strip_prefix("cap ").ok_or(malformed.clone())?;
    let mut t = rest.split_whitespace();
    let parsed = (|| {
        let routed = kv_u64(t.next()?, "routed")?;
        let connected = kv_u64(t.next()?, "connected")?;
        let airtime = kv_f64(t.next()?, "airtime")?;
        let hops = kv_u64(t.next()?, "hops")?;
        if t.next().is_some() {
            return None;
        }
        Some((routed, connected, airtime, hops))
    })();
    let Some((routed, connected, airtime, hops)) = parsed else {
        return Err(malformed);
    };
    if routed > cfg.clients.len() as u64 || connected > routed || !airtime.is_finite() {
        return Err(malformed);
    }
    Ok((routed, connected, airtime, hops))
}

fn checkpoint(
    cfg: &CapacityCampaignConfig,
    key: &str,
    routed: u64,
    connected: u64,
    airtime: f64,
    hops: u64,
) -> Result<(), JournalError> {
    let Some(path) = cfg.journal.as_deref() else {
        return Ok(());
    };
    let body = vec![format!(
        "cap routed={routed} connected={connected} airtime={} hops={hops}",
        f64_to_hex(airtime)
    )];
    journal::save(path, key, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_mesh::capacity::gateway_capacity;

    fn infra() -> Vec<(f64, f64)> {
        vec![(0.0, 0.0), (150.0, 0.0), (0.0, 150.0), (150.0, 150.0)]
    }

    fn clients(n: usize) -> Vec<(f64, f64)> {
        (0..n).map(|i| (10.0 * (i % 20) as f64, 15.0 * (i / 20) as f64)).collect()
    }

    #[test]
    fn complete_campaign_matches_one_shot_analysis() {
        let c = clients(40);
        let cfg = CapacityCampaignConfig::new(&infra(), &c)
            .with_budget(Budget::unlimited())
            .with_threads(1);
        let report = run_capacity_campaign(&cfg);
        assert!(report.outcome.is_complete());
        let one_shot = gateway_capacity(&infra(), &c);
        assert_eq!(report.to_gateway_capacity(), one_shot);
    }

    #[test]
    fn budget_stops_on_wave_boundary_and_resume_completes() {
        let path = std::env::temp_dir()
            .join(format!("wlan_cap_resume_{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let c = clients(40);

        let mut loops: u64 = 0;
        let resumed = loop {
            // Cumulative trial budget: each invocation may route one more
            // wave beyond what the journal already holds.
            let cfg = CapacityCampaignConfig::new(&infra(), &c)
                .with_budget(
                    Budget::unlimited().with_max_trials(CLIENTS_PER_WAVE as u64 * (loops + 1)),
                )
                .with_journal(path.clone())
                .with_threads(1);
            let r = run_capacity_campaign(&cfg);
            loops += 1;
            assert!(loops < 10, "failed to converge");
            match r.outcome {
                Outcome::Complete => break r,
                Outcome::Partial { completed, .. } => {
                    assert_eq!(completed % CLIENTS_PER_WAVE as u64, 0);
                }
            }
        };
        assert!(loops > 1);
        let one_shot = gateway_capacity(&infra(), &c);
        let got = resumed.to_gateway_capacity();
        assert_eq!(got, one_shot);
        assert_eq!(
            got.round_airtime_us.to_bits(),
            one_shot.round_airtime_us.to_bits(),
            "resumed fold must be bit-identical"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_client_list_is_complete_with_nothing_routed() {
        let cfg = CapacityCampaignConfig::new(&infra(), &[])
            .with_budget(Budget::unlimited())
            .with_threads(1);
        let report = run_capacity_campaign(&cfg);
        assert!(report.outcome.is_complete());
        assert_eq!(report.to_gateway_capacity(), gateway_capacity(&infra(), &[]));
    }
}
