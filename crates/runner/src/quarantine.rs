//! Trial quarantine: failures become ledger entries, not campaign deaths.
//!
//! A Monte-Carlo campaign should survive a pathological trial the way a
//! MAC survives a corrupted frame: record it, route around it, keep
//! serving. Each quarantined trial is logged with the *exact stream
//! coordinates* that produced it — enough to re-execute that one trial
//! bit-identically (see `examples/replay_quarantine.rs`) without
//! rerunning the campaign.

use crate::journal::{f64_from_hex, f64_to_hex, kv_u64};

/// One quarantined PER trial. `(seed, point, frame)` are the RNG stream
/// coordinates: replay with
/// `frame_trial_at(link, faults, snr_db, payload_len,
/// &WlanRng::seed_from_u64(seed).fork(point), frame)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedTrial {
    /// Campaign master seed.
    pub seed: u64,
    /// SNR point index within the sweep.
    pub point: usize,
    /// SNR in dB at that point.
    pub snr_db: f64,
    /// Frame index within the point.
    pub frame: u64,
    /// Display form of the typed [`wlan_math::WlanError`] chain.
    pub error: String,
}

impl QuarantinedTrial {
    /// Journal body line for this entry. The free-text error rides last
    /// so it may contain spaces and `=` without escaping.
    pub fn to_line(&self) -> String {
        format!(
            "quar point={} frame={} snr={} error={}",
            self.point,
            self.frame,
            f64_to_hex(self.snr_db),
            self.error
        )
    }

    /// Parses [`QuarantinedTrial::to_line`] output. `seed` is supplied by
    /// the campaign (it is part of the journal key, not repeated per
    /// line). Returns `None` on any malformation.
    pub fn from_line(line: &str, seed: u64) -> Option<Self> {
        let rest = line.strip_prefix("quar ")?;
        let (coords, error) = rest.split_once(" error=")?;
        let mut tokens = coords.split_whitespace();
        let point = kv_u64(tokens.next()?, "point")? as usize;
        let frame = kv_u64(tokens.next()?, "frame")?;
        let snr_db = f64_from_hex(tokens.next()?.strip_prefix("snr=")?)?;
        if tokens.next().is_some() {
            return None;
        }
        Some(Self {
            seed,
            point,
            snr_db,
            frame,
            error: error.to_owned(),
        })
    }
}

/// One quarantined MAC ensemble run: it exceeded the per-run step budget
/// (runaway contention) and was excluded from the ensemble statistics.
/// `seed` is the run's own [`wlan_mac::traffic::ensemble_seed`] stream,
/// so the run can be re-executed standalone.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedRun {
    /// Run index within the ensemble.
    pub run: usize,
    /// The run's derived seed (`ensemble_seed(master_seed, run)`).
    pub seed: u64,
    /// Steps executed before the budget cut it off.
    pub steps: u64,
}

impl QuarantinedRun {
    /// Journal body line for this entry.
    pub fn to_line(&self) -> String {
        format!("quarrun run={} seed={} steps={}", self.run, self.seed, self.steps)
    }

    /// Parses [`QuarantinedRun::to_line`] output; `None` on malformation.
    pub fn from_line(line: &str) -> Option<Self> {
        let rest = line.strip_prefix("quarrun ")?;
        let mut tokens = rest.split_whitespace();
        let run = kv_u64(tokens.next()?, "run")? as usize;
        let seed = kv_u64(tokens.next()?, "seed")?;
        let steps = kv_u64(tokens.next()?, "steps")?;
        if tokens.next().is_some() {
            return None;
        }
        Some(Self { run, seed, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_line_round_trips_including_spaces_in_error() {
        let q = QuarantinedTrial {
            seed: 42,
            point: 3,
            snr_db: -2.5,
            frame: 77,
            error: "stream ended mid-frame: wanted 64 bits, got 12".to_owned(),
        };
        let back = QuarantinedTrial::from_line(&q.to_line(), 42).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn trial_line_rejects_malformed() {
        assert!(QuarantinedTrial::from_line("quar point=x frame=1 snr=0 error=e", 0).is_none());
        assert!(QuarantinedTrial::from_line("point=1 frame=1", 0).is_none());
        assert!(QuarantinedTrial::from_line("quar point=1 frame=2", 0).is_none());
    }

    #[test]
    fn run_line_round_trips() {
        let q = QuarantinedRun {
            run: 9,
            seed: 0xdeadbeef,
            steps: 100_000,
        };
        assert_eq!(QuarantinedRun::from_line(&q.to_line()).unwrap(), q);
        assert!(QuarantinedRun::from_line("quarrun run=1 seed=2").is_none());
    }
}
