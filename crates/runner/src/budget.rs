//! Campaign budgets: trial caps and wall-clock deadlines.
//!
//! A budget never aborts mid-trial: campaign runners check it only
//! between waves (fixed-size rounds of work), so a budget-terminated
//! campaign always stops at a deterministic round boundary and its
//! partial tallies are an exact prefix of the uninterrupted campaign's.
//! *Which* boundary a wall-clock budget lands on is machine-dependent —
//! the bit-identity guarantee is about the tallies at each boundary, and
//! about the final report once a resumed campaign runs to completion.
//!
//! # The resume contract
//!
//! The two limits deliberately meter different things:
//!
//! * **`max_trials` (`WLAN_MAX_TRIALS`) is cumulative across
//!   checkpoint/resume**: trials restored from a journal count against
//!   the cap, so "at most N trials of compute for this campaign" means
//!   N in total, no matter how many times the process is killed and
//!   re-invoked. Campaign runners seed their meter with the banked
//!   trial count ([`BudgetMeter::resumed`]); a re-invocation whose
//!   journal already holds `>= max_trials` makes zero new progress.
//!   (Before PR 5 the meter reset to zero on every resume, silently
//!   re-spending the trial budget each invocation.)
//! * **`wall_ms` (`WLAN_BUDGET_MS`) is per-invocation**: the journal
//!   stores no wall-clock, and a resumed campaign gets a fresh clock —
//!   which is what makes "run 30 s, checkpoint, rerun" loops converge.
//!
//! `tests/tests/kill_and_resume.rs::trial_budget_is_cumulative_across_resume`
//! pins the cumulative half of this contract.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Environment knob: per-campaign wall-clock budget in milliseconds.
pub const BUDGET_MS_ENV: &str = "WLAN_BUDGET_MS";
/// Environment knob: per-campaign trial budget.
pub const MAX_TRIALS_ENV: &str = "WLAN_MAX_TRIALS";

static WARNED_BAD_ENV: AtomicBool = AtomicBool::new(false);

/// Resource limits for a campaign. `max_trials` is cumulative across
/// checkpoint/resume (journal-restored trials count against it);
/// `wall_ms` meters only the current invocation's wall clock — see the
/// module docs for why the two differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Stop once the campaign has banked this many trials in total —
    /// restored-from-journal plus newly run. `None` = unlimited.
    pub max_trials: Option<u64>,
    /// Stop after this much wall-clock time in *this invocation*,
    /// `None` = unlimited.
    pub wall_ms: Option<u64>,
}

impl Budget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Reads [`BUDGET_MS_ENV`] and [`MAX_TRIALS_ENV`]. Unset means
    /// unlimited; unparsable or zero values warn once on stderr and are
    /// ignored (a budget of zero trials would forbid all progress, so it
    /// is treated as a configuration mistake, not a request).
    pub fn from_env() -> Self {
        Self {
            max_trials: read_env_u64(MAX_TRIALS_ENV),
            wall_ms: read_env_u64(BUDGET_MS_ENV),
        }
    }

    /// Caps total campaign trials (cumulative across resume).
    pub fn with_max_trials(mut self, trials: u64) -> Self {
        self.max_trials = Some(trials);
        self
    }

    /// Caps wall-clock time for this invocation.
    pub fn with_wall_ms(mut self, ms: u64) -> Self {
        self.wall_ms = Some(ms);
        self
    }
}

fn read_env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<u64>() {
        Ok(v) if v > 0 => Some(v),
        _ => {
            if !WARNED_BAD_ENV.swap(true, Ordering::Relaxed) {
                eprintln!("wlan-runner: ignoring invalid {name}={raw:?} (want a positive integer)");
            }
            None
        }
    }
}

/// Why a campaign stopped before finishing its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The trial budget ran out.
    TrialBudget,
    /// The wall-clock budget ran out.
    WallClock,
    /// Work was abandoned: a distributed campaign quarantined leases
    /// that exhausted their dispatch budget, leaving holes no budget
    /// increase will fill (replay the quarantined leases instead).
    Abandoned,
    /// An operator asked the campaign to stop (a `campaign serve`
    /// shutdown frame): in-flight leases were drained, no new work was
    /// dispatched, and the journal holds everything banked so far — a
    /// re-run resumes bit-identically.
    Interrupted,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::TrialBudget => write!(f, "trial budget exhausted"),
            StopReason::WallClock => write!(f, "wall-clock budget exhausted"),
            StopReason::Abandoned => write!(f, "leases abandoned after dispatch failures"),
            StopReason::Interrupted => write!(f, "shutdown requested; drained and checkpointed"),
        }
    }
}

/// How a campaign ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every point/run/client reached its stopping rule.
    Complete,
    /// The budget ran out first. `completed` counts trials banked so far
    /// (including any restored from a journal); `remaining` is an upper
    /// bound on trials still owed (early stopping may need fewer).
    Partial {
        /// Trials banked so far, including journal-restored ones.
        completed: u64,
        /// Upper bound on trials still owed.
        remaining: u64,
        /// Which budget ran out.
        reason: StopReason,
    },
}

impl Outcome {
    /// `true` when the campaign finished all its work.
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete)
    }

    /// Merges two shard outcomes into one campaign-level outcome.
    ///
    /// A distributed coordinator must report `completed`/`remaining`
    /// aggregated over the *merged* campaign state, not per-process: two
    /// shards each holding "10 remaining" owe 20 together. `Complete`
    /// is the identity (a finished shard owes nothing and its banked
    /// trials are already in the merged tallies); two `Partial`s sum
    /// their counts and keep the first reason (the trial budget is the
    /// deterministic one, and shards under a shared budget all stop for
    /// the same reason anyway).
    #[must_use]
    pub fn merge(self, other: Outcome) -> Outcome {
        match (self, other) {
            (Outcome::Complete, o) => o,
            (o, Outcome::Complete) => o,
            (
                Outcome::Partial {
                    completed: c1,
                    remaining: r1,
                    reason,
                },
                Outcome::Partial {
                    completed: c2,
                    remaining: r2,
                    ..
                },
            ) => Outcome::Partial {
                completed: c1.saturating_add(c2),
                remaining: r1.saturating_add(r2),
                reason,
            },
        }
    }
}

/// Meters one campaign invocation against its [`Budget`]. The wall
/// clock starts at construction (per-invocation); the trial count
/// starts at whatever the campaign restored from its journal
/// (cumulative) — see [`BudgetMeter::resumed`].
#[derive(Debug)]
pub struct BudgetMeter {
    budget: Budget,
    started: Instant,
    trials: u64,
}

impl BudgetMeter {
    /// Starts the wall clock now with zero trials banked (a fresh,
    /// journal-less campaign).
    pub fn new(budget: Budget) -> Self {
        Self::resumed(budget, 0)
    }

    /// Starts the wall clock now with `banked` trials already counted
    /// against the trial budget. Campaign runners pass the trial total
    /// restored from the journal here, which is what makes
    /// `max_trials` a *campaign-wide* cap rather than a per-invocation
    /// allowance that resets on every resume.
    pub fn resumed(budget: Budget, banked: u64) -> Self {
        Self {
            budget,
            started: Instant::now(),
            trials: banked,
        }
    }

    /// Records `n` trials spent by the wave that just finished.
    pub fn add_trials(&mut self, n: u64) {
        self.trials = self.trials.saturating_add(n);
    }

    /// Trials counted against the budget so far: journal-restored plus
    /// spent by this invocation.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Checks both limits; called between waves, never mid-trial. The
    /// trial limit is checked first so `WLAN_MAX_TRIALS` alone is fully
    /// deterministic.
    pub fn exhausted(&self) -> Option<StopReason> {
        if let Some(max) = self.budget.max_trials {
            if self.trials >= max {
                return Some(StopReason::TrialBudget);
            }
        }
        if let Some(ms) = self.budget.wall_ms {
            if self.started.elapsed() >= Duration::from_millis(ms) {
                return Some(StopReason::WallClock);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut m = BudgetMeter::new(Budget::unlimited());
        m.add_trials(u64::MAX);
        assert_eq!(m.exhausted(), None);
    }

    #[test]
    fn trial_budget_trips_at_the_cap() {
        let mut m = BudgetMeter::new(Budget::unlimited().with_max_trials(100));
        m.add_trials(99);
        assert_eq!(m.exhausted(), None);
        m.add_trials(1);
        assert_eq!(m.exhausted(), Some(StopReason::TrialBudget));
    }

    #[test]
    fn wall_clock_budget_trips_after_deadline() {
        let m = BudgetMeter::new(Budget::unlimited().with_wall_ms(1));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(m.exhausted(), Some(StopReason::WallClock));
    }

    #[test]
    fn trial_limit_wins_over_wall_clock() {
        let mut m = BudgetMeter::new(Budget::unlimited().with_max_trials(1).with_wall_ms(1));
        m.add_trials(1);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(m.exhausted(), Some(StopReason::TrialBudget));
    }

    #[test]
    fn resumed_meter_counts_banked_trials_against_the_cap() {
        // The cumulative contract: a resume that restores 90 trials
        // under a 100-trial cap has only 10 left, and a resume at or
        // past the cap is exhausted before any new work.
        let mut m = BudgetMeter::resumed(Budget::unlimited().with_max_trials(100), 90);
        assert_eq!(m.trials(), 90);
        assert_eq!(m.exhausted(), None);
        m.add_trials(10);
        assert_eq!(m.exhausted(), Some(StopReason::TrialBudget));

        let spent = BudgetMeter::resumed(Budget::unlimited().with_max_trials(100), 100);
        assert_eq!(spent.exhausted(), Some(StopReason::TrialBudget));
    }

    #[test]
    fn trial_count_saturates() {
        let mut m = BudgetMeter::new(Budget::unlimited());
        m.add_trials(u64::MAX);
        m.add_trials(10);
        assert_eq!(m.trials(), u64::MAX);
    }

    #[test]
    fn merge_aggregates_partial_counts_across_shards() {
        let a = Outcome::Partial {
            completed: 96,
            remaining: 32,
            reason: StopReason::WallClock,
        };
        let b = Outcome::Partial {
            completed: 64,
            remaining: 128,
            reason: StopReason::TrialBudget,
        };
        assert_eq!(
            a.merge(b),
            Outcome::Partial {
                completed: 160,
                remaining: 160,
                reason: StopReason::WallClock,
            }
        );
    }

    #[test]
    fn merge_complete_is_identity() {
        let p = Outcome::Partial {
            completed: 5,
            remaining: 7,
            reason: StopReason::Abandoned,
        };
        assert_eq!(Outcome::Complete.merge(p), p);
        assert_eq!(p.merge(Outcome::Complete), p);
        assert_eq!(Outcome::Complete.merge(Outcome::Complete), Outcome::Complete);
    }

    #[test]
    fn outcome_completeness() {
        assert!(Outcome::Complete.is_complete());
        assert!(!Outcome::Partial {
            completed: 1,
            remaining: 2,
            reason: StopReason::WallClock
        }
        .is_complete());
    }
}
