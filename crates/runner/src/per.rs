//! Survivable PER campaigns over any [`PhyLink`].
//!
//! Wraps `wlan_core::linksim::sweep_per_faulted`'s trial streams in the
//! four robustness mechanisms: budgets, checkpoint/resume, sequential
//! early stopping (Wilson score), and trial quarantine.
//!
//! # Determinism contract
//!
//! A campaign advances every active SNR point by one *round* of
//! [`ROUND_TRIALS`] frame trials per wave. Trial `(point, frame)` draws
//! its whole universe from `master.fork(point).fork(frame)` — identical
//! to the one-shot sweep — and tallies are integers folded in work-item
//! order, so:
//!
//! * run to completion with early stopping disabled, the campaign's
//!   per-point tallies equal `sweep_per_faulted`'s bit-for-bit at any
//!   `WLAN_THREADS` setting;
//! * stopping decisions are pure functions of the integer tallies `(k,
//!   n)` evaluated only at round boundaries, so a campaign interrupted
//!   (budget, `SIGKILL`) and resumed from its journal reaches the same
//!   final report, bit-identically, as one that never stopped;
//! * a budget-terminated campaign's partial tallies are an exact prefix
//!   of the uninterrupted campaign's (the wave schedule never depends on
//!   wall-clock — only *how many* waves ran does).

use std::path::PathBuf;

use wlan_core::linksim::{frame_trial_at, FaultSweep, FaultSweepPoint, PhyLink};
use wlan_fault::FaultChain;
use wlan_math::ci::{wilson95, Interval};
use wlan_math::par;
use wlan_math::rng::WlanRng;

use wlan_obs::json;

use crate::budget::{Budget, BudgetMeter, Outcome};
use crate::journal::{self, f64_to_hex, kv, kv_u64, JournalError};
use crate::quarantine::QuarantinedTrial;
use crate::Resume;

/// Frame trials one wave adds to each active point: four 8-frame batches,
/// matching the one-shot sweep's batch grain. Stopping rules and
/// checkpoints land only on round boundaries, so the set of trials a
/// point executes is a pure function of its tallies — never of where an
/// interruption fell.
pub const ROUND_TRIALS: u64 = 32;
const FRAMES_PER_BATCH: usize = 8;

/// Configuration for a survivable PER campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PerCampaignConfig {
    /// SNR points to sweep, in dB.
    pub snrs_db: Vec<f64>,
    /// Payload bytes per frame trial.
    pub payload_len: usize,
    /// Hard cap on frame trials per point.
    pub max_frames: u64,
    /// No early stop before this many trials per point.
    pub min_frames: u64,
    /// Early-stop a point once its Wilson 95 % half-width reaches this;
    /// `None` disables early stopping (every point runs `max_frames`).
    pub target_half_width: Option<f64>,
    /// Master seed; trial `(i, j)` uses stream `seed → fork(i) → fork(j)`.
    pub seed: u64,
    /// Resource limits: `max_trials` is cumulative across resume,
    /// `wall_ms` is per-invocation (see [`crate::budget`] module docs).
    pub budget: Budget,
    /// Checkpoint journal path; `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// Checkpoint every this many waves (and always on exit).
    pub checkpoint_every_rounds: u64,
    /// Worker threads; `None` = the `WLAN_THREADS` pool. Results are
    /// identical either way — this exists so tests can pin a thread count
    /// without racing on the environment.
    pub threads: Option<usize>,
}

impl PerCampaignConfig {
    /// A campaign equivalent to `sweep_per_faulted(link, faults, snrs,
    /// payload_len, max_frames, seed)`: no early stopping, budget from
    /// the environment, no journal.
    pub fn new(snrs_db: &[f64], payload_len: usize, max_frames: u64, seed: u64) -> Self {
        Self {
            snrs_db: snrs_db.to_vec(),
            payload_len,
            max_frames,
            min_frames: ROUND_TRIALS,
            target_half_width: None,
            seed,
            budget: Budget::from_env(),
            journal: None,
            checkpoint_every_rounds: 1,
            threads: None,
        }
    }

    /// Enables Wilson-score early stopping at the given 95 % half-width.
    pub fn with_target_half_width(mut self, hw: f64) -> Self {
        self.target_half_width = Some(hw);
        self
    }

    /// Sets the checkpoint journal path.
    pub fn with_journal(mut self, path: PathBuf) -> Self {
        self.journal = Some(path);
        self
    }

    /// Replaces the budget (default: from the environment).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Pins the worker thread count (results are identical at any value).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The journal key: every parameter that shapes trial streams or
    /// stopping decisions. Budgets, thread counts, and checkpoint cadence
    /// are deliberately absent — resuming under a different budget or
    /// thread count is the whole point. Public so the distributed
    /// coordinator (`wlan-dist`) can derive its own journal key from the
    /// same campaign identity.
    pub fn journal_key(&self, link: &dyn PhyLink, faults: &FaultChain) -> String {
        let snrs: Vec<String> = self.snrs_db.iter().map(|&s| f64_to_hex(s)).collect();
        let target = match self.target_half_width {
            Some(t) => f64_to_hex(t),
            None => "none".to_owned(),
        };
        format!(
            "per v1 seed={} payload={} max={} min={} target={} snrs={} link={} fault={}",
            self.seed,
            self.payload_len,
            self.max_frames,
            self.min_frames,
            target,
            snrs.join(","),
            link.name(),
            faults.name(),
        )
    }
}

/// Where one SNR point stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointStatus {
    /// Still accumulating trials.
    Active,
    /// Hit the target CI half-width before `max_frames`.
    StoppedEarly,
    /// Ran the full `max_frames` trials.
    Exhausted,
}

impl PointStatus {
    fn as_str(self) -> &'static str {
        match self {
            PointStatus::Active => "active",
            PointStatus::StoppedEarly => "early",
            PointStatus::Exhausted => "full",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "active" => Some(PointStatus::Active),
            "early" => Some(PointStatus::StoppedEarly),
            "full" => Some(PointStatus::Exhausted),
            _ => None,
        }
    }
}

/// Tallies and status of one SNR point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointProgress {
    /// SNR in dB.
    pub snr_db: f64,
    /// Frame trials executed.
    pub trials: u64,
    /// Frames the receiver got wrong (silent corruption plus erasures).
    pub errors: u64,
    /// Trials ending in a typed [`wlan_math::WlanError`] erasure.
    pub erasures: u64,
    /// Whether the point is done, and why.
    pub status: PointStatus,
}

impl PointProgress {
    /// Measured PER so far (`NaN` before any trial has run, matching the
    /// aborted-sweep placeholder convention `snr_for_per` skips).
    pub fn per(&self) -> f64 {
        if self.trials == 0 {
            f64::NAN
        } else {
            self.errors as f64 / self.trials as f64
        }
    }

    /// Erasure fraction so far (`NaN` before any trial).
    pub fn erasure_rate(&self) -> f64 {
        if self.trials == 0 {
            f64::NAN
        } else {
            self.erasures as f64 / self.trials as f64
        }
    }

    /// Wilson 95 % confidence interval on the PER; `None` before any
    /// trial has run.
    pub fn ci(&self) -> Option<Interval> {
        (self.trials > 0).then(|| wilson95(self.errors, self.trials))
    }

    /// Journal body line for this point (inverse of [`parse_point_line`]).
    pub fn to_line(self, index: usize) -> String {
        format!(
            "point i={index} trials={} errors={} erasures={} status={}",
            self.trials,
            self.errors,
            self.erasures,
            self.status.as_str()
        )
    }
}

/// Parses a `point i=… trials=… errors=… erasures=… status=…` journal
/// body line into `(index, trials, errors, erasures, status)`. Shared
/// with the distributed coordinator's journal parser; the caller is
/// responsible for bounds/sanity checks against its own configuration.
pub fn parse_point_line(line: &str) -> Option<(usize, u64, u64, u64, PointStatus)> {
    let mut tokens = line.strip_prefix("point ")?.split_whitespace();
    let i = kv_u64(tokens.next()?, "i")? as usize;
    let trials = kv_u64(tokens.next()?, "trials")?;
    let errors = kv_u64(tokens.next()?, "errors")?;
    let erasures = kv_u64(tokens.next()?, "erasures")?;
    let status = PointStatus::parse(kv(tokens.next()?, "status")?)?;
    if tokens.next().is_some() {
        return None;
    }
    Some((i, trials, errors, erasures, status))
}

/// The full result of a campaign invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PerCampaignReport {
    /// Link name.
    pub name: String,
    /// Fault chain name.
    pub fault: String,
    /// PHY rate in Mbps.
    pub rate_mbps: f64,
    /// Master seed.
    pub seed: u64,
    /// Per-point tallies, one per configured SNR.
    pub points: Vec<PointProgress>,
    /// Ledger of trials that returned typed errors, in execution order.
    pub quarantine: Vec<QuarantinedTrial>,
    /// Whether the campaign finished or hit a budget.
    pub outcome: Outcome,
    /// How this invocation started (fresh / resumed / cold start).
    pub resume: Resume,
    /// Set when a checkpoint failed to write (the campaign continues —
    /// checkpointing is an optimisation, not a correctness requirement).
    pub journal_error: Option<JournalError>,
}

impl PerCampaignReport {
    /// Compatibility view as the one-shot sweep's result type. Rates are
    /// relative to trials actually run, so an early-stopped point reports
    /// its measured PER, and an untouched point reports `NaN`.
    pub fn to_fault_sweep(&self) -> FaultSweep {
        FaultSweep {
            name: self.name.clone(),
            fault: self.fault.clone(),
            rate_mbps: self.rate_mbps,
            points: self
                .points
                .iter()
                .map(|p| FaultSweepPoint {
                    snr_db: p.snr_db,
                    per: p.per(),
                    erasure_rate: p.erasure_rate(),
                })
                .collect(),
        }
    }

    /// Total trials banked across all points (including resumed ones).
    pub fn completed_trials(&self) -> u64 {
        self.points.iter().map(|p| p.trials).sum()
    }
}

/// Runs (or resumes) a survivable PER campaign.
///
/// # Panics
///
/// Panics if the configuration is vacuous: no SNR points, zero
/// `payload_len`, zero `max_frames`, or `min_frames == 0`.
pub fn run_per_campaign(
    link: &dyn PhyLink,
    faults: &FaultChain,
    cfg: &PerCampaignConfig,
) -> PerCampaignReport {
    assert!(!cfg.snrs_db.is_empty(), "need at least one SNR point");
    assert!(cfg.payload_len > 0, "payload must be nonempty");
    assert!(cfg.max_frames > 0, "need at least one frame per point");
    assert!(cfg.min_frames > 0, "min_frames must be at least 1");

    let master = WlanRng::seed_from_u64(cfg.seed);
    let key = cfg.journal_key(link, faults);

    let (mut points, mut quarantine, resume) = restore(cfg, &key);
    // After a salvage, restored ledger entries may belong to trials whose
    // tallies were lost; those trials re-run and regenerate identical
    // entries, which must not duplicate in the ledger.
    let mut seen_quars: std::collections::HashSet<(usize, u64)> =
        quarantine.iter().map(|q| (q.point, q.frame)).collect();
    // The trial budget is cumulative across resume: trials restored from
    // the journal are already spent. The wall clock is per-invocation.
    let banked: u64 = points.iter().map(|p| p.trials).sum();
    let mut meter = BudgetMeter::resumed(cfg.budget, banked);
    let mut journal_error: Option<JournalError> = None;
    let mut waves_since_checkpoint: u64 = 0;

    // Observability: write-only counters/timers plus JSONL events; none
    // of it feeds back into trial streams or stopping decisions.
    let obs = wlan_obs::global();
    let c_waves = obs.counter("runner.waves");
    let c_trials = obs.counter("runner.trials");
    let c_early = obs.counter("runner.early_stops");
    let c_quar = obs.counter("runner.quarantined");
    let t_journal = obs.histogram("runner.journal_write");
    obs.event(
        "campaign_start",
        &[
            ("kind", json::Value::Str("per".into())),
            ("link", json::Value::Str(link.name())),
            ("points", json::Value::U64(cfg.snrs_db.len() as u64)),
            ("banked_trials", json::Value::U64(banked)),
        ],
    );

    // A resumed journal stores statuses, but they are cheap to recompute
    // and recomputing makes the loop's invariant ("statuses are current
    // at every wave boundary") independent of what was stored.
    for p in &mut points {
        p.status = evaluate_status(p, cfg);
    }

    let stop_reason = loop {
        let active: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.status == PointStatus::Active)
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            break None;
        }
        if let Some(reason) = meter.exhausted() {
            break Some(reason);
        }

        // One wave: up to ROUND_TRIALS new frames for every active point,
        // split into the same 8-frame batch grain as the one-shot sweep.
        let mut work: Vec<(usize, std::ops::Range<u64>)> = Vec::new();
        for &i in &active {
            let start = points[i].trials;
            let end = cfg.max_frames.min(start + ROUND_TRIALS);
            for b in par::batches((end - start) as usize, FRAMES_PER_BATCH) {
                work.push((i, start + b.start as u64..start + b.end as u64));
            }
        }

        let run_batch = |_: usize, (point, frames): &(usize, std::ops::Range<u64>)| {
            let point_rng = master.fork(*point as u64);
            let snr_db = cfg.snrs_db[*point];
            let mut tally = (0u64, 0u64, 0u64); // (trials, errors, erasures)
            let mut quars: Vec<(u64, String)> = Vec::new();
            for frame in frames.clone() {
                tally.0 += 1;
                match frame_trial_at(link, faults, snr_db, cfg.payload_len, &point_rng, frame) {
                    Ok(true) => {}
                    Ok(false) => tally.1 += 1,
                    Err(e) => {
                        tally.1 += 1;
                        tally.2 += 1;
                        quars.push((frame, e.to_string()));
                    }
                }
            }
            (tally, quars)
        };
        let results = match cfg.threads {
            Some(t) => par::parallel_map_with_threads(t, &work, run_batch),
            None => par::parallel_map(&work, run_batch),
        };

        // Deterministic fold in work-item order.
        let mut wave_trials = 0u64;
        let mut wave_quarantined = 0u64;
        for ((point, _), ((trials, errors, erasures), quars)) in work.iter().zip(&results) {
            let p = &mut points[*point];
            p.trials += trials;
            p.errors += errors;
            p.erasures += erasures;
            wave_trials += trials;
            wave_quarantined += quars.len() as u64;
            for (frame, error) in quars {
                if seen_quars.insert((*point, *frame)) {
                    quarantine.push(QuarantinedTrial {
                        seed: cfg.seed,
                        point: *point,
                        snr_db: cfg.snrs_db[*point],
                        frame: *frame,
                        error: error.clone(),
                    });
                }
            }
        }
        meter.add_trials(wave_trials);
        c_waves.inc();
        c_trials.add(wave_trials);
        c_quar.add(wave_quarantined);

        // Stopping rules: pure functions of the integer tallies, applied
        // only here at the round boundary.
        for &i in &active {
            let status = evaluate_status(&points[i], cfg);
            if status == PointStatus::StoppedEarly {
                c_early.inc();
                obs.event(
                    "early_stop",
                    &[
                        ("kind", json::Value::Str("per".into())),
                        ("point", json::Value::U64(i as u64)),
                        ("trials", json::Value::U64(points[i].trials)),
                    ],
                );
            }
            points[i].status = status;
        }
        obs.event(
            "wave",
            &[
                ("kind", json::Value::Str("per".into())),
                ("trials", json::Value::U64(wave_trials)),
                ("banked_trials", json::Value::U64(meter.trials())),
                ("active_points", json::Value::U64(active.len() as u64)),
                ("quarantined", json::Value::U64(wave_quarantined)),
            ],
        );

        waves_since_checkpoint += 1;
        if waves_since_checkpoint >= cfg.checkpoint_every_rounds {
            waves_since_checkpoint = 0;
            let span = t_journal.start();
            let written = checkpoint(cfg, &key, &points, &quarantine);
            span.stop();
            if let Err(e) = written {
                journal_error.get_or_insert(e);
            }
        }
    };

    // Final checkpoint so a budget-stopped campaign can resume from its
    // exact exit state (and a complete one can be re-loaded as complete).
    if waves_since_checkpoint > 0 || points.iter().all(|p| p.status != PointStatus::Active) {
        let span = t_journal.start();
        let written = checkpoint(cfg, &key, &points, &quarantine);
        span.stop();
        if let Err(e) = written {
            journal_error.get_or_insert(e);
        }
    }

    let outcome = match stop_reason {
        None => Outcome::Complete,
        Some(reason) => Outcome::Partial {
            completed: points.iter().map(|p| p.trials).sum(),
            remaining: points
                .iter()
                .filter(|p| p.status == PointStatus::Active)
                .map(|p| cfg.max_frames - p.trials)
                .sum(),
            reason,
        },
    };

    obs.event(
        "campaign_done",
        &[
            ("kind", json::Value::Str("per".into())),
            ("complete", json::Value::Bool(outcome.is_complete())),
            (
                "banked_trials",
                json::Value::U64(points.iter().map(|p| p.trials).sum()),
            ),
            ("quarantined", json::Value::U64(quarantine.len() as u64)),
        ],
    );

    PerCampaignReport {
        name: link.name(),
        fault: faults.name(),
        rate_mbps: link.rate_mbps(),
        seed: cfg.seed,
        points,
        quarantine,
        outcome,
        resume,
        journal_error,
    }
}

/// Re-executes one quarantined trial from its ledger coordinates,
/// bit-identical to its first execution.
pub fn replay_trial(
    link: &dyn PhyLink,
    faults: &FaultChain,
    payload_len: usize,
    entry: &QuarantinedTrial,
) -> Result<bool, wlan_math::WlanError> {
    let point_rng = WlanRng::seed_from_u64(entry.seed).fork(entry.point as u64);
    frame_trial_at(link, faults, entry.snr_db, payload_len, &point_rng, entry.frame)
}

/// The stopping rule: a pure function of a point's integer tallies and
/// the campaign configuration, evaluated only at round boundaries. The
/// distributed coordinator applies the same function at the same
/// boundaries, which is what makes its per-point results bit-identical
/// to the single-process campaign's.
pub fn evaluate_status(p: &PointProgress, cfg: &PerCampaignConfig) -> PointStatus {
    if p.trials >= cfg.max_frames {
        return PointStatus::Exhausted;
    }
    if let Some(target) = cfg.target_half_width {
        if p.trials >= cfg.min_frames && wilson95(p.errors, p.trials).half_width() <= target {
            return PointStatus::StoppedEarly;
        }
    }
    PointStatus::Active
}

/// Zeroed per-point progress for every configured SNR.
pub fn fresh_points(cfg: &PerCampaignConfig) -> Vec<PointProgress> {
    cfg.snrs_db
        .iter()
        .map(|&snr_db| PointProgress {
            snr_db,
            trials: 0,
            errors: 0,
            erasures: 0,
            status: PointStatus::Active,
        })
        .collect()
}

/// Loads campaign state from the journal, salvages a damaged one, or
/// cold-starts. Never panics: a missing journal is a fresh start, an
/// unsalvageable failure is a cold start carrying the typed error, and
/// a damaged journal with a verified prefix restores that prefix so
/// only the damaged tail re-runs ([`journal::load_salvage`]).
fn restore(
    cfg: &PerCampaignConfig,
    key: &str,
) -> (Vec<PointProgress>, Vec<QuarantinedTrial>, Resume) {
    let Some(path) = cfg.journal.as_deref() else {
        return (fresh_points(cfg), Vec::new(), Resume::Fresh);
    };
    match journal::load_salvage(path, key) {
        (body, None) => match parse_body(cfg, &body, true) {
            Ok((points, quarantine)) => {
                let trials = points.iter().map(|p| p.trials).sum();
                (points, quarantine, Resume::Resumed { trials })
            }
            Err(error) => (fresh_points(cfg), Vec::new(), Resume::ColdStart { error }),
        },
        (_, Some(JournalError::Io(std::io::ErrorKind::NotFound))) => {
            (fresh_points(cfg), Vec::new(), Resume::Fresh)
        }
        (body, Some(error)) => {
            // A salvaged prefix may stop mid-record-stream: tolerate
            // missing tail points (they restart fresh). Checkpoints
            // write the quarantine ledger *before* the point tallies, so
            // any salvaged prefix is self-consistent: either the ledger
            // is complete for every restored tally, or tallies are
            // missing and their trials re-run (regenerating identical
            // ledger entries, deduplicated on push).
            match parse_body(cfg, &body, false) {
                Ok((points, quarantine)) if points.iter().any(|p| p.trials > 0) || !quarantine.is_empty() => {
                    let trials = points.iter().map(|p| p.trials).sum();
                    (points, quarantine, Resume::Salvaged { trials, error })
                }
                _ => (fresh_points(cfg), Vec::new(), Resume::ColdStart { error }),
            }
        }
    }
}

/// Parses journal body lines back into campaign state. With `complete`
/// set, every configured point must be present (an intact journal);
/// without it, a salvaged prefix may cover only the first points and
/// the rest start fresh.
fn parse_body(
    cfg: &PerCampaignConfig,
    body: &[String],
    complete: bool,
) -> Result<(Vec<PointProgress>, Vec<QuarantinedTrial>), JournalError> {
    let mut points = Vec::with_capacity(cfg.snrs_db.len());
    let mut quarantine = Vec::new();
    for (idx, line) in body.iter().enumerate() {
        // Body line `idx` sits at file line `idx + 3` (header, key first).
        let malformed = JournalError::Malformed { line: idx + 3 };
        if line.starts_with("point ") {
            let Some((i, trials, errors, erasures, status)) = parse_point_line(line) else {
                return Err(malformed);
            };
            let in_bounds =
                i == points.len() && i < cfg.snrs_db.len() && trials <= cfg.max_frames;
            if !in_bounds || errors > trials || erasures > errors {
                return Err(malformed);
            }
            points.push(PointProgress {
                snr_db: cfg.snrs_db[i],
                trials,
                errors,
                erasures,
                status,
            });
        } else if line.starts_with("quar ") {
            let Some(q) = QuarantinedTrial::from_line(line, cfg.seed) else {
                return Err(malformed);
            };
            quarantine.push(q);
        } else {
            return Err(malformed);
        }
    }
    if complete && points.len() != cfg.snrs_db.len() {
        return Err(JournalError::Truncated);
    }
    while points.len() < cfg.snrs_db.len() {
        points.push(PointProgress {
            snr_db: cfg.snrs_db[points.len()],
            trials: 0,
            errors: 0,
            erasures: 0,
            status: PointStatus::Active,
        });
    }
    Ok((points, quarantine))
}

fn checkpoint(
    cfg: &PerCampaignConfig,
    key: &str,
    points: &[PointProgress],
    quarantine: &[QuarantinedTrial],
) -> Result<(), JournalError> {
    let Some(path) = cfg.journal.as_deref() else {
        return Ok(());
    };
    // Ledger first, tallies after: a salvaged prefix then never holds a
    // tally whose quarantine entries were lost — either the full ledger
    // precedes the surviving tallies, or lost tallies re-run and their
    // entries deduplicate against the restored ledger.
    let mut body: Vec<String> = quarantine.iter().map(QuarantinedTrial::to_line).collect();
    body.extend(points.iter().enumerate().map(|(i, p)| p.to_line(i)));
    journal::save(path, key, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_core::linksim::{sweep_per_faulted, FhssLink};
    use wlan_fault::FaultChain;

    fn link() -> FhssLink {
        FhssLink
    }

    fn base_cfg() -> PerCampaignConfig {
        PerCampaignConfig::new(&[2.0, 5.0, 8.0], 20, 64, 99)
            .with_budget(Budget::unlimited())
            .with_threads(1)
    }

    #[test]
    fn complete_campaign_matches_one_shot_sweep() {
        let l = link();
        let cfg = base_cfg();
        let report = run_per_campaign(&l, &FaultChain::clean(), &cfg);
        assert!(report.outcome.is_complete());
        assert_eq!(report.resume, Resume::Fresh);

        let sweep = sweep_per_faulted(&l, &FaultChain::clean(), &cfg.snrs_db, 20, 64, 99);
        let view = report.to_fault_sweep();
        assert_eq!(view, sweep, "campaign tallies must equal the one-shot sweep");
    }

    #[test]
    fn trial_budget_yields_partial_prefix() {
        let l = link();
        let full = run_per_campaign(&l, &FaultChain::clean(), &base_cfg());
        // 3 points × 32 trials = 96 per wave; cap at one wave.
        let cfg = base_cfg().with_budget(Budget::unlimited().with_max_trials(96));
        let partial = run_per_campaign(&l, &FaultChain::clean(), &cfg);
        let Outcome::Partial {
            completed,
            remaining,
            reason,
        } = partial.outcome
        else {
            panic!("expected partial outcome, got {:?}", partial.outcome);
        };
        assert_eq!(completed, 96);
        assert_eq!(remaining, 96);
        assert_eq!(reason, crate::budget::StopReason::TrialBudget);
        // The partial tallies are a prefix: first 32 trials of each point
        // were also the first 32 of the full run (same streams), so
        // errors so far can never exceed the full-run errors.
        for (p, f) in partial.points.iter().zip(&full.points) {
            assert_eq!(p.trials, 32);
            assert!(p.errors <= f.errors);
        }
    }

    #[test]
    fn early_stopping_stops_before_max_and_reports_ci() {
        let l = link();
        // At high SNR the PER is ~0, so Wilson collapses fast; a loose
        // target must stop well before max_frames.
        let mut cfg = PerCampaignConfig::new(&[12.0], 20, 4096, 7)
            .with_budget(Budget::unlimited())
            .with_threads(1)
            .with_target_half_width(0.05);
        cfg.min_frames = 32;
        let report = run_per_campaign(&l, &FaultChain::clean(), &cfg);
        assert!(report.outcome.is_complete());
        let p = &report.points[0];
        assert_eq!(p.status, PointStatus::StoppedEarly);
        assert!(p.trials < 4096, "stopped at {}", p.trials);
        assert_eq!(p.trials % ROUND_TRIALS, 0, "stops land on round boundaries");
        let ci = p.ci().unwrap();
        assert!(ci.half_width() <= 0.05, "achieved {}", ci.half_width());
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let l = link();
        let serial = run_per_campaign(&l, &FaultChain::clean(), &base_cfg().with_threads(1));
        let parallel = run_per_campaign(&l, &FaultChain::clean(), &base_cfg().with_threads(4));
        assert_eq!(serial.points, parallel.points);
        assert_eq!(serial.quarantine, parallel.quarantine);
    }

    #[test]
    fn resume_from_journal_is_bit_identical() {
        let l = link();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wlan_per_resume_{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let uninterrupted = run_per_campaign(&l, &FaultChain::clean(), &base_cfg());

        // Interrupt after every wave until done, resuming each time. The
        // trial budget is cumulative across resume, so each invocation
        // gets a cap one past what the journal already banked: exactly
        // one more wave runs per invocation.
        let mut rounds = 0;
        let mut completed = 0u64;
        let report = loop {
            let cfg = base_cfg()
                .with_journal(path.clone())
                .with_budget(Budget::unlimited().with_max_trials(completed + 1));
            let r = run_per_campaign(&l, &FaultChain::clean(), &cfg);
            assert!(r.journal_error.is_none(), "{:?}", r.journal_error);
            rounds += 1;
            assert!(rounds < 100, "campaign failed to converge");
            completed = r.completed_trials();
            if r.outcome.is_complete() {
                break r;
            }
        };
        assert!(rounds > 1, "interruption never happened");
        assert_eq!(report.points, uninterrupted.points);
        assert_eq!(report.quarantine, uninterrupted.quarantine);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_journal_cold_starts_with_typed_error() {
        let l = link();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wlan_per_corrupt_{}.journal", std::process::id()));
        std::fs::write(&path, "WLANJRNL 1\nkey nonsense\nsum 0000000000000000\n").unwrap();

        let cfg = base_cfg().with_journal(path.clone());
        let report = run_per_campaign(&l, &FaultChain::clean(), &cfg);
        assert!(
            matches!(report.resume, Resume::ColdStart { .. }),
            "{:?}",
            report.resume
        );
        // Cold start must still produce the exact campaign result.
        let fresh = run_per_campaign(&l, &FaultChain::clean(), &base_cfg());
        assert_eq!(report.points, fresh.points);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn config_change_invalidates_journal_key() {
        let l = link();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wlan_per_key_{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let r1 = run_per_campaign(&l, &FaultChain::clean(), &base_cfg().with_journal(path.clone()));
        assert!(r1.outcome.is_complete());

        // Different seed → same journal path must be rejected as a
        // different campaign, not silently reused.
        let mut cfg2 = base_cfg().with_journal(path.clone());
        cfg2.seed = 100;
        let r2 = run_per_campaign(&l, &FaultChain::clean(), &cfg2);
        assert_eq!(
            r2.resume,
            Resume::ColdStart {
                error: JournalError::KeyMismatch
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_reproduces_quarantined_trials() {
        // Hard truncation forces FrameTruncated erasures, so the
        // quarantine ledger is nonempty and each entry must replay to the
        // same typed error.
        let l = link();
        let faults = wlan_fault::FaultKind::FrameTruncation.chain(1.0);
        let cfg = base_cfg();
        let report = run_per_campaign(&l, &faults, &cfg);
        assert!(
            !report.quarantine.is_empty(),
            "sample-drop chain should quarantine some trials"
        );
        for q in report.quarantine.iter().take(8) {
            let replayed = replay_trial(&l, &faults, cfg.payload_len, q);
            let err = replayed.expect_err("quarantined trial must replay to an error");
            assert_eq!(err.to_string(), q.error);
        }
    }
}
