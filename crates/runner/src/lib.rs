//! # wlan-runner — survivable Monte-Carlo campaigns
//!
//! The simulation crates answer "what is the PER at this SNR?"; this
//! crate answers "how do I get that number out of a machine that might
//! run out of time, get `SIGKILL`ed, or hit a pathological trial along
//! the way?" — the operational robustness layer the paper's multi-day
//! evaluation campaigns need.
//!
//! Every sweep entry point in the workspace gets a campaign wrapper with
//! four mechanisms:
//!
//! * **Budgets** ([`budget`]): per-campaign trial and wall-clock limits
//!   (`WLAN_MAX_TRIALS`, `WLAN_BUDGET_MS` or programmatic) that
//!   terminate cleanly at a wave boundary with
//!   [`budget::Outcome::Partial`] — never a panic, never a corrupt
//!   result.
//! * **Sequential early stopping** (`wlan_math::ci`): a PER point stops
//!   as soon as its Wilson 95 % half-width reaches the target, and the
//!   report carries the achieved interval, so easy high-SNR points stop
//!   after hundreds of trials instead of burning the full budget.
//! * **Checkpoint/resume** ([`journal`]): versioned, checksummed,
//!   dependency-free journals written atomically; a resumed campaign
//!   reproduces the uninterrupted campaign's report bit-for-bit, and a
//!   corrupt journal is a typed error plus a cold start, never a panic.
//! * **Trial quarantine** ([`quarantine`]): trials that return typed
//!   `WlanError`s (or MAC runs that blow their step budget) land in a
//!   ledger with their exact `(seed, point, frame)` stream coordinates
//!   for later bit-identical replay, while the campaign keeps going.
//!
//! Determinism is inherited, not re-derived: campaigns fan out over
//! `wlan_math::par` using the same stream addressing as the one-shot
//! sweeps, so a completed campaign equals the one-shot sweep at any
//! `WLAN_THREADS` setting.

#![warn(missing_docs)]

pub mod budget;
pub mod capacity;
pub mod coverage;
pub mod journal;
pub mod per;
pub mod quarantine;
pub mod traffic;

pub use budget::{Budget, Outcome, StopReason};
pub use journal::JournalError;
pub use quarantine::{QuarantinedRun, QuarantinedTrial};

/// How a campaign invocation started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resume {
    /// No journal configured, or none on disk yet.
    Fresh,
    /// State restored from a verified journal.
    Resumed {
        /// Trials already banked by earlier invocations.
        trials: u64,
    },
    /// The journal was damaged, but its cumulative checksum chain
    /// verified a prefix ([`journal::load_salvage`]); the campaign
    /// restored that prefix and re-runs only the damaged tail.
    Salvaged {
        /// Trials recovered from the verified prefix.
        trials: u64,
        /// What was wrong with the journal.
        error: JournalError,
    },
    /// A journal existed but could not be trusted (and nothing could be
    /// salvaged); the campaign started over, carrying the reason.
    ColdStart {
        /// Why the journal was rejected.
        error: JournalError,
    },
}
