//! Survivable MAC traffic-ensemble campaigns.
//!
//! Wraps `wlan_mac::traffic::simulate_traffic_multi` in budgets,
//! checkpoint/resume, and run quarantine. The ensemble's parallel unit is
//! the run: run `r` always uses `ensemble_seed(cfg.seed, r)`, runs are
//! processed in index order in fixed-size waves, and checkpoints land
//! only on wave boundaries — so the set of finished runs is always an
//! index prefix, and a resumed campaign's ensemble equals the
//! uninterrupted one's bit-for-bit (per-run floats are journaled as IEEE
//! bit patterns and the summary statistics are re-folded in run order
//! from those exact values).
//!
//! Quarantine here means *step-budget truncation*: a run whose
//! contention-loop step count exceeds `max_steps_per_run` (runaway
//! backoff under pathological loss) is excluded from the ensemble
//! statistics and recorded with its derived seed and step count, so it
//! can be re-run and dissected standalone while the campaign completes.

use std::path::PathBuf;

use wlan_mac::traffic::{
    ensemble_seed, simulate_traffic_stepped, TrafficConfig, TrafficEnsemble, TrafficResult,
};
use wlan_math::par;
use wlan_math::stats::RunningStats;

use crate::budget::{Budget, BudgetMeter, Outcome};
use crate::journal::{self, f64_to_hex, kv_f64, kv_u64, JournalError};
use crate::quarantine::QuarantinedRun;
use crate::Resume;

/// Runs per wave: budget checks and checkpoints land between waves.
pub const RUNS_PER_WAVE: usize = 4;

/// Configuration for a survivable traffic-ensemble campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficCampaignConfig {
    /// The per-run simulation configuration (its `seed` is the ensemble
    /// master seed; run `r` uses `ensemble_seed(seed, r)`).
    pub base: TrafficConfig,
    /// Ensemble size.
    pub runs: usize,
    /// Per-run step budget; a run exceeding it is quarantined.
    /// `u64::MAX` disables quarantine.
    pub max_steps_per_run: u64,
    /// Resource limits: `max_trials` (= runs) is cumulative across
    /// resume, `wall_ms` is per-invocation (see [`crate::budget`]).
    pub budget: Budget,
    /// Checkpoint journal path; `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// Worker threads; `None` = the `WLAN_THREADS` pool.
    pub threads: Option<usize>,
}

impl TrafficCampaignConfig {
    /// A campaign equivalent to `simulate_traffic_multi(base, runs)`:
    /// no step budget, budget from the environment, no journal.
    pub fn new(base: TrafficConfig, runs: usize) -> Self {
        Self {
            base,
            runs,
            max_steps_per_run: u64::MAX,
            budget: Budget::from_env(),
            journal: None,
            threads: None,
        }
    }

    /// Sets the per-run step budget (quarantine threshold).
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps_per_run = steps;
        self
    }

    /// Sets the checkpoint journal path.
    pub fn with_journal(mut self, path: PathBuf) -> Self {
        self.journal = Some(path);
        self
    }

    /// Replaces the budget (default: from the environment).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Pins the worker thread count (results are identical at any value).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    fn key(&self) -> String {
        format!(
            "traffic v1 runs={} maxsteps={} cfg={:?}",
            self.runs, self.max_steps_per_run, self.base
        )
    }
}

/// One finished run: either a result or a quarantine entry.
#[derive(Debug, Clone, PartialEq)]
enum RunRecord {
    Done(usize, TrafficResult),
    Quarantined(QuarantinedRun),
}

impl RunRecord {
    fn index(&self) -> usize {
        match self {
            RunRecord::Done(i, _) => *i,
            RunRecord::Quarantined(q) => q.run,
        }
    }

    fn to_line(&self) -> String {
        match self {
            RunRecord::Done(i, r) => format!(
                "run i={i} offered={} delivered={} meand={} p95={} backlog={} retries={} dropped={} prot={}",
                f64_to_hex(r.offered_mbps),
                f64_to_hex(r.delivered_mbps),
                f64_to_hex(r.mean_delay_us),
                f64_to_hex(r.p95_delay_us),
                r.backlog,
                r.retries,
                r.dropped,
                r.protected_tx,
            ),
            RunRecord::Quarantined(q) => q.to_line(),
        }
    }

    fn from_line(line: &str) -> Option<Self> {
        if line.starts_with("quarrun ") {
            return QuarantinedRun::from_line(line).map(RunRecord::Quarantined);
        }
        let rest = line.strip_prefix("run ")?;
        let mut t = rest.split_whitespace();
        let i = kv_u64(t.next()?, "i")? as usize;
        let offered_mbps = kv_f64(t.next()?, "offered")?;
        let delivered_mbps = kv_f64(t.next()?, "delivered")?;
        let mean_delay_us = kv_f64(t.next()?, "meand")?;
        let p95_delay_us = kv_f64(t.next()?, "p95")?;
        let backlog = kv_u64(t.next()?, "backlog")? as usize;
        let retries = kv_u64(t.next()?, "retries")?;
        let dropped = kv_u64(t.next()?, "dropped")?;
        let protected_tx = kv_u64(t.next()?, "prot")?;
        if t.next().is_some() {
            return None;
        }
        Some(RunRecord::Done(
            i,
            TrafficResult {
                offered_mbps,
                delivered_mbps,
                mean_delay_us,
                p95_delay_us,
                backlog,
                retries,
                dropped,
                protected_tx,
            },
        ))
    }
}

/// The full result of a traffic campaign invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficCampaignReport {
    /// Completed runs as `(run index, result)`, in run order.
    pub runs: Vec<(usize, TrafficResult)>,
    /// Step-budget-truncated runs, in run order.
    pub quarantine: Vec<QuarantinedRun>,
    /// Delivered throughput across completed runs (Mbps).
    pub delivered_mbps: RunningStats,
    /// Mean frame delay across completed runs (µs).
    pub mean_delay_us: RunningStats,
    /// Dropped frames across completed runs.
    pub dropped: RunningStats,
    /// Whether the campaign finished or hit a budget.
    pub outcome: Outcome,
    /// How this invocation started.
    pub resume: Resume,
    /// Set when a checkpoint failed to write.
    pub journal_error: Option<JournalError>,
}

impl TrafficCampaignReport {
    /// Compatibility view as [`TrafficEnsemble`] over the completed runs.
    /// With no quarantine and a complete outcome this equals
    /// `simulate_traffic_multi` bit-for-bit.
    pub fn to_ensemble(&self) -> TrafficEnsemble {
        TrafficEnsemble {
            runs: self.runs.iter().map(|(_, r)| *r).collect(),
            delivered_mbps: self.delivered_mbps,
            mean_delay_us: self.mean_delay_us,
            dropped: self.dropped,
        }
    }
}

/// Runs (or resumes) a survivable traffic-ensemble campaign.
///
/// # Panics
///
/// Panics if `runs` is zero (the underlying simulator's own
/// preconditions — positive rates and times — apply per run).
pub fn run_traffic_campaign(cfg: &TrafficCampaignConfig) -> TrafficCampaignReport {
    assert!(cfg.runs > 0, "need at least one run");

    let key = cfg.key();
    let (mut records, resume) = restore(cfg, &key);
    // Trials (= simulated runs) restored from the journal count against
    // the cumulative trial budget; the wall clock is per-invocation.
    let mut meter = BudgetMeter::resumed(cfg.budget, records.len() as u64);
    let mut journal_error: Option<JournalError> = None;

    let obs = wlan_obs::global();
    let c_waves = obs.counter("runner.waves");
    let c_trials = obs.counter("runner.trials");
    let c_quar = obs.counter("runner.quarantined");
    let t_journal = obs.histogram("runner.journal_write");

    let stop_reason = loop {
        let done = records.len();
        if done >= cfg.runs {
            break None;
        }
        if let Some(reason) = meter.exhausted() {
            break Some(reason);
        }

        let wave: Vec<usize> = (done..cfg.runs.min(done + RUNS_PER_WAVE)).collect();
        let run_one = |_: usize, &r: &usize| {
            let seed = ensemble_seed(cfg.base.seed, r);
            let stepped = simulate_traffic_stepped(
                &TrafficConfig {
                    seed,
                    ..cfg.base
                },
                cfg.max_steps_per_run,
            );
            if stepped.truncated {
                RunRecord::Quarantined(QuarantinedRun {
                    run: r,
                    seed,
                    steps: stepped.steps,
                })
            } else {
                RunRecord::Done(r, stepped.result)
            }
        };
        let wave_records = match cfg.threads {
            Some(t) => par::parallel_map_with_threads(t, &wave, run_one),
            None => par::parallel_map(&wave, run_one),
        };
        meter.add_trials(wave_records.len() as u64);
        c_waves.inc();
        c_trials.add(wave_records.len() as u64);
        c_quar.add(
            wave_records
                .iter()
                .filter(|r| matches!(r, RunRecord::Quarantined(_)))
                .count() as u64,
        );
        records.extend(wave_records);

        let span = t_journal.start();
        let written = checkpoint(cfg, &key, &records);
        span.stop();
        if let Err(e) = written {
            journal_error.get_or_insert(e);
        }
    };

    let outcome = match stop_reason {
        None => Outcome::Complete,
        Some(reason) => Outcome::Partial {
            completed: records.len() as u64,
            remaining: (cfg.runs - records.len()) as u64,
            reason,
        },
    };

    // Summary statistics: re-folded in run order from the exact per-run
    // values (journaled as bit patterns), so resumed == uninterrupted.
    let mut runs = Vec::new();
    let mut quarantine = Vec::new();
    let mut delivered_mbps = RunningStats::new();
    let mut mean_delay_us = RunningStats::new();
    let mut dropped = RunningStats::new();
    for rec in records {
        match rec {
            RunRecord::Done(i, r) => {
                delivered_mbps.push(r.delivered_mbps);
                mean_delay_us.push(r.mean_delay_us);
                dropped.push(r.dropped as f64);
                runs.push((i, r));
            }
            RunRecord::Quarantined(q) => quarantine.push(q),
        }
    }

    TrafficCampaignReport {
        runs,
        quarantine,
        delivered_mbps,
        mean_delay_us,
        dropped,
        outcome,
        resume,
        journal_error,
    }
}

fn restore(cfg: &TrafficCampaignConfig, key: &str) -> (Vec<RunRecord>, Resume) {
    let Some(path) = cfg.journal.as_deref() else {
        return (Vec::new(), Resume::Fresh);
    };
    match journal::load(path, key) {
        Ok(body) => match parse_body(cfg, &body) {
            Ok(records) => {
                let trials = records.len() as u64;
                (records, Resume::Resumed { trials })
            }
            Err(error) => (Vec::new(), Resume::ColdStart { error }),
        },
        Err(JournalError::Io(std::io::ErrorKind::NotFound)) => (Vec::new(), Resume::Fresh),
        Err(error) => (Vec::new(), Resume::ColdStart { error }),
    }
}

fn parse_body(cfg: &TrafficCampaignConfig, body: &[String]) -> Result<Vec<RunRecord>, JournalError> {
    let mut records = Vec::with_capacity(body.len());
    for (idx, line) in body.iter().enumerate() {
        let malformed = JournalError::Malformed { line: idx + 3 };
        let Some(rec) = RunRecord::from_line(line) else {
            return Err(malformed);
        };
        // Finished runs must form an index prefix in order — anything
        // else means the journal was not written by this campaign shape.
        if rec.index() != idx || idx >= cfg.runs {
            return Err(malformed);
        }
        records.push(rec);
    }
    Ok(records)
}

fn checkpoint(
    cfg: &TrafficCampaignConfig,
    key: &str,
    records: &[RunRecord],
) -> Result<(), JournalError> {
    let Some(path) = cfg.journal.as_deref() else {
        return Ok(());
    };
    let body: Vec<String> = records.iter().map(RunRecord::to_line).collect();
    journal::save(path, key, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_mac::arq::{ArqConfig, GeLossConfig};
    use wlan_mac::traffic::simulate_traffic_multi;
    use wlan_mac::MacProfile;

    fn base() -> TrafficConfig {
        TrafficConfig {
            profile: MacProfile::dot11a(54.0),
            n_stations: 4,
            payload_bytes: 800,
            arrival_rate_hz: 60.0,
            sim_time_us: 200_000.0,
            seed: 33,
            arq: ArqConfig::disabled(),
            loss: GeLossConfig::clean(),
        }
    }

    #[test]
    fn complete_campaign_matches_simulate_traffic_multi() {
        let cfg = TrafficCampaignConfig::new(base(), 6)
            .with_budget(Budget::unlimited())
            .with_threads(1);
        let report = run_traffic_campaign(&cfg);
        assert!(report.outcome.is_complete());
        assert!(report.quarantine.is_empty());
        let ensemble = simulate_traffic_multi(&base(), 6);
        assert_eq!(report.to_ensemble(), ensemble);
    }

    #[test]
    fn budget_stops_on_wave_boundary() {
        let cfg = TrafficCampaignConfig::new(base(), 10)
            .with_budget(Budget::unlimited().with_max_trials(4))
            .with_threads(1);
        let report = run_traffic_campaign(&cfg);
        assert_eq!(
            report.outcome,
            Outcome::Partial {
                completed: 4,
                remaining: 6,
                reason: crate::budget::StopReason::TrialBudget
            }
        );
        assert_eq!(report.runs.len(), 4);
    }

    #[test]
    fn resume_from_journal_matches_uninterrupted() {
        let path = std::env::temp_dir()
            .join(format!("wlan_traffic_resume_{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let uninterrupted = run_traffic_campaign(
            &TrafficCampaignConfig::new(base(), 8)
                .with_budget(Budget::unlimited())
                .with_threads(1),
        );

        // The trial budget is cumulative across resume, so each loop
        // raises the cap by one wave's worth of runs.
        let mut loops: u64 = 0;
        let resumed = loop {
            let cfg = TrafficCampaignConfig::new(base(), 8)
                .with_budget(Budget::unlimited().with_max_trials(4 * (loops + 1)))
                .with_journal(path.clone())
                .with_threads(1);
            let r = run_traffic_campaign(&cfg);
            loops += 1;
            assert!(loops < 10, "failed to converge");
            if r.outcome.is_complete() {
                break r;
            }
        };
        assert!(loops > 1);
        assert!(matches!(resumed.resume, Resume::Resumed { .. }));
        assert_eq!(resumed.runs, uninterrupted.runs);
        assert_eq!(resumed.delivered_mbps, uninterrupted.delivered_mbps);
        assert_eq!(resumed.mean_delay_us, uninterrupted.mean_delay_us);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tiny_step_budget_quarantines_runs_but_completes() {
        let cfg = TrafficCampaignConfig::new(base(), 4)
            .with_budget(Budget::unlimited())
            .with_max_steps(50)
            .with_threads(1);
        let report = run_traffic_campaign(&cfg);
        assert!(report.outcome.is_complete());
        assert_eq!(report.quarantine.len(), 4, "50 steps cannot finish 200 ms");
        assert!(report.runs.is_empty());
        for (i, q) in report.quarantine.iter().enumerate() {
            assert_eq!(q.run, i);
            assert_eq!(q.seed, ensemble_seed(base().seed, i));
            assert!(q.steps >= 50);
        }
    }

    #[test]
    fn quarantined_runs_round_trip_through_journal() {
        let path = std::env::temp_dir()
            .join(format!("wlan_traffic_quar_{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = TrafficCampaignConfig::new(base(), 4)
            .with_budget(Budget::unlimited())
            .with_max_steps(50)
            .with_journal(path.clone())
            .with_threads(1);
        let first = run_traffic_campaign(&cfg);
        // Re-invoking a complete campaign resumes it without re-running.
        let second = run_traffic_campaign(&cfg);
        assert!(matches!(second.resume, Resume::Resumed { trials: 4 }));
        assert_eq!(second.quarantine, first.quarantine);
        let _ = std::fs::remove_file(&path);
    }
}
