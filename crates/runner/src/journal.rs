//! Checkpoint journal: versioned, checksummed, written atomically.
//!
//! A campaign checkpoints its integer tallies (and only its tallies — no
//! floats that depend on fold order are derived at load time from stored
//! bit patterns) into a small line-oriented text file:
//!
//! ```text
//! WLANJRNL 1
//! key per v1 seed=7 ...
//! point i=0 trials=96 errors=12 erasures=3 status=active
//! sum 1f2e3d4c5b6a7988
//! ```
//!
//! Every `sum` line is the FNV-1a 64 digest of every byte before it.
//! [`save`] writes one after each body line, so the file carries a chain
//! of cumulative checksums and the *last* one covers the whole file; a
//! torn, truncated, or hand-edited file is detected rather than trusted.
//! Writes go to a temporary sibling file which is then renamed over the
//! target, so a `SIGKILL` mid-checkpoint leaves either the old journal
//! or the new one — never a hybrid. Body lines starting with `sum ` are
//! reserved for this chain; campaign records never use that prefix.
//!
//! Loading never panics: every failure mode maps to a typed
//! [`JournalError`]. [`load`] is all-or-nothing — any defect and the
//! caller cold-starts. [`load_salvage`] goes one step further: when the
//! file is damaged it walks the checksum chain and returns the body
//! lines of the longest verified prefix, so a resumed campaign only
//! re-runs the damaged tail instead of starting over.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// File magic for campaign journals.
pub const MAGIC: &str = "WLANJRNL";
/// Current journal format version.
pub const VERSION: u32 = 1;

/// Everything that can go wrong loading a journal. `Io(NotFound)` is the
/// ordinary "no checkpoint yet" case; all other variants mean a journal
/// exists but cannot be trusted, and the campaign should cold-start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The file could not be read or written.
    Io(std::io::ErrorKind),
    /// The first line is not `WLANJRNL <version>`.
    MissingHeader,
    /// The header names a format version this build does not speak.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
    },
    /// The file lacks the trailing `sum` line (e.g. cut short).
    Truncated,
    /// The `sum` line does not match the digest of the preceding bytes.
    ChecksumMismatch,
    /// A body line failed to parse (1-based line number in the file).
    Malformed {
        /// Line number of the offending line.
        line: usize,
    },
    /// The journal's `key` line describes a different campaign
    /// configuration than the one trying to resume from it.
    KeyMismatch,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(kind) => write!(f, "journal i/o error: {kind}"),
            JournalError::MissingHeader => write!(f, "journal missing {MAGIC} header"),
            JournalError::VersionMismatch { found } => {
                write!(f, "journal version {found}, this build speaks {VERSION}")
            }
            JournalError::Truncated => write!(f, "journal truncated (no sum line)"),
            JournalError::ChecksumMismatch => write!(f, "journal checksum mismatch"),
            JournalError::Malformed { line } => write!(f, "journal line {line} malformed"),
            JournalError::KeyMismatch => {
                write!(f, "journal belongs to a different campaign configuration")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// FNV-1a 64-bit digest — tiny, dependency-free, and plenty to catch
/// torn writes and hand edits (this is corruption detection, not crypto).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders `value` as the 16-hex-digit bit pattern of its IEEE-754
/// encoding, so journal round-trips are bit-exact (no decimal drift).
pub fn f64_to_hex(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

/// Inverse of [`f64_to_hex`].
pub fn f64_from_hex(hex: &str) -> Option<f64> {
    u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
}

/// Saves a journal atomically: header + `key` line + `body` lines are
/// written to `<path>.tmp`, then renamed over `path`. A cumulative `sum`
/// line follows every body line (each digesting all bytes before it), so
/// [`load_salvage`] can recover the longest intact prefix of a later
/// corruption; the final `sum` line doubles as the whole-file checksum
/// [`load`] verifies.
pub fn save(path: &Path, key: &str, body: &[String]) -> Result<(), JournalError> {
    let mut text = format!("{MAGIC} {VERSION}\nkey {key}\n");
    for line in body {
        text.push_str(line);
        text.push('\n');
        let digest = fnv1a64(text.as_bytes());
        text.push_str(&format!("sum {digest:016x}\n"));
    }
    if body.is_empty() {
        let digest = fnv1a64(text.as_bytes());
        text.push_str(&format!("sum {digest:016x}\n"));
    }

    let tmp = tmp_path(path);
    fs::write(&tmp, &text).map_err(|e| JournalError::Io(e.kind()))?;
    fs::rename(&tmp, path).map_err(|e| JournalError::Io(e.kind()))
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Loads and verifies a journal, returning its body lines.
///
/// Verification order: readability, checksum over everything before the
/// `sum` line, magic + version header, then the campaign `key`. Only a
/// fully verified journal yields body lines; any defect is a typed error
/// and the caller cold-starts.
pub fn load(path: &Path, expected_key: &str) -> Result<Vec<String>, JournalError> {
    let text = fs::read_to_string(path).map_err(|e| JournalError::Io(e.kind()))?;

    // Peel the final `sum` line and verify the digest of what precedes it.
    let stripped = text.strip_suffix('\n').ok_or(JournalError::Truncated)?;
    let (prefix, sum_line) = match stripped.rfind('\n') {
        Some(i) => (&stripped[..=i], &stripped[i + 1..]),
        None => return Err(JournalError::Truncated),
    };
    let sum_hex = sum_line.strip_prefix("sum ").ok_or(JournalError::Truncated)?;
    let recorded = u64::from_str_radix(sum_hex, 16).map_err(|_| JournalError::ChecksumMismatch)?;
    if fnv1a64(prefix.as_bytes()) != recorded {
        return Err(JournalError::ChecksumMismatch);
    }

    let mut lines = prefix.lines();
    let header = lines.next().ok_or(JournalError::MissingHeader)?;
    let version_str = header
        .strip_prefix(MAGIC)
        .map(str::trim)
        .ok_or(JournalError::MissingHeader)?;
    let found: u32 = version_str.parse().map_err(|_| JournalError::MissingHeader)?;
    if found != VERSION {
        return Err(JournalError::VersionMismatch { found });
    }

    let key_line = lines.next().ok_or(JournalError::Truncated)?;
    let key = key_line.strip_prefix("key ").ok_or(JournalError::Malformed { line: 2 })?;
    if key != expected_key {
        return Err(JournalError::KeyMismatch);
    }

    // Interior `sum` lines are part of the salvage chain, not the body;
    // the final digest verified above already covers their bytes.
    Ok(lines
        .filter(|l| !l.starts_with("sum "))
        .map(str::to_owned)
        .collect())
}

/// Loads a journal, salvaging what it can from a damaged file.
///
/// * Fully intact: `(body, None)` — identical to [`load`].
/// * Damaged after a verified `sum` line: the body lines of the longest
///   prefix whose cumulative checksum chain verifies, plus the typed
///   error describing the damage. The campaign re-runs only the tail.
/// * Damaged before any `sum` verifies (header/key corrupt, wrong key,
///   wrong version, unreadable): `(vec![], Some(error))` — a cold start.
///
/// `Io(NotFound)` comes back as `(vec![], Some(Io(NotFound)))`; callers
/// distinguish "no checkpoint yet" from damage exactly as with [`load`].
pub fn load_salvage(path: &Path, expected_key: &str) -> (Vec<String>, Option<JournalError>) {
    match load(path, expected_key) {
        Ok(body) => (body, None),
        // salvage_prefix re-verifies header and key from scratch, so an
        // unreadable file, wrong version, or wrong key salvages nothing.
        Err(error) => match salvage_prefix(path, expected_key) {
            Some(body) => (body, Some(error)),
            None => (Vec::new(), Some(error)),
        },
    }
}

/// Walks the cumulative checksum chain from the top of the file and
/// returns the body lines covered by the last `sum` line that verifies.
/// `None` when the header or key is damaged or no `sum` line verifies —
/// there is no trustworthy prefix at all.
fn salvage_prefix(path: &Path, expected_key: &str) -> Option<Vec<String>> {
    // Read raw bytes: corruption may have destroyed UTF-8 validity, and
    // the intact prefix must still be recoverable.
    let bytes = fs::read(path).ok()?;

    let mut offset = 0usize; // start of the current line
    let mut line_no = 0usize;
    let mut body: Vec<String> = Vec::new();
    let mut verified_len: Option<usize> = None; // body lines under a good sum

    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break; // torn final line: unverifiable, stop at the last sum
        };
        let line_end = offset + nl;
        let Ok(line) = std::str::from_utf8(&bytes[offset..line_end]) else {
            break; // damage produced invalid UTF-8: stop scanning
        };
        match line_no {
            0 => {
                let ok = line
                    .strip_prefix(MAGIC)
                    .map(str::trim)
                    .and_then(|v| v.parse::<u32>().ok())
                    == Some(VERSION);
                if !ok {
                    return None;
                }
            }
            1 => {
                if line.strip_prefix("key ") != Some(expected_key) {
                    return None;
                }
            }
            _ => {
                if let Some(sum_hex) = line.strip_prefix("sum ") {
                    let recorded = u64::from_str_radix(sum_hex, 16).ok();
                    if recorded == Some(fnv1a64(&bytes[..offset])) {
                        verified_len = Some(body.len());
                    } else {
                        break; // chain broken: everything beyond is suspect
                    }
                } else {
                    body.push(line.to_owned());
                }
            }
        }
        offset = line_end + 1;
        line_no += 1;
    }

    verified_len.map(|n| {
        body.truncate(n);
        body
    })
}

/// Parses `name=value` out of one whitespace-separated journal token,
/// checking the name. Campaign modules build their line parsers on this.
pub fn kv<'a>(token: &'a str, name: &str) -> Option<&'a str> {
    let (k, v) = token.split_once('=')?;
    (k == name).then_some(v)
}

/// `kv` for `u64` fields.
pub fn kv_u64(token: &str, name: &str) -> Option<u64> {
    kv(token, name)?.parse().ok()
}

/// `kv` for bit-exact `f64` fields (hex bit patterns, see [`f64_to_hex`]).
pub fn kv_f64(token: &str, name: &str) -> Option<f64> {
    f64_from_hex(kv(token, name)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wlan_journal_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_body_lines() {
        let path = tmp_file("roundtrip");
        let body = vec!["point i=0 trials=3".to_owned(), "quar point=1 frame=2".to_owned()];
        save(&path, "test v1 seed=7", &body).unwrap();
        let loaded = load(&path, "test v1 seed=7").unwrap();
        assert_eq!(loaded, body);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_not_found_io() {
        let err = load(Path::new("/nonexistent/journal"), "k").unwrap_err();
        assert_eq!(err, JournalError::Io(std::io::ErrorKind::NotFound));
    }

    #[test]
    fn flipped_byte_is_checksum_mismatch() {
        let path = tmp_file("corrupt");
        save(&path, "k", &["point i=0 trials=3".to_owned()]).unwrap();
        let mut text = fs::read_to_string(&path).unwrap();
        text = text.replace("trials=3", "trials=4");
        fs::write(&path, text).unwrap();
        assert_eq!(load(&path, "k").unwrap_err(), JournalError::ChecksumMismatch);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_is_detected() {
        let path = tmp_file("trunc");
        save(&path, "k", &["point i=0".to_owned(), "point i=1".to_owned()]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        let err = load(&path, "k").unwrap_err();
        assert!(
            matches!(err, JournalError::Truncated | JournalError::ChecksumMismatch),
            "{err:?}"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn version_bump_is_rejected_with_found_version() {
        let path = tmp_file("version");
        // Hand-build a well-checksummed file with a future version.
        let mut text = String::from("WLANJRNL 9\nkey k\n");
        let digest = fnv1a64(text.as_bytes());
        text.push_str(&format!("sum {digest:016x}\n"));
        fs::write(&path, text).unwrap();
        assert_eq!(
            load(&path, "k").unwrap_err(),
            JournalError::VersionMismatch { found: 9 }
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn wrong_key_is_key_mismatch() {
        let path = tmp_file("key");
        save(&path, "campaign A", &[]).unwrap();
        assert_eq!(load(&path, "campaign B").unwrap_err(), JournalError::KeyMismatch);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn garbage_file_is_missing_header_or_checksum() {
        let path = tmp_file("garbage");
        fs::write(&path, "not a journal at all\n").unwrap();
        let err = load(&path, "k").unwrap_err();
        assert!(
            matches!(
                err,
                JournalError::MissingHeader | JournalError::Truncated | JournalError::ChecksumMismatch
            ),
            "{err:?}"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn empty_file_is_truncated() {
        let path = tmp_file("empty");
        fs::write(&path, "").unwrap();
        assert_eq!(load(&path, "k").unwrap_err(), JournalError::Truncated);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn f64_hex_round_trip_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, 1e-308, 0.1 + 0.2] {
            let back = f64_from_hex(&f64_to_hex(v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn kv_helpers_parse_and_reject() {
        assert_eq!(kv("trials=12", "trials"), Some("12"));
        assert_eq!(kv("trials=12", "errors"), None);
        assert_eq!(kv_u64("trials=12", "trials"), Some(12));
        assert_eq!(kv_u64("trials=x", "trials"), None);
        assert_eq!(kv_f64(&format!("t={}", f64_to_hex(2.5)), "t"), Some(2.5));
    }

    #[test]
    fn salvage_recovers_prefix_before_mid_file_bit_flip() {
        let path = tmp_file("salvage_flip");
        let body: Vec<String> = (0..8).map(|i| format!("point i={i} trials=32")).collect();
        save(&path, "k", &body).unwrap();

        // Flip one bit in the middle of the file: load must reject the
        // whole journal, salvage must return every line before the flip.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        fs::write(&path, &bytes).unwrap();

        assert!(load(&path, "k").is_err());
        let (records, err) = load_salvage(&path, "k");
        assert!(err.is_some());
        assert!(!records.is_empty(), "mid-file flip must salvage a prefix");
        assert!(records.len() < body.len(), "damage must cost the tail");
        assert_eq!(records, body[..records.len()], "salvage is an exact prefix");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn salvage_recovers_prefix_of_truncated_file() {
        let path = tmp_file("salvage_trunc");
        let body: Vec<String> = (0..6).map(|i| format!("point i={i} trials=64")).collect();
        save(&path, "k", &body).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();

        let (records, err) = load_salvage(&path, "k");
        assert!(err.is_some());
        assert!(!records.is_empty());
        assert_eq!(records, body[..records.len()]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn salvage_yields_nothing_for_damaged_identity() {
        let path = tmp_file("salvage_identity");
        save(&path, "k", &["point i=0 trials=1".to_owned()]).unwrap();

        // Wrong key: whole file intact but not ours.
        let (records, err) = load_salvage(&path, "other");
        assert_eq!(records, Vec::<String>::new());
        assert_eq!(err, Some(JournalError::KeyMismatch));

        // Corrupted header: nothing verifiable at all.
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let (records, err) = load_salvage(&path, "k");
        assert!(records.is_empty());
        assert!(err.is_some());

        // Missing file: plain NotFound, no salvage.
        let (records, err) = load_salvage(Path::new("/nonexistent/journal"), "k");
        assert!(records.is_empty());
        assert_eq!(err, Some(JournalError::Io(std::io::ErrorKind::NotFound)));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn salvage_of_intact_file_is_load() {
        let path = tmp_file("salvage_intact");
        let body = vec!["point i=0 trials=3".to_owned(), "quar point=0 frame=1".to_owned()];
        save(&path, "k", &body).unwrap();
        let (records, err) = load_salvage(&path, "k");
        assert_eq!(records, body);
        assert_eq!(err, None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn interior_sum_lines_are_invisible_to_load() {
        // save() now interleaves cumulative sum lines; load must return
        // exactly the body that was saved, for any body size.
        for n in [0usize, 1, 5] {
            let path = tmp_file(&format!("interior_{n}"));
            let body: Vec<String> = (0..n).map(|i| format!("rec i={i}")).collect();
            save(&path, "k", &body).unwrap();
            assert_eq!(load(&path, "k").unwrap(), body);
            let _ = fs::remove_file(&path);
        }
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
