//! Seeded city deployment: AP grid, channel colouring, stations,
//! neighbourhoods, hidden-node geometry.
//!
//! Everything here is computed once per campaign from the master seed and
//! is immutable during simulation; per-epoch state lives in
//! [`crate::sim::CityState`]. Layout draws use dedicated fork streams
//! ([`crate::sim::S_LAYOUT`], [`crate::sim::S_STATIONS`],
//! [`crate::sim::S_HIDDEN`]) so adding epochs or threads never shifts the
//! deployment.

use crate::sim::{S_HIDDEN, S_LAYOUT, S_STATIONS};
use wlan_channel::interference::try_hidden_node_probability;
use wlan_channel::pathloss::{LinkBudget, PathLossModel};
use wlan_math::rng::{Rng, WlanRng};
use wlan_math::WlanError;
use wlan_mesh::layout::{grid_side, jittered_grid};

/// Which PHY generation a station speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// Legacy 802.11b (DSSS/CCK) — forces protection onto its BSS.
    DsssB,
    /// 802.11g (OFDM).
    OfdmG,
}

/// Full configuration of a city scenario. Every field shapes the
/// deterministic result (and is therefore part of the campaign journal
/// key) except none — budgets and threads live in
/// [`crate::campaign::CityCampaignConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct CityConfig {
    /// Access points to deploy (≥ 1, ≤ 65 535).
    pub n_aps: usize,
    /// Stations per AP (total stations = `n_aps * stations_per_ap`).
    pub stations_per_ap: usize,
    /// Grid pitch between adjacent APs in metres.
    pub ap_spacing_m: f64,
    /// Independent channels for reuse colouring (3 ≈ 2.4 GHz reality).
    pub n_channels: usize,
    /// Carrier-sense range for OBSS deference, metres.
    pub cs_range_m: f64,
    /// Co-channel APs beyond this distance are ignored as interferers.
    pub interference_range_m: f64,
    /// Probability a station is legacy 802.11b.
    pub b_fraction: f64,
    /// Probability a station has a frame queued in any contention cycle
    /// (1.0 = full saturation; a city is mostly idle stations).
    pub offered_load: f64,
    /// MAC payload per frame, bytes.
    pub payload_bytes: usize,
    /// Simulated epochs (an epoch is the OBSS/roaming decision quantum).
    pub epochs: u64,
    /// Epoch length in milliseconds.
    pub epoch_ms: f64,
    /// Run the roaming pass every this many epochs (0 disables roaming).
    pub roam_every_epochs: u64,
    /// RSSI hysteresis a candidate AP must beat to trigger a handoff, dB.
    pub hysteresis_db: f64,
    /// Log-normal shadowing σ applied to roaming RSSI measurements, dB.
    pub shadow_sigma_db: f64,
    /// Monte-Carlo trials for the hidden-node probability estimate.
    pub hidden_node_trials: usize,
    /// Master seed; every stream in the city forks off this.
    pub seed: u64,
}

impl CityConfig {
    /// A small city for tests: 9 APs × ~22 stations on 3 channels.
    pub fn small_test() -> Self {
        CityConfig {
            n_aps: 9,
            stations_per_ap: 22,
            ap_spacing_m: 40.0,
            n_channels: 3,
            cs_range_m: 60.0,
            interference_range_m: 140.0,
            b_fraction: 0.15,
            offered_load: 0.35,
            payload_bytes: 1000,
            epochs: 8,
            epoch_ms: 20.0,
            roam_every_epochs: 2,
            hysteresis_db: 4.0,
            shadow_sigma_db: 3.0,
            hidden_node_trials: 4_000,
            seed: 2005,
        }
    }

    /// A metro-scale deployment: `n_aps` APs at 35 m pitch, reuse-3.
    pub fn metro(n_aps: usize, stations_per_ap: usize, seed: u64) -> Self {
        CityConfig {
            n_aps,
            stations_per_ap,
            ap_spacing_m: 35.0,
            n_channels: 3,
            cs_range_m: 55.0,
            interference_range_m: 125.0,
            b_fraction: 0.1,
            offered_load: 0.2,
            payload_bytes: 1200,
            epochs: 20,
            epoch_ms: 50.0,
            roam_every_epochs: 4,
            hysteresis_db: 4.0,
            shadow_sigma_db: 4.0,
            hidden_node_trials: 20_000,
            seed,
        }
    }

    /// Total stations in the city.
    pub fn n_stations(&self) -> usize {
        self.n_aps * self.stations_per_ap
    }

    /// Validates the whole envelope.
    ///
    /// # Errors
    ///
    /// [`WlanError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), WlanError> {
        if self.n_aps == 0 || self.n_aps > u16::MAX as usize {
            return Err(WlanError::InvalidConfig("n_aps must be in 1..=65535"));
        }
        if self.stations_per_ap == 0 {
            return Err(WlanError::InvalidConfig("stations_per_ap must be ≥ 1"));
        }
        if !(self.ap_spacing_m > 0.0 && self.ap_spacing_m.is_finite()) {
            return Err(WlanError::InvalidConfig(
                "ap_spacing_m must be positive and finite",
            ));
        }
        if self.n_channels == 0 {
            return Err(WlanError::InvalidConfig("n_channels must be ≥ 1"));
        }
        if !(self.cs_range_m > 0.0 && self.cs_range_m.is_finite()) {
            return Err(WlanError::InvalidConfig(
                "cs_range_m must be positive and finite",
            ));
        }
        if !(self.interference_range_m > 0.0 && self.interference_range_m.is_finite()) {
            return Err(WlanError::InvalidConfig(
                "interference_range_m must be positive and finite",
            ));
        }
        if !(0.0..=1.0).contains(&self.b_fraction) {
            return Err(WlanError::InvalidConfig("b_fraction must be in [0, 1]"));
        }
        if !(self.offered_load > 0.0 && self.offered_load <= 1.0) {
            return Err(WlanError::InvalidConfig("offered_load must be in (0, 1]"));
        }
        if self.payload_bytes == 0 {
            return Err(WlanError::InvalidConfig("payload_bytes must be ≥ 1"));
        }
        if self.epochs == 0 {
            return Err(WlanError::InvalidConfig("epochs must be ≥ 1"));
        }
        if !(self.epoch_ms > 0.0 && self.epoch_ms.is_finite()) {
            return Err(WlanError::InvalidConfig(
                "epoch_ms must be positive and finite",
            ));
        }
        if !(self.hysteresis_db >= 0.0 && self.hysteresis_db.is_finite()) {
            return Err(WlanError::InvalidConfig(
                "hysteresis_db must be nonnegative and finite",
            ));
        }
        if !(self.shadow_sigma_db >= 0.0 && self.shadow_sigma_db.is_finite()) {
            return Err(WlanError::InvalidConfig(
                "shadow_sigma_db must be nonnegative and finite",
            ));
        }
        if self.hidden_node_trials == 0 {
            return Err(WlanError::InvalidConfig("hidden_node_trials must be ≥ 1"));
        }
        Ok(())
    }
}

/// The immutable deployment derived from a [`CityConfig`].
#[derive(Debug, Clone)]
pub struct CityLayout {
    /// AP positions, metres.
    pub ap_pos: Vec<(f64, f64)>,
    /// Channel index per AP (reuse-3 colouring on the grid).
    pub ap_channel: Vec<u8>,
    /// Station positions, metres.
    pub station_pos: Vec<(f64, f64)>,
    /// PHY generation per station.
    pub station_gen: Vec<Generation>,
    /// EDCA access-category index (0..4) per station.
    pub station_ac: Vec<u8>,
    /// Candidate APs per station: the 3×3 grid neighbourhood of its cell
    /// (the only APs roaming will consider).
    pub candidates: Vec<Vec<u16>>,
    /// Initial association: nearest candidate AP.
    pub initial_assoc: Vec<u16>,
    /// Per AP: co-channel APs within carrier-sense range (OBSS deference
    /// partners).
    pub cs_neighbors: Vec<Vec<u16>>,
    /// Per AP: co-channel APs within interference range (SINR
    /// contributors).
    pub interferers: Vec<Vec<u16>>,
    /// Hidden-node probability of the cell geometry (one Monte-Carlo
    /// estimate shared city-wide).
    pub p_hidden: f64,
}

impl CityLayout {
    /// Builds the deployment. Pure function of the config (all draws come
    /// from forked streams of `config.seed`).
    ///
    /// # Errors
    ///
    /// [`WlanError::InvalidConfig`] if the config fails
    /// [`CityConfig::validate`].
    pub fn build(cfg: &CityConfig) -> Result<Self, WlanError> {
        cfg.validate()?;
        let master = WlanRng::seed_from_u64(cfg.seed);
        let side = grid_side(cfg.n_aps);
        let extent = side as f64 * cfg.ap_spacing_m;
        let cell = cfg.ap_spacing_m;

        let mut layout_rng = master.fork(S_LAYOUT);
        let ap_pos = jittered_grid(cfg.n_aps, extent, 0.25, &mut layout_rng);
        // Reuse-3 colouring: (col + 2·row) mod n stripes the grid so that
        // no two adjacent cells (including diagonal neighbours on the
        // same row offset) share a channel when n == 3.
        let ap_channel: Vec<u8> = (0..cfg.n_aps)
            .map(|i| (((i % side) + 2 * (i / side)) % cfg.n_channels) as u8)
            .collect();

        let n_sta = cfg.n_stations();
        let mut sta_rng = master.fork(S_STATIONS);
        let mut station_pos = Vec::with_capacity(n_sta);
        let mut station_gen = Vec::with_capacity(n_sta);
        let mut station_ac = Vec::with_capacity(n_sta);
        for s in 0..n_sta {
            let x = sta_rng.gen::<f64>() * extent;
            let y = sta_rng.gen::<f64>() * extent;
            station_pos.push((x, y));
            station_gen.push(if sta_rng.gen_bool(cfg.b_fraction) {
                Generation::DsssB
            } else {
                Generation::OfdmG
            });
            station_ac.push((s % 4) as u8);
        }

        // Candidate APs: the 3×3 cell neighbourhood around the station.
        let cell_of = |x: f64| ((x / cell) as usize).min(side - 1);
        let mut candidates = Vec::with_capacity(n_sta);
        for &(x, y) in &station_pos {
            let (cc, cr) = (cell_of(x), cell_of(y));
            let mut list = Vec::with_capacity(9);
            for dr in -1i64..=1 {
                for dc in -1i64..=1 {
                    let r = cr as i64 + dr;
                    let c = cc as i64 + dc;
                    if r < 0 || c < 0 || r >= side as i64 || c >= side as i64 {
                        continue;
                    }
                    let ap = r as usize * side + c as usize;
                    if ap < cfg.n_aps {
                        list.push(ap as u16);
                    }
                }
            }
            // Bottom-edge stations of a ragged last row may have an empty
            // neighbourhood only if n_aps < side² leaves holes — fall
            // back to AP 0 so every station has a home.
            if list.is_empty() {
                list.push(0);
            }
            candidates.push(list);
        }

        // Initial association: nearest candidate (lowest index wins ties)
        // — deterministic, shadowing only enters at roaming time.
        let initial_assoc: Vec<u16> = station_pos
            .iter()
            .zip(&candidates)
            .map(|(&p, cands)| {
                let mut best = cands[0];
                let mut best_d2 = f64::INFINITY;
                for &ap in cands {
                    let d2 = dist2(p, ap_pos[ap as usize]);
                    if d2 < best_d2 {
                        best_d2 = d2;
                        best = ap;
                    }
                }
                best
            })
            .collect();

        // Co-channel neighbourhoods (brute force: setup-time only).
        let mut cs_neighbors = vec![Vec::new(); cfg.n_aps];
        let mut interferers = vec![Vec::new(); cfg.n_aps];
        let cs2 = cfg.cs_range_m * cfg.cs_range_m;
        let int2 = cfg.interference_range_m * cfg.interference_range_m;
        for a in 0..cfg.n_aps {
            for b in 0..cfg.n_aps {
                if a == b || ap_channel[a] != ap_channel[b] {
                    continue;
                }
                let d2 = dist2(ap_pos[a], ap_pos[b]);
                if d2 <= cs2 {
                    cs_neighbors[a].push(b as u16);
                }
                if d2 <= int2 {
                    interferers[a].push(b as u16);
                }
            }
        }

        // One hidden-node probability for the common cell geometry: two
        // stations in a disc of one grid pitch around the AP (roaming and
        // shadowing let stations camp a full cell away), mutual carrier
        // sense at cs_range. The disc must outreach cs_range/2 or hidden
        // pairs would be geometrically impossible.
        let cell_radius = cfg.ap_spacing_m;
        let mut hidden_rng = master.fork(S_HIDDEN);
        let p_hidden = try_hidden_node_probability(
            cell_radius,
            cfg.cs_range_m,
            cfg.hidden_node_trials,
            &mut hidden_rng,
        )?;

        Ok(CityLayout {
            ap_pos,
            ap_channel,
            station_pos,
            station_gen,
            station_ac,
            candidates,
            initial_assoc,
            cs_neighbors,
            interferers,
            p_hidden,
        })
    }

    /// Distance from station `s` to AP `ap`, clamped to ≥ 1 m so the
    /// path-loss model's near-field singularity never fires.
    pub fn sta_ap_distance_m(&self, s: usize, ap: usize) -> f64 {
        dist2(self.station_pos[s], self.ap_pos[ap]).sqrt().max(1.0)
    }
}

/// Default propagation environment for the city: TGn model D path loss
/// and the typical WLAN link budget (shared with mesh/goodput).
pub fn propagation() -> (LinkBudget, PathLossModel) {
    (LinkBudget::typical_wlan(), PathLossModel::tgn_model_d())
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let cfg = CityConfig::small_test();
        let a = CityLayout::build(&cfg).expect("valid config");
        let b = CityLayout::build(&cfg).expect("valid config");
        assert_eq!(a.ap_pos, b.ap_pos);
        assert_eq!(a.station_pos, b.station_pos);
        assert_eq!(a.initial_assoc, b.initial_assoc);
        assert_eq!(a.p_hidden.to_bits(), b.p_hidden.to_bits());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let good = CityConfig::small_test();
        assert!(good.validate().is_ok());
        for f in [
            |c: &mut CityConfig| c.n_aps = 0,
            |c: &mut CityConfig| c.n_aps = 70_000,
            |c: &mut CityConfig| c.stations_per_ap = 0,
            |c: &mut CityConfig| c.ap_spacing_m = 0.0,
            |c: &mut CityConfig| c.ap_spacing_m = f64::NAN,
            |c: &mut CityConfig| c.n_channels = 0,
            |c: &mut CityConfig| c.cs_range_m = -1.0,
            |c: &mut CityConfig| c.b_fraction = 1.5,
            |c: &mut CityConfig| c.offered_load = 0.0,
            |c: &mut CityConfig| c.offered_load = f64::NAN,
            |c: &mut CityConfig| c.payload_bytes = 0,
            |c: &mut CityConfig| c.epochs = 0,
            |c: &mut CityConfig| c.epoch_ms = 0.0,
            |c: &mut CityConfig| c.hysteresis_db = f64::NAN,
            |c: &mut CityConfig| c.hidden_node_trials = 0,
        ] {
            let mut bad = good.clone();
            f(&mut bad);
            assert!(bad.validate().is_err(), "{bad:?}");
            assert!(CityLayout::build(&bad).is_err());
        }
    }

    #[test]
    fn reuse_3_colouring_separates_adjacent_cells() {
        let cfg = CityConfig::small_test(); // 9 APs, 3×3 grid
        let l = CityLayout::build(&cfg).expect("valid config");
        let side = 3;
        for r in 0..side {
            for c in 0..side {
                let ap = r * side + c;
                if c + 1 < side {
                    assert_ne!(l.ap_channel[ap], l.ap_channel[ap + 1]);
                }
                if r + 1 < side {
                    assert_ne!(l.ap_channel[ap], l.ap_channel[ap + side]);
                }
            }
        }
    }

    #[test]
    fn stations_associate_with_a_nearby_candidate() {
        let cfg = CityConfig::small_test();
        let l = CityLayout::build(&cfg).expect("valid config");
        for s in 0..cfg.n_stations() {
            let home = l.initial_assoc[s];
            assert!(l.candidates[s].contains(&home));
            // Nearest candidate: no other candidate is strictly closer.
            let d_home = l.sta_ap_distance_m(s, home as usize);
            for &ap in &l.candidates[s] {
                assert!(l.sta_ap_distance_m(s, ap as usize) >= d_home - 1e-9);
            }
        }
    }

    #[test]
    fn neighbourhoods_are_co_channel_and_symmetric() {
        let cfg = CityConfig::metro(25, 2, 1);
        let l = CityLayout::build(&cfg).expect("valid config");
        for a in 0..cfg.n_aps {
            for &b in &l.cs_neighbors[a] {
                assert_eq!(l.ap_channel[a], l.ap_channel[b as usize]);
                assert!(l.cs_neighbors[b as usize].contains(&(a as u16)));
            }
            for &b in &l.interferers[a] {
                assert_eq!(l.ap_channel[a], l.ap_channel[b as usize]);
            }
        }
        assert!(l.p_hidden > 0.0 && l.p_hidden < 1.0, "{}", l.p_hidden);
    }
}
