//! The epoch-based city simulator.
//!
//! Time advances in *epochs* (tens of milliseconds). Within an epoch each
//! BSS runs an independent DCF/EDCA contention loop over its associated
//! stations; coupling between BSSs — OBSS deference and co-channel
//! interference — enters through the *previous* epoch's per-BSS airtime
//! (a Jacobi-style fixed-point iteration). That one-epoch lag is what
//! makes the city embarrassingly parallel without losing the physics:
//! every BSS-epoch is a pure function of `(layout, tables, assoc,
//! busy_frac[prev], epoch, seed)`, so the fan-out over
//! [`wlan_math::par`] is bit-identical at any thread count and the
//! campaign journal can snapshot exactly between epochs.
//!
//! Within a BSS-epoch the MAC is a cycle-level contention model (not
//! per-slot): every member with a queued frame (an `offered_load` coin
//! per cycle) draws an EDCA backoff (current window plus AIFS extra
//! slots) for the cycle, the minimum wins the channel, ties collide.
//! Windows follow binary exponential backoff between the AC's
//! `cw_min`/`cw_max` *within* the epoch and reset at the epoch boundary
//! — deliberately, so an epoch carries no hidden MAC state into the
//! next one and kill/resume is exact (the boundary reset is the one
//! approximation bought for that guarantee). PHY cost comes from the
//! [`crate::pertable::PerTableSet`] SINR lookup; hidden-node losses
//! scale with the OBSS neighbourhood load and the layout's Monte-Carlo
//! `p_hidden`.

use crate::edca::{AccessCategory, EdcaParams};
use crate::layout::{propagation, CityConfig, CityLayout, Generation};
use crate::pertable::PerTableSet;
use wlan_channel::interference::{try_co_channel_sinr_db, Interferer};
use wlan_channel::pathloss::{LinkBudget, PathLossModel};
use wlan_mac::params::MacProfile;
use wlan_mac::protection::try_cts_to_self_overhead_us;
use wlan_math::par::parallel_map_with_threads;
use wlan_math::rng::{Rng, WlanRng};
use wlan_math::WlanError;

/// Fork stream: AP grid jitter.
pub const S_LAYOUT: u64 = 1;
/// Fork stream: station placement / generation draws.
pub const S_STATIONS: u64 = 2;
/// Fork stream: hidden-node Monte-Carlo.
pub const S_HIDDEN: u64 = 3;
/// Fork stream: per-(BSS, epoch) MAC contention.
pub const S_MAC: u64 = 4;
/// Fork stream: per-(station, epoch) roaming shadowing.
pub const S_ROAM: u64 = 5;

/// A deferring BSS always keeps this fraction of the epoch: total OBSS
/// starvation would freeze a cell forever (its neighbours' airtime never
/// drains), and real EDCA always wins *some* slots.
pub const MIN_AVAILABILITY: f64 = 0.05;

/// Slot time charged in a protection-mode (mixed b/g) BSS, µs — the
/// long-slot compatibility option mixed cells must run.
pub const PROTECTED_SLOT_US: f64 = 20.0;

/// Slot time in a pure-OFDM BSS, µs.
pub const OFDM_SLOT_US: f64 = 9.0;

/// An instantiated city: immutable deployment + PHY tables + propagation.
#[derive(Debug, Clone)]
pub struct City {
    /// Scenario configuration.
    pub cfg: CityConfig,
    /// The seeded deployment.
    pub layout: CityLayout,
    /// PER lookup tables (the PHY cost model).
    pub tables: PerTableSet,
    budget: LinkBudget,
    model: PathLossModel,
}

/// Mutable per-campaign state; everything the journal snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct CityState {
    /// Epochs completed so far.
    pub epoch: u64,
    /// Station → AP association.
    pub assoc: Vec<u16>,
    /// Frames delivered per station (cumulative).
    pub delivered: Vec<u64>,
    /// Previous epoch's airtime fraction per BSS (the OBSS coupling
    /// term).
    pub busy_frac: Vec<f64>,
    /// MAC transmission attempts (the campaign's trial unit).
    pub attempts: u64,
    /// Failed attempts: collisions + PER/hidden-node losses.
    pub failures: u64,
    /// Completed handoffs.
    pub handoffs: u64,
    /// Airtime deferred to carrier-sensed OBSS neighbours, µs
    /// (member-carrying BSSs only).
    pub defer_us: f64,
    /// Delivered frames per access category.
    pub ac_delivered: [u64; 4],
    /// Attempts per access category.
    pub ac_attempts: [u64; 4],
    /// Frames delivered by OFDM stations in protected (mixed) BSSs.
    pub prot_delivered: u64,
    /// OFDM station-epochs spent in protected BSSs.
    pub prot_sta_epochs: u64,
    /// Frames delivered by OFDM stations in unprotected BSSs.
    pub unprot_delivered: u64,
    /// OFDM station-epochs spent in unprotected BSSs.
    pub unprot_sta_epochs: u64,
}

/// Aggregate results derived from a [`CityState`]; every float is a pure
/// function of integer tallies and the config, so reports are
/// bit-identical whenever states are.
#[derive(Debug, Clone, PartialEq)]
pub struct CityReport {
    /// Epochs simulated.
    pub epochs_run: u64,
    /// Access points in the deployment.
    pub aps: u64,
    /// Stations in the deployment.
    pub stations: u64,
    /// MAC attempts (campaign trials).
    pub attempts: u64,
    /// Failed attempts.
    pub failures: u64,
    /// Completed handoffs.
    pub handoffs: u64,
    /// Total frames delivered.
    pub delivered_frames: u64,
    /// City-wide goodput in Mbps.
    pub throughput_mbps: f64,
    /// failures / attempts (0 when no attempts).
    pub loss_rate: f64,
    /// Jain fairness over per-station delivered frames.
    pub jain_fairness: f64,
    /// Goodput per access category, Mbps.
    pub ac_throughput_mbps: [f64; 4],
    /// Jain fairness within each access category.
    pub ac_jain: [f64; 4],
    /// In-situ protection penalty: per-station OFDM delivery rate in
    /// protected BSSs over the rate in unprotected BSSs. `None` when the
    /// city had no population on one side of the comparison.
    pub measured_protection_penalty: Option<f64>,
    /// Fraction of AP-airtime deferred to OBSS neighbours.
    pub defer_frac: f64,
    /// The layout's hidden-node probability.
    pub p_hidden: f64,
}

/// One BSS's contribution to an epoch (merged in BSS order).
struct BssEpoch {
    delivered: Vec<u64>,
    attempts: u64,
    failures: u64,
    busy_frac: f64,
    defer_us: f64,
    ac_delivered: [u64; 4],
    ac_attempts: [u64; 4],
    prot_delivered: u64,
    prot_sta: u64,
    unprot_delivered: u64,
    unprot_sta: u64,
}

/// Slots an entirely idle cycle advances time by (nobody queued a
/// frame): a DIFS-scale listening quantum.
const IDLE_CYCLE_SLOTS: f64 = 16.0;

/// Backoff stages are capped so `(cw_min + 1) << stage` cannot overflow;
/// per-AC `cw_max` clamps the window far earlier in practice.
const MAX_BACKOFF_STAGE: u32 = 10;

/// Per-member precomputed contention/PHY parameters for one epoch.
struct MemberParams {
    cw_min: u32,
    cw_max: u32,
    extra_slots: u32,
    ac: usize,
    success_us: f64,
    collide_us: f64,
    p_loss: f64,
    is_ofdm: bool,
}

impl MemberParams {
    /// Contention window at a backoff stage: binary exponential growth
    /// from the AC's `cw_min`, clamped to its `cw_max`.
    fn window(&self, stage: u32) -> u32 {
        let grown = ((self.cw_min + 1) << stage.min(MAX_BACKOFF_STAGE)) - 1;
        grown.min(self.cw_max)
    }
}

impl City {
    /// Builds the city: validates the config and derives the layout.
    ///
    /// # Errors
    ///
    /// [`WlanError::InvalidConfig`] from [`CityConfig::validate`].
    pub fn new(cfg: CityConfig, tables: PerTableSet) -> Result<Self, WlanError> {
        let layout = CityLayout::build(&cfg)?;
        let (budget, model) = propagation();
        Ok(City {
            cfg,
            layout,
            tables,
            budget,
            model,
        })
    }

    /// Fresh epoch-zero state: initial associations, idle airtime.
    pub fn fresh_state(&self) -> CityState {
        let n_sta = self.cfg.n_stations();
        CityState {
            epoch: 0,
            assoc: self.layout.initial_assoc.clone(),
            delivered: vec![0; n_sta],
            busy_frac: vec![0.0; self.cfg.n_aps],
            attempts: 0,
            failures: 0,
            handoffs: 0,
            defer_us: 0.0,
            ac_delivered: [0; 4],
            ac_attempts: [0; 4],
            prot_delivered: 0,
            prot_sta_epochs: 0,
            unprot_delivered: 0,
            unprot_sta_epochs: 0,
        }
    }

    /// Advances the state by one epoch on `threads` workers. Results are
    /// bit-identical at any `threads` value (per-BSS and per-station
    /// streams are addressed by coordinates, reductions run in index
    /// order).
    pub fn run_epoch(&self, state: &mut CityState, threads: usize) {
        let rec = wlan_obs::global();
        let span = rec.histogram("city.epoch").start();

        let n_aps = self.cfg.n_aps;
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_aps];
        for (s, &ap) in state.assoc.iter().enumerate() {
            members[ap as usize].push(s as u32);
        }
        let busy_prev = std::mem::take(&mut state.busy_frac);
        let epoch = state.epoch;

        let results = parallel_map_with_threads(threads, &members, |bss, mem| {
            self.bss_epoch(bss, mem, &busy_prev, epoch)
        });

        let mut attempts_delta = 0u64;
        let mut delivered_delta = 0u64;
        let mut failures_delta = 0u64;
        state.busy_frac = vec![0.0; n_aps];
        for (bss, r) in results.iter().enumerate() {
            state.busy_frac[bss] = r.busy_frac;
            for (k, &s) in members[bss].iter().enumerate() {
                state.delivered[s as usize] += r.delivered[k];
                delivered_delta += r.delivered[k];
            }
            state.attempts += r.attempts;
            state.failures += r.failures;
            state.defer_us += r.defer_us;
            attempts_delta += r.attempts;
            failures_delta += r.failures;
            for i in 0..4 {
                state.ac_delivered[i] += r.ac_delivered[i];
                state.ac_attempts[i] += r.ac_attempts[i];
            }
            state.prot_delivered += r.prot_delivered;
            state.prot_sta_epochs += r.prot_sta;
            state.unprot_delivered += r.unprot_delivered;
            state.unprot_sta_epochs += r.unprot_sta;
        }

        if self.cfg.roam_every_epochs > 0 && (epoch + 1).is_multiple_of(self.cfg.roam_every_epochs)
        {
            let handoffs = self.roam(state, threads, epoch);
            rec.counter("city.handoffs").add(handoffs);
        }
        state.epoch += 1;

        rec.counter("city.attempts").add(attempts_delta);
        rec.counter("city.delivered").add(delivered_delta);
        rec.counter("city.failures").add(failures_delta);
        span.stop();
    }

    /// One BSS's epoch: OBSS deference, per-member SINR → (rate, PER),
    /// EDCA cycle contention. Pure function of its arguments plus the
    /// immutable city.
    fn bss_epoch(&self, bss: usize, mem: &[u32], busy_prev: &[f64], epoch: u64) -> BssEpoch {
        let cfg = &self.cfg;
        let lay = &self.layout;
        let epoch_us = cfg.epoch_ms * 1000.0;

        // OBSS deference: carrier-sensed co-channel neighbours' airtime
        // (previous epoch) shrinks this epoch's usable window.
        let neighbor_busy: f64 = lay.cs_neighbors[bss]
            .iter()
            .map(|&n| busy_prev[n as usize])
            .sum();
        let avail = (1.0 - neighbor_busy).clamp(MIN_AVAILABILITY, 1.0);
        let t_avail = epoch_us * avail;

        let mut out = BssEpoch {
            delivered: vec![0; mem.len()],
            attempts: 0,
            failures: 0,
            busy_frac: 0.0,
            defer_us: 0.0,
            ac_delivered: [0; 4],
            ac_attempts: [0; 4],
            prot_delivered: 0,
            prot_sta: 0,
            unprot_delivered: 0,
            unprot_sta: 0,
        };
        if mem.is_empty() {
            return out;
        }
        out.defer_us = epoch_us - t_avail;

        // Interference at the AP receiver: co-channel neighbour APs as
        // proxies for their cells' transmitters, duty = their airtime.
        let interferers: Vec<Interferer> = lay.interferers[bss]
            .iter()
            .map(|&i| Interferer {
                distance_m: ap_distance_m(lay, bss, i as usize),
                duty_cycle: busy_prev[i as usize].clamp(0.0, 1.0),
            })
            .collect();
        let obss_load = neighbor_busy.min(1.0);

        let protected = mem
            .iter()
            .any(|&s| lay.station_gen[s as usize] == Generation::DsssB);
        let slot_us = if protected {
            PROTECTED_SLOT_US
        } else {
            OFDM_SLOT_US
        };
        // The DSSS rate is validated positive at PerTableSet
        // construction, so the overhead call cannot fail.
        let cts_us = try_cts_to_self_overhead_us(self.tables.dsss_rate_mbps()).unwrap_or(0.0);

        let params: Vec<MemberParams> = mem
            .iter()
            .map(|&s| {
                let s = s as usize;
                let d = lay.sta_ap_distance_m(s, bss);
                // Layout validation guarantees positive finite distances
                // and clamped duties, so this cannot fail; an impossible
                // geometry degrades to SINR −∞ (PER 1) rather than UB.
                let sinr = try_co_channel_sinr_db(&self.budget, &self.model, d, &interferers)
                    .unwrap_or(f64::NEG_INFINITY);
                let is_ofdm = lay.station_gen[s] == Generation::OfdmG;
                let (profile, per) = if is_ofdm {
                    let (rate, per) = self.tables.ofdm_rate_and_per(sinr);
                    (MacProfile::dot11g(rate), per)
                } else {
                    (
                        MacProfile::dot11b(self.tables.dsss_rate_mbps()),
                        self.tables.dsss_per(sinr),
                    )
                };
                // Hidden-node collisions: stations of OBSS cells that this
                // AP hears but the member does not, scaled by how busy the
                // neighbourhood actually is.
                let p_loss =
                    (per + (1.0 - per) * lay.p_hidden * obss_load).clamp(0.0, 1.0);
                let ac = lay.station_ac[s] as usize;
                let edca = EdcaParams::for_ac(&profile, AccessCategory::from_index(ac));
                let success_us = profile.success_duration_us(cfg.payload_bytes)
                    + if protected && is_ofdm { cts_us } else { 0.0 };
                MemberParams {
                    cw_min: edca.cw_min,
                    cw_max: edca.cw_max,
                    extra_slots: edca.extra_aifs_slots(),
                    ac,
                    success_us,
                    collide_us: profile.collision_duration_us(cfg.payload_bytes),
                    p_loss,
                    is_ofdm,
                }
            })
            .collect();

        for p in &params {
            if p.is_ofdm {
                if protected {
                    out.prot_sta += 1;
                } else {
                    out.unprot_sta += 1;
                }
            }
        }

        let mut rng = WlanRng::seed_from_u64(cfg.seed)
            .fork(S_MAC)
            .fork(bss as u64)
            .fork(epoch);
        // Backoff stages persist across cycles *within* the epoch
        // (binary exponential backoff: collisions and lost frames double
        // the window up to the AC's cw_max, delivery resets it) and reset
        // at the epoch boundary, so `CityState` alone is still the
        // complete simulation state for kill/resume.
        let mut stages: Vec<u32> = vec![0; params.len()];
        let mut backoffs: Vec<u32> = vec![u32::MAX; params.len()];
        let mut t = 0.0f64;
        let mut busy = 0.0f64;
        while t < t_avail {
            // Cycle: every member with a queued frame (offered-load coin)
            // draws an EDCA backoff from its current window; minimum
            // wins, ties collide.
            let mut min_bo = u32::MAX;
            for (k, p) in params.iter().enumerate() {
                backoffs[k] = if rng.gen_bool(cfg.offered_load) {
                    let bo = rng.gen_range(0..=p.window(stages[k])) + p.extra_slots;
                    min_bo = min_bo.min(bo);
                    bo
                } else {
                    u32::MAX
                };
            }
            if min_bo == u32::MAX {
                // Nobody queued a frame: the cell idles for a listening
                // quantum and the next cycle re-draws.
                t += IDLE_CYCLE_SLOTS * slot_us;
                continue;
            }
            t += min_bo as f64 * slot_us;
            let mut first = usize::MAX;
            let mut tie_count = 0usize;
            let mut collide_dur = 0.0f64;
            for (k, &bo) in backoffs.iter().enumerate() {
                if bo == min_bo {
                    if first == usize::MAX {
                        first = k;
                    }
                    tie_count += 1;
                    collide_dur = collide_dur.max(params[k].collide_us);
                }
            }
            if tie_count >= 2 {
                // Collision: every tied member burned an attempt and
                // doubled its window; the channel is busy for the longest
                // colliding frame.
                for (k, &bo) in backoffs.iter().enumerate() {
                    if bo == min_bo {
                        out.attempts += 1;
                        out.failures += 1;
                        out.ac_attempts[params[k].ac] += 1;
                        stages[k] = (stages[k] + 1).min(MAX_BACKOFF_STAGE);
                    }
                }
                t += collide_dur;
                busy += collide_dur;
            } else {
                let k = first;
                let p = &params[k];
                out.attempts += 1;
                out.ac_attempts[p.ac] += 1;
                t += p.success_us;
                busy += p.success_us;
                if rng.gen_bool(p.p_loss) {
                    // No ACK: the sender cannot tell loss from collision
                    // and doubles its window too.
                    out.failures += 1;
                    stages[k] = (stages[k] + 1).min(MAX_BACKOFF_STAGE);
                } else {
                    out.delivered[k] += 1;
                    out.ac_delivered[p.ac] += 1;
                    stages[k] = 0;
                    if p.is_ofdm {
                        if protected {
                            out.prot_delivered += 1;
                        } else {
                            out.unprot_delivered += 1;
                        }
                    }
                }
            }
        }
        out.busy_frac = (busy / epoch_us).clamp(0.0, 1.0);
        out
    }

    /// RSSI-hysteresis roaming: every station re-measures its candidate
    /// APs (log-normal shadowing from its own `(station, epoch)` stream)
    /// and hands off when the best candidate beats the current AP by the
    /// hysteresis margin. Returns the number of handoffs.
    fn roam(&self, state: &mut CityState, threads: usize, epoch: u64) -> u64 {
        let cfg = &self.cfg;
        let lay = &self.layout;
        let new_assoc: Vec<u16> =
            parallel_map_with_threads(threads, &state.assoc, |s, &cur| {
                let cands = &lay.candidates[s];
                if cands.len() <= 1 {
                    return cur;
                }
                let mut rng = WlanRng::seed_from_u64(cfg.seed)
                    .fork(S_ROAM)
                    .fork(s as u64)
                    .fork(epoch);
                let mut best_ap = cur;
                let mut best_rssi = f64::NEG_INFINITY;
                let mut cur_rssi = f64::NEG_INFINITY;
                for &ap in cands {
                    let d = lay.sta_ap_distance_m(s, ap as usize);
                    let rssi = self.budget.rx_power_dbm(self.model.path_loss_db(d))
                        + cfg.shadow_sigma_db * rng.gen_gaussian();
                    if ap == cur {
                        cur_rssi = rssi;
                    }
                    if rssi > best_rssi {
                        best_rssi = rssi;
                        best_ap = ap;
                    }
                }
                if best_ap != cur && best_rssi > cur_rssi + cfg.hysteresis_db {
                    best_ap
                } else {
                    cur
                }
            });
        let handoffs = new_assoc
            .iter()
            .zip(&state.assoc)
            .filter(|(a, b)| a != b)
            .count() as u64;
        state.handoffs += handoffs;
        state.assoc = new_assoc;
        handoffs
    }

    /// Derives the aggregate report from a state.
    pub fn report(&self, state: &CityState) -> CityReport {
        let cfg = &self.cfg;
        let sim_us = state.epoch as f64 * cfg.epoch_ms * 1000.0;
        let bits = |frames: u64| frames as f64 * (cfg.payload_bytes * 8) as f64;
        let mbps = |frames: u64| {
            if sim_us > 0.0 {
                bits(frames) / sim_us
            } else {
                0.0
            }
        };
        let delivered_frames: u64 = state.ac_delivered.iter().sum();
        let mut ac_throughput = [0.0; 4];
        let mut ac_jain = [0.0; 4];
        for i in 0..4 {
            ac_throughput[i] = mbps(state.ac_delivered[i]);
            let per_sta: Vec<u64> = state
                .delivered
                .iter()
                .zip(&self.layout.station_ac)
                .filter(|(_, &ac)| ac as usize == i)
                .map(|(&d, _)| d)
                .collect();
            ac_jain[i] = jain(&per_sta);
        }
        let penalty = if state.prot_sta_epochs > 0
            && state.unprot_sta_epochs > 0
            && state.unprot_delivered > 0
        {
            let prot_rate = state.prot_delivered as f64 / state.prot_sta_epochs as f64;
            let unprot_rate = state.unprot_delivered as f64 / state.unprot_sta_epochs as f64;
            Some(prot_rate / unprot_rate)
        } else {
            None
        };
        let total_ap_us = sim_us * cfg.n_aps as f64;
        CityReport {
            epochs_run: state.epoch,
            aps: cfg.n_aps as u64,
            stations: cfg.n_stations() as u64,
            attempts: state.attempts,
            failures: state.failures,
            handoffs: state.handoffs,
            delivered_frames,
            throughput_mbps: mbps(delivered_frames),
            loss_rate: if state.attempts > 0 {
                state.failures as f64 / state.attempts as f64
            } else {
                0.0
            },
            jain_fairness: jain(&state.delivered),
            ac_throughput_mbps: ac_throughput,
            ac_jain,
            measured_protection_penalty: penalty,
            defer_frac: if total_ap_us > 0.0 {
                state.defer_us / total_ap_us
            } else {
                0.0
            },
            p_hidden: self.layout.p_hidden,
        }
    }
}

/// AP-to-AP distance, clamped to ≥ 1 m (same floor as station links).
fn ap_distance_m(lay: &CityLayout, a: usize, b: usize) -> f64 {
    let (ax, ay) = lay.ap_pos[a];
    let (bx, by) = lay.ap_pos[b];
    ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt().max(1.0)
}

/// Jain fairness index `(Σx)² / (n·Σx²)`; 1.0 for an empty or all-zero
/// population (nobody is being favoured).
pub fn jain(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().map(|&v| v as f64).sum();
    let sum_sq: f64 = values.iter().map(|&v| (v as f64) * (v as f64)).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_city() -> City {
        City::new(CityConfig::small_test(), PerTableSet::synthetic()).expect("valid config")
    }

    fn run(city: &City, threads: usize, epochs: u64) -> CityState {
        let mut state = city.fresh_state();
        for _ in 0..epochs {
            city.run_epoch(&mut state, threads);
        }
        state
    }

    #[test]
    fn epochs_deliver_frames_and_track_tallies() {
        let city = small_city();
        let state = run(&city, 1, 4);
        assert_eq!(state.epoch, 4);
        assert!(state.attempts > 0);
        let delivered: u64 = state.delivered.iter().sum();
        assert_eq!(delivered, state.ac_delivered.iter().sum::<u64>());
        assert!(delivered > 0, "a small city must deliver something");
        assert!(state.failures <= state.attempts);
        assert!(state.busy_frac.iter().all(|b| (0.0..=1.0).contains(b)));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let city = small_city();
        let serial = run(&city, 1, 3);
        let two = run(&city, 2, 3);
        let eight = run(&city, 8, 3);
        assert_eq!(serial, two);
        assert_eq!(serial, eight);
    }

    #[test]
    fn edca_priority_wins_airtime() {
        // Voice (AC 0) must out-deliver background (AC 3) in aggregate:
        // station ACs are assigned round-robin so populations are equal.
        let mut cfg = CityConfig::small_test();
        cfg.epochs = 6;
        let city = City::new(cfg, PerTableSet::synthetic()).expect("valid config");
        let state = run(&city, 1, 6);
        assert!(
            state.ac_delivered[0] > state.ac_delivered[3],
            "VO {} must beat BK {}",
            state.ac_delivered[0],
            state.ac_delivered[3]
        );
    }

    #[test]
    fn roaming_moves_stations_within_their_candidate_sets() {
        let city = small_city();
        let state = run(&city, 1, 6);
        assert!(state.handoffs > 0, "shadowed RSSI must trigger handoffs");
        for (s, &ap) in state.assoc.iter().enumerate() {
            assert!(city.layout.candidates[s].contains(&ap));
        }
        // Hysteresis sanity: an enormous margin freezes roaming.
        let mut frozen_cfg = CityConfig::small_test();
        frozen_cfg.hysteresis_db = 500.0;
        let frozen = City::new(frozen_cfg, PerTableSet::synthetic()).expect("valid config");
        let fstate = run(&frozen, 1, 6);
        assert_eq!(fstate.handoffs, 0);
        assert_eq!(fstate.assoc, frozen.layout.initial_assoc);
    }

    #[test]
    fn obss_deference_reports_deferred_airtime() {
        let city = small_city();
        let state = run(&city, 1, 4);
        // Epoch 0 starts idle (no deference); once cells carry traffic,
        // co-channel neighbours within cs range must defer.
        assert!(state.defer_us > 0.0, "busy neighbours must cause deference");
        let report = city.report(&state);
        assert!(report.defer_frac > 0.0 && report.defer_frac < 1.0);
    }

    #[test]
    fn mixed_cells_pay_the_protection_penalty() {
        // Small cells and a moderate legacy fraction, so the city holds
        // both mixed (protected) and pure-OFDM (unprotected) BSSs — the
        // in-situ penalty needs population on both sides.
        let mut cfg = CityConfig::small_test();
        cfg.n_aps = 25;
        cfg.stations_per_ap = 8;
        cfg.b_fraction = 0.2;
        cfg.epochs = 6;
        let city = City::new(cfg, PerTableSet::synthetic()).expect("valid config");
        let state = run(&city, 1, 6);
        assert!(state.prot_sta_epochs > 0, "some cells must be mixed");
        assert!(state.unprot_sta_epochs > 0, "some cells must be pure OFDM");
        let report = city.report(&state);
        let penalty = report
            .measured_protection_penalty
            .expect("mixed city must measure a penalty");
        assert!(
            penalty > 0.0 && penalty < 1.0,
            "protected OFDM stations must deliver less: {penalty}"
        );
    }

    #[test]
    fn report_floats_are_finite_and_consistent() {
        let city = small_city();
        let state = run(&city, 1, 4);
        let r = city.report(&state);
        assert!(r.throughput_mbps.is_finite() && r.throughput_mbps > 0.0);
        assert!((0.0..=1.0).contains(&r.loss_rate));
        assert!((0.0..=1.0).contains(&r.jain_fairness));
        for i in 0..4 {
            assert!(r.ac_throughput_mbps[i].is_finite());
            assert!((0.0..=1.0).contains(&r.ac_jain[i]));
        }
        // Fresh state: zero-division guards hold.
        let empty = city.report(&city.fresh_state());
        assert_eq!(empty.throughput_mbps, 0.0);
        assert_eq!(empty.loss_rate, 0.0);
        assert_eq!(empty.jain_fairness, 1.0);
    }

    #[test]
    fn jain_edge_cases() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0, 0, 0]), 1.0);
        assert_eq!(jain(&[5, 5, 5, 5]), 1.0);
        let skewed = jain(&[100, 0, 0, 0]);
        assert!((skewed - 0.25).abs() < 1e-12, "{skewed}");
    }
}
