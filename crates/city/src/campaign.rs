//! The city campaign runner: budgets, checkpoint/resume, early stopping.
//!
//! A campaign wraps [`crate::sim::City`] in the `wlan-runner`
//! conventions: a [`Budget`] metered in MAC attempts (the city's trial
//! unit), an optional checkpoint journal, and Wilson-interval early
//! stopping on the city-wide loss rate.
//!
//! # Journal semantics
//!
//! The journal is a *state snapshot at an epoch boundary*, not an
//! append-only tally log: because the per-epoch MAC is memoryless,
//! `CityState` between epochs is the complete simulation state, and a
//! resumed campaign continues bit-identically from it. That also means a
//! *partially* intact journal is useless — unlike the per-point PER
//! campaigns there is no meaningful prefix of a snapshot — so restore
//! uses strict [`journal::load`] only (no salvage): any damage is a
//! [`wlan_runner::Resume::ColdStart`].
//!
//! The journal key pins every result-shaping parameter (the full
//! [`CityConfig`], the PER-table digest, the stopping rule), so a
//! checkpoint can never silently resume a different city.

use std::path::PathBuf;

use crate::layout::CityConfig;
use crate::pertable::PerTableSet;
use crate::sim::{City, CityReport, CityState};
use wlan_math::ci::wilson95;
use wlan_math::par::num_threads;
use wlan_obs::json::Value;
use wlan_runner::budget::BudgetMeter;
use wlan_runner::journal::{self, f64_from_hex, f64_to_hex, kv, kv_u64};
use wlan_runner::{Budget, JournalError, Outcome, Resume, StopReason};
use wlan_math::WlanError;

/// Values packed per journal body line. The journal checksums
/// cumulatively (one digest per body line over all preceding bytes), so
/// many short lines cost quadratic hashing — big chunks keep checkpoints
/// cheap even at 10⁵ stations.
const CHUNK: usize = 1024;

/// Everything a city campaign invocation needs.
#[derive(Debug, Clone)]
pub struct CityCampaignConfig {
    /// The scenario.
    pub city: CityConfig,
    /// PER lookup tables (calibrated or synthetic).
    pub tables: PerTableSet,
    /// Trial (MAC-attempt) and wall-clock limits.
    pub budget: Budget,
    /// Checkpoint journal path; `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// Checkpoint every this many epochs (0 = only at campaign end).
    pub checkpoint_every_epochs: u64,
    /// Worker threads; `None` uses `WLAN_THREADS`/available parallelism.
    /// Never affects results, only wall-clock.
    pub threads: Option<usize>,
    /// Early-stop once the Wilson-95 half-width of the city-wide loss
    /// rate drops below this; `None` always runs all epochs.
    pub target_half_width: Option<f64>,
    /// Epochs that must complete before early stopping may trigger
    /// (transient-free measurement window).
    pub min_epochs: u64,
}

impl CityCampaignConfig {
    /// A campaign over `city` with no budget, journal, or early stopping.
    pub fn new(city: CityConfig, tables: PerTableSet) -> Self {
        CityCampaignConfig {
            city,
            tables,
            budget: Budget::unlimited(),
            journal: None,
            checkpoint_every_epochs: 0,
            threads: None,
            target_half_width: None,
            min_epochs: 0,
        }
    }
}

/// What a campaign invocation produced.
#[derive(Debug, Clone)]
pub struct CityRunSummary {
    /// Aggregates derived from the final state.
    pub report: CityReport,
    /// Complete, or partial with the budget that ran out.
    pub outcome: Outcome,
    /// How the invocation started (fresh / resumed / cold-start).
    pub resume: Resume,
    /// Whether the Wilson early-stop rule ended the run before `epochs`.
    pub early_stopped: bool,
    /// Epochs simulated by *this* invocation (excludes restored ones).
    pub epochs_this_invocation: u64,
    /// The final state (journal-equivalent; lets callers diff runs).
    pub state: CityState,
}

/// Runs (or resumes) a city campaign to completion, budget exhaustion,
/// or early stop. Results are bit-identical at any thread count and
/// across any kill/resume schedule.
///
/// # Errors
///
/// [`WlanError::InvalidConfig`] if the scenario fails validation.
pub fn run_city_campaign(cfg: &CityCampaignConfig) -> Result<CityRunSummary, WlanError> {
    let city = City::new(cfg.city.clone(), cfg.tables.clone())?;
    let key = journal_key(cfg);
    let threads = cfg.threads.unwrap_or_else(num_threads);

    let (mut state, resume) = restore(cfg, &city, &key);
    let banked = state.attempts;
    let mut meter = BudgetMeter::resumed(cfg.budget, banked);

    let obs = wlan_obs::global();
    obs.event(
        "city_campaign_start",
        &[
            ("kind", Value::Str("city".into())),
            ("aps", Value::U64(cfg.city.n_aps as u64)),
            ("stations", Value::U64(cfg.city.n_stations() as u64)),
            ("epochs", Value::U64(cfg.city.epochs)),
            ("restored_epochs", Value::U64(state.epoch)),
            ("banked_trials", Value::U64(banked)),
        ],
    );

    let epochs_at_entry = state.epoch;
    let mut early_stopped = false;
    let mut stop_reason: Option<StopReason> = None;
    let t_checkpoint = obs.histogram("city.journal_write");

    while state.epoch < cfg.city.epochs {
        if let Some(reason) = meter.exhausted() {
            stop_reason = Some(reason);
            break;
        }
        let attempts_before = state.attempts;
        city.run_epoch(&mut state, threads);
        meter.add_trials(state.attempts - attempts_before);

        if let Some(path) = &cfg.journal {
            let cadence = cfg.checkpoint_every_epochs;
            if cadence > 0 && state.epoch % cadence == 0 && state.epoch < cfg.city.epochs {
                let span = t_checkpoint.start();
                // Checkpoint failures are non-fatal: the campaign still
                // holds its state and will try again at the next cadence.
                let saved = journal::save(path, &key, &snapshot(&state)).is_ok();
                span.stop();
                obs.event(
                    "city_checkpoint",
                    &[
                        ("epoch", Value::U64(state.epoch)),
                        ("trials", Value::U64(state.attempts)),
                        ("saved", Value::Bool(saved)),
                    ],
                );
            }
        }

        if let Some(target) = cfg.target_half_width {
            if state.epoch >= cfg.min_epochs && state.attempts > 0 {
                let hw = wilson95(state.failures, state.attempts).half_width();
                if hw < target {
                    early_stopped = true;
                    obs.counter("city.early_stops").add(1);
                    obs.event(
                        "city_early_stop",
                        &[
                            ("epoch", Value::U64(state.epoch)),
                            ("half_width", Value::F64(hw)),
                            ("target", Value::F64(target)),
                        ],
                    );
                    break;
                }
            }
        }
    }

    // Final checkpoint: a budget-stopped campaign must be resumable, and
    // a completed one leaves a journal that resumes to a no-op.
    if let Some(path) = &cfg.journal {
        let span = t_checkpoint.start();
        let _ = journal::save(path, &key, &snapshot(&state));
        span.stop();
    }

    let outcome = match stop_reason {
        None => Outcome::Complete,
        Some(reason) => {
            let epochs_done = state.epoch.max(1);
            let per_epoch = state.attempts / epochs_done;
            let remaining_epochs = cfg.city.epochs - state.epoch;
            Outcome::Partial {
                completed: meter.trials(),
                remaining: remaining_epochs * per_epoch.max(1),
                reason,
            }
        }
    };

    let report = city.report(&state);
    obs.event(
        "city_campaign_done",
        &[
            ("epochs_run", Value::U64(state.epoch)),
            ("attempts", Value::U64(state.attempts)),
            ("delivered", Value::U64(report.delivered_frames)),
            ("complete", Value::Bool(outcome.is_complete())),
            ("early_stopped", Value::Bool(early_stopped)),
        ],
    );

    Ok(CityRunSummary {
        report,
        outcome,
        resume,
        early_stopped,
        epochs_this_invocation: state.epoch - epochs_at_entry,
        state,
    })
}

/// The campaign identity: every parameter that shapes the deterministic
/// result. A journal written under a different key never resumes.
fn journal_key(cfg: &CityCampaignConfig) -> String {
    let c = &cfg.city;
    let target = match cfg.target_half_width {
        Some(t) => f64_to_hex(t),
        None => "none".to_owned(),
    };
    format!(
        "city v1 aps={} sta={} spacing={} ch={} cs={} int={} b={} load={} payload={} \
         epochs={} epoch_ms={} roam={} hyst={} shadow={} hnt={} seed={} \
         tables={:016x} target={} min_epochs={}",
        c.n_aps,
        c.stations_per_ap,
        f64_to_hex(c.ap_spacing_m),
        c.n_channels,
        f64_to_hex(c.cs_range_m),
        f64_to_hex(c.interference_range_m),
        f64_to_hex(c.b_fraction),
        f64_to_hex(c.offered_load),
        c.payload_bytes,
        c.epochs,
        f64_to_hex(c.epoch_ms),
        c.roam_every_epochs,
        f64_to_hex(c.hysteresis_db),
        f64_to_hex(c.shadow_sigma_db),
        c.hidden_node_trials,
        c.seed,
        cfg.tables.digest(),
        target,
        cfg.min_epochs
    )
}

/// Serialises a state snapshot into journal body lines.
fn snapshot(state: &CityState) -> Vec<String> {
    let mut body = Vec::new();
    let d = &state.ac_delivered;
    let a = &state.ac_attempts;
    body.push(format!(
        "state epoch={} attempts={} failures={} handoffs={} defer={} \
         pd={} pse={} ud={} use={} \
         d0={} d1={} d2={} d3={} a0={} a1={} a2={} a3={}",
        state.epoch,
        state.attempts,
        state.failures,
        state.handoffs,
        f64_to_hex(state.defer_us),
        state.prot_delivered,
        state.prot_sta_epochs,
        state.unprot_delivered,
        state.unprot_sta_epochs,
        d[0], d[1], d[2], d[3], a[0], a[1], a[2], a[3]
    ));
    for (start, chunk) in state.assoc.chunks(CHUNK).enumerate() {
        let vals: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        body.push(format!("assoc o={} v={}", start * CHUNK, vals.join(",")));
    }
    for (start, chunk) in state.delivered.chunks(CHUNK).enumerate() {
        let vals: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        body.push(format!("del o={} v={}", start * CHUNK, vals.join(",")));
    }
    for (start, chunk) in state.busy_frac.chunks(CHUNK).enumerate() {
        let vals: Vec<String> = chunk.iter().map(|&v| f64_to_hex(v)).collect();
        body.push(format!("busy o={} v={}", start * CHUNK, vals.join(",")));
    }
    body.push("end".to_owned());
    body
}

/// Rebuilds a state from journal body lines. `None` on any structural
/// defect (the caller cold-starts).
fn parse_snapshot(city: &City, body: &[String]) -> Option<CityState> {
    let mut state = city.fresh_state();
    let mut have_header = false;
    let mut have_end = false;
    let mut assoc_seen = 0usize;
    let mut del_seen = 0usize;
    let mut busy_seen = 0usize;

    for line in body {
        if have_end {
            return None; // trailing garbage after the end marker
        }
        let mut tokens = line.split_ascii_whitespace();
        match tokens.next()? {
            "state" => {
                let t: Vec<&str> = tokens.collect();
                if t.len() != 17 {
                    return None;
                }
                state.epoch = kv_u64(t[0], "epoch")?;
                state.attempts = kv_u64(t[1], "attempts")?;
                state.failures = kv_u64(t[2], "failures")?;
                state.handoffs = kv_u64(t[3], "handoffs")?;
                state.defer_us = f64_from_hex(kv(t[4], "defer")?)?;
                state.prot_delivered = kv_u64(t[5], "pd")?;
                state.prot_sta_epochs = kv_u64(t[6], "pse")?;
                state.unprot_delivered = kv_u64(t[7], "ud")?;
                state.unprot_sta_epochs = kv_u64(t[8], "use")?;
                for i in 0..4 {
                    state.ac_delivered[i] = kv_u64(t[9 + i], &format!("d{i}"))?;
                    state.ac_attempts[i] = kv_u64(t[13 + i], &format!("a{i}"))?;
                }
                have_header = true;
            }
            "assoc" => {
                let (o, vals) = chunk_fields(&mut tokens)?;
                if o != assoc_seen {
                    return None;
                }
                for v in vals.split(',') {
                    if assoc_seen >= state.assoc.len() {
                        return None;
                    }
                    state.assoc[assoc_seen] = v.parse().ok()?;
                    assoc_seen += 1;
                }
            }
            "del" => {
                let (o, vals) = chunk_fields(&mut tokens)?;
                if o != del_seen {
                    return None;
                }
                for v in vals.split(',') {
                    if del_seen >= state.delivered.len() {
                        return None;
                    }
                    state.delivered[del_seen] = v.parse().ok()?;
                    del_seen += 1;
                }
            }
            "busy" => {
                let (o, vals) = chunk_fields(&mut tokens)?;
                if o != busy_seen {
                    return None;
                }
                for v in vals.split(',') {
                    if busy_seen >= state.busy_frac.len() {
                        return None;
                    }
                    state.busy_frac[busy_seen] = f64_from_hex(v)?;
                    busy_seen += 1;
                }
            }
            "end" => have_end = true,
            _ => return None,
        }
    }

    let complete = have_header
        && have_end
        && assoc_seen == state.assoc.len()
        && del_seen == state.delivered.len()
        && busy_seen == state.busy_frac.len()
        && state.assoc.iter().all(|&ap| (ap as usize) < city.cfg.n_aps)
        && state.failures <= state.attempts
        && state.epoch <= city.cfg.epochs;
    complete.then_some(state)
}

/// Parses `o=<offset> v=<csv>` out of a chunked line's remaining tokens.
fn chunk_fields<'a, I: Iterator<Item = &'a str>>(tokens: &mut I) -> Option<(usize, &'a str)> {
    let o: usize = kv(tokens.next()?, "o")?.parse().ok()?;
    let vals = kv(tokens.next()?, "v")?;
    tokens.next().is_none().then_some((o, vals))
}

/// Restores state from the configured journal (strict load, no salvage —
/// see the module docs for why a snapshot has no usable prefix).
fn restore(cfg: &CityCampaignConfig, city: &City, key: &str) -> (CityState, Resume) {
    let Some(path) = &cfg.journal else {
        return (city.fresh_state(), Resume::Fresh);
    };
    match journal::load(path, key) {
        Ok(body) => match parse_snapshot(city, &body) {
            Some(state) => {
                let trials = state.attempts;
                (state, Resume::Resumed { trials })
            }
            // Verified checksum but unparseable body: treat like any
            // other untrustworthy journal.
            None => (
                city.fresh_state(),
                Resume::ColdStart {
                    error: JournalError::Malformed { line: 0 },
                },
            ),
        },
        Err(JournalError::Io(std::io::ErrorKind::NotFound)) => {
            (city.fresh_state(), Resume::Fresh)
        }
        Err(error) => (city.fresh_state(), Resume::ColdStart { error }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn tmp_journal(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wlan_city_campaign_{}_{name}", std::process::id()));
        p
    }

    fn small_campaign(journal: Option<PathBuf>) -> CityCampaignConfig {
        let mut cfg =
            CityCampaignConfig::new(CityConfig::small_test(), PerTableSet::synthetic());
        cfg.journal = journal;
        cfg.checkpoint_every_epochs = 2;
        cfg.threads = Some(1);
        cfg
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let cfg = small_campaign(None);
        let city = City::new(cfg.city.clone(), cfg.tables.clone()).expect("valid");
        let mut state = city.fresh_state();
        for _ in 0..3 {
            city.run_epoch(&mut state, 1);
        }
        let body = snapshot(&state);
        let back = parse_snapshot(&city, &body).expect("round trip");
        assert_eq!(back, state);
    }

    #[test]
    fn parse_rejects_structural_damage() {
        let cfg = small_campaign(None);
        let city = City::new(cfg.city.clone(), cfg.tables.clone()).expect("valid");
        let mut state = city.fresh_state();
        city.run_epoch(&mut state, 1);
        let good = snapshot(&state);

        // Dropped end marker, dropped header, truncated chunks, trailing
        // garbage, out-of-range association.
        let mut no_end = good.clone();
        no_end.pop();
        assert!(parse_snapshot(&city, &no_end).is_none());

        let headerless = good[1..].to_vec();
        assert!(parse_snapshot(&city, &headerless).is_none());

        let mut truncated = good.clone();
        truncated.remove(1);
        assert!(parse_snapshot(&city, &truncated).is_none());

        let mut trailing = good.clone();
        trailing.push("assoc o=0 v=1".to_owned());
        assert!(parse_snapshot(&city, &trailing).is_none());

        let mut bad_ap = good.clone();
        bad_ap[1] = bad_ap[1].replacen("v=", "v=9999,", 1);
        assert!(parse_snapshot(&city, &bad_ap).is_none());
    }

    #[test]
    fn campaign_completes_and_reports() {
        let cfg = small_campaign(None);
        let summary = run_city_campaign(&cfg).expect("runs");
        assert!(summary.outcome.is_complete());
        assert!(matches!(summary.resume, Resume::Fresh));
        assert_eq!(summary.report.epochs_run, cfg.city.epochs);
        assert!(summary.report.delivered_frames > 0);
        assert_eq!(summary.epochs_this_invocation, cfg.city.epochs);
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        let path = tmp_journal("resume");
        let _ = std::fs::remove_file(&path);

        let uninterrupted = run_city_campaign(&small_campaign(None)).expect("runs");

        // Step the same campaign through repeated tiny trial budgets
        // until it completes, checkpointing every epoch.
        let mut stepped = small_campaign(Some(path.clone()));
        stepped.checkpoint_every_epochs = 1;
        let mut step = stepped.clone();
        let mut last = None;
        for round in 0..200 {
            let budget_trials = (round as u64 + 1) * 2_000;
            step.budget = Budget::unlimited().with_max_trials(budget_trials);
            let summary = run_city_campaign(&step).expect("runs");
            if round > 0 && summary.epochs_this_invocation > 0 {
                assert!(
                    matches!(summary.resume, Resume::Resumed { .. }),
                    "{:?}",
                    summary.resume
                );
            }
            let done = summary.outcome.is_complete();
            last = Some(summary);
            if done {
                break;
            }
        }
        let resumed = last.expect("at least one round");
        assert!(resumed.outcome.is_complete(), "stepped campaign finished");
        assert_eq!(resumed.state, uninterrupted.state, "bit-identical resume");
        assert_eq!(resumed.report, uninterrupted.report);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_key_journal_cold_starts() {
        let path = tmp_journal("coldstart");
        journal::save(&path, "some other campaign", &["end".to_owned()]).expect("save");
        let cfg = small_campaign(Some(path.clone()));
        let summary = run_city_campaign(&cfg).expect("runs");
        assert!(
            matches!(
                summary.resume,
                Resume::ColdStart {
                    error: JournalError::KeyMismatch
                }
            ),
            "{:?}",
            summary.resume
        );
        assert!(summary.outcome.is_complete());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhausted_budget_reports_partial_with_resumable_journal() {
        let path = tmp_journal("partial");
        let _ = std::fs::remove_file(&path);
        let mut cfg = small_campaign(Some(path.clone()));
        cfg.budget = Budget::unlimited().with_max_trials(1);
        let summary = run_city_campaign(&cfg).expect("runs");
        match summary.outcome {
            Outcome::Partial {
                completed,
                remaining,
                reason,
            } => {
                assert_eq!(reason, StopReason::TrialBudget);
                assert!(completed >= 1);
                assert!(remaining > 0);
            }
            Outcome::Complete => panic!("1-trial budget cannot complete 8 epochs"),
        }
        // The final save must leave a loadable journal.
        assert!(Path::new(&path).exists());
        let key = journal_key(&cfg);
        assert!(journal::load(&path, &key).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn early_stopping_ends_the_campaign_before_all_epochs() {
        let mut cfg = small_campaign(None);
        cfg.city.epochs = 50;
        cfg.target_half_width = Some(0.05); // loose: trips quickly
        cfg.min_epochs = 2;
        let summary = run_city_campaign(&cfg).expect("runs");
        assert!(summary.early_stopped);
        assert!(summary.outcome.is_complete());
        assert!(summary.report.epochs_run >= 2);
        assert!(summary.report.epochs_run < 50);
    }

    #[test]
    fn journal_key_pins_result_shaping_parameters() {
        let base = small_campaign(None);
        let k0 = journal_key(&base);
        let mut seed = base.clone();
        seed.city.seed += 1;
        assert_ne!(journal_key(&seed), k0);
        let mut stop = base.clone();
        stop.target_half_width = Some(0.01);
        assert_ne!(journal_key(&stop), k0);
        // Budgets and threads do not shape results: same key.
        let mut budgeted = base.clone();
        budgeted.budget = Budget::unlimited().with_max_trials(5);
        budgeted.threads = Some(7);
        assert_eq!(journal_key(&budgeted), k0);
    }
}
