//! EDCA access categories: 802.11e QoS on top of the DCF parameters.
//!
//! 802.11e differentiates traffic by giving each access category (AC)
//! its own contention parameters derived from the PHY's `aCWmin`/`aCWmax`
//! (table 7-37 of the standard): voice and video get shrunken contention
//! windows and the minimum AIFS, best effort keeps the DCF window with a
//! slightly longer AIFS, background waits longest. The city simulator
//! applies these per-station parameters inside each BSS's contention
//! loop, which is exactly how EDCA wins airtime in real cells — smaller
//! windows win the backoff race more often, AIFS adds deterministic
//! extra slots before low-priority stations may even count down.

use wlan_mac::params::MacProfile;

/// 802.11e access category, highest priority first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessCategory {
    /// AC_VO — voice.
    Voice,
    /// AC_VI — video.
    Video,
    /// AC_BE — best effort.
    BestEffort,
    /// AC_BK — background.
    Background,
}

impl AccessCategory {
    /// All four categories, priority order.
    pub const ALL: [AccessCategory; 4] = [
        AccessCategory::Voice,
        AccessCategory::Video,
        AccessCategory::BestEffort,
        AccessCategory::Background,
    ];

    /// Stable index 0..4 (priority order) for array-backed tallies.
    pub fn index(self) -> usize {
        match self {
            AccessCategory::Voice => 0,
            AccessCategory::Video => 1,
            AccessCategory::BestEffort => 2,
            AccessCategory::Background => 3,
        }
    }

    /// Category from its stable index (wraps modulo 4, so any station
    /// index maps to a category).
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i % 4]
    }

    /// Short standard name (`VO`, `VI`, `BE`, `BK`).
    pub fn name(self) -> &'static str {
        match self {
            AccessCategory::Voice => "VO",
            AccessCategory::Video => "VI",
            AccessCategory::BestEffort => "BE",
            AccessCategory::Background => "BK",
        }
    }
}

/// Per-AC contention parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdcaParams {
    /// Minimum contention window (slots − 1).
    pub cw_min: u32,
    /// Maximum contention window (slots − 1).
    pub cw_max: u32,
    /// Arbitration inter-frame space number (≥ 2; DIFS ≡ AIFSN 2).
    pub aifsn: u32,
}

impl EdcaParams {
    /// The 802.11e default parameter set for `ac`, derived from the
    /// profile's `aCWmin`/`aCWmax`:
    ///
    /// | AC | CWmin | CWmax | AIFSN |
    /// |----|-------|-------|-------|
    /// | VO | (aCWmin+1)/4 − 1 | (aCWmin+1)/2 − 1 | 2 |
    /// | VI | (aCWmin+1)/2 − 1 | aCWmin | 2 |
    /// | BE | aCWmin | aCWmax | 3 |
    /// | BK | aCWmin | aCWmax | 7 |
    pub fn for_ac(profile: &MacProfile, ac: AccessCategory) -> Self {
        let a_min = profile.cw_min;
        let a_max = profile.cw_max;
        match ac {
            AccessCategory::Voice => EdcaParams {
                cw_min: ((a_min + 1) / 4).max(1) - 1,
                cw_max: a_min.div_ceil(2).max(1) - 1,
                aifsn: 2,
            },
            AccessCategory::Video => EdcaParams {
                cw_min: a_min.div_ceil(2).max(1) - 1,
                cw_max: a_min,
                aifsn: 2,
            },
            AccessCategory::BestEffort => EdcaParams {
                cw_min: a_min,
                cw_max: a_max,
                aifsn: 3,
            },
            AccessCategory::Background => EdcaParams {
                cw_min: a_min,
                cw_max: a_max,
                aifsn: 7,
            },
        }
    }

    /// Slots this AC waits beyond the shortest AIFS before its backoff
    /// may count down (AIFSN 2 ≡ DIFS ≡ zero extra slots).
    pub fn extra_aifs_slots(&self) -> u32 {
        self.aifsn.saturating_sub(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot11g_edca_matches_the_standard_table() {
        // aCWmin 15, aCWmax 1023 (OFDM PHY).
        let p = MacProfile::dot11g(54.0);
        let vo = EdcaParams::for_ac(&p, AccessCategory::Voice);
        assert_eq!((vo.cw_min, vo.cw_max, vo.aifsn), (3, 7, 2));
        let vi = EdcaParams::for_ac(&p, AccessCategory::Video);
        assert_eq!((vi.cw_min, vi.cw_max, vi.aifsn), (7, 15, 2));
        let be = EdcaParams::for_ac(&p, AccessCategory::BestEffort);
        assert_eq!((be.cw_min, be.cw_max, be.aifsn), (15, 1023, 3));
        let bk = EdcaParams::for_ac(&p, AccessCategory::Background);
        assert_eq!((bk.cw_min, bk.cw_max, bk.aifsn), (15, 1023, 7));
    }

    #[test]
    fn dot11b_edca_scales_from_the_dsss_window() {
        // aCWmin 31 (DSSS PHY): VO gets 7/15, VI 15/31.
        let p = MacProfile::dot11b(11.0);
        let vo = EdcaParams::for_ac(&p, AccessCategory::Voice);
        assert_eq!((vo.cw_min, vo.cw_max), (7, 15));
        let vi = EdcaParams::for_ac(&p, AccessCategory::Video);
        assert_eq!((vi.cw_min, vi.cw_max), (15, 31));
    }

    #[test]
    fn priority_order_is_strict() {
        let p = MacProfile::dot11g(54.0);
        let params: Vec<EdcaParams> = AccessCategory::ALL
            .iter()
            .map(|&ac| EdcaParams::for_ac(&p, ac))
            .collect();
        for w in params.windows(2) {
            assert!(w[0].cw_min <= w[1].cw_min);
            assert!(w[0].aifsn <= w[1].aifsn);
        }
        assert_eq!(params[0].extra_aifs_slots(), 0);
        assert_eq!(params[3].extra_aifs_slots(), 5);
    }

    #[test]
    fn from_index_round_trips() {
        for ac in AccessCategory::ALL {
            assert_eq!(AccessCategory::from_index(ac.index()), ac);
        }
        assert_eq!(AccessCategory::from_index(7), AccessCategory::Background);
    }
}
