//! City-scale multi-BSS simulation (experiment E20).
//!
//! The source paper is a 2005 snapshot; where WLAN actually went is
//! *density*: hundreds of APs per square kilometre, overlapping BSSs on
//! three usable 2.4 GHz channels, legacy 802.11b stations forcing
//! protection onto 802.11g cells, and QoS (EDCA) carving the airtime into
//! access categories. This crate simulates that city at MAC speed:
//!
//! - [`layout`] — seeded geometric deployment: APs on a jittered grid
//!   (via `wlan_mesh::layout`), reuse-3 channel colouring, uniformly
//!   scattered stations, carrier-sense and interferer neighbourhoods,
//!   and a Monte-Carlo hidden-node probability for the cell geometry.
//! - [`pertable`] — PER lookup tables calibrated once per (generation,
//!   rate) from the real PHY chains (`wlan_core::linksim::sweep_per`) and
//!   interpolated in SINR, so the hot loop never touches a PHY.
//! - [`edca`] — 802.11e access-category parameters (per-AC CWmin/CWmax/
//!   AIFS) derived from a [`wlan_mac::params::MacProfile`].
//! - [`sim`] — the epoch-based simulator: per-BSS DCF-style contention
//!   with OBSS deference, co-channel SINR via
//!   `wlan_channel::interference`, 11b/g protection interplay reusing
//!   `wlan_mac::protection`, and RSSI-hysteresis roaming.
//! - [`campaign`] — the `wlan-runner`-style entry point: budgets,
//!   checkpoint/resume journals, Wilson-CI early stopping, `wlan-obs`
//!   events.
//!
//! # Determinism
//!
//! Every random decision draws from a stream forked off the master seed
//! by *coordinates*, never by execution order: MAC contention in BSS `b`
//! at epoch `e` uses `master.fork(S_MAC).fork(b).fork(e)`, roaming for
//! station `s` at epoch `e` uses `master.fork(S_ROAM).fork(s).fork(e)`.
//! Per-BSS and per-station work fans out over `wlan_math::par` and is
//! reduced in index order, so a city run is bit-identical at any
//! `WLAN_THREADS` setting and across kill/resume through the journal —
//! pinned by `tests/tests/city_determinism.rs`.

pub mod campaign;
pub mod edca;
pub mod layout;
pub mod pertable;
pub mod sim;

pub use campaign::{run_city_campaign, CityCampaignConfig, CityRunSummary};
pub use edca::{AccessCategory, EdcaParams};
pub use layout::{CityConfig, CityLayout, Generation};
pub use pertable::{PerTable, PerTableSet};
pub use sim::{City, CityReport, CityState};
