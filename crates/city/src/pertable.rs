//! PER lookup tables: the contract that lets a city run at MAC speed.
//!
//! A city-scale epoch evaluates tens of thousands of station SINRs; at
//! ~565 µs per real PHY frame even the batched kernels would cap the city
//! at a few thousand frames per second. Instead the PHY is consulted
//! *once*, at calibration time: [`PerTable::calibrate`] sweeps a real
//! TX→channel→RX chain over an SNR grid (`wlan_core::linksim::sweep_per`)
//! and the hot loop interpolates the resulting curve in SINR.
//!
//! Calibration contract (see DESIGN.md "City-scale scenarios"):
//!
//! - one table per (generation, rate), calibrated with the campaign's
//!   payload length and a fixed calibration seed;
//! - tables are pure data — `(SNR, PER)` points, strictly increasing in
//!   SNR, PER in `[0, 1]`;
//! - lookup clamps outside the calibrated grid (no extrapolation) and
//!   maps a NaN SINR to PER = 1.0 (an unmeasurable link delivers
//!   nothing, mirroring `mesh::topology::best_rate_for_snr`);
//! - [`PerTable::digest`] hashes the exact table bits into the campaign
//!   journal key, so resuming against tables calibrated differently is a
//!   typed `KeyMismatch`, never silent drift.

use std::cmp::Ordering;

use wlan_core::linksim::{sweep_per, DsssLink, OfdmLink, PhyLink};
use wlan_core::dsss::DsssRate;
use wlan_core::ofdm::OfdmRate;
use wlan_math::WlanError;
use wlan_runner::journal::fnv1a64;

/// A calibrated `(SNR dB, PER)` curve with clamped linear interpolation.
#[derive(Debug, Clone, PartialEq)]
pub struct PerTable {
    snr_db: Vec<f64>,
    per: Vec<f64>,
}

impl PerTable {
    /// Builds a table from `(snr_db, per)` points.
    ///
    /// # Errors
    ///
    /// [`WlanError::InvalidConfig`] if the table is empty, SNRs are not
    /// finite and strictly increasing, or a PER is outside `[0, 1]`
    /// (NaN included).
    pub fn try_from_points(points: &[(f64, f64)]) -> Result<Self, WlanError> {
        if points.is_empty() {
            return Err(WlanError::InvalidConfig(
                "PER table needs at least one point",
            ));
        }
        for w in points.windows(2) {
            // partial_cmp keeps the NaN-rejecting semantics: an
            // incomparable pair is not "strictly increasing".
            if w[1].0.partial_cmp(&w[0].0) != Some(Ordering::Greater) {
                return Err(WlanError::InvalidConfig(
                    "PER table SNRs must be strictly increasing",
                ));
            }
        }
        for &(snr, per) in points {
            if !snr.is_finite() {
                return Err(WlanError::InvalidConfig("PER table SNR must be finite"));
            }
            if !(0.0..=1.0).contains(&per) {
                return Err(WlanError::InvalidConfig("PER must be in [0, 1]"));
            }
        }
        Ok(PerTable {
            snr_db: points.iter().map(|p| p.0).collect(),
            per: points.iter().map(|p| p.1).collect(),
        })
    }

    /// Calibrates a table by sweeping a real PHY chain: `frames` Monte-
    /// Carlo trials per SNR point, per-trial forked streams (bit-identical
    /// at any `WLAN_THREADS`).
    ///
    /// # Errors
    ///
    /// [`WlanError::InvalidConfig`] if the grid is empty/non-increasing
    /// or `frames`/`payload_len` is zero.
    pub fn calibrate(
        link: &dyn PhyLink,
        snrs_db: &[f64],
        payload_len: usize,
        frames: usize,
        seed: u64,
    ) -> Result<Self, WlanError> {
        if frames == 0 || payload_len == 0 {
            return Err(WlanError::InvalidConfig(
                "calibration needs nonzero frames and payload",
            ));
        }
        if snrs_db.is_empty() {
            return Err(WlanError::InvalidConfig(
                "calibration needs at least one SNR point",
            ));
        }
        for w in snrs_db.windows(2) {
            if w[1].partial_cmp(&w[0]) != Some(Ordering::Greater) {
                return Err(WlanError::InvalidConfig(
                    "calibration SNR grid must be strictly increasing",
                ));
            }
        }
        let curve = sweep_per(link, snrs_db, payload_len, frames, seed);
        let points: Vec<(f64, f64)> = curve.points.iter().map(|p| (p.snr_db, p.per)).collect();
        Self::try_from_points(&points)
    }

    /// PER at a SINR, clamped to the calibrated grid ends; NaN → 1.0.
    pub fn per_at(&self, sinr_db: f64) -> f64 {
        if sinr_db.is_nan() {
            return 1.0;
        }
        let n = self.snr_db.len();
        if sinr_db <= self.snr_db[0] {
            return self.per[0];
        }
        if sinr_db >= self.snr_db[n - 1] {
            return self.per[n - 1];
        }
        // partition_point: first index with snr > sinr; 1..=n-1 here.
        let hi = self.snr_db.partition_point(|&s| s <= sinr_db);
        let lo = hi - 1;
        let t = (sinr_db - self.snr_db[lo]) / (self.snr_db[hi] - self.snr_db[lo]);
        self.per[lo] + t * (self.per[hi] - self.per[lo])
    }

    /// FNV-1a-64 over the exact bit patterns of every point — the value
    /// folded into the campaign journal key.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.snr_db.len() * 16);
        for (&s, &p) in self.snr_db.iter().zip(&self.per) {
            bytes.extend_from_slice(&s.to_bits().to_le_bytes());
            bytes.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        fnv1a64(&bytes)
    }
}

/// The city's full PHY cost model: one DSSS table for legacy 11b
/// stations and one OFDM table per 11g rate step, with target-PER rate
/// adaptation.
#[derive(Debug, Clone, PartialEq)]
pub struct PerTableSet {
    dsss_rate_mbps: f64,
    dsss: PerTable,
    /// `(rate_mbps, table)`, ascending in rate.
    ofdm: Vec<(f64, PerTable)>,
}

/// Rate adaptation target: a station picks the fastest rate whose
/// interpolated PER stays at or below this.
pub const RATE_TARGET_PER: f64 = 0.1;

impl PerTableSet {
    /// Assembles a set from pre-built tables.
    ///
    /// # Errors
    ///
    /// [`WlanError::InvalidConfig`] if rates are not positive, finite and
    /// strictly increasing, or the OFDM list is empty.
    pub fn try_new(
        dsss_rate_mbps: f64,
        dsss: PerTable,
        ofdm: Vec<(f64, PerTable)>,
    ) -> Result<Self, WlanError> {
        if !(dsss_rate_mbps > 0.0 && dsss_rate_mbps.is_finite()) {
            return Err(WlanError::InvalidConfig(
                "DSSS rate must be positive and finite",
            ));
        }
        if ofdm.is_empty() {
            return Err(WlanError::InvalidConfig("need at least one OFDM table"));
        }
        for w in ofdm.windows(2) {
            if w[1].0.partial_cmp(&w[0].0) != Some(Ordering::Greater) {
                return Err(WlanError::InvalidConfig(
                    "OFDM rates must be strictly increasing",
                ));
            }
        }
        if ofdm
            .iter()
            .any(|(r, _)| !(*r > 0.0 && r.is_finite()))
        {
            return Err(WlanError::InvalidConfig(
                "OFDM rates must be positive and finite",
            ));
        }
        Ok(PerTableSet {
            dsss_rate_mbps,
            dsss,
            ofdm,
        })
    }

    /// Calibrates the full set from the real PHY chains: 11 Mbps CCK for
    /// the legacy stations, every 802.11a/g OFDM rate step for the rest.
    /// `frames` Monte-Carlo trials per SNR point per link — the only time
    /// the city touches a PHY.
    ///
    /// # Errors
    ///
    /// [`WlanError::InvalidConfig`] on zero `frames`/`payload_len`.
    pub fn calibrated(payload_len: usize, frames: usize, seed: u64) -> Result<Self, WlanError> {
        // −4..34 dB in 2 dB steps spans CCK's knee (~5 dB) through 64-QAM
        // r3/4's (~25 dB) with clamp headroom on both ends.
        let snrs: Vec<f64> = (0..20).map(|i| -4.0 + 2.0 * i as f64).collect();
        let dsss = PerTable::calibrate(
            &DsssLink {
                rate: DsssRate::Cck11M,
            },
            &snrs,
            payload_len,
            frames,
            seed,
        )?;
        let mut ofdm = Vec::new();
        for rate in [
            OfdmRate::R6,
            OfdmRate::R9,
            OfdmRate::R12,
            OfdmRate::R18,
            OfdmRate::R24,
            OfdmRate::R36,
            OfdmRate::R48,
            OfdmRate::R54,
        ] {
            let link = OfdmLink::awgn(rate);
            let table = PerTable::calibrate(&link, &snrs, payload_len, frames, seed)?;
            ofdm.push((link.rate_mbps(), table));
        }
        Self::try_new(DsssRate::Cck11M.rate_mbps(), dsss, ofdm)
    }

    /// A cheap analytic stand-in for tests and benches: logistic PER
    /// curves anchored at the per-rate SNR thresholds of
    /// `wlan_mesh::topology::RATE_SNR_TABLE` (CCK knee at 8 dB). Same
    /// shape and contract as a calibrated set, no PHY work.
    pub fn synthetic() -> Self {
        let logistic = |mid: f64| {
            let points: Vec<(f64, f64)> = (0..46)
                .map(|i| {
                    let snr = -5.0 + i as f64;
                    (snr, 1.0 / (1.0 + ((snr - mid) / 1.2).exp()))
                })
                .collect();
            PerTable::try_from_points(&points)
                .unwrap_or(PerTable {
                    // Unreachable: the grid above is strictly increasing
                    // and logistic values sit in (0, 1).
                    snr_db: vec![0.0],
                    per: vec![1.0],
                })
        };
        let ofdm = wlan_core::mesh::topology::RATE_SNR_TABLE
            .iter()
            .map(|&(rate, snr_req)| (rate, logistic(snr_req - 1.0)))
            .collect();
        PerTableSet {
            dsss_rate_mbps: 11.0,
            dsss: logistic(8.0),
            ofdm,
        }
    }

    /// Legacy (11b) station rate in Mbps.
    pub fn dsss_rate_mbps(&self) -> f64 {
        self.dsss_rate_mbps
    }

    /// Legacy (11b) PER at a SINR.
    pub fn dsss_per(&self, sinr_db: f64) -> f64 {
        self.dsss.per_at(sinr_db)
    }

    /// Rate adaptation for an OFDM (11g) station: the fastest rate whose
    /// PER at this SINR is ≤ [`RATE_TARGET_PER`], or the slowest rate
    /// (taking whatever PER it has) when none qualifies. Returns
    /// `(rate_mbps, per)`.
    pub fn ofdm_rate_and_per(&self, sinr_db: f64) -> (f64, f64) {
        for (rate, table) in self.ofdm.iter().rev() {
            let per = table.per_at(sinr_db);
            if per <= RATE_TARGET_PER {
                return (*rate, per);
            }
        }
        let (rate, table) = &self.ofdm[0];
        (*rate, table.per_at(sinr_db))
    }

    /// Digest over every table in the set (journal-key component).
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&self.dsss_rate_mbps.to_bits().to_le_bytes());
        bytes.extend_from_slice(&self.dsss.digest().to_le_bytes());
        for (rate, table) in &self.ofdm {
            bytes.extend_from_slice(&rate.to_bits().to_le_bytes());
            bytes.extend_from_slice(&table.digest().to_le_bytes());
        }
        fnv1a64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_validation_rejects_bad_points() {
        assert!(PerTable::try_from_points(&[]).is_err());
        assert!(PerTable::try_from_points(&[(0.0, 0.5), (0.0, 0.4)]).is_err());
        assert!(PerTable::try_from_points(&[(1.0, 0.5), (0.0, 0.4)]).is_err());
        assert!(PerTable::try_from_points(&[(f64::NAN, 0.5)]).is_err());
        assert!(PerTable::try_from_points(&[(0.0, 1.5)]).is_err());
        assert!(PerTable::try_from_points(&[(0.0, f64::NAN)]).is_err());
        assert!(PerTable::try_from_points(&[(0.0, 0.5)]).is_ok());
    }

    #[test]
    fn interpolation_clamps_and_interpolates() {
        let t = PerTable::try_from_points(&[(0.0, 1.0), (10.0, 0.0)]).expect("valid");
        assert_eq!(t.per_at(-5.0), 1.0);
        assert_eq!(t.per_at(20.0), 0.0);
        assert!((t.per_at(5.0) - 0.5).abs() < 1e-12);
        assert!((t.per_at(7.5) - 0.25).abs() < 1e-12);
        assert_eq!(t.per_at(f64::NAN), 1.0);
    }

    #[test]
    fn digest_tracks_content() {
        let a = PerTable::try_from_points(&[(0.0, 1.0), (10.0, 0.0)]).expect("valid");
        let b = PerTable::try_from_points(&[(0.0, 1.0), (10.0, 0.0)]).expect("valid");
        let c = PerTable::try_from_points(&[(0.0, 1.0), (10.0, 0.1)]).expect("valid");
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn synthetic_set_adapts_rate_with_sinr() {
        let set = PerTableSet::synthetic();
        let (slow_rate, _) = set.ofdm_rate_and_per(6.0);
        let (fast_rate, fast_per) = set.ofdm_rate_and_per(30.0);
        assert!(fast_rate > slow_rate, "{slow_rate} -> {fast_rate}");
        assert_eq!(fast_rate, 54.0);
        assert!(fast_per <= RATE_TARGET_PER);
        // Hopeless SINR: slowest rate, terrible PER — but never NaN.
        let (floor_rate, floor_per) = set.ofdm_rate_and_per(-10.0);
        assert_eq!(floor_rate, 6.0);
        assert!(floor_per > 0.9 && floor_per <= 1.0);
        assert!(set.dsss_per(-10.0) > 0.9);
        assert!(set.dsss_per(30.0) < 0.01);
    }

    #[test]
    fn calibrated_tables_come_from_the_real_phy() {
        // Tiny calibration: enough frames to see the PER fall with SNR.
        let set = PerTableSet::calibrated(100, 12, 7).expect("calibration");
        assert!(set.dsss_per(-4.0) > set.dsss_per(34.0));
        let (r_lo, _) = set.ofdm_rate_and_per(-4.0);
        let (r_hi, _) = set.ofdm_rate_and_per(34.0);
        assert!(r_hi >= r_lo);
        // Determinism: same seed, same digest.
        let again = PerTableSet::calibrated(100, 12, 7).expect("calibration");
        assert_eq!(set.digest(), again.digest());
    }
}
