//! The device power budget: RF chains and baseband processing.
//!
//! Experiment E11 asks how total power scales from one antenna to four.
//! Structure of the model:
//!
//! - each transmit chain: DAC, mixer, filters (fixed mW) plus its share of
//!   the PA draw,
//! - each receive chain: LNA, mixer, ADC, AGC (fixed mW),
//! - baseband: energy per complex multiply-accumulate times the op counts
//!   of the blocks actually running (FFTs per stream, MIMO detection per
//!   subcarrier, Viterbi/LDPC per bit).
//!
//! Constants are mid-2000s published estimates; the experiments report
//! ratios, which depend on the model structure (chains × antennas,
//! detection ∝ streams², decoding ∝ bits) rather than the constants.

use crate::pa::PaClass;

/// Energy per complex multiply-accumulate in nanojoules (~0.13 µm CMOS).
pub const ENERGY_PER_CMAC_NJ: f64 = 0.02;
/// Energy per Viterbi trellis step (64 states, add-compare-select) in nJ.
pub const ENERGY_PER_VITERBI_BIT_NJ: f64 = 0.3;
/// Energy per LDPC min-sum edge update in nJ.
pub const ENERGY_PER_LDPC_EDGE_NJ: f64 = 0.05;

/// A WLAN transceiver power budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBudget {
    /// Transmit chains (= antennas here).
    pub n_tx: usize,
    /// Receive chains.
    pub n_rx: usize,
    /// Fixed power per active TX chain in mW (excluding PA).
    pub tx_chain_mw: f64,
    /// Fixed power per active RX chain in mW.
    pub rx_chain_mw: f64,
    /// Shared synthesizer/PLL power in mW.
    pub synthesizer_mw: f64,
    /// Average radiated power in mW.
    pub radiated_mw: f64,
    /// PA class.
    pub pa_class: PaClass,
    /// PA output back-off in dB (driven by the waveform's PAPR).
    pub pa_backoff_db: f64,
}

impl PowerBudget {
    /// A typical mid-2000s CMOS WLAN radio with the given antenna counts:
    /// 120 mW per TX chain, 100 mW per RX chain, 40 mW synthesizer, 40 mW
    /// radiated through a class-B PA backed off 8 dB (OFDM).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn wlan_2005(n_tx: usize, n_rx: usize) -> Self {
        assert!(n_tx > 0 && n_rx > 0, "chain counts must be positive");
        PowerBudget {
            n_tx,
            n_rx,
            tx_chain_mw: 120.0,
            rx_chain_mw: 100.0,
            synthesizer_mw: 40.0,
            radiated_mw: 40.0,
            pa_class: PaClass::B,
            pa_backoff_db: 8.0,
        }
    }

    /// Total transmit-mode RF power in mW: chains + PA + synthesizer. The
    /// radiated power is split across `n_tx` PAs (each backed off equally).
    pub fn tx_active_mw(&self) -> f64 {
        let pa_total = self.pa_class.dc_power_mw(self.radiated_mw, self.pa_backoff_db);
        self.synthesizer_mw + self.n_tx as f64 * self.tx_chain_mw + pa_total
    }

    /// Total receive-mode RF power in mW (all chains on).
    pub fn rx_active_mw(&self) -> f64 {
        self.synthesizer_mw + self.n_rx as f64 * self.rx_chain_mw
    }

    /// Receive-mode RF power with only `active` chains powered.
    ///
    /// # Panics
    ///
    /// Panics if `active` is 0 or exceeds `n_rx`.
    pub fn rx_partial_mw(&self, active: usize) -> f64 {
        assert!(
            (1..=self.n_rx).contains(&active),
            "active chains must be 1..=n_rx"
        );
        self.synthesizer_mw + active as f64 * self.rx_chain_mw
    }
}

/// Baseband op-count models for one OFDM symbol (64-FFT, 48 carriers).
pub mod ops {
    /// Complex MACs for one radix-2 FFT of length `n`.
    pub fn fft_cmacs(n: usize) -> f64 {
        (n as f64 / 2.0) * (n as f64).log2()
    }

    /// Complex MACs to MMSE-detect one subcarrier with `n_ss` streams and
    /// `n_rx` antennas: Gram matrix (n_ss²·n_rx) + inversion (n_ss³) +
    /// filtering (n_ss·n_rx).
    pub fn mimo_detect_cmacs(n_ss: usize, n_rx: usize) -> f64 {
        let s = n_ss as f64;
        let r = n_rx as f64;
        s * s * r + s * s * s + s * r
    }

    /// Viterbi energy in nJ for `bits` decoded bits.
    pub fn viterbi_nj(bits: f64) -> f64 {
        bits * super::ENERGY_PER_VITERBI_BIT_NJ * 64.0 / 64.0
    }

    /// LDPC energy in nJ for `bits` bits at `iters` min-sum iterations
    /// (average variable degree ≈ 3, so edges ≈ 3·bits per iteration).
    pub fn ldpc_nj(bits: f64, iters: f64) -> f64 {
        bits * 3.0 * iters * super::ENERGY_PER_LDPC_EDGE_NJ
    }
}

/// Baseband power in mW for a receiver running `n_ss` streams over `n_rx`
/// antennas at `symbol_rate_hz` OFDM symbols per second with `coded_bits`
/// coded bits per symbol (Viterbi decoding).
pub fn baseband_rx_mw(
    n_ss: usize,
    n_rx: usize,
    symbol_rate_hz: f64,
    coded_bits_per_symbol: f64,
) -> f64 {
    let fft = n_rx as f64 * ops::fft_cmacs(64);
    let detect = 48.0 * ops::mimo_detect_cmacs(n_ss, n_rx);
    let cmac_nj = (fft + detect) * ENERGY_PER_CMAC_NJ;
    let viterbi_nj = ops::viterbi_nj(coded_bits_per_symbol / 2.0);
    // nJ per symbol × symbols/s = nW; convert to mW.
    (cmac_nj + viterbi_nj) * symbol_rate_hz * 1e-9 * 1e3
}

/// Energy per delivered information bit in nanojoules, for a link running
/// at `rate_mbps` with total device power `device_mw`.
pub fn energy_per_bit_nj(device_mw: f64, rate_mbps: f64) -> f64 {
    // mW / Mbps = nJ/bit.
    device_mw / rate_mbps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_power_scales_with_chains() {
        let siso = PowerBudget::wlan_2005(1, 1);
        let mimo = PowerBudget::wlan_2005(4, 4);
        // RX: 40 + 4·100 = 440 vs 40 + 100 = 140 → >3×.
        assert!(mimo.rx_active_mw() > 3.0 * siso.rx_active_mw() - 1e-9);
        assert!(mimo.tx_active_mw() > 1.8 * siso.tx_active_mw());
    }

    #[test]
    fn chain_switching_saves_most_of_rx_power() {
        let mimo = PowerBudget::wlan_2005(4, 4);
        let full = mimo.rx_active_mw();
        let idle = mimo.rx_partial_mw(1);
        assert!(
            idle < 0.4 * full,
            "1-chain idle {idle} mW vs full {full} mW"
        );
    }

    #[test]
    fn pa_backoff_dominates_tx_power() {
        let mut b = PowerBudget::wlan_2005(1, 1);
        let backed_off = b.tx_active_mw();
        b.pa_backoff_db = 0.0;
        let constant_envelope = b.tx_active_mw();
        assert!(
            backed_off > constant_envelope + 50.0,
            "8 dB back-off {backed_off} vs 0 dB {constant_envelope}"
        );
    }

    #[test]
    fn fft_op_count_known_value() {
        assert_eq!(ops::fft_cmacs(64), 32.0 * 6.0);
    }

    #[test]
    fn detection_cost_grows_superlinearly_with_streams() {
        let one = ops::mimo_detect_cmacs(1, 1);
        let four = ops::mimo_detect_cmacs(4, 4);
        assert!(four > 10.0 * one, "4×4 {four} vs 1×1 {one}");
    }

    #[test]
    fn baseband_power_grows_with_streams() {
        let symbol_rate = 250_000.0; // 4 µs symbols
        let siso = baseband_rx_mw(1, 1, symbol_rate, 48.0);
        let mimo = baseband_rx_mw(4, 4, symbol_rate, 4.0 * 288.0);
        assert!(mimo > 3.0 * siso, "MIMO BB {mimo} mW vs SISO {siso} mW");
        assert!(siso > 0.0);
    }

    #[test]
    fn energy_per_bit_favours_fast_rates_at_fixed_power() {
        let device = 800.0;
        assert!(energy_per_bit_nj(device, 540.0) < energy_per_bit_nj(device, 54.0) / 9.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "active chains")]
    fn partial_chains_validated() {
        let _ = PowerBudget::wlan_2005(2, 2).rx_partial_mw(3);
    }
}
