//! Battery lifetime under a usage profile.
//!
//! The paper's closing point — "smaller form factor devices impose more
//! stringent power requirements" — is ultimately about hours of battery.
//! This module folds a radio's mode powers and a daily duty profile into
//! lifetime, so the E12 mitigations can be expressed in the unit end users
//! feel.

use crate::budget::PowerBudget;

/// Time-fraction profile of the radio's modes (fractions must sum to ≤ 1;
/// the remainder is deep sleep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageProfile {
    /// Fraction of time transmitting.
    pub tx: f64,
    /// Fraction of time actively receiving (all chains).
    pub rx: f64,
    /// Fraction of time idle-listening (chain-switched single chain when
    /// the policy allows).
    pub idle: f64,
}

impl UsageProfile {
    /// A light smartphone-style profile: 1 % TX, 4 % RX, 20 % idle listen.
    pub fn light() -> Self {
        UsageProfile {
            tx: 0.01,
            rx: 0.04,
            idle: 0.20,
        }
    }

    /// A heavy streaming profile: 5 % TX, 45 % RX, 40 % idle listen.
    pub fn heavy() -> Self {
        UsageProfile {
            tx: 0.05,
            rx: 0.45,
            idle: 0.40,
        }
    }

    /// Validates the profile.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the total exceeds 1.
    pub fn validate(&self) {
        assert!(
            self.tx >= 0.0 && self.rx >= 0.0 && self.idle >= 0.0,
            "fractions must be nonnegative"
        );
        assert!(
            self.tx + self.rx + self.idle <= 1.0 + 1e-12,
            "profile fractions exceed 100 %"
        );
    }
}

/// Mean radio power (mW) for a budget and usage profile.
///
/// `chain_switching` powers only one RX chain during idle listen;
/// `deep_sleep_mw` covers the remaining time.
pub fn mean_power_mw(
    budget: &PowerBudget,
    profile: &UsageProfile,
    chain_switching: bool,
    deep_sleep_mw: f64,
) -> f64 {
    profile.validate();
    let idle_mw = if chain_switching {
        budget.rx_partial_mw(1)
    } else {
        budget.rx_active_mw()
    };
    let sleep = 1.0 - profile.tx - profile.rx - profile.idle;
    profile.tx * budget.tx_active_mw()
        + profile.rx * budget.rx_active_mw()
        + profile.idle * idle_mw
        + sleep * deep_sleep_mw
}

/// Battery lifetime in hours for a capacity in milliwatt-hours.
///
/// # Panics
///
/// Panics if `capacity_mwh` is not positive.
pub fn lifetime_hours(capacity_mwh: f64, mean_mw: f64) -> f64 {
    assert!(capacity_mwh > 0.0, "battery capacity must be positive");
    capacity_mwh / mean_mw.max(1e-12)
}

/// A typical 2005 smartphone battery: 1000 mAh × 3.7 V = 3700 mWh.
pub const SMARTPHONE_BATTERY_MWH: f64 = 3700.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_switching_extends_lifetime() {
        let b = PowerBudget::wlan_2005(4, 4);
        let p = UsageProfile::light();
        let without = mean_power_mw(&b, &p, false, 2.0);
        let with = mean_power_mw(&b, &p, true, 2.0);
        assert!(with < without);
        let h_without = lifetime_hours(SMARTPHONE_BATTERY_MWH, without);
        let h_with = lifetime_hours(SMARTPHONE_BATTERY_MWH, with);
        assert!(
            h_with > 1.3 * h_without,
            "switching: {h_with:.0} h vs {h_without:.0} h"
        );
    }

    #[test]
    fn heavy_use_drains_much_faster() {
        let b = PowerBudget::wlan_2005(2, 2);
        let light = mean_power_mw(&b, &UsageProfile::light(), true, 2.0);
        let heavy = mean_power_mw(&b, &UsageProfile::heavy(), true, 2.0);
        assert!(heavy > 4.0 * light, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn siso_device_outlasts_mimo_at_same_profile() {
        // The form-factor argument: a small SISO device lives far longer
        // than a 4x4 MIMO one on the same battery and traffic.
        let p = UsageProfile::light();
        let siso = mean_power_mw(&PowerBudget::wlan_2005(1, 1), &p, false, 2.0);
        let mimo = mean_power_mw(&PowerBudget::wlan_2005(4, 4), &p, false, 2.0);
        assert!(mimo > 2.0 * siso, "mimo {mimo} vs siso {siso}");
    }

    #[test]
    fn lifetime_arithmetic() {
        assert!((lifetime_hours(3700.0, 37.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sleep_dominates_light_profiles() {
        // With 75 % deep sleep at 2 mW, even big radios idle gently.
        let b = PowerBudget::wlan_2005(4, 4);
        let mean = mean_power_mw(&b, &UsageProfile::light(), true, 2.0);
        assert!(mean < 60.0, "mean {mean} mW");
        assert!(mean > 10.0, "mean {mean} mW");
    }

    #[test]
    #[should_panic(expected = "exceed 100")]
    fn overfull_profile_rejected() {
        let p = UsageProfile {
            tx: 0.5,
            rx: 0.5,
            idle: 0.5,
        };
        let b = PowerBudget::wlan_2005(1, 1);
        let _ = mean_power_mw(&b, &p, false, 2.0);
    }
}
