//! Power-amplifier efficiency versus back-off.
//!
//! A linear PA must keep its peak output inside the compression point, so
//! it runs backed off by (roughly) the signal's PAPR. Ideal class-A
//! efficiency is 50 % at full drive and falls *linearly* with back-off;
//! class-B (and practical class-AB) falls with the *square root*:
//!
//! ```text
//! η_A(bo)  = 0.50 / bo          η_B(bo) = (π/4) / √bo
//! ```
//!
//! with `bo` the linear output back-off. Feeding the measured OFDM PAPR
//! (≈ 10 dB at the 0.1 % point) through these curves reproduces the paper's
//! "low power efficiency of the power amplifier" complaint (E10).

use wlan_math::special::db_to_lin;

/// Amplifier class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaClass {
    /// Ideal class A: η = 50 % at 0 dB back-off, linear roll-off.
    A,
    /// Ideal class B (≈ practical class AB): η = 78.5 % peak, √ roll-off.
    B,
}

impl PaClass {
    /// Drain efficiency at the given output back-off in dB.
    ///
    /// # Panics
    ///
    /// Panics if `backoff_db < 0`.
    pub fn efficiency(self, backoff_db: f64) -> f64 {
        assert!(backoff_db >= 0.0, "back-off cannot be negative");
        let bo = db_to_lin(backoff_db);
        match self {
            PaClass::A => 0.5 / bo,
            PaClass::B => std::f64::consts::FRAC_PI_4 / bo.sqrt(),
        }
    }

    /// DC power drawn (mW) to radiate `tx_mw` average power at the given
    /// back-off.
    pub fn dc_power_mw(self, tx_mw: f64, backoff_db: f64) -> f64 {
        tx_mw / self.efficiency(backoff_db)
    }
}

/// The back-off a PA needs for a signal whose PAPR (at the clipping
/// percentile the designer tolerates) is `papr_db`, minus any digital
/// clipping allowance.
pub fn required_backoff_db(papr_db: f64, clipping_allowance_db: f64) -> f64 {
    (papr_db - clipping_allowance_db).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_efficiencies() {
        assert!((PaClass::A.efficiency(0.0) - 0.5).abs() < 1e-12);
        assert!((PaClass::B.efficiency(0.0) - 0.785).abs() < 1e-3);
    }

    #[test]
    fn class_a_halves_every_3db() {
        let e0 = PaClass::A.efficiency(0.0);
        let e3 = PaClass::A.efficiency(3.0);
        assert!((e0 / e3 - db_to_lin(3.0)).abs() < 1e-9);
    }

    #[test]
    fn class_b_degrades_more_gracefully() {
        // At 10 dB back-off: class A → 5 %, class B → ~25 %.
        let a = PaClass::A.efficiency(10.0);
        let b = PaClass::B.efficiency(10.0);
        assert!((a - 0.05).abs() < 1e-9);
        assert!((b - 0.248).abs() < 5e-3);
        assert!(b > 4.0 * a);
    }

    #[test]
    fn ofdm_papr_forces_painful_dc_power() {
        // Radiating 50 mW (17 dBm): constant envelope needs ~64 mW DC
        // (class B, 0 dB); 10 dB-PAPR OFDM needs ~200 mW.
        let constant = PaClass::B.dc_power_mw(50.0, 0.0);
        let ofdm = PaClass::B.dc_power_mw(50.0, required_backoff_db(10.0, 0.0));
        assert!(constant < 70.0, "constant-envelope DC {constant}");
        assert!(
            ofdm > 2.5 * constant,
            "OFDM DC {ofdm} vs constant {constant}"
        );
    }

    #[test]
    fn clipping_allowance_reduces_backoff() {
        assert_eq!(required_backoff_db(10.0, 3.0), 7.0);
        assert_eq!(required_backoff_db(2.0, 5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "back-off cannot be negative")]
    fn negative_backoff_rejected() {
        let _ = PaClass::A.efficiency(-1.0);
    }
}
