//! Power mitigations: the paper's "opportunities" (experiment E12).
//!
//! Four mechanisms, each a function from a traffic/topology description to
//! the energy consumed:
//!
//! 1. **Receive-chain switching** — listen with one chain, wake the rest
//!    only while decoding high-rate traffic,
//! 2. **Beamforming transmit power control** — spend the array gain on
//!    lower radiated power instead of more range,
//! 3. **Cooperative power sharing** — let a mains-powered relay carry the
//!    second hop so the battery device transmits at short range,
//! 4. **PSM duty cycling** — sleep between beacons (modelled in
//!    `wlan_mac::powersave`, consumed here as a duty cycle).

use crate::budget::PowerBudget;
use crate::pa::PaClass;

/// Mean receive power (mW) of an N-chain device under chain switching:
/// it listens with one chain and powers all `n_rx` chains only for the
/// fraction `busy` of time spent decoding MIMO traffic.
///
/// # Panics
///
/// Panics if `busy` is not in `[0, 1]`.
pub fn chain_switching_rx_mw(budget: &PowerBudget, busy: f64) -> f64 {
    assert!((0.0..=1.0).contains(&busy), "busy fraction must be in [0, 1]");
    busy * budget.rx_active_mw() + (1.0 - busy) * budget.rx_partial_mw(1)
}

/// Savings factor of chain switching versus always-on, at the given busy
/// fraction (1.0 = no saving).
pub fn chain_switching_savings(budget: &PowerBudget, busy: f64) -> f64 {
    chain_switching_rx_mw(budget, busy) / budget.rx_active_mw()
}

/// PA DC power (mW) when closed-loop beamforming's array gain is spent on
/// transmit power control: radiated power drops by `array_gain_db` for the
/// same delivered SNR.
///
/// # Panics
///
/// Panics if `array_gain_db < 0`.
pub fn beamforming_tpc_pa_mw(
    radiated_mw: f64,
    array_gain_db: f64,
    pa: PaClass,
    backoff_db: f64,
) -> f64 {
    assert!(array_gain_db >= 0.0, "array gain cannot be negative");
    let reduced = radiated_mw / wlan_math::special::db_to_lin(array_gain_db);
    pa.dc_power_mw(reduced, backoff_db)
}

/// Battery energy (mJ) to deliver `payload_mbit` megabits either directly
/// over distance `d_total`, or via a mains-powered relay at the midpoint
/// (battery device only transmits the first hop). Path-loss exponent `alpha`
/// sets how much shorter range helps. Returns `(direct_mj, cooperative_mj)`.
///
/// The radio is modelled as: radiated power required ∝ dᵅ (to hold the
/// receive SNR), PA DC draw from the class-B curve, fixed chain power on
/// top, at a fixed link rate `rate_mbps`.
///
/// # Panics
///
/// Panics if any argument is nonpositive.
pub fn cooperative_energy_mj(
    payload_mbit: f64,
    d_total_m: f64,
    alpha: f64,
    rate_mbps: f64,
) -> (f64, f64) {
    assert!(
        payload_mbit > 0.0 && d_total_m > 0.0 && alpha > 0.0 && rate_mbps > 0.0,
        "arguments must be positive"
    );
    // Radiated power to close 1 m at the reference SNR: 100 nW (a WLAN
    // link budget has ~110 dB of headroom); scale by dᵅ.
    let radiated = |d: f64| -> f64 { 1e-4 * d.powf(alpha) };
    let chain_mw = 160.0; // TX chain + synthesizer
    let duration_s = payload_mbit / rate_mbps;
    let device_mw = |d: f64| -> f64 {
        chain_mw + PaClass::B.dc_power_mw(radiated(d).min(1000.0), 8.0)
    };
    let direct = device_mw(d_total_m) * duration_s;
    let coop = device_mw(d_total_m / 2.0) * duration_s;
    (direct, coop)
}

/// Mean device power (mW) under PSM with the given awake duty cycle,
/// awake power and doze power.
///
/// # Panics
///
/// Panics if `duty` is not in `[0, 1]`.
pub fn psm_mean_power_mw(duty: f64, awake_mw: f64, doze_mw: f64) -> f64 {
    assert!((0.0..=1.0).contains(&duty), "duty cycle must be in [0, 1]");
    duty * awake_mw + (1.0 - duty) * doze_mw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_switching_saves_at_low_load() {
        let b = PowerBudget::wlan_2005(4, 4);
        // 5 % busy: mean power close to the single-chain floor.
        let s = chain_switching_savings(&b, 0.05);
        assert!(s < 0.45, "savings factor {s}");
        // Fully busy: no saving.
        assert!((chain_switching_savings(&b, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_switching_is_monotone_in_load() {
        let b = PowerBudget::wlan_2005(4, 4);
        let mut prev = 0.0;
        for busy in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let p = chain_switching_rx_mw(&b, busy);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn beamforming_tpc_cuts_pa_power() {
        // 4-antenna beamforming: ~6 dB array gain → 4× less radiated power,
        // class-B PA → 2× less DC power (√ law... actually linear in
        // radiated power at fixed back-off).
        let without = beamforming_tpc_pa_mw(40.0, 0.0, PaClass::B, 8.0);
        let with = beamforming_tpc_pa_mw(40.0, 6.0, PaClass::B, 8.0);
        assert!(
            (without / with - wlan_math::special::db_to_lin(6.0)).abs() < 1e-9,
            "TPC gain should equal the array gain"
        );
    }

    #[test]
    fn cooperation_saves_battery_energy_at_long_range() {
        let (direct, coop) = cooperative_energy_mj(10.0, 80.0, 3.5, 24.0);
        assert!(
            coop < 0.7 * direct,
            "cooperative {coop} mJ vs direct {direct} mJ"
        );
    }

    #[test]
    fn cooperation_is_pointless_at_short_range() {
        // At 4 m the radiated power is negligible either way; fixed chain
        // power dominates and halving the distance saves almost nothing.
        let (direct, coop) = cooperative_energy_mj(10.0, 4.0, 3.5, 24.0);
        assert!(
            coop > 0.95 * direct,
            "coop {coop} vs direct {direct} should be ≈ equal"
        );
    }

    #[test]
    fn psm_power_tracks_duty_cycle() {
        let full = psm_mean_power_mw(1.0, 300.0, 5.0);
        let psm = psm_mean_power_mw(0.05, 300.0, 5.0);
        assert_eq!(full, 300.0);
        assert!((psm - (0.05 * 300.0 + 0.95 * 5.0)).abs() < 1e-12);
        assert!(psm < 0.1 * full);
    }

    #[test]
    #[should_panic(expected = "busy fraction")]
    fn busy_fraction_validated() {
        let b = PowerBudget::wlan_2005(2, 2);
        let _ = chain_switching_rx_mw(&b, 1.5);
    }
}
