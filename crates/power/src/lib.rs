//! Component-level power models for WLAN devices.
//!
//! The paper's "Low Power" section makes four quantitative arguments; this
//! crate models each of them:
//!
//! - [`pa`] — power-amplifier efficiency versus output back-off: OFDM's
//!   PAPR forces the PA deep into its inefficient linear region (E10),
//! - [`budget`] — the device power budget: RF chains multiply with
//!   antennas, baseband op counts grow with streams and bandwidth (E11),
//! - [`adaptive`] — the mitigations: receive-chain switching, beamforming
//!   transmit power control, cooperative power sharing and PSM duty
//!   cycling (E12).
//!
//! Absolute milliwatt values are published-parameter estimates for
//! mid-2000s CMOS radios (see DESIGN.md); every experiment reads *ratios*
//! off these models, which are set by their structure rather than the
//! constants.
//!
//! # Examples
//!
//! ```
//! use wlan_power::budget::PowerBudget;
//!
//! let siso = PowerBudget::wlan_2005(1, 1);
//! let mimo = PowerBudget::wlan_2005(4, 4);
//! // The paper: multiple RF chains "significantly increase the power
//! // consumption over single antenna devices".
//! assert!(mimo.rx_active_mw() > 2.5 * siso.rx_active_mw());
//! ```

pub mod adaptive;
pub mod battery;
pub mod budget;
pub mod pa;

pub use budget::PowerBudget;
pub use pa::PaClass;
