//! Symbol-level relaying protocols.
//!
//! Two-phase cooperation: in phase 1 the source broadcasts (heard by both
//! relay and destination); in phase 2 the relay retransmits — either a
//! regenerated copy (decode-and-forward, valid only if the relay decoded
//! correctly) or a scaled copy of its noisy observation
//! (amplify-and-forward). The destination MRC-combines both phases.

use wlan_math::rng::Rng;
use wlan_channel::noise::complex_gaussian;
use wlan_math::Complex;

/// One cooperative transmission of a BPSK symbol. Returns the destination's
/// decision variable (sign = bit decision) for each protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoopObservation {
    /// Combined decision variable at the destination.
    pub decision: Complex,
    /// Effective combined channel gain (diagnostic).
    pub effective_gain: f64,
}

/// Direct (non-cooperative) transmission of one BPSK symbol over a Rayleigh
/// channel with gain `h_sd` and noise variance `n0`.
pub fn direct_transmission(
    bit: u8,
    h_sd: Complex,
    n0: f64,
    rng: &mut impl Rng,
) -> CoopObservation {
    let s = bpsk(bit);
    let y = h_sd * s + complex_gaussian(rng).scale(n0.sqrt());
    CoopObservation {
        decision: h_sd.conj() * y,
        effective_gain: h_sd.norm_sqr(),
    }
}

/// Decode-and-forward relaying of one BPSK symbol.
///
/// The relay decodes its phase-1 observation; if correct it retransmits,
/// otherwise it stays silent (the "selective DF" variant that preserves
/// diversity). The destination combines the source and (possible) relay
/// observations by MRC.
pub fn decode_and_forward(
    bit: u8,
    h_sd: Complex,
    h_sr: Complex,
    h_rd: Complex,
    n0: f64,
    rng: &mut impl Rng,
) -> CoopObservation {
    let s = bpsk(bit);
    let sigma = n0.sqrt();
    // Phase 1: source broadcasts.
    let y_sd = h_sd * s + complex_gaussian(rng).scale(sigma);
    let y_sr = h_sr * s + complex_gaussian(rng).scale(sigma);
    // Relay decodes.
    let relay_decision = (h_sr.conj() * y_sr).re > 0.0;
    let relay_bit = if relay_decision { 1u8 } else { 0u8 };
    let relay_correct = relay_bit == bit;

    let mut decision = h_sd.conj() * y_sd;
    let mut gain = h_sd.norm_sqr();
    if relay_correct {
        // Phase 2: relay regenerates and retransmits.
        let y_rd = h_rd * s + complex_gaussian(rng).scale(sigma);
        decision += h_rd.conj() * y_rd;
        gain += h_rd.norm_sqr();
    }
    // (If the relay decoded wrongly it stays silent: in practice a CRC
    // gates retransmission, which selective DF models.)
    CoopObservation {
        decision,
        effective_gain: gain,
    }
}

/// Amplify-and-forward relaying of one BPSK symbol.
///
/// The relay scales its noisy observation to its power budget and forwards;
/// the destination applies the matched filter for the cascaded channel.
pub fn amplify_and_forward(
    bit: u8,
    h_sd: Complex,
    h_sr: Complex,
    h_rd: Complex,
    n0: f64,
    rng: &mut impl Rng,
) -> CoopObservation {
    let s = bpsk(bit);
    let sigma = n0.sqrt();
    let y_sd = h_sd * s + complex_gaussian(rng).scale(sigma);
    let y_sr = h_sr * s + complex_gaussian(rng).scale(sigma);
    // Amplification to unit transmit power: β² (|h_sr|² + n0) = 1.
    let beta = (1.0 / (h_sr.norm_sqr() + n0)).sqrt();
    let y_rd = h_rd * y_sr.scale(beta) + complex_gaussian(rng).scale(sigma);
    // Effective relay-path channel and noise variance.
    let h_eff = h_rd * h_sr.scale(beta);
    let n_eff = n0 * (h_rd.norm_sqr() * beta * beta + 1.0);
    // MRC with per-branch noise weighting.
    let decision = h_sd.conj() * y_sd.scale(1.0 / n0) + h_eff.conj() * y_rd.scale(1.0 / n_eff);
    CoopObservation {
        decision,
        effective_gain: h_sd.norm_sqr() / n0 + h_eff.norm_sqr() / n_eff,
    }
}

fn bpsk(bit: u8) -> Complex {
    assert!(bit <= 1, "bits must be 0 or 1");
    Complex::from_re(if bit == 1 { 1.0 } else { -1.0 })
}

/// Measures BER of each protocol over i.i.d. Rayleigh links at `snr_db`.
/// Returns `(direct, decode_forward, amplify_forward)`.
pub fn compare_ber(snr_db: f64, trials: usize, rng: &mut impl Rng) -> (f64, f64, f64) {
    let n0 = wlan_math::special::db_to_lin(-snr_db);
    let mut errs = [0usize; 3];
    for t in 0..trials {
        let bit = (t % 2) as u8;
        let h_sd = complex_gaussian(rng);
        let h_sr = complex_gaussian(rng);
        let h_rd = complex_gaussian(rng);
        let obs = [
            direct_transmission(bit, h_sd, n0, rng),
            decode_and_forward(bit, h_sd, h_sr, h_rd, n0, rng),
            amplify_and_forward(bit, h_sd, h_sr, h_rd, n0, rng),
        ];
        for (i, o) in obs.iter().enumerate() {
            if (o.decision.re > 0.0) as u8 != bit {
                errs[i] += 1;
            }
        }
    }
    let n = trials as f64;
    (errs[0] as f64 / n, errs[1] as f64 / n, errs[2] as f64 / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;

    #[test]
    fn clean_channels_decode_correctly() {
        let mut rng = WlanRng::seed_from_u64(220);
        let h = Complex::ONE;
        for bit in [0u8, 1] {
            let d = direct_transmission(bit, h, 1e-9, &mut rng);
            assert_eq!((d.decision.re > 0.0) as u8, bit);
            let df = decode_and_forward(bit, h, h, h, 1e-9, &mut rng);
            assert_eq!((df.decision.re > 0.0) as u8, bit);
            // Relay decoded, so both branches combined.
            assert!((df.effective_gain - 2.0).abs() < 1e-9);
            let af = amplify_and_forward(bit, h, h, h, 1e-9, &mut rng);
            assert_eq!((af.decision.re > 0.0) as u8, bit);
        }
    }

    #[test]
    fn silent_relay_when_source_relay_link_is_dead() {
        let mut rng = WlanRng::seed_from_u64(221);
        // h_sr ≈ 0: the relay almost always decodes randomly; when wrong it
        // stays silent, leaving only the direct gain.
        let h_sd = Complex::ONE;
        let h_sr = Complex::from_re(1e-9);
        let h_rd = Complex::ONE;
        let mut combined = 0;
        let trials = 2_000;
        for t in 0..trials {
            let obs = decode_and_forward((t % 2) as u8, h_sd, h_sr, h_rd, 0.1, &mut rng);
            if obs.effective_gain > 1.5 {
                combined += 1;
            }
        }
        // Random relay decisions are right half the time.
        let frac = combined as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.1, "relay combined {frac} of the time");
    }

    #[test]
    fn cooperation_beats_direct_in_fading() {
        let mut rng = WlanRng::seed_from_u64(222);
        let (direct, df, af) = compare_ber(12.0, 40_000, &mut rng);
        assert!(
            df < 0.5 * direct,
            "DF BER {df} must be far below direct {direct}"
        );
        assert!(
            af < 0.7 * direct,
            "AF BER {af} must also beat direct {direct}"
        );
    }

    #[test]
    fn df_outperforms_af_slightly() {
        // At moderate SNR, regenerative relaying avoids noise amplification.
        let mut rng = WlanRng::seed_from_u64(223);
        let (_, df, af) = compare_ber(10.0, 60_000, &mut rng);
        assert!(df <= af * 1.2, "DF {df} should not lose clearly to AF {af}");
    }

    #[test]
    #[should_panic(expected = "bits must be 0 or 1")]
    fn bad_bit_rejected() {
        let mut rng = WlanRng::seed_from_u64(224);
        let _ = direct_transmission(2, Complex::ONE, 0.1, &mut rng);
    }
}
