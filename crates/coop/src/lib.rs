//! Cooperative diversity — the paper's "Future Developments".
//!
//! > "third parties which can successfully decode an on-going exchange will
//! > effectively regenerate and relay, with appropriate coding, the original
//! > transmission in order to improve the effective link quality between
//! > the intended parties."
//!
//! That is decode-and-forward relaying. This crate implements the classic
//! two-phase cooperative protocols and the outage analysis that quantifies
//! their benefit (experiment E9):
//!
//! - [`relay`] — symbol-level decode-and-forward and amplify-and-forward
//!   with MRC combining at the destination,
//! - [`outage`] — Monte-Carlo and analytic outage probability, plus the
//!   diversity-order estimator (the slope that jumps from 1 to 2),
//! - [`selection`] — opportunistic relay selection among candidates.
//!
//! # Examples
//!
//! ```
//! use wlan_math::rng::WlanRng;
//! use wlan_coop::outage::{direct_outage_analytic, simulate_outage, Protocol};
//!
//! let mut rng = WlanRng::seed_from_u64(3);
//! let snr_db = 15.0;
//! let rate = 1.0; // bps/Hz target
//! let direct = simulate_outage(Protocol::Direct, snr_db, rate, 20_000, &mut rng);
//! let coop = simulate_outage(Protocol::DecodeForward, snr_db, rate, 20_000, &mut rng);
//! assert!(coop < direct, "cooperation must reduce outage");
//! let analytic = direct_outage_analytic(snr_db, rate);
//! assert!((direct - analytic).abs() < 0.02);
//! ```

pub mod outage;
pub mod relay;
pub mod selection;

pub use outage::Protocol;
