//! Opportunistic relay selection.
//!
//! With several third parties able to help, picking the single best relay
//! (by the harmonic mean of its source-relay and relay-destination SNRs —
//! the bottleneck-aware criterion) captures most of the cooperative gain at
//! a fraction of the coordination cost, and the selection pool size adds
//! diversity order.

use wlan_math::rng::Rng;
use wlan_channel::noise::complex_gaussian;

/// A candidate relay's instantaneous link qualities (linear channel power
/// gains).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelayCandidate {
    /// Source → relay channel power.
    pub gain_sr: f64,
    /// Relay → destination channel power.
    pub gain_rd: f64,
}

impl RelayCandidate {
    /// The bottleneck-aware selection metric: harmonic mean of the two hop
    /// gains (a chain is only as good as its weaker hop).
    pub fn harmonic_metric(&self) -> f64 {
        if self.gain_sr + self.gain_rd == 0.0 {
            return 0.0;
        }
        2.0 * self.gain_sr * self.gain_rd / (self.gain_sr + self.gain_rd)
    }

    /// The naive metric: only the first hop.
    pub fn first_hop_metric(&self) -> f64 {
        self.gain_sr
    }
}

/// Picks the best relay index under the harmonic metric, or `None` when the
/// candidate list is empty.
pub fn select_relay(candidates: &[RelayCandidate]) -> Option<usize> {
    (0..candidates.len())
        .max_by(|&a, &b| {
            candidates[a]
                .harmonic_metric()
                .total_cmp(&candidates[b].harmonic_metric())
        })
        .filter(|_| !candidates.is_empty())
}

/// Simulates selection-combining outage: the destination is served by the
/// direct link plus the single selected relay (selective DF), at mean SNR
/// `snr_db` and target `rate` with `n_relays` i.i.d. Rayleigh candidates.
pub fn selection_outage(
    n_relays: usize,
    snr_db: f64,
    rate: f64,
    trials: usize,
    rng: &mut impl Rng,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let snr = wlan_math::special::db_to_lin(snr_db);
    let mut outages = 0usize;
    for _ in 0..trials {
        let g_sd = complex_gaussian(rng).norm_sqr();
        let candidates: Vec<RelayCandidate> = (0..n_relays)
            .map(|_| RelayCandidate {
                gain_sr: complex_gaussian(rng).norm_sqr(),
                gain_rd: complex_gaussian(rng).norm_sqr(),
            })
            .collect();
        let combined = match select_relay(&candidates) {
            Some(idx) => {
                let c = candidates[idx];
                let relay_decodes = 0.5 * (1.0 + snr * c.gain_sr).log2() >= rate;
                if relay_decodes {
                    g_sd + c.gain_rd
                } else {
                    g_sd
                }
            }
            None => g_sd,
        };
        // Selection cooperation still halves the rate (two phases).
        let capacity = if n_relays > 0 {
            0.5 * (1.0 + snr * combined).log2()
        } else {
            (1.0 + snr * g_sd).log2()
        };
        if capacity < rate {
            outages += 1;
        }
    }
    outages as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;

    #[test]
    fn harmonic_metric_is_bottleneck_aware() {
        let balanced = RelayCandidate {
            gain_sr: 1.0,
            gain_rd: 1.0,
        };
        let lopsided = RelayCandidate {
            gain_sr: 10.0,
            gain_rd: 0.1,
        };
        assert!(balanced.harmonic_metric() > lopsided.harmonic_metric());
        // The naive metric would pick the lopsided one.
        assert!(lopsided.first_hop_metric() > balanced.first_hop_metric());
    }

    #[test]
    fn select_best_candidate() {
        let cands = vec![
            RelayCandidate {
                gain_sr: 0.5,
                gain_rd: 0.5,
            },
            RelayCandidate {
                gain_sr: 2.0,
                gain_rd: 2.0,
            },
            RelayCandidate {
                gain_sr: 0.1,
                gain_rd: 9.0,
            },
        ];
        assert_eq!(select_relay(&cands), Some(1));
        assert_eq!(select_relay(&[]), None);
    }

    #[test]
    fn zero_gain_candidate_has_zero_metric() {
        let dead = RelayCandidate {
            gain_sr: 0.0,
            gain_rd: 0.0,
        };
        assert_eq!(dead.harmonic_metric(), 0.0);
    }

    #[test]
    fn more_relays_reduce_outage() {
        let mut rng = WlanRng::seed_from_u64(240);
        let p1 = selection_outage(1, 15.0, 1.0, 100_000, &mut rng);
        let p4 = selection_outage(4, 15.0, 1.0, 100_000, &mut rng);
        assert!(p4 < p1, "4 relays {p4} vs 1 relay {p1}");
    }

    #[test]
    fn zero_relays_matches_direct_analytic() {
        let mut rng = WlanRng::seed_from_u64(241);
        let p = selection_outage(0, 10.0, 1.0, 100_000, &mut rng);
        let ana = crate::outage::direct_outage_analytic(10.0, 1.0);
        assert!((p - ana).abs() < 0.01, "sim {p} vs analytic {ana}");
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let a = selection_outage(2, 12.0, 1.0, 10_000, &mut WlanRng::seed_from_u64(9));
        let b = selection_outage(2, 12.0, 1.0, 10_000, &mut WlanRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
