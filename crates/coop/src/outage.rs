//! Outage probability of cooperative protocols.
//!
//! A link is in outage when its instantaneous mutual information falls below
//! the target rate `R`. For direct Rayleigh transmission the outage is
//! `P = 1 − exp(−(2^R − 1)/γ̄)`; two-phase cooperation pays a rate penalty
//! (each symbol occupies two slots, so the threshold becomes `2^{2R} − 1`)
//! but gains diversity order 2 — outage falls with the *square* of SNR. The
//! crossover and the slope change are the content of experiment E9.

use wlan_math::rng::Rng;
use wlan_channel::noise::complex_gaussian;

/// Cooperative protocol under analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Source → destination only.
    Direct,
    /// Two-phase selective decode-and-forward with MRC.
    DecodeForward,
    /// Two-phase amplify-and-forward with MRC.
    AmplifyForward,
}

/// Analytic outage probability of direct Rayleigh transmission.
///
/// `snr_db` is the mean SNR, `rate` the target spectral efficiency in
/// bps/Hz.
pub fn direct_outage_analytic(snr_db: f64, rate: f64) -> f64 {
    let snr = wlan_math::special::db_to_lin(snr_db);
    let threshold = 2f64.powf(rate) - 1.0;
    1.0 - (-threshold / snr).exp()
}

/// Monte-Carlo outage probability of a protocol over i.i.d. unit Rayleigh
/// links at mean SNR `snr_db` and target rate `rate` bps/Hz.
///
/// # Panics
///
/// Panics if `trials` is zero or `rate <= 0`.
pub fn simulate_outage(
    protocol: Protocol,
    snr_db: f64,
    rate: f64,
    trials: usize,
    rng: &mut impl Rng,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    assert!(rate > 0.0, "rate must be positive");
    let snr = wlan_math::special::db_to_lin(snr_db);
    let mut outages = 0usize;
    for _ in 0..trials {
        let g_sd = complex_gaussian(rng).norm_sqr();
        let capacity = match protocol {
            Protocol::Direct => (1.0 + snr * g_sd).log2(),
            Protocol::DecodeForward => {
                let g_sr = complex_gaussian(rng).norm_sqr();
                let g_rd = complex_gaussian(rng).norm_sqr();
                // Half the slots carry new data (factor 1/2). The relay
                // participates only if it can decode phase 1 at rate 2R.
                let relay_decodes = 0.5 * (1.0 + snr * g_sr).log2() >= rate;
                let combined = if relay_decodes { g_sd + g_rd } else { g_sd };
                0.5 * (1.0 + snr * combined).log2()
            }
            Protocol::AmplifyForward => {
                let g_sr = complex_gaussian(rng).norm_sqr();
                let g_rd = complex_gaussian(rng).norm_sqr();
                // Harmonic-mean SNR of the cascaded relay path.
                let relay_snr = (snr * g_sr * snr * g_rd) / (snr * g_sr + snr * g_rd + 1.0);
                0.5 * (1.0 + snr * g_sd + relay_snr).log2()
            }
        };
        if capacity < rate {
            outages += 1;
        }
    }
    outages as f64 / trials as f64
}

/// Monte-Carlo outage of *multi-relay* decode-and-forward: all of
/// `n_relays` candidates that decode phase 1 retransmit on orthogonal
/// slots and the destination MRC-combines everything. Diversity order
/// approaches `n_relays + 1` at the cost of a `1/(1 + n_relays)` rate
/// factor (each participant needs a slot).
///
/// # Panics
///
/// Panics if `trials` is zero or `rate <= 0`.
pub fn simulate_multi_relay_outage(
    n_relays: usize,
    snr_db: f64,
    rate: f64,
    trials: usize,
    rng: &mut impl Rng,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    assert!(rate > 0.0, "rate must be positive");
    let snr = wlan_math::special::db_to_lin(snr_db);
    let slots = (1 + n_relays) as f64;
    let mut outages = 0usize;
    for _ in 0..trials {
        let g_sd = complex_gaussian(rng).norm_sqr();
        let mut combined = g_sd;
        for _ in 0..n_relays {
            let g_sr = complex_gaussian(rng).norm_sqr();
            let g_rd = complex_gaussian(rng).norm_sqr();
            // A relay participates if it decoded the phase-1 broadcast.
            if (1.0 + snr * g_sr).log2() / slots >= rate {
                combined += g_rd;
            }
        }
        let capacity = (1.0 + snr * combined).log2() / slots;
        if capacity < rate {
            outages += 1;
        }
    }
    outages as f64 / trials as f64
}

/// Estimates the diversity order of a protocol as the negative slope of
/// `log10(outage)` versus `snr/10` between two SNR points.
pub fn diversity_order(
    protocol: Protocol,
    snr_lo_db: f64,
    snr_hi_db: f64,
    rate: f64,
    trials: usize,
    rng: &mut impl Rng,
) -> f64 {
    let p_lo = simulate_outage(protocol, snr_lo_db, rate, trials, rng).max(1e-12);
    let p_hi = simulate_outage(protocol, snr_hi_db, rate, trials, rng).max(1e-12);
    -(p_hi.log10() - p_lo.log10()) / ((snr_hi_db - snr_lo_db) / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;

    #[test]
    fn simulation_matches_direct_analytic() {
        let mut rng = WlanRng::seed_from_u64(230);
        for snr_db in [5.0, 10.0, 20.0] {
            let sim = simulate_outage(Protocol::Direct, snr_db, 1.0, 100_000, &mut rng);
            let ana = direct_outage_analytic(snr_db, 1.0);
            assert!(
                (sim - ana).abs() < 0.01,
                "snr {snr_db}: sim {sim} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn outage_decreases_with_snr() {
        let mut rng = WlanRng::seed_from_u64(231);
        for proto in [Protocol::Direct, Protocol::DecodeForward, Protocol::AmplifyForward] {
            let lo = simulate_outage(proto, 5.0, 1.0, 50_000, &mut rng);
            let hi = simulate_outage(proto, 20.0, 1.0, 50_000, &mut rng);
            assert!(hi < lo, "{proto:?}: {hi} not below {lo}");
        }
    }

    #[test]
    fn cooperation_wins_at_high_snr() {
        // At high SNR the diversity gain dominates the half-rate penalty.
        let mut rng = WlanRng::seed_from_u64(232);
        let snr_db = 22.0;
        let direct = simulate_outage(Protocol::Direct, snr_db, 1.0, 200_000, &mut rng);
        let df = simulate_outage(Protocol::DecodeForward, snr_db, 1.0, 200_000, &mut rng);
        let af = simulate_outage(Protocol::AmplifyForward, snr_db, 1.0, 200_000, &mut rng);
        assert!(df < 0.3 * direct, "DF {df} vs direct {direct}");
        assert!(af < 0.3 * direct, "AF {af} vs direct {direct}");
    }

    #[test]
    fn direct_wins_at_very_low_snr() {
        // Below the crossover the half-rate penalty hurts more than
        // diversity helps — the textbook cooperative trade-off.
        let mut rng = WlanRng::seed_from_u64(233);
        let snr_db = 0.0;
        let direct = simulate_outage(Protocol::Direct, snr_db, 1.0, 100_000, &mut rng);
        let df = simulate_outage(Protocol::DecodeForward, snr_db, 1.0, 100_000, &mut rng);
        assert!(df > direct, "at 0 dB direct {direct} should beat DF {df}");
    }

    #[test]
    fn diversity_orders_are_one_and_two() {
        let mut rng = WlanRng::seed_from_u64(234);
        let d_direct = diversity_order(Protocol::Direct, 15.0, 25.0, 1.0, 400_000, &mut rng);
        let d_df = diversity_order(Protocol::DecodeForward, 15.0, 25.0, 1.0, 400_000, &mut rng);
        assert!(
            (d_direct - 1.0).abs() < 0.25,
            "direct diversity order {d_direct}"
        );
        assert!(d_df > 1.6, "DF diversity order {d_df} should approach 2");
    }

    #[test]
    fn analytic_limits() {
        assert!(direct_outage_analytic(60.0, 1.0) < 1e-5);
        assert!(direct_outage_analytic(-20.0, 1.0) > 0.99);
    }

    #[test]
    fn multi_relay_zero_matches_direct() {
        let mut rng = WlanRng::seed_from_u64(235);
        let p = simulate_multi_relay_outage(0, 10.0, 1.0, 100_000, &mut rng);
        let ana = direct_outage_analytic(10.0, 1.0);
        assert!((p - ana).abs() < 0.01, "sim {p} vs analytic {ana}");
    }

    #[test]
    fn relay_returns_diminish() {
        // The second relay still pays at 20 dB; the *third* relay's extra
        // slot (threshold 2^{4R} instead of 2^{3R}) costs about as much as
        // its diversity buys — cooperation has diminishing returns, which
        // is why practical schemes select one or two relays.
        let mut rng = WlanRng::seed_from_u64(236);
        let snr_db = 20.0;
        let p1 = simulate_multi_relay_outage(1, snr_db, 1.0, 300_000, &mut rng);
        let p2 = simulate_multi_relay_outage(2, snr_db, 1.0, 300_000, &mut rng);
        let p3 = simulate_multi_relay_outage(3, snr_db, 1.0, 300_000, &mut rng);
        assert!(p2 < 0.8 * p1, "2 relays {p2} vs 1 relay {p1}");
        assert!(p3 < 2.0 * p2, "3rd relay should not hurt badly: {p3} vs {p2}");
        assert!(p3 > 0.3 * p2, "3rd relay's slot cost should show: {p3} vs {p2}");
    }

    #[test]
    fn multi_relay_diversity_order_grows() {
        let mut rng = WlanRng::seed_from_u64(237);
        // Slope between 16 and 24 dB for 2 relays ≈ order 3.
        let lo = simulate_multi_relay_outage(2, 16.0, 1.0, 400_000, &mut rng).max(1e-9);
        let hi = simulate_multi_relay_outage(2, 24.0, 1.0, 400_000, &mut rng).max(1e-9);
        let order = -(hi.log10() - lo.log10()) / 0.8;
        assert!(order > 2.2, "estimated order {order} should approach 3");
    }
}
