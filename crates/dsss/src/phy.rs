//! Frame-level DSSS/CCK transmit and receive chains.
//!
//! [`DsssPhy`] ties scrambling, modulation and spreading into the
//! chip-stream interface the link simulator drives: bits in → 11 Mchip/s
//! complex baseband out, and back.

use crate::barker;
use crate::cck::{CckDemodulator, CckModulator, CckRate};
use crate::modem::{Dbpsk, Dqpsk};
use wlan_coding::scrambler::Scrambler;
use wlan_math::Complex;

/// Data rates of the 802.11-1999 and 802.11b DSSS PHYs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DsssRate {
    /// 1 Mbps DBPSK + Barker-11 (802.11-1999).
    Dbpsk1M,
    /// 2 Mbps DQPSK + Barker-11 (802.11-1999).
    Dqpsk2M,
    /// 5.5 Mbps CCK (802.11b).
    Cck5_5M,
    /// 11 Mbps CCK (802.11b).
    Cck11M,
}

impl DsssRate {
    /// Data rate in Mbps.
    pub fn rate_mbps(self) -> f64 {
        match self {
            DsssRate::Dbpsk1M => 1.0,
            DsssRate::Dqpsk2M => 2.0,
            DsssRate::Cck5_5M => 5.5,
            DsssRate::Cck11M => 11.0,
        }
    }

    /// Occupied channel bandwidth in MHz (the paper quotes 20 MHz for the
    /// original DSSS channelization and 22 MHz for 802.11b).
    pub fn bandwidth_mhz(self) -> f64 {
        match self {
            DsssRate::Dbpsk1M | DsssRate::Dqpsk2M => 20.0,
            DsssRate::Cck5_5M | DsssRate::Cck11M => 22.0,
        }
    }

    /// Spectral efficiency in bps/Hz (the paper's headline metric).
    pub fn spectral_efficiency(self) -> f64 {
        self.rate_mbps() / self.bandwidth_mhz()
    }

    /// Information bits per modulation symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            DsssRate::Dbpsk1M => 1,
            DsssRate::Dqpsk2M => 2,
            DsssRate::Cck5_5M => 4,
            DsssRate::Cck11M => 8,
        }
    }

    /// All DSSS-family rates in increasing order.
    pub fn all() -> [DsssRate; 4] {
        [
            DsssRate::Dbpsk1M,
            DsssRate::Dqpsk2M,
            DsssRate::Cck5_5M,
            DsssRate::Cck11M,
        ]
    }
}

impl std::fmt::Display for DsssRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsssRate::Dbpsk1M => write!(f, "1 Mbps DBPSK"),
            DsssRate::Dqpsk2M => write!(f, "2 Mbps DQPSK"),
            DsssRate::Cck5_5M => write!(f, "5.5 Mbps CCK"),
            DsssRate::Cck11M => write!(f, "11 Mbps CCK"),
        }
    }
}

/// A complete DSSS/CCK PHY at a fixed rate.
///
/// # Examples
///
/// ```
/// use wlan_dsss::{DsssPhy, DsssRate};
///
/// let phy = DsssPhy::new(DsssRate::Cck11M);
/// let bits = vec![0, 1, 1, 0, 1, 0, 1, 1];
/// let chips = phy.transmit(&bits);
/// assert_eq!(phy.receive(&chips), bits);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsssPhy {
    rate: DsssRate,
    scrambler_seed: u8,
}

impl DsssPhy {
    /// Creates a PHY at the given rate with the reference scrambler seed.
    pub fn new(rate: DsssRate) -> Self {
        DsssPhy {
            rate,
            scrambler_seed: 0x7F,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> DsssRate {
        self.rate
    }

    /// Pads `bits` to a whole number of symbols (with zeros) and returns the
    /// padded length the receiver will produce.
    pub fn padded_len(&self, num_bits: usize) -> usize {
        let bps = self.rate.bits_per_symbol();
        num_bits.div_ceil(bps) * bps
    }

    /// Transmits bits as 11 Mchip/s complex baseband.
    ///
    /// Bits are scrambled, padded to a whole symbol, then modulated and
    /// spread. Average chip power is 1.
    pub fn transmit(&self, bits: &[u8]) -> Vec<Complex> {
        let mut padded = bits.to_vec();
        padded.resize(self.padded_len(bits.len()), 0);
        let scrambled = Scrambler::new(self.scrambler_seed).scramble(&padded);
        match self.rate {
            DsssRate::Dbpsk1M => {
                let symbols = Dbpsk::modulate(&scrambled);
                let mut chips = barker::spread(&symbols);
                for c in chips.iter_mut() {
                    *c = c.scale((barker::SPREAD_FACTOR as f64).sqrt());
                }
                chips
            }
            DsssRate::Dqpsk2M => {
                let symbols = Dqpsk::modulate(&scrambled);
                let mut chips = barker::spread(&symbols);
                for c in chips.iter_mut() {
                    *c = c.scale((barker::SPREAD_FACTOR as f64).sqrt());
                }
                chips
            }
            DsssRate::Cck5_5M => CckModulator::new(CckRate::Half).modulate(&scrambled),
            DsssRate::Cck11M => CckModulator::new(CckRate::Full).modulate(&scrambled),
        }
    }

    /// Receives a chip stream back into (descrambled) bits.
    ///
    /// The output length is the padded bit count; callers truncate to their
    /// original length.
    ///
    /// # Panics
    ///
    /// Panics if the chip stream is not a whole number of symbols.
    pub fn receive(&self, chips: &[Complex]) -> Vec<u8> {
        let scrambled = match self.rate {
            DsssRate::Dbpsk1M => {
                let symbols = barker::despread(chips);
                Dbpsk::demodulate(&symbols)
            }
            DsssRate::Dqpsk2M => {
                let symbols = barker::despread(chips);
                Dqpsk::demodulate(&symbols)
            }
            DsssRate::Cck5_5M => CckDemodulator::new(CckRate::Half).demodulate(chips),
            DsssRate::Cck11M => CckDemodulator::new(CckRate::Full).demodulate(chips),
        };
        Scrambler::new(self.scrambler_seed).scramble(&scrambled)
    }

    /// Chips transmitted for `num_bits` information bits.
    pub fn chips_for_bits(&self, num_bits: usize) -> usize {
        let symbols = self.padded_len(num_bits) / self.rate.bits_per_symbol();
        match self.rate {
            DsssRate::Dbpsk1M | DsssRate::Dqpsk2M => {
                (symbols + 1) * barker::SPREAD_FACTOR // +1 reference symbol
            }
            DsssRate::Cck5_5M | DsssRate::Cck11M => symbols * crate::cck::CHIPS_PER_SYMBOL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::{Rng, WlanRng};

    #[test]
    fn spectral_efficiencies_match_paper() {
        // Paper: 0.1 bps/Hz for the original standard, 0.5 for 802.11b.
        assert!((DsssRate::Dqpsk2M.spectral_efficiency() - 0.1).abs() < 1e-12);
        assert!((DsssRate::Cck11M.spectral_efficiency() - 0.5).abs() < 1e-12);
        // And the paper's "fivefold increase".
        let ratio =
            DsssRate::Cck11M.spectral_efficiency() / DsssRate::Dqpsk2M.spectral_efficiency();
        assert!((ratio - 5.0).abs() < 1e-12);
    }

    #[test]
    fn all_rates_roundtrip_clean() {
        let mut rng = WlanRng::seed_from_u64(80);
        for rate in DsssRate::all() {
            let phy = DsssPhy::new(rate);
            let bits: Vec<u8> = (0..160).map(|_| rng.gen_range(0..2u8)).collect();
            let chips = phy.transmit(&bits);
            assert_eq!(chips.len(), phy.chips_for_bits(bits.len()), "{rate}");
            let out = phy.receive(&chips);
            assert_eq!(&out[..bits.len()], bits.as_slice(), "{rate}");
        }
    }

    #[test]
    fn odd_length_payload_is_padded() {
        let phy = DsssPhy::new(DsssRate::Cck11M);
        let bits = vec![1, 0, 1]; // not a multiple of 8
        let chips = phy.transmit(&bits);
        let out = phy.receive(&chips);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], bits.as_slice());
    }

    #[test]
    fn chip_power_is_unity() {
        let mut rng = WlanRng::seed_from_u64(81);
        for rate in DsssRate::all() {
            let phy = DsssPhy::new(rate);
            let bits: Vec<u8> = (0..800).map(|_| rng.gen_range(0..2u8)).collect();
            let chips = phy.transmit(&bits);
            let p = wlan_math::complex::mean_power(&chips);
            assert!((p - 1.0).abs() < 0.01, "{rate}: chip power {p}");
        }
    }

    #[test]
    fn scrambling_whitens_constant_payload() {
        // An all-zero payload must not produce a repetitive chip pattern
        // (that is the scrambler's whole job).
        let phy = DsssPhy::new(DsssRate::Dbpsk1M);
        let chips = phy.transmit(&[0u8; 64]);
        // Count sign changes in the real part: a constant payload without
        // scrambling would produce none beyond the Barker structure.
        let distinct_symbols: std::collections::HashSet<i8> = chips
            .chunks(barker::SPREAD_FACTOR)
            .map(|c| c[0].re.signum() as i8)
            .collect();
        assert_eq!(distinct_symbols.len(), 2, "scrambler must flip symbols");
    }

    #[test]
    fn roundtrip_through_awgn() {
        let mut rng = WlanRng::seed_from_u64(82);
        let phy = DsssPhy::new(DsssRate::Dqpsk2M);
        let bits: Vec<u8> = (0..400).map(|_| rng.gen_range(0..2u8)).collect();
        let mut chips = phy.transmit(&bits);
        // 0 dB chip SNR → 10.4 dB post-despreading: DQPSK survives easily.
        for c in chips.iter_mut() {
            *c += wlan_channel::noise::complex_gaussian(&mut rng);
        }
        let out = phy.receive(&chips);
        let errors = out[..bits.len()]
            .iter()
            .zip(&bits)
            .filter(|(a, b)| a != b)
            .count();
        // Expected BER here is well under 1%; 3% leaves headroom for the
        // particular noise realization without masking a broken receiver.
        assert!(errors < 12, "too many errors after despreading: {errors}");
    }
}
