//! Differential PSK modems for the DSSS PHYs.
//!
//! 802.11-1999 uses DBPSK at 1 Mbps and DQPSK at 2 Mbps: information rides
//! on the *phase change* between consecutive symbols, so the receiver needs
//! no absolute carrier phase reference — the right choice for 1997-era
//! low-cost radios.

use wlan_math::Complex;

/// Gray-coded DQPSK dibit → phase increment (802.11-1999 table 111).
fn dibit_to_phase(d0: u8, d1: u8) -> f64 {
    use std::f64::consts::PI;
    match (d0, d1) {
        (0, 0) => 0.0,
        (0, 1) => PI / 2.0,
        (1, 1) => PI,
        (1, 0) => 3.0 * PI / 2.0,
        _ => panic!("bits must be 0 or 1"),
    }
}

/// Phase increment → Gray-coded dibit (nearest of the four).
fn phase_to_dibit(phase: f64) -> (u8, u8) {
    use std::f64::consts::PI;
    let p = phase.rem_euclid(2.0 * PI);
    let quadrant = ((p + PI / 4.0) / (PI / 2.0)).floor() as i32 % 4;
    match quadrant {
        0 => (0, 0),
        1 => (0, 1),
        2 => (1, 1),
        _ => (1, 0),
    }
}

/// DBPSK: one bit per symbol as a 0/π differential phase.
///
/// # Examples
///
/// ```
/// use wlan_dsss::modem::Dbpsk;
/// let bits = vec![1, 0, 0, 1, 1];
/// let syms = Dbpsk::modulate(&bits);
/// assert_eq!(syms.len(), bits.len() + 1); // +1 reference symbol
/// assert_eq!(Dbpsk::demodulate(&syms), bits);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dbpsk;

impl Dbpsk {
    /// Modulates bits into unit-energy symbols, prepending one reference
    /// symbol.
    ///
    /// # Panics
    ///
    /// Panics if a bit is not 0 or 1.
    pub fn modulate(bits: &[u8]) -> Vec<Complex> {
        let mut out = Vec::with_capacity(bits.len() + 1);
        let mut phase = 0.0f64;
        out.push(Complex::from_polar(1.0, phase));
        for &b in bits {
            assert!(b <= 1, "bits must be 0 or 1");
            if b == 1 {
                phase += std::f64::consts::PI;
            }
            out.push(Complex::from_polar(1.0, phase));
        }
        out
    }

    /// Differentially demodulates symbols (first symbol is the reference).
    pub fn demodulate(symbols: &[Complex]) -> Vec<u8> {
        symbols
            .windows(2)
            .map(|w| {
                let d = w[1] * w[0].conj();
                (d.re < 0.0) as u8
            })
            .collect()
    }
}

/// DQPSK: two bits per symbol as a Gray-coded quarter-turn differential
/// phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dqpsk;

impl Dqpsk {
    /// Modulates an even number of bits, prepending one reference symbol.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is odd or a bit is not 0/1.
    pub fn modulate(bits: &[u8]) -> Vec<Complex> {
        assert!(bits.len().is_multiple_of(2), "DQPSK needs an even number of bits");
        let mut out = Vec::with_capacity(bits.len() / 2 + 1);
        let mut phase = 0.0f64;
        out.push(Complex::from_polar(1.0, phase));
        for pair in bits.chunks(2) {
            phase += dibit_to_phase(pair[0], pair[1]);
            out.push(Complex::from_polar(1.0, phase));
        }
        out
    }

    /// Differentially demodulates symbols back into bits.
    pub fn demodulate(symbols: &[Complex]) -> Vec<u8> {
        let mut bits = Vec::with_capacity(symbols.len().saturating_sub(1) * 2);
        for w in symbols.windows(2) {
            let d = w[1] * w[0].conj();
            let (b0, b1) = phase_to_dibit(d.arg());
            bits.push(b0);
            bits.push(b1);
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbpsk_roundtrip() {
        let bits: Vec<u8> = (0..64).map(|i| ((i * 5) % 3 == 0) as u8).collect();
        assert_eq!(Dbpsk::demodulate(&Dbpsk::modulate(&bits)), bits);
    }

    #[test]
    fn dqpsk_roundtrip() {
        let bits: Vec<u8> = (0..128).map(|i| ((i * 7) % 5 < 2) as u8).collect();
        assert_eq!(Dqpsk::demodulate(&Dqpsk::modulate(&bits)), bits);
    }

    #[test]
    fn differential_detection_survives_phase_offset() {
        // A fixed unknown carrier phase rotates every symbol identically and
        // must cancel in the differential detector.
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let rotated: Vec<Complex> = Dbpsk::modulate(&bits)
            .into_iter()
            .map(|s| s * Complex::from_polar(1.0, 1.234))
            .collect();
        assert_eq!(Dbpsk::demodulate(&rotated), bits);

        let rotated_q: Vec<Complex> = Dqpsk::modulate(&bits)
            .into_iter()
            .map(|s| s * Complex::from_polar(1.0, -2.1))
            .collect();
        assert_eq!(Dqpsk::demodulate(&rotated_q), bits);
    }

    #[test]
    fn symbols_have_unit_energy() {
        let bits = vec![0, 1, 1, 0];
        for s in Dbpsk::modulate(&bits) {
            assert!((s.norm() - 1.0).abs() < 1e-12);
        }
        for s in Dqpsk::modulate(&bits) {
            assert!((s.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gray_mapping_adjacent_phases_differ_one_bit() {
        // Adjacent quadrants must differ in exactly one bit (Gray property),
        // so a small phase error costs one bit, not two.
        let phases = [0.0, 0.5, 1.0, 1.5].map(|k| k * std::f64::consts::PI);
        let dibits: Vec<(u8, u8)> = phases.iter().map(|&p| phase_to_dibit(p)).collect();
        for i in 0..4 {
            let a = dibits[i];
            let b = dibits[(i + 1) % 4];
            let diff = (a.0 ^ b.0) + (a.1 ^ b.1);
            assert_eq!(diff, 1, "{a:?} vs {b:?}");
        }
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn dqpsk_rejects_odd_length() {
        let _ = Dqpsk::modulate(&[1, 0, 1]);
    }

    #[test]
    fn empty_input_gives_reference_only() {
        assert_eq!(Dbpsk::modulate(&[]).len(), 1);
        assert_eq!(Dbpsk::demodulate(&Dbpsk::modulate(&[])), Vec::<u8>::new());
    }
}
