//! The first-generation 802.11 physical layers.
//!
//! This crate implements the air interfaces the paper's "Historical
//! Developments" section walks through:
//!
//! - [`barker`] — the 11-chip Barker spreading of 802.11-1999 DSSS and the
//!   processing-gain measurement behind the FCC's 10 dB rule (experiment E3),
//! - [`modem`] — DBPSK (1 Mbps) and DQPSK (2 Mbps) differential modulation,
//! - [`cck`] — the 802.11b complementary-code-keying PHY (5.5 and 11 Mbps),
//! - [`fhss`] — the frequency-hopping alternative PHY (hop patterns plus a
//!   2-level FSK modem),
//! - [`phy`] — the frame-level TX/RX chains tying spreading, modulation and
//!   scrambling together.
//!
//! # Examples
//!
//! ```
//! use wlan_dsss::phy::{DsssPhy, DsssRate};
//!
//! let phy = DsssPhy::new(DsssRate::Dbpsk1M);
//! let bits = vec![1, 0, 1, 1, 0, 0, 1, 0];
//! let chips = phy.transmit(&bits);
//! assert_eq!(phy.receive(&chips), bits);
//! ```

pub mod barker;
pub mod cck;
pub mod fhss;
pub mod modem;
pub mod phy;
pub mod plcp;

pub use phy::{DsssPhy, DsssRate};
