//! Barker-11 spreading.
//!
//! 802.11-1999 spreads every symbol with the length-11 Barker sequence. Its
//! ideal autocorrelation concentrates the despread energy into one lag while
//! spreading narrowband interference over the full 11 MHz chip bandwidth —
//! the mechanism behind the FCC's mandated ≥10 dB processing gain
//! (10·log₁₀(11) ≈ 10.4 dB), measured in experiment E3.

use wlan_math::Complex;

/// The 11-chip Barker sequence used by 802.11 (+−++−+++−−−).
pub const BARKER_11: [f64; 11] = [
    1.0, -1.0, 1.0, 1.0, -1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0,
];

/// Chips per symbol (the spreading factor).
pub const SPREAD_FACTOR: usize = 11;

/// Theoretical processing gain in dB: `10·log10(11)`.
pub fn processing_gain_db() -> f64 {
    10.0 * (SPREAD_FACTOR as f64).log10()
}

/// Spreads one complex symbol into 11 chips, normalized so the chip
/// sequence has the same total energy as the symbol.
pub fn spread_symbol(symbol: Complex) -> Vec<Complex> {
    let scale = 1.0 / (SPREAD_FACTOR as f64).sqrt();
    BARKER_11.iter().map(|&c| symbol.scale(c * scale)).collect()
}

/// Spreads a symbol stream.
pub fn spread(symbols: &[Complex]) -> Vec<Complex> {
    // One output allocation for the whole frame; per-symbol chips are
    // written straight into it (same values as [`spread_symbol`]).
    let scale = 1.0 / (SPREAD_FACTOR as f64).sqrt();
    let mut chips = Vec::with_capacity(symbols.len() * SPREAD_FACTOR);
    for &s in symbols {
        chips.extend(BARKER_11.iter().map(|&c| s.scale(c * scale)));
    }
    chips
}

/// Despreads one 11-chip block back into a symbol (matched filter).
///
/// # Panics
///
/// Panics if `chips.len() != 11`.
pub fn despread_symbol(chips: &[Complex]) -> Complex {
    assert_eq!(chips.len(), SPREAD_FACTOR, "expected 11 chips");
    let scale = 1.0 / (SPREAD_FACTOR as f64).sqrt();
    chips
        .iter()
        .zip(BARKER_11.iter())
        .map(|(&r, &c)| r.scale(c * scale))
        .sum()
}

/// Despreads a chip stream (must be a whole number of symbols).
///
/// # Panics
///
/// Panics if `chips.len()` is not a multiple of 11.
pub fn despread(chips: &[Complex]) -> Vec<Complex> {
    assert_eq!(chips.len() % SPREAD_FACTOR, 0, "chip stream must be whole symbols");
    chips.chunks(SPREAD_FACTOR).map(despread_symbol).collect()
}

/// Acquires chip timing by sliding a Barker matched filter over the first
/// `search_chips` samples and picking the offset with the strongest mean
/// correlation magnitude over several symbols.
///
/// This is what the real 802.11 SYNC preamble (128 scrambled ones) is for:
/// the receiver does not know where symbols start. Returns the offset in
/// chips (`0..11`).
///
/// # Panics
///
/// Panics if fewer than `search_chips + 4·11` samples are provided or
/// `search_chips < 11`.
pub fn acquire_timing(chips: &[Complex], search_chips: usize) -> usize {
    assert!(search_chips >= SPREAD_FACTOR, "search window too small");
    assert!(
        chips.len() >= search_chips + 4 * SPREAD_FACTOR,
        "need several symbols after the search window"
    );
    let symbols_to_average = 4;
    let mut best_offset = 0;
    let mut best_metric = -1.0f64;
    for offset in 0..SPREAD_FACTOR {
        let mut metric = 0.0;
        for s in 0..symbols_to_average {
            let start = offset + s * SPREAD_FACTOR;
            let corr = despread_symbol(&chips[start..start + SPREAD_FACTOR]);
            metric += corr.norm_sqr();
        }
        if metric > best_metric {
            best_metric = metric;
            best_offset = offset;
        }
    }
    best_offset
}

/// Aperiodic autocorrelation of the Barker sequence at integer lag `k`
/// (unnormalized).
pub fn autocorrelation(k: usize) -> f64 {
    if k >= SPREAD_FACTOR {
        return 0.0;
    }
    (0..SPREAD_FACTOR - k)
        .map(|i| BARKER_11[i] * BARKER_11[i + k])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barker_sidelobes_are_bounded_by_one() {
        assert_eq!(autocorrelation(0), 11.0);
        for k in 1..SPREAD_FACTOR {
            assert!(
                autocorrelation(k).abs() <= 1.0,
                "lag {k}: {}",
                autocorrelation(k)
            );
        }
    }

    #[test]
    fn spread_despread_roundtrip() {
        let symbols = vec![
            Complex::ONE,
            -Complex::ONE,
            Complex::I,
            Complex::new(0.7, -0.7),
        ];
        let chips = spread(&symbols);
        assert_eq!(chips.len(), symbols.len() * SPREAD_FACTOR);
        let back = despread(&chips);
        for (a, b) in back.iter().zip(&symbols) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn spreading_preserves_energy() {
        let sym = Complex::new(0.6, 0.8);
        let chips = spread_symbol(sym);
        let chip_energy: f64 = chips.iter().map(|c| c.norm_sqr()).sum();
        assert!((chip_energy - sym.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn processing_gain_matches_paper_requirement() {
        // The FCC rule demanded ≥10 dB; Barker-11 delivers 10.41 dB.
        let g = processing_gain_db();
        assert!(g >= 10.0, "processing gain {g} must meet the 10 dB rule");
        assert!((g - 10.41).abs() < 0.01);
    }

    #[test]
    fn despreading_suppresses_cw_interference() {
        // A constant (zero-frequency CW) interferer of amplitude J spread
        // over 11 chips contributes only J·Σc/√11 = −J/√11 to the symbol:
        // an 11× (10.4 dB) power suppression relative to the signal.
        let jammer = Complex::from_re(1.0);
        let chips: Vec<Complex> = (0..SPREAD_FACTOR).map(|_| jammer).collect();
        let leaked = despread_symbol(&chips);
        let suppression = jammer.norm_sqr() / leaked.norm_sqr();
        assert!((10.0 * suppression.log10() - processing_gain_db()).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "11 chips")]
    fn despread_length_checked() {
        let _ = despread_symbol(&[Complex::ZERO; 10]);
    }

    #[test]
    fn timing_acquisition_finds_the_offset() {
        use wlan_math::rng::WlanRng;
        let mut rng = WlanRng::seed_from_u64(700);
        // A stream of alternating BPSK symbols, shifted by a known offset.
        let symbols: Vec<Complex> = (0..12)
            .map(|i| Complex::from_re(if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let spread_stream = spread(&symbols);
        for true_offset in [0usize, 3, 7, 10] {
            // Prepend `true_offset` junk chips to misalign.
            let mut stream: Vec<Complex> = (0..true_offset)
                .map(|_| wlan_channel::noise::complex_gaussian(&mut rng).scale(0.3))
                .collect();
            stream.extend_from_slice(&spread_stream);
            // Mild noise.
            for c in stream.iter_mut() {
                *c += wlan_channel::noise::complex_gaussian(&mut rng).scale(0.2);
            }
            let found = acquire_timing(&stream, SPREAD_FACTOR);
            assert_eq!(found, true_offset % SPREAD_FACTOR, "offset {true_offset}");
        }
    }

    #[test]
    fn acquisition_then_despreading_recovers_symbols() {
        let symbols = vec![Complex::ONE, -Complex::ONE, Complex::ONE, Complex::ONE, -Complex::ONE];
        let mut stream = vec![Complex::ZERO; 5];
        stream.extend(spread(&symbols));
        let offset = acquire_timing(&stream, SPREAD_FACTOR);
        assert_eq!(offset, 5);
        let aligned = &stream[offset..offset + symbols.len() * SPREAD_FACTOR];
        let recovered = despread(aligned);
        for (a, b) in recovered.iter().zip(&symbols) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }
}
