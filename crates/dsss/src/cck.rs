//! Complementary Code Keying — the 802.11b high-rate PHY.
//!
//! CCK replaced Barker spreading at 5.5 and 11 Mbps while keeping the 11 MHz
//! chip rate and a "DSSS-like signature" (the paper's phrase): each symbol is
//! an 8-chip codeword
//!
//! ```text
//! c = (e^{j(φ1+φ2+φ3+φ4)}, e^{j(φ1+φ3+φ4)}, e^{j(φ1+φ2+φ4)}, −e^{j(φ1+φ4)},
//!      e^{j(φ1+φ2+φ3)},     e^{j(φ1+φ3)},    −e^{j(φ1+φ2)},    e^{j(φ1)})
//! ```
//!
//! with φ1 carrying a DQPSK dibit and (at 11 Mbps) φ2–φ4 carrying three more
//! QPSK dibits — 8 bits per 8-chip symbol, i.e. 11 Mbps at 1.375 Msym/s.
//! The receiver correlates against the full codebook (64 codewords at
//! 11 Mbps, 4 at 5.5 Mbps), which is what made CCK practical: a 64-way
//! correlator bank instead of a 256-state trellis.

use std::f64::consts::PI;
use wlan_math::Complex;

/// Chips per CCK symbol.
pub const CHIPS_PER_SYMBOL: usize = 8;

/// Builds the 8-chip CCK codeword for the four phases.
pub fn codeword(phi1: f64, phi2: f64, phi3: f64, phi4: f64) -> [Complex; 8] {
    let e = |p: f64| Complex::from_polar(1.0, p);
    [
        e(phi1 + phi2 + phi3 + phi4),
        e(phi1 + phi3 + phi4),
        e(phi1 + phi2 + phi4),
        -e(phi1 + phi4),
        e(phi1 + phi2 + phi3),
        e(phi1 + phi3),
        -e(phi1 + phi2),
        e(phi1),
    ]
}

/// QPSK dibit → phase for φ2..φ4 (802.11b table 65: Gray-ish direct map).
fn dibit_phase(d0: u8, d1: u8) -> f64 {
    match (d0, d1) {
        (0, 0) => 0.0,
        (0, 1) => PI / 2.0,
        (1, 0) => PI,
        (1, 1) => 3.0 * PI / 2.0,
        _ => panic!("bits must be 0 or 1"),
    }
}

fn phase_dibit(index: usize) -> (u8, u8) {
    match index {
        0 => (0, 0),
        1 => (0, 1),
        2 => (1, 0),
        _ => (1, 1),
    }
}

/// DQPSK dibit → differential phase for φ1 (Gray coded).
fn dqpsk_phase(d0: u8, d1: u8) -> f64 {
    match (d0, d1) {
        (0, 0) => 0.0,
        (0, 1) => PI / 2.0,
        (1, 1) => PI,
        (1, 0) => 3.0 * PI / 2.0,
        _ => panic!("bits must be 0 or 1"),
    }
}

fn dqpsk_dibit(quadrant: usize) -> (u8, u8) {
    match quadrant {
        0 => (0, 0),
        1 => (0, 1),
        2 => (1, 1),
        _ => (1, 0),
    }
}

/// CCK data rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CckRate {
    /// 5.5 Mbps: 4 bits per symbol.
    Half,
    /// 11 Mbps: 8 bits per symbol.
    Full,
}

impl CckRate {
    /// Information bits carried per 8-chip symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            CckRate::Half => 4,
            CckRate::Full => 8,
        }
    }

    /// Data rate in Mbps at the 11 MHz chip rate.
    pub fn rate_mbps(self) -> f64 {
        // 11 Mchip/s ÷ 8 chips/symbol × bits/symbol.
        11.0 / 8.0 * self.bits_per_symbol() as f64
    }
}

/// A stateful CCK modulator (φ1 is differential across symbols).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CckModulator {
    rate: CckRate,
    phi1: f64,
}

impl CckModulator {
    /// Creates a modulator at the given rate with φ1 reference 0.
    pub fn new(rate: CckRate) -> Self {
        CckModulator { rate, phi1: 0.0 }
    }

    /// Modulates a whole number of symbols worth of bits into chips
    /// (normalized to unit average chip energy).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of the bits per symbol.
    pub fn modulate(&mut self, bits: &[u8]) -> Vec<Complex> {
        let bps = self.rate.bits_per_symbol();
        assert_eq!(bits.len() % bps, 0, "bits must fill whole CCK symbols");
        let mut chips = Vec::with_capacity(bits.len() / bps * CHIPS_PER_SYMBOL);
        for sym in bits.chunks(bps) {
            self.phi1 += dqpsk_phase(sym[0], sym[1]);
            let (p2, p3, p4) = match self.rate {
                CckRate::Full => (
                    dibit_phase(sym[2], sym[3]),
                    dibit_phase(sym[4], sym[5]),
                    dibit_phase(sym[6], sym[7]),
                ),
                // 802.11b §18.4.6.5.3: φ2 = d2·π + π/2, φ3 = 0, φ4 = d3·π.
                CckRate::Half => (
                    sym[2] as f64 * PI + PI / 2.0,
                    0.0,
                    sym[3] as f64 * PI,
                ),
            };
            chips.extend_from_slice(&codeword(self.phi1, p2, p3, p4));
        }
        chips
    }
}

/// A CCK correlation receiver (codebook search + differential φ1).
#[derive(Debug, Clone, PartialEq)]
pub struct CckDemodulator {
    rate: CckRate,
    prev_phi1: f64,
    /// Candidate (φ2, φ3, φ4) triples with their decoded payload bits.
    candidates: Vec<([Complex; 8], Vec<u8>)>,
}

impl CckDemodulator {
    /// Creates a demodulator matching [`CckModulator::new`].
    pub fn new(rate: CckRate) -> Self {
        // Precompute φ1 = 0 codewords for every data combination.
        let mut candidates = Vec::new();
        match rate {
            CckRate::Full => {
                for i2 in 0..4usize {
                    for i3 in 0..4usize {
                        for i4 in 0..4usize {
                            let cw = codeword(
                                0.0,
                                i2 as f64 * PI / 2.0,
                                i3 as f64 * PI / 2.0,
                                i4 as f64 * PI / 2.0,
                            );
                            let (b2, b3) = phase_dibit(i2);
                            let (b4, b5) = phase_dibit(i3);
                            let (b6, b7) = phase_dibit(i4);
                            candidates.push((cw, vec![b2, b3, b4, b5, b6, b7]));
                        }
                    }
                }
            }
            CckRate::Half => {
                for d2 in 0..2u8 {
                    for d3 in 0..2u8 {
                        let cw = codeword(
                            0.0,
                            d2 as f64 * PI + PI / 2.0,
                            0.0,
                            d3 as f64 * PI,
                        );
                        candidates.push((cw, vec![d2, d3]));
                    }
                }
            }
        }
        CckDemodulator {
            rate,
            prev_phi1: 0.0,
            candidates,
        }
    }

    /// Demodulates a whole number of 8-chip symbols.
    ///
    /// # Panics
    ///
    /// Panics if `chips.len()` is not a multiple of 8.
    pub fn demodulate(&mut self, chips: &[Complex]) -> Vec<u8> {
        assert_eq!(
            chips.len() % CHIPS_PER_SYMBOL,
            0,
            "chip stream must be whole CCK symbols"
        );
        let n_sym = chips.len() / CHIPS_PER_SYMBOL;
        let mut bits = Vec::with_capacity(n_sym * self.rate.bits_per_symbol());
        for block in chips.chunks(CHIPS_PER_SYMBOL) {
            let (best, best_corr) = match self.rate {
                CckRate::Full => Self::correlate_full(block),
                CckRate::Half => self.correlate_codebook(block),
            };
            // The winning correlation's phase is φ1; decode it differentially.
            let phi1 = best_corr.arg();
            let dphi = phi1 - self.prev_phi1;
            self.prev_phi1 = phi1;
            let quadrant =
                (((dphi.rem_euclid(2.0 * PI)) + PI / 4.0) / (PI / 2.0)).floor() as usize % 4;
            let (b0, b1) = dqpsk_dibit(quadrant);
            bits.push(b0);
            bits.push(b1);
            bits.extend_from_slice(&self.candidates[best].1);
        }
        bits
    }

    /// Maximum-magnitude correlation by exhaustive codebook search (the
    /// small 5.5 Mbps codebook).
    fn correlate_codebook(&self, block: &[Complex]) -> (usize, Complex) {
        let mut best = 0usize;
        let mut best_corr = Complex::ZERO;
        for (i, (cw, _)) in self.candidates.iter().enumerate() {
            let corr: Complex = block
                .iter()
                .zip(cw.iter())
                .map(|(&r, &c)| r * c.conj())
                .sum();
            if corr.norm_sqr() > best_corr.norm_sqr() {
                best = i;
                best_corr = corr;
            }
        }
        (best, best_corr)
    }

    /// Factorized 64-way correlator for the 11 Mbps codebook.
    ///
    /// With φ1 = 0 the codeword conjugate splits over φ4: writing
    /// `u_i = conj(e^{jφ_i})`,
    ///
    /// ```text
    /// corr(φ2,φ3,φ4) = u4·(r0·u2u3 + r1·u3 + r2·u2 − r3)
    ///                +     (r4·u2u3 + r5·u3 − r6·u2 + r7)
    /// ```
    ///
    /// so the receiver computes 16 (φ2, φ3) partial pairs once and reuses
    /// each across the four φ4 hypotheses — ~3× fewer complex multiplies
    /// than the plain 64 × 8 bank, with the same argmax decision rule and
    /// candidate ordering (index = (i2·4 + i3)·4 + i4).
    fn correlate_full(block: &[Complex]) -> (usize, Complex) {
        let u: [Complex; 4] =
            std::array::from_fn(|i| Complex::from_polar(1.0, i as f64 * PI / 2.0).conj());
        let mut best = 0usize;
        let mut best_corr = Complex::ZERO;
        for p in 0..16usize {
            let (i2, i3) = (p / 4, p % 4);
            let u23 = u[i2] * u[i3];
            let a = block[0] * u23 + block[1] * u[i3] + block[2] * u[i2] - block[3];
            let b = block[4] * u23 + block[5] * u[i3] - block[6] * u[i2] + block[7];
            for (i4, &u4) in u.iter().enumerate() {
                let corr = a * u4 + b;
                if corr.norm_sqr() > best_corr.norm_sqr() {
                    best = (p << 2) | i4;
                    best_corr = corr;
                }
            }
        }
        (best, best_corr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::{Rng, WlanRng};

    #[test]
    fn rates_match_standard() {
        assert!((CckRate::Half.rate_mbps() - 5.5).abs() < 1e-12);
        assert!((CckRate::Full.rate_mbps() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn codewords_have_unit_chip_energy() {
        let cw = codeword(0.3, 1.0, 2.0, 0.5);
        for c in cw {
            assert!((c.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn codebook_is_distinct() {
        let demod = CckDemodulator::new(CckRate::Full);
        assert_eq!(demod.candidates.len(), 64);
        // All 64 codewords mutually distinguishable: max cross-correlation
        // magnitude strictly below the autocorrelation (8).
        for i in 0..64 {
            for j in (i + 1)..64 {
                let corr: Complex = demod.candidates[i]
                    .0
                    .iter()
                    .zip(demod.candidates[j].0.iter())
                    .map(|(&a, &b)| a * b.conj())
                    .sum();
                assert!(corr.norm() < 7.99, "codewords {i},{j} too similar");
            }
        }
    }

    #[test]
    fn full_rate_roundtrip() {
        let mut rng = WlanRng::seed_from_u64(60);
        let bits: Vec<u8> = (0..8 * 50).map(|_| rng.gen_range(0..2u8)).collect();
        let chips = CckModulator::new(CckRate::Full).modulate(&bits);
        assert_eq!(chips.len(), 50 * CHIPS_PER_SYMBOL);
        let out = CckDemodulator::new(CckRate::Full).demodulate(&chips);
        assert_eq!(out, bits);
    }

    #[test]
    fn half_rate_roundtrip() {
        let mut rng = WlanRng::seed_from_u64(61);
        let bits: Vec<u8> = (0..4 * 50).map(|_| rng.gen_range(0..2u8)).collect();
        let chips = CckModulator::new(CckRate::Half).modulate(&bits);
        let out = CckDemodulator::new(CckRate::Half).demodulate(&chips);
        assert_eq!(out, bits);
    }

    #[test]
    fn roundtrip_with_carrier_phase_offset() {
        // A static phase offset shifts φ1 of every symbol equally: it cancels
        // in the symbol-to-symbol differences and only biases the *first*
        // symbol against the φ1 = 0 reference, where it is absorbed as long
        // as it stays inside the π/4 DQPSK decision margin.
        let bits = vec![1, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0, 1, 0, 1, 1];
        let chips = CckModulator::new(CckRate::Full).modulate(&bits);
        let rotated: Vec<Complex> = chips
            .iter()
            .map(|&c| c * Complex::from_polar(1.0, 0.6))
            .collect();
        let out = CckDemodulator::new(CckRate::Full).demodulate(&rotated);
        assert_eq!(out, bits);

        // Beyond π/4 the damage must be confined to the first symbol.
        let rotated_far: Vec<Complex> = chips
            .iter()
            .map(|&c| c * Complex::from_polar(1.0, 1.2))
            .collect();
        let out_far = CckDemodulator::new(CckRate::Full).demodulate(&rotated_far);
        assert_eq!(&out_far[8..], &bits[8..], "later symbols must be intact");
    }

    #[test]
    fn roundtrip_with_mild_noise() {
        let mut rng = WlanRng::seed_from_u64(62);
        let bits: Vec<u8> = (0..8 * 100).map(|_| rng.gen_range(0..2u8)).collect();
        let chips = CckModulator::new(CckRate::Full).modulate(&bits);
        // 12 dB chip SNR is comfortable for the 64-codeword correlator.
        let noisy: Vec<Complex> = chips
            .iter()
            .map(|&c| {
                c + wlan_channel::noise::complex_gaussian(&mut rng)
                    .scale(10f64.powf(-12.0 / 20.0))
            })
            .collect();
        let out = CckDemodulator::new(CckRate::Full).demodulate(&noisy);
        let errors: usize = out.iter().zip(&bits).filter(|(a, b)| a != b).count();
        let ber = errors as f64 / bits.len() as f64;
        assert!(ber < 0.01, "BER too high: {errors}/{}", bits.len());
    }

    #[test]
    #[should_panic(expected = "whole CCK symbols")]
    fn modulate_length_checked() {
        let _ = CckModulator::new(CckRate::Full).modulate(&[1, 0, 1]);
    }
}
