//! The DSSS PLCP preamble and header (802.11-1999 clause 15 / 802.11b
//! clause 18).
//!
//! Every DSSS frame is announced at 1 Mbps DBPSK: 128 scrambled SYNC bits,
//! a 16-bit start-frame delimiter, then a 48-bit header — SIGNAL (rate),
//! SERVICE, LENGTH (µs of payload!) — protected by CRC-16/CCITT. Length
//! being in *microseconds* is the quirk that let 5.5/11 Mbps CCK frames be
//! announced to 1/2 Mbps legacy stations, and is faithfully reproduced.

use crate::phy::DsssRate;

/// SYNC bits in the long preamble.
pub const SYNC_BITS: usize = 128;
/// The start-frame delimiter, transmitted LSB first (0xF3A0).
pub const SFD: u16 = 0xF3A0;

/// The SIGNAL field encoding of each rate (units of 100 kbps).
fn signal_byte(rate: DsssRate) -> u8 {
    match rate {
        DsssRate::Dbpsk1M => 0x0A,
        DsssRate::Dqpsk2M => 0x14,
        DsssRate::Cck5_5M => 0x37,
        DsssRate::Cck11M => 0x6E,
    }
}

fn rate_from_signal(byte: u8) -> Option<DsssRate> {
    match byte {
        0x0A => Some(DsssRate::Dbpsk1M),
        0x14 => Some(DsssRate::Dqpsk2M),
        0x37 => Some(DsssRate::Cck5_5M),
        0x6E => Some(DsssRate::Cck11M),
        _ => None,
    }
}

/// CRC-16/CCITT (poly 0x1021, init 0xFFFF, output complemented), as used
/// by the PLCP header FCS.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc = 0xFFFFu16;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    !crc
}

/// A parsed PLCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlcpHeader {
    /// The announced payload rate.
    pub rate: DsssRate,
    /// SERVICE byte (bit 2 = locked clocks, bit 7 = length-extension).
    pub service: u8,
    /// Payload duration in microseconds (the LENGTH field).
    pub length_us: u16,
}

impl PlcpHeader {
    /// Builds the header announcing `payload_bytes` at `rate`.
    ///
    /// # Panics
    ///
    /// Panics if the computed duration exceeds the 16-bit LENGTH field.
    pub fn for_payload(rate: DsssRate, payload_bytes: usize) -> Self {
        let us = (payload_bytes as f64 * 8.0 / rate.rate_mbps()).ceil();
        assert!(us <= u16::MAX as f64, "payload too long for LENGTH");
        PlcpHeader {
            rate,
            service: 0x04, // locked clocks, as all CCK implementations set
            length_us: us as u16,
        }
    }

    /// Largest payload consistent with the announced duration.
    pub fn max_payload_bytes(&self) -> usize {
        (self.length_us as f64 * self.rate.rate_mbps() / 8.0).floor() as usize
    }

    /// Serializes SIGNAL ‖ SERVICE ‖ LENGTH ‖ CRC-16 (6 bytes).
    pub fn to_bytes(&self) -> [u8; 6] {
        let mut out = [0u8; 6];
        out[0] = signal_byte(self.rate);
        out[1] = self.service;
        out[2..4].copy_from_slice(&self.length_us.to_le_bytes());
        let crc = crc16_ccitt(&out[..4]);
        out[4..6].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a 6-byte header.
    ///
    /// Returns `None` on CRC failure or an unknown SIGNAL value.
    pub fn from_bytes(bytes: &[u8; 6]) -> Option<PlcpHeader> {
        let want = u16::from_le_bytes([bytes[4], bytes[5]]);
        if crc16_ccitt(&bytes[..4]) != want {
            return None;
        }
        Some(PlcpHeader {
            rate: rate_from_signal(bytes[0])?,
            service: bytes[1],
            length_us: u16::from_le_bytes([bytes[2], bytes[3]]),
        })
    }

    /// Total PLCP overhead duration in µs at the long-preamble 1 Mbps rate:
    /// 128 SYNC + 16 SFD + 48 header bits = 192 µs (the number the MAC
    /// profile uses).
    pub fn long_preamble_overhead_us() -> f64 {
        (SYNC_BITS + 16 + 48) as f64 / 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_value() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1; ours complements.
        assert_eq!(crc16_ccitt(b"123456789"), !0x29B1);
    }

    #[test]
    fn header_roundtrip_all_rates() {
        for rate in DsssRate::all() {
            let h = PlcpHeader::for_payload(rate, 1500);
            let parsed = PlcpHeader::from_bytes(&h.to_bytes()).expect("valid header");
            assert_eq!(parsed, h, "{rate}");
        }
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let h = PlcpHeader::for_payload(DsssRate::Cck11M, 1000);
        let mut bytes = h.to_bytes();
        for i in 0..6 {
            bytes[i] ^= 0x10;
            assert!(PlcpHeader::from_bytes(&bytes).is_none(), "byte {i}");
            bytes[i] ^= 0x10;
        }
    }

    #[test]
    fn length_is_in_microseconds() {
        // 1500 bytes at 11 Mbps: 12000 bits / 11 ≈ 1091 µs — not 1500.
        let h = PlcpHeader::for_payload(DsssRate::Cck11M, 1500);
        assert_eq!(h.length_us, 1091);
        // And the same payload at 1 Mbps announces 12 ms.
        let slow = PlcpHeader::for_payload(DsssRate::Dbpsk1M, 1500);
        assert_eq!(slow.length_us, 12_000);
    }

    #[test]
    fn payload_recoverable_from_duration() {
        for rate in DsssRate::all() {
            for bytes in [1usize, 64, 1500] {
                let h = PlcpHeader::for_payload(rate, bytes);
                assert!(
                    h.max_payload_bytes() >= bytes,
                    "{rate} {bytes}: {}",
                    h.max_payload_bytes()
                );
                // Ceil quantization can admit at most a few extra bytes.
                assert!(h.max_payload_bytes() <= bytes + 2, "{rate} {bytes}");
            }
        }
    }

    #[test]
    fn preamble_overhead_matches_mac_model() {
        assert_eq!(PlcpHeader::long_preamble_overhead_us(), 192.0);
    }

    #[test]
    fn unknown_signal_rejected() {
        let mut bytes = PlcpHeader::for_payload(DsssRate::Dqpsk2M, 10).to_bytes();
        bytes[0] = 0x55;
        let crc = crc16_ccitt(&bytes[..4]);
        bytes[4..6].copy_from_slice(&crc.to_le_bytes());
        assert!(PlcpHeader::from_bytes(&bytes).is_none());
    }
}
