//! The frequency-hopping spread spectrum PHY.
//!
//! 802.11-1999 standardized FHSS alongside DSSS as the other way to satisfy
//! the FCC spreading rules: hop over 79 one-MHz channels following a
//! pseudorandom pattern, carrying 1 Mbps with 2-level GFSK (modelled here as
//! orthogonal binary FSK with noncoherent detection). The interesting system
//! property — interference on a few channels only corrupts the dwells that
//! land on them — is exercised in the tests and in experiment E3's
//! interference sweep.

use wlan_math::rng::Rng;
use wlan_math::Complex;

/// Number of hop channels in the FCC 2.4 GHz band plan.
pub const NUM_CHANNELS: usize = 79;

/// A pseudorandom hop pattern over the 79 channels.
///
/// The standard's patterns are permutations generated from a base sequence
/// and a per-network index; we reproduce that structure: pattern `i` visits
/// `(base[k] + i) mod 79`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopPattern {
    sequence: Vec<usize>,
}

impl HopPattern {
    /// Creates hopping pattern `index` (0–77).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 78`.
    pub fn new(index: usize) -> Self {
        assert!(index < NUM_CHANNELS - 1, "pattern index out of range");
        // Base permutation from a fixed multiplicative stride; 32 is
        // coprime with 79 so the walk visits every channel exactly once.
        let sequence = (0..NUM_CHANNELS)
            .map(|k| (k * 32 + index) % NUM_CHANNELS)
            .collect();
        HopPattern { sequence }
    }

    /// The channel used during dwell `t` (wraps around the pattern).
    pub fn channel_at(&self, t: usize) -> usize {
        self.sequence[t % NUM_CHANNELS]
    }

    /// The full one-period sequence.
    pub fn sequence(&self) -> &[usize] {
        &self.sequence
    }

    /// Minimum absolute channel separation between consecutive dwells.
    ///
    /// FCC rules required ≥ 6 channels of separation.
    pub fn min_hop_distance(&self) -> usize {
        (0..NUM_CHANNELS)
            .map(|t| {
                let a = self.channel_at(t) as isize;
                let b = self.channel_at(t + 1) as isize;
                (a - b).unsigned_abs()
            })
            .min()
            .expect("nonempty pattern")
    }
}

/// Binary orthogonal FSK over one hop dwell (the GFSK stand-in).
///
/// Two tones at ±f_dev within the 1 MHz channel, `samples_per_symbol`
/// samples each; detection is noncoherent (energy comparison of the two
/// matched filters), as a real FHSS radio would do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FskModem {
    samples_per_symbol: usize,
}

impl FskModem {
    /// Creates a modem with the given oversampling (tones at ±1/4 of the
    /// sample rate, guaranteed orthogonal over a symbol).
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_symbol < 4` or odd.
    pub fn new(samples_per_symbol: usize) -> Self {
        assert!(
            samples_per_symbol >= 4 && samples_per_symbol.is_multiple_of(2),
            "need an even oversampling factor of at least 4"
        );
        FskModem { samples_per_symbol }
    }

    fn tone(&self, positive: bool, n: usize) -> Complex {
        let sign = if positive { 1.0 } else { -1.0 };
        // ±fs/4 tones: one full cycle every 4 samples.
        Complex::from_polar(
            1.0,
            sign * std::f64::consts::PI / 2.0 * n as f64,
        )
    }

    /// The two tone waveforms over one symbol, evaluated once per call so
    /// the per-sample loops do table lookups instead of sin/cos pairs.
    fn tone_tables(&self) -> (Vec<Complex>, Vec<Complex>) {
        let pos: Vec<Complex> = (0..self.samples_per_symbol).map(|n| self.tone(true, n)).collect();
        let neg: Vec<Complex> = (0..self.samples_per_symbol).map(|n| self.tone(false, n)).collect();
        (pos, neg)
    }

    /// Modulates bits into unit-power samples.
    pub fn modulate(&self, bits: &[u8]) -> Vec<Complex> {
        let (pos, neg) = self.tone_tables();
        let mut out = Vec::with_capacity(bits.len() * self.samples_per_symbol);
        for &b in bits {
            assert!(b <= 1, "bits must be 0 or 1");
            out.extend_from_slice(if b == 1 { &pos } else { &neg });
        }
        out
    }

    /// Noncoherent demodulation: pick the tone with more energy.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` is not a whole number of symbols.
    pub fn demodulate(&self, samples: &[Complex]) -> Vec<u8> {
        assert_eq!(
            samples.len() % self.samples_per_symbol,
            0,
            "sample stream must be whole symbols"
        );
        let (pos, neg) = self.tone_tables();
        samples
            .chunks(self.samples_per_symbol)
            .map(|sym| {
                let mut c_pos = Complex::ZERO;
                let mut c_neg = Complex::ZERO;
                for (n, &s) in sym.iter().enumerate() {
                    c_pos += s * pos[n].conj();
                    c_neg += s * neg[n].conj();
                }
                (c_pos.norm_sqr() > c_neg.norm_sqr()) as u8
            })
            .collect()
    }
}

/// Simulates one hop-pattern period of transmission with a set of jammed
/// channels, returning `(bits_sent, bit_errors)`.
///
/// Each dwell carries `bits_per_dwell` FSK bits; dwells on jammed channels
/// receive strong narrowband interference in addition to noise.
pub fn simulate_hopping_link(
    pattern: &HopPattern,
    jammed_channels: &[usize],
    bits_per_dwell: usize,
    snr_db: f64,
    jammer_power: f64,
    rng: &mut impl Rng,
) -> (usize, usize) {
    let modem = FskModem::new(8);
    let sigma = wlan_math::special::db_to_lin(-snr_db).sqrt();
    let mut sent = 0usize;
    let mut errors = 0usize;
    for dwell in 0..NUM_CHANNELS {
        let ch = pattern.channel_at(dwell);
        let bits: Vec<u8> = (0..bits_per_dwell).map(|_| rng.gen_range(0..2u8)).collect();
        let mut samples = modem.modulate(&bits);
        for s in samples.iter_mut() {
            *s += wlan_channel::noise::complex_gaussian(rng).scale(sigma);
        }
        if jammed_channels.contains(&ch) {
            // Narrowband CW jammer at the +tone frequency.
            for (n, s) in samples.iter_mut().enumerate() {
                *s += Complex::from_polar(
                    jammer_power.sqrt(),
                    std::f64::consts::PI / 2.0 * n as f64,
                );
            }
        }
        let out = modem.demodulate(&samples);
        errors += out.iter().zip(&bits).filter(|(a, b)| a != b).count();
        sent += bits_per_dwell;
    }
    (sent, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;

    #[test]
    fn pattern_visits_every_channel_once() {
        for index in [0, 10, 77] {
            let p = HopPattern::new(index);
            let mut seen = [false; NUM_CHANNELS];
            for &ch in p.sequence() {
                assert!(ch < NUM_CHANNELS);
                assert!(!seen[ch], "channel {ch} repeated in pattern {index}");
                seen[ch] = true;
            }
        }
    }

    #[test]
    fn patterns_meet_fcc_hop_distance() {
        for index in 0..NUM_CHANNELS - 1 {
            let p = HopPattern::new(index);
            assert!(
                p.min_hop_distance() >= 6,
                "pattern {index} hops too close: {}",
                p.min_hop_distance()
            );
        }
    }

    #[test]
    fn different_patterns_rarely_collide() {
        // Two networks on different patterns collide on at most a few dwells
        // per period — the FH coexistence property.
        let a = HopPattern::new(0);
        let b = HopPattern::new(1);
        let collisions = (0..NUM_CHANNELS)
            .filter(|&t| a.channel_at(t) == b.channel_at(t))
            .count();
        assert!(collisions <= 2, "{collisions} collisions");
    }

    #[test]
    fn fsk_roundtrip_clean() {
        let modem = FskModem::new(8);
        let bits = vec![1, 0, 0, 1, 1, 1, 0, 1, 0, 0];
        assert_eq!(modem.demodulate(&modem.modulate(&bits)), bits);
    }

    #[test]
    fn fsk_tones_are_orthogonal() {
        let modem = FskModem::new(8);
        let corr: Complex = (0..8)
            .map(|n| modem.tone(true, n) * modem.tone(false, n).conj())
            .sum();
        assert!(corr.norm() < 1e-10, "tones must be orthogonal: {corr:?}");
    }

    #[test]
    fn fsk_survives_moderate_noise() {
        let mut rng = WlanRng::seed_from_u64(70);
        let modem = FskModem::new(8);
        let bits: Vec<u8> = (0..2000).map(|i| (i % 3 == 0) as u8).collect();
        let mut samples = modem.modulate(&bits);
        // 10 dB per-sample SNR → per-symbol Eb/N0 ≈ 19 dB: essentially error-free.
        for s in samples.iter_mut() {
            *s += wlan_channel::noise::complex_gaussian(&mut rng).scale(0.316);
        }
        let out = modem.demodulate(&samples);
        let errors = out.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert_eq!(errors, 0, "unexpected errors at high SNR");
    }

    #[test]
    fn hopping_confines_jammer_damage() {
        let mut rng = WlanRng::seed_from_u64(71);
        let pattern = HopPattern::new(3);
        // Jam 8 of 79 channels with overwhelming power.
        let jammed: Vec<usize> = (0..8).map(|i| i * 9).collect();
        let (sent, errors) =
            simulate_hopping_link(&pattern, &jammed, 50, 15.0, 100.0, &mut rng);
        let ber = errors as f64 / sent as f64;
        // At most ~8/79 of dwells can be corrupted (and FSK on a jammed tone
        // errs about half the time on average).
        assert!(ber < 0.5 * 8.0 / 79.0 + 0.03, "BER {ber} too high");
        assert!(errors > 0, "the jammer should corrupt the jammed dwells");
    }

    #[test]
    #[should_panic(expected = "pattern index")]
    fn pattern_index_checked() {
        let _ = HopPattern::new(78);
    }
}
