//! The 802.11 distributed coordination function (DCF) and its descendants.
//!
//! PHY rates only matter after the MAC has paid its tolls: DIFS, backoff,
//! preambles, ACKs. This crate models that layer:
//!
//! - [`params`] — per-generation MAC timing (slot, SIFS, CWmin/max,
//!   preamble and header overheads) and frame-duration arithmetic,
//! - [`dcf`] — an event-driven saturated CSMA/CA simulation with binary
//!   exponential backoff, collisions and optional RTS/CTS (experiment E13),
//! - [`bianchi`] — Bianchi's analytic saturation-throughput model, the
//!   cross-check for the simulator,
//! - [`aggregation`] — A-MPDU aggregation with block ACK, the mechanism
//!   that keeps MAC efficiency alive at 802.11n rates (experiment E14),
//! - [`powersave`] — the legacy power-save mode (beacons, TIM, doze/awake
//!   scheduling) feeding the energy models of experiment E12,
//! - [`arq`] — stop-and-wait retransmission with retry limits and the
//!   RTS/CTS protection fallback, over an airtime-driven Gilbert–Elliott
//!   frame-loss channel (experiment E16).
//!
//! # Examples
//!
//! ```
//! use wlan_mac::dcf::{DcfConfig, simulate_dcf};
//! use wlan_mac::params::MacProfile;
//!
//! let cfg = DcfConfig {
//!     profile: MacProfile::dot11a(54.0),
//!     n_stations: 5,
//!     payload_bytes: 1500,
//!     rts_cts: false,
//!     sim_time_us: 100_000.0,
//!     seed: 1,
//! };
//! let out = simulate_dcf(&cfg);
//! assert!(out.throughput_mbps > 10.0);
//! ```

pub mod aggregation;
pub mod arq;
pub mod bianchi;
pub mod dcf;
pub mod params;
pub mod powersave;
pub mod protection;
pub mod traffic;

pub use dcf::{simulate_dcf, DcfConfig, DcfResult};
pub use params::MacProfile;
