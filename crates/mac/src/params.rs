//! MAC timing parameters per 802.11 generation.
//!
//! All durations are in microseconds (µs), the natural MAC unit; the
//! simulators convert to the event kernel's nanoseconds internally.

/// MAC header bytes (3-address data frame) + FCS.
pub const MAC_HEADER_BYTES: usize = 28;
/// ACK frame bytes.
pub const ACK_BYTES: usize = 14;
/// RTS frame bytes.
pub const RTS_BYTES: usize = 20;
/// CTS frame bytes.
pub const CTS_BYTES: usize = 14;

/// Per-generation MAC/PHY timing profile.
///
/// # Examples
///
/// ```
/// use wlan_mac::params::MacProfile;
///
/// let a = MacProfile::dot11a(54.0);
/// assert_eq!(a.difs_us(), 16.0 + 2.0 * 9.0);
/// // A 1500-byte frame at 54 Mbps takes ~250 µs on the air.
/// let d = a.data_frame_us(1500);
/// assert!(d > 200.0 && d < 300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacProfile {
    /// Human-readable generation tag.
    pub name: &'static str,
    /// Slot time in µs.
    pub slot_us: f64,
    /// SIFS in µs.
    pub sifs_us: f64,
    /// Minimum contention window (slots − 1), e.g. 15 or 31.
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
    /// PHY preamble + PLCP header overhead per frame in µs.
    pub phy_overhead_us: f64,
    /// Data rate in Mbps for payload bits.
    pub data_rate_mbps: f64,
    /// Rate used for control frames (ACK/RTS/CTS) in Mbps.
    pub control_rate_mbps: f64,
}

impl MacProfile {
    /// 802.11b DSSS timing (long preamble), data at `rate` Mbps.
    pub fn dot11b(rate: f64) -> Self {
        MacProfile {
            name: "802.11b",
            slot_us: 20.0,
            sifs_us: 10.0,
            cw_min: 31,
            cw_max: 1023,
            phy_overhead_us: 192.0,
            data_rate_mbps: rate,
            control_rate_mbps: 1.0,
        }
    }

    /// 802.11a OFDM timing, data at `rate` Mbps.
    pub fn dot11a(rate: f64) -> Self {
        MacProfile {
            name: "802.11a",
            slot_us: 9.0,
            sifs_us: 16.0,
            cw_min: 15,
            cw_max: 1023,
            phy_overhead_us: 20.0,
            data_rate_mbps: rate,
            control_rate_mbps: 6.0,
        }
    }

    /// 802.11g OFDM timing (short slot, 2.4 GHz SIFS), data at `rate` Mbps.
    pub fn dot11g(rate: f64) -> Self {
        MacProfile {
            name: "802.11g",
            slot_us: 9.0,
            sifs_us: 10.0,
            cw_min: 15,
            cw_max: 1023,
            phy_overhead_us: 20.0,
            data_rate_mbps: rate,
            control_rate_mbps: 6.0,
        }
    }

    /// 802.11n HT timing (greenfield-ish preamble), data at `rate` Mbps.
    pub fn dot11n(rate: f64) -> Self {
        MacProfile {
            name: "802.11n",
            slot_us: 9.0,
            sifs_us: 16.0,
            cw_min: 15,
            cw_max: 1023,
            phy_overhead_us: 36.0,
            data_rate_mbps: rate,
            control_rate_mbps: 24.0,
        }
    }

    /// DIFS = SIFS + 2·slot.
    pub fn difs_us(&self) -> f64 {
        self.sifs_us + 2.0 * self.slot_us
    }

    /// Airtime of a data frame with `payload` bytes (header + payload at the
    /// data rate, plus PHY overhead).
    pub fn data_frame_us(&self, payload: usize) -> f64 {
        self.phy_overhead_us
            + ((MAC_HEADER_BYTES + payload) * 8) as f64 / self.data_rate_mbps
    }

    /// Airtime of an ACK.
    pub fn ack_us(&self) -> f64 {
        self.phy_overhead_us + (ACK_BYTES * 8) as f64 / self.control_rate_mbps
    }

    /// Airtime of an RTS.
    pub fn rts_us(&self) -> f64 {
        self.phy_overhead_us + (RTS_BYTES * 8) as f64 / self.control_rate_mbps
    }

    /// Airtime of a CTS.
    pub fn cts_us(&self) -> f64 {
        self.phy_overhead_us + (CTS_BYTES * 8) as f64 / self.control_rate_mbps
    }

    /// Duration of a successful basic-access exchange
    /// (DATA + SIFS + ACK + DIFS).
    pub fn success_duration_us(&self, payload: usize) -> f64 {
        self.data_frame_us(payload) + self.sifs_us + self.ack_us() + self.difs_us()
    }

    /// Duration wasted by a basic-access collision
    /// (DATA + ACK timeout ≈ DATA + DIFS).
    pub fn collision_duration_us(&self, payload: usize) -> f64 {
        self.data_frame_us(payload) + self.difs_us()
    }

    /// Duration of a successful RTS/CTS exchange.
    pub fn rts_success_duration_us(&self, payload: usize) -> f64 {
        self.rts_us()
            + self.sifs_us
            + self.cts_us()
            + self.sifs_us
            + self.data_frame_us(payload)
            + self.sifs_us
            + self.ack_us()
            + self.difs_us()
    }

    /// Duration wasted by an RTS collision (RTS + CTS timeout ≈ RTS + DIFS).
    pub fn rts_collision_duration_us(&self) -> f64 {
        self.rts_us() + self.difs_us()
    }

    /// The ideal no-contention single-station throughput in Mbps: payload
    /// bits over one full exchange (the MAC-efficiency ceiling of E13/E14).
    pub fn ideal_throughput_mbps(&self, payload: usize) -> f64 {
        (payload * 8) as f64 / self.success_duration_us(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difs_values_match_standard() {
        assert_eq!(MacProfile::dot11b(11.0).difs_us(), 50.0);
        assert_eq!(MacProfile::dot11a(54.0).difs_us(), 34.0);
        assert_eq!(MacProfile::dot11g(54.0).difs_us(), 28.0);
    }

    #[test]
    fn frame_durations_scale_with_rate() {
        let slow = MacProfile::dot11a(6.0).data_frame_us(1500);
        let fast = MacProfile::dot11a(54.0).data_frame_us(1500);
        assert!(slow > fast * 5.0, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn mac_efficiency_collapses_at_high_rate() {
        // The E13 punchline: at 600 Mbps a single 1500-byte frame spends
        // most of its airtime on overhead, so efficiency falls well below
        // 50 %, while at 6 Mbps efficiency is ~90 %.
        let slow = MacProfile::dot11a(6.0);
        let eff_slow = slow.ideal_throughput_mbps(1500) / 6.0;
        let fast = MacProfile::dot11n(600.0);
        let eff_fast = fast.ideal_throughput_mbps(1500) / 600.0;
        assert!(eff_slow > 0.8, "6 Mbps efficiency {eff_slow}");
        assert!(eff_fast < 0.5, "600 Mbps efficiency {eff_fast}");
    }

    #[test]
    fn rts_exchange_is_longer_than_basic() {
        let p = MacProfile::dot11a(54.0);
        assert!(p.rts_success_duration_us(1500) > p.success_duration_us(1500));
        // But an RTS collision is far cheaper than a data collision.
        assert!(p.rts_collision_duration_us() < p.collision_duration_us(1500) / 2.0);
    }

    #[test]
    fn control_frames_use_control_rate() {
        let p = MacProfile::dot11a(54.0);
        // ACK: 20 µs preamble + 14·8/6 ≈ 38.7 µs.
        assert!((p.ack_us() - (20.0 + 112.0 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn dot11b_long_preamble_dominates_short_frames() {
        let p = MacProfile::dot11b(11.0);
        let d = p.data_frame_us(40);
        // 192 µs preamble vs ~49 µs of payload+header.
        assert!(d > 192.0 && d < 260.0);
    }
}
