//! Event-driven simulation of the saturated DCF.
//!
//! `n` stations always have a frame queued (saturation), sense the medium,
//! and contend with binary exponential backoff. In a single collision
//! domain DCF behaviour is exactly captured by the virtual-slot abstraction:
//! after every DIFS-idle boundary each station whose backoff expired
//! transmits; one transmitter is a success, several are a collision. The
//! simulation drives those boundaries through the [`wlan_sim::Scheduler`]
//! so durations stay in real time units, and validates against
//! [Bianchi's model](crate::bianchi) (experiment E13).

use crate::params::MacProfile;
use wlan_math::rng::{Rng, WlanRng};
use wlan_sim::Scheduler;

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcfConfig {
    /// MAC timing profile (includes the PHY rate).
    pub profile: MacProfile,
    /// Number of saturated stations.
    pub n_stations: usize,
    /// Payload bytes per frame.
    pub payload_bytes: usize,
    /// Use RTS/CTS instead of basic access.
    pub rts_cts: bool,
    /// Simulated duration in µs.
    pub sim_time_us: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Aggregate results of a DCF run.
#[derive(Debug, Clone, PartialEq)]
pub struct DcfResult {
    /// Delivered payload throughput in Mbps.
    pub throughput_mbps: f64,
    /// Successful transmissions.
    pub successes: u64,
    /// Collision events (each may involve ≥2 frames).
    pub collisions: u64,
    /// Fraction of transmission attempts that collided.
    pub collision_probability: f64,
    /// Per-station success counts (for fairness analysis).
    pub per_station: Vec<u64>,
    /// Jain fairness index over per-station successes.
    pub fairness: f64,
    /// Events abandoned when the horizon cut the run (from
    /// [`Scheduler::drain_until`]): the run ended mid-backoff, not by
    /// draining naturally, and budgeted campaigns report it as truncation.
    pub truncated_events: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A virtual slot boundary where backoff counters tick.
    SlotBoundary,
}

struct Station {
    backoff: u32,
    stage: u32,
}

/// Runs the saturated-DCF simulation.
///
/// # Panics
///
/// Panics if `n_stations` is zero or `sim_time_us` is not positive.
pub fn simulate_dcf(cfg: &DcfConfig) -> DcfResult {
    assert!(cfg.n_stations > 0, "need at least one station");
    assert!(cfg.sim_time_us > 0.0, "simulation time must be positive");
    let mut rng = WlanRng::seed_from_u64(cfg.seed);
    let p = &cfg.profile;

    let draw = |stage: u32, rng: &mut WlanRng| -> u32 {
        let cw = ((p.cw_min + 1) << stage).min(p.cw_max + 1) - 1;
        rng.gen_range(0..=cw)
    };

    let mut stations: Vec<Station> = (0..cfg.n_stations)
        .map(|_| Station {
            backoff: 0,
            stage: 0,
        })
        .collect();
    for s in stations.iter_mut() {
        s.backoff = draw(0, &mut rng);
    }

    let to_ns = |us: f64| -> u64 { (us * 1000.0).round() as u64 };
    let horizon = to_ns(cfg.sim_time_us);
    let mut sim: Scheduler<Event> = Scheduler::new();
    sim.schedule_in(to_ns(p.difs_us()), Event::SlotBoundary);

    let mut successes = 0u64;
    let mut collisions = 0u64;
    let mut attempts = 0u64;
    let mut colliding_attempts = 0u64;
    let mut idle_slots = 0u64;
    let mut per_station = vec![0u64; cfg.n_stations];

    loop {
        // Peek before popping: a boundary at/past the horizon stays queued
        // so the drain below can report it as truncated work.
        match sim.peek_time() {
            Some(t) if t < horizon => {}
            _ => break,
        }
        let Some((_, Event::SlotBoundary)) = sim.pop() else {
            break;
        };
        let transmitters: Vec<usize> = stations
            .iter()
            .enumerate()
            .filter_map(|(i, s)| (s.backoff == 0).then_some(i))
            .collect();

        if transmitters.is_empty() {
            idle_slots += 1;
            for s in stations.iter_mut() {
                s.backoff -= 1;
            }
            sim.schedule_in(to_ns(p.slot_us), Event::SlotBoundary);
            continue;
        }

        attempts += transmitters.len() as u64;
        let duration_us = if transmitters.len() == 1 {
            successes += 1;
            let i = transmitters[0];
            per_station[i] += 1;
            stations[i].stage = 0;
            stations[i].backoff = draw(0, &mut rng);
            if cfg.rts_cts {
                p.rts_success_duration_us(cfg.payload_bytes)
            } else {
                p.success_duration_us(cfg.payload_bytes)
            }
        } else {
            collisions += 1;
            colliding_attempts += transmitters.len() as u64;
            for &i in &transmitters {
                stations[i].stage = (stations[i].stage + 1).min(10);
                let stage = stations[i].stage;
                stations[i].backoff = draw(stage, &mut rng);
            }
            if cfg.rts_cts {
                p.rts_collision_duration_us()
            } else {
                p.collision_duration_us(cfg.payload_bytes)
            }
        };

        // Stations that did not transmit freeze their counters during the
        // busy period, then resume after it (freeze = no decrement here).
        sim.schedule_in(to_ns(duration_us), Event::SlotBoundary);
    }
    let truncated_events = sim.drain_until(horizon) as u64;

    // Observability totals, recorded once per run (zero cost inside the
    // virtual-slot loop; a few relaxed atomic adds here). Write-only:
    // nothing reads these back into the simulation.
    let obs = wlan_obs::global();
    obs.counter("dcf.backoff_slots").add(idle_slots);
    obs.counter("dcf.attempts").add(attempts);
    obs.counter("dcf.successes").add(successes);
    obs.counter("dcf.collisions").add(collisions);

    let delivered_bits = successes as f64 * (cfg.payload_bytes * 8) as f64;
    let throughput_mbps = delivered_bits / cfg.sim_time_us;
    let sum: f64 = per_station.iter().map(|&x| x as f64).sum();
    let sum_sq: f64 = per_station.iter().map(|&x| (x as f64) * (x as f64)).sum();
    let fairness = if sum_sq > 0.0 {
        sum * sum / (cfg.n_stations as f64 * sum_sq)
    } else {
        1.0
    };

    DcfResult {
        throughput_mbps,
        successes,
        collisions,
        collision_probability: if attempts > 0 {
            colliding_attempts as f64 / attempts as f64
        } else {
            0.0
        },
        per_station,
        fairness,
        truncated_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> DcfConfig {
        DcfConfig {
            profile: MacProfile::dot11a(54.0),
            n_stations: 10,
            payload_bytes: 1500,
            rts_cts: false,
            sim_time_us: 2_000_000.0,
            seed: 7,
        }
    }

    #[test]
    fn single_station_approaches_ideal() {
        let cfg = DcfConfig {
            n_stations: 1,
            ..base_cfg()
        };
        let out = simulate_dcf(&cfg);
        assert_eq!(out.collisions, 0, "one station can never collide");
        let ideal = cfg.profile.ideal_throughput_mbps(cfg.payload_bytes);
        // Only backoff separates it from the ideal: mean CWmin/2 = 7.5 slots
        // of 9 µs per ~335 µs exchange → ≈ 17 % overhead.
        let expected_ratio = {
            let ts = cfg.profile.success_duration_us(cfg.payload_bytes);
            let backoff = cfg.profile.cw_min as f64 / 2.0 * cfg.profile.slot_us;
            ts / (ts + backoff)
        };
        let ratio = out.throughput_mbps / ideal;
        assert!(
            (ratio - expected_ratio).abs() < 0.03,
            "ratio {ratio} vs expected {expected_ratio} (ideal {ideal})"
        );
    }

    #[test]
    fn contention_reduces_throughput() {
        let one = simulate_dcf(&DcfConfig {
            n_stations: 1,
            ..base_cfg()
        });
        let fifty = simulate_dcf(&DcfConfig {
            n_stations: 50,
            ..base_cfg()
        });
        assert!(
            fifty.throughput_mbps < one.throughput_mbps,
            "50 stations {} vs 1 station {}",
            fifty.throughput_mbps,
            one.throughput_mbps
        );
        assert!(fifty.collision_probability > 0.1);
    }

    #[test]
    fn collision_probability_grows_with_stations() {
        let p5 = simulate_dcf(&DcfConfig {
            n_stations: 5,
            ..base_cfg()
        })
        .collision_probability;
        let p30 = simulate_dcf(&DcfConfig {
            n_stations: 30,
            ..base_cfg()
        })
        .collision_probability;
        assert!(p30 > p5, "p(30)={p30} vs p(5)={p5}");
    }

    #[test]
    fn rts_cts_helps_large_frames_under_heavy_contention() {
        let basic = simulate_dcf(&DcfConfig {
            n_stations: 50,
            payload_bytes: 2000,
            ..base_cfg()
        });
        let rts = simulate_dcf(&DcfConfig {
            n_stations: 50,
            payload_bytes: 2000,
            rts_cts: true,
            ..base_cfg()
        });
        assert!(
            rts.throughput_mbps > basic.throughput_mbps,
            "RTS {} vs basic {}",
            rts.throughput_mbps,
            basic.throughput_mbps
        );
    }

    #[test]
    fn dcf_is_fair_over_long_runs() {
        let out = simulate_dcf(&base_cfg());
        assert!(out.fairness > 0.95, "Jain index {}", out.fairness);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate_dcf(&base_cfg());
        let b = simulate_dcf(&base_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn throughput_saturates_with_phy_rate() {
        // E13's second axis: raising the PHY rate 9× (6 → 54) must yield
        // far less than 9× the MAC throughput.
        let slow = simulate_dcf(&DcfConfig {
            profile: MacProfile::dot11a(6.0),
            ..base_cfg()
        });
        let fast = simulate_dcf(&DcfConfig {
            profile: MacProfile::dot11a(54.0),
            ..base_cfg()
        });
        let gain = fast.throughput_mbps / slow.throughput_mbps;
        assert!(gain < 7.0, "9x PHY rate gave {gain}x MAC throughput");
        assert!(gain > 2.0, "rate increase should still help: {gain}x");
    }

    #[test]
    fn horizon_cut_is_reported_not_silent() {
        // A saturated run always has the next slot boundary queued, so the
        // horizon necessarily cuts mid-backoff — and says so.
        let out = simulate_dcf(&base_cfg());
        assert_eq!(out.truncated_events, 1, "abandoned boundary must be counted");
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_rejected() {
        let _ = simulate_dcf(&DcfConfig {
            n_stations: 0,
            ..base_cfg()
        });
    }
}
