//! A-MPDU frame aggregation and block acknowledgement.
//!
//! At 802.11n rates a lone 1500-byte frame is mostly overhead (see
//! [`crate::params`]). Aggregation amortizes the preamble, contention and
//! ACK across many subframes: an A-MPDU carries up to 64 MPDUs, each with a
//! 4-byte delimiter, answered by a single block ACK. Per-subframe CRCs make
//! losses selective — only errored subframes are retransmitted. Experiment
//! E14 sweeps aggregation size at 54 vs 600 Mbps.

use crate::params::{MacProfile, MAC_HEADER_BYTES};
use wlan_math::rng::Rng;

/// MPDU delimiter bytes per subframe.
pub const DELIMITER_BYTES: usize = 4;
/// Block ACK frame bytes.
pub const BLOCK_ACK_BYTES: usize = 32;
/// Maximum subframes per A-MPDU.
pub const MAX_SUBFRAMES: usize = 64;

/// Airtime of an A-MPDU with `n_subframes` payloads of `payload` bytes.
///
/// # Panics
///
/// Panics if `n_subframes` is 0 or exceeds [`MAX_SUBFRAMES`].
pub fn ampdu_duration_us(profile: &MacProfile, n_subframes: usize, payload: usize) -> f64 {
    assert!(
        (1..=MAX_SUBFRAMES).contains(&n_subframes),
        "subframe count must be 1-{MAX_SUBFRAMES}"
    );
    let per_subframe = DELIMITER_BYTES + MAC_HEADER_BYTES + payload;
    profile.phy_overhead_us + (n_subframes * per_subframe * 8) as f64 / profile.data_rate_mbps
}

/// Airtime of the block ACK response.
pub fn block_ack_us(profile: &MacProfile) -> f64 {
    profile.phy_overhead_us + (BLOCK_ACK_BYTES * 8) as f64 / profile.control_rate_mbps
}

/// Throughput of an isolated (no-contention) aggregated exchange in Mbps:
/// `n` payloads delivered per DIFS + A-MPDU + SIFS + block-ACK cycle.
pub fn aggregated_throughput_mbps(
    profile: &MacProfile,
    n_subframes: usize,
    payload: usize,
) -> f64 {
    let cycle = profile.difs_us()
        + ampdu_duration_us(profile, n_subframes, payload)
        + profile.sifs_us
        + block_ack_us(profile);
    (n_subframes * payload * 8) as f64 / cycle
}

/// MAC efficiency: aggregated throughput over the raw PHY rate.
pub fn mac_efficiency(profile: &MacProfile, n_subframes: usize, payload: usize) -> f64 {
    aggregated_throughput_mbps(profile, n_subframes, payload) / profile.data_rate_mbps
}

/// Result of the lossy-aggregation Monte Carlo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationResult {
    /// Goodput in Mbps after selective retransmission.
    pub goodput_mbps: f64,
    /// Average transmissions per delivered subframe.
    pub tx_per_subframe: f64,
}

/// Simulates aggregated transfer of `total_subframes` subframes where each
/// subframe independently fails with probability `subframe_per`, using
/// selective block-ACK retransmission.
///
/// # Panics
///
/// Panics if `subframe_per` is not in `[0, 1)` or sizes are invalid.
pub fn simulate_lossy_aggregation(
    profile: &MacProfile,
    n_subframes: usize,
    payload: usize,
    subframe_per: f64,
    total_subframes: usize,
    rng: &mut impl Rng,
) -> AggregationResult {
    assert!((0.0..1.0).contains(&subframe_per), "PER must be in [0, 1)");
    assert!(total_subframes > 0, "need subframes to send");
    let mut delivered = 0usize;
    let mut transmissions = 0usize;
    let mut airtime_us = 0.0;
    let mut pending = total_subframes;

    while pending > 0 {
        let batch = pending.min(n_subframes);
        airtime_us += profile.difs_us()
            + ampdu_duration_us(profile, batch, payload)
            + profile.sifs_us
            + block_ack_us(profile);
        transmissions += batch;
        let survived = (0..batch).filter(|_| rng.gen::<f64>() >= subframe_per).count();
        delivered += survived;
        pending -= survived;
        // Failed subframes stay pending and ride in the next A-MPDU.
    }

    AggregationResult {
        goodput_mbps: (delivered * payload * 8) as f64 / airtime_us,
        tx_per_subframe: transmissions as f64 / total_subframes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;

    #[test]
    fn aggregation_restores_efficiency_at_high_rate() {
        // E14's headline: at 600 Mbps, 1-subframe efficiency is dismal and
        // 64-subframe aggregation recovers most of the PHY rate.
        let p = MacProfile::dot11n(600.0);
        let single = mac_efficiency(&p, 1, 1500);
        let full = mac_efficiency(&p, 64, 1500);
        assert!(single < 0.35, "single-frame efficiency {single}");
        assert!(full > 0.85, "aggregated efficiency {full}");
    }

    #[test]
    fn aggregation_matters_less_at_54mbps() {
        let p54 = MacProfile::dot11a(54.0);
        let p600 = MacProfile::dot11n(600.0);
        let gain54 = mac_efficiency(&p54, 64, 1500) / mac_efficiency(&p54, 1, 1500);
        let gain600 = mac_efficiency(&p600, 64, 1500) / mac_efficiency(&p600, 1, 1500);
        assert!(
            gain600 > 1.8 * gain54,
            "aggregation gain at 600 Mbps ({gain600:.2}x) must dwarf 54 Mbps ({gain54:.2}x)"
        );
    }

    #[test]
    fn throughput_monotone_in_subframes() {
        let p = MacProfile::dot11n(300.0);
        let mut prev = 0.0;
        for n in [1, 2, 4, 8, 16, 32, 64] {
            let t = aggregated_throughput_mbps(&p, n, 1500);
            assert!(t > prev, "n={n}: {t} not above {prev}");
            prev = t;
        }
    }

    #[test]
    fn lossless_simulation_matches_analytic() {
        let p = MacProfile::dot11n(300.0);
        let mut rng = WlanRng::seed_from_u64(200);
        let sim = simulate_lossy_aggregation(&p, 32, 1500, 0.0, 3200, &mut rng);
        let analytic = aggregated_throughput_mbps(&p, 32, 1500);
        assert!(
            (sim.goodput_mbps - analytic).abs() / analytic < 1e-9,
            "sim {} vs analytic {analytic}",
            sim.goodput_mbps
        );
        assert_eq!(sim.tx_per_subframe, 1.0);
    }

    #[test]
    fn selective_retransmission_costs_match_per() {
        let p = MacProfile::dot11n(300.0);
        let mut rng = WlanRng::seed_from_u64(201);
        let per = 0.2;
        let sim = simulate_lossy_aggregation(&p, 64, 1500, per, 20_000, &mut rng);
        // Expected transmissions per delivered subframe = 1/(1−PER).
        let expected = 1.0 / (1.0 - per);
        assert!(
            (sim.tx_per_subframe - expected).abs() < 0.05,
            "tx/subframe {} vs {expected}",
            sim.tx_per_subframe
        );
    }

    #[test]
    fn losses_reduce_goodput_proportionally() {
        let p = MacProfile::dot11n(300.0);
        let mut rng = WlanRng::seed_from_u64(202);
        let clean = simulate_lossy_aggregation(&p, 32, 1500, 0.0, 6400, &mut rng);
        let lossy = simulate_lossy_aggregation(&p, 32, 1500, 0.3, 6400, &mut rng);
        let ratio = lossy.goodput_mbps / clean.goodput_mbps;
        assert!(
            (ratio - 0.7).abs() < 0.08,
            "goodput ratio {ratio} should track 1−PER"
        );
    }

    #[test]
    #[should_panic(expected = "subframe count")]
    fn subframe_count_checked() {
        let _ = ampdu_duration_us(&MacProfile::dot11n(300.0), 65, 1500);
    }
}
