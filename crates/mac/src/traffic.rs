//! Unsaturated DCF: Poisson traffic below the saturation point.
//!
//! Saturation (every station always backlogged) is the worst case
//! [`crate::dcf`] models; real WLANs mostly run below it. This module adds
//! the offered-load axis: stations receive Poisson frame arrivals, queue
//! them, and contend only while backlogged. The interesting outputs are
//! the delivered-vs-offered curve (linear until the knee, flat after) and
//! the queueing delay exploding at the knee.

use crate::arq::{ArqConfig, FrameLossProcess, GeLossConfig};
use crate::params::MacProfile;
use wlan_math::par;
use wlan_math::rng::{Rng, WlanRng};
use wlan_math::stats::RunningStats;
use std::collections::VecDeque;

/// Configuration of the unsaturated simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// MAC timing profile.
    pub profile: MacProfile,
    /// Number of stations.
    pub n_stations: usize,
    /// Payload bytes per frame.
    pub payload_bytes: usize,
    /// Per-station offered load in frames per second.
    pub arrival_rate_hz: f64,
    /// Simulated time in µs.
    pub sim_time_us: f64,
    /// RNG seed.
    pub seed: u64,
    /// Retransmission policy ([`ArqConfig::disabled`] = drop on loss).
    pub arq: ArqConfig,
    /// Interference-driven frame loss ([`GeLossConfig::clean`] = none;
    /// a clean channel draws no extra RNG values, so results then match
    /// the loss-free simulator bit for bit).
    pub loss: GeLossConfig,
}

/// Results of an unsaturated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficResult {
    /// Offered load in Mbps (arrivals × payload, all stations).
    pub offered_mbps: f64,
    /// Delivered throughput in Mbps.
    pub delivered_mbps: f64,
    /// Mean frame delay (arrival → delivery) in µs.
    pub mean_delay_us: f64,
    /// 95th-percentile delay in µs.
    pub p95_delay_us: f64,
    /// Frames still queued at the end (backlog).
    pub backlog: usize,
    /// Retransmission attempts beyond each frame's first (ARQ work).
    pub retries: u64,
    /// Frames abandoned after exhausting the retry limit (or lost with
    /// ARQ disabled).
    pub dropped: u64,
    /// Transmissions that went out under RTS/CTS protection.
    pub protected_tx: u64,
}

struct Station {
    queue: VecDeque<f64>, // arrival timestamps (µs)
    next_arrival_us: f64,
    backoff: u32,
    stage: u32,
    /// Attempts already spent on the head-of-line frame.
    attempts: u32,
}

/// A [`simulate_traffic`] run with its step accounting: how many
/// contention-loop iterations it took and whether a step budget cut it
/// short of `sim_time_us`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteppedTraffic {
    /// The run's statistics (over the simulated span actually covered).
    pub result: TrafficResult,
    /// Contention-loop iterations executed.
    pub steps: u64,
    /// `true` when `max_steps` ended the run before `sim_time_us` — the
    /// statistics then cover a truncated span and campaign runners must
    /// quarantine or flag the run rather than average it in silently.
    pub truncated: bool,
}

/// Runs the unsaturated-DCF simulation.
///
/// # Panics
///
/// Panics if `n_stations` is zero or rates/times are not positive.
pub fn simulate_traffic(cfg: &TrafficConfig) -> TrafficResult {
    simulate_traffic_stepped(cfg, u64::MAX).result
}

/// [`simulate_traffic`] under a per-run step budget.
///
/// Each iteration of the contention loop (one idle slot, success, or
/// collision) is a step. A pathological configuration — e.g. a loss
/// process that keeps every station in backoff — can make a run's event
/// count explode even though simulated time barely advances; the step
/// budget bounds the work deterministically (steps are simulation events,
/// never wall clock, so truncation is a pure function of the config) and
/// reports the cut instead of wedging a campaign.
///
/// # Panics
///
/// Panics if `n_stations` is zero or rates/times are not positive.
pub fn simulate_traffic_stepped(cfg: &TrafficConfig, max_steps: u64) -> SteppedTraffic {
    assert!(cfg.n_stations > 0, "need at least one station");
    assert!(cfg.arrival_rate_hz > 0.0, "arrival rate must be positive");
    assert!(cfg.sim_time_us > 0.0, "simulation time must be positive");
    let mut rng = WlanRng::seed_from_u64(cfg.seed);
    let p = &cfg.profile;

    let exp_gap = |rng: &mut WlanRng| -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / cfg.arrival_rate_hz * 1e6
    };
    let draw = |stage: u32, rng: &mut WlanRng| -> u32 {
        let cw = ((p.cw_min + 1) << stage).min(p.cw_max + 1) - 1;
        rng.gen_range(0..=cw)
    };

    let mut stations: Vec<Station> = (0..cfg.n_stations)
        .map(|_| Station {
            queue: VecDeque::new(),
            next_arrival_us: 0.0,
            backoff: 0,
            stage: 0,
            attempts: 0,
        })
        .collect();
    for s in stations.iter_mut() {
        s.next_arrival_us = exp_gap(&mut rng);
        s.backoff = draw(0, &mut rng);
    }

    // A clean channel skips the loss chain entirely so the RNG sequence —
    // and therefore every statistic — matches the pre-ARQ simulator.
    let mut loss = (!cfg.loss.is_clean()).then(|| FrameLossProcess::new(cfg.loss));

    let mut now_us = p.difs_us();
    let mut advanced_us = now_us;
    let mut delivered = 0u64;
    let mut retries = 0u64;
    let mut dropped = 0u64;
    let mut protected_tx = 0u64;
    let mut delays = Vec::new();
    let mut steps = 0u64;
    let mut truncated = false;

    while now_us < cfg.sim_time_us {
        if steps >= max_steps {
            truncated = true;
            break;
        }
        steps += 1;
        // Interference bursts evolve with airtime, not with events.
        if let Some(l) = loss.as_mut() {
            l.advance(now_us - advanced_us, &mut rng);
        }
        advanced_us = now_us;

        // Deliver arrivals due by now.
        for s in stations.iter_mut() {
            while s.next_arrival_us <= now_us {
                s.queue.push_back(s.next_arrival_us);
                let arrival = s.next_arrival_us;
                s.next_arrival_us = arrival + exp_gap(&mut rng);
            }
        }

        let contenders: Vec<usize> = stations
            .iter()
            .enumerate()
            .filter_map(|(i, s)| (!s.queue.is_empty() && s.backoff == 0).then_some(i))
            .collect();

        if contenders.is_empty() {
            for s in stations.iter_mut() {
                if !s.queue.is_empty() && s.backoff > 0 {
                    s.backoff -= 1;
                }
            }
            now_us += p.slot_us;
            continue;
        }

        if contenders.len() == 1 {
            let i = contenders[0];
            let s = &mut stations[i];
            let protected = cfg.arq.protects(s.attempts);
            protected_tx += protected as u64;
            let lost = match loss.as_mut() {
                Some(l) => l.frame_lost(&mut rng),
                None => false,
            };
            if !lost {
                // Contenders have nonempty queues by construction; an
                // empty queue here would be a scheduler bug, and treating
                // the frame as arriving "now" (zero queueing delay) keeps
                // the sim running instead of aborting the whole ensemble.
                let arrival = s.queue.pop_front().unwrap_or(now_us);
                now_us += if protected {
                    p.rts_success_duration_us(cfg.payload_bytes)
                } else {
                    p.success_duration_us(cfg.payload_bytes)
                };
                delivered += 1;
                delays.push(now_us - arrival);
                s.stage = 0;
                s.attempts = 0;
                s.backoff = draw(0, &mut rng);
            } else {
                // A burst ate the frame. Under protection only the short
                // RTS burned; unprotected, the full data frame plus its
                // ACK timeout are gone.
                now_us += if protected {
                    p.rts_collision_duration_us()
                } else {
                    p.collision_duration_us(cfg.payload_bytes)
                };
                if cfg.arq.enabled && s.attempts < cfg.arq.max_retries {
                    retries += 1;
                    s.attempts += 1;
                    s.stage = (s.stage + 1).min(10);
                } else {
                    s.queue.pop_front();
                    dropped += 1;
                    s.attempts = 0;
                    s.stage = 0;
                }
                let stage = s.stage;
                s.backoff = draw(stage, &mut rng);
            }
        } else {
            // Collision. The channel is busy for the longest participant:
            // only when every contender sent a protected probe is the
            // damage limited to RTS length.
            let all_protected = cfg.arq.enabled
                && contenders.iter().all(|&i| cfg.arq.protects(stations[i].attempts));
            for &i in &contenders {
                let s = &mut stations[i];
                protected_tx += cfg.arq.protects(s.attempts) as u64;
                if cfg.arq.enabled {
                    // The retry counter also ticks on collisions; past the
                    // limit the frame is abandoned like a real MAC would.
                    if s.attempts < cfg.arq.max_retries {
                        s.attempts += 1;
                    } else {
                        s.queue.pop_front();
                        dropped += 1;
                        s.attempts = 0;
                        s.stage = 0;
                        s.backoff = draw(0, &mut rng);
                        continue;
                    }
                }
                s.stage = (s.stage + 1).min(10);
                let stage = s.stage;
                s.backoff = draw(stage, &mut rng);
            }
            now_us += if all_protected {
                p.rts_collision_duration_us()
            } else {
                p.collision_duration_us(cfg.payload_bytes)
            };
        }
    }

    delays.sort_by(|a, b| a.total_cmp(b));
    let mean_delay_us = if delays.is_empty() {
        0.0
    } else {
        delays.iter().sum::<f64>() / delays.len() as f64
    };
    let p95_delay_us = delays
        .get((delays.len() as f64 * 0.95) as usize)
        .copied()
        .unwrap_or(mean_delay_us);
    let backlog = stations.iter().map(|s| s.queue.len()).sum();

    // Observability totals, recorded once per run: ARQ retries, retry-
    // budget drops, RTS/CTS-protected transmissions and delivered
    // frames. Write-only — never read back into the simulation.
    let obs = wlan_obs::global();
    obs.counter("mac.delivered").add(delivered);
    obs.counter("mac.retries").add(retries);
    obs.counter("mac.dropped").add(dropped);
    obs.counter("mac.protected_tx").add(protected_tx);

    // A truncated run only simulated up to `now_us`; normalizing by the
    // full requested span would understate throughput on top of the cut.
    let spanned_us = if truncated { now_us } else { cfg.sim_time_us };
    let result = TrafficResult {
        offered_mbps: cfg.n_stations as f64
            * cfg.arrival_rate_hz
            * (cfg.payload_bytes * 8) as f64
            / 1e6,
        delivered_mbps: delivered as f64 * (cfg.payload_bytes * 8) as f64 / spanned_us,
        mean_delay_us,
        p95_delay_us,
        backlog,
        retries,
        dropped,
        protected_tx,
    };
    SteppedTraffic {
        result,
        steps,
        truncated,
    }
}

/// The seed run `r` of a `master_seed`-keyed ensemble uses: run streams
/// are forked off the master seed by run index, so the set of per-run
/// results is a pure function of `(cfg, runs)` and adding runs never
/// perturbs earlier ones. Shared by [`simulate_traffic_multi`] and the
/// campaign runner so both address bit-identical per-run streams — and so
/// a quarantined run can be replayed from `(master_seed, r)` alone.
pub fn ensemble_seed(master_seed: u64, run: usize) -> u64 {
    WlanRng::seed_from_u64(master_seed).fork(run as u64).seed()
}

/// Statistics over an ensemble of independently seeded traffic runs.
///
/// One event-driven run is inherently serial; confidence comes from many
/// runs. The ensemble is the parallel unit: run `r` uses the seed of
/// `master.fork(r)`, so the result set is a pure function of
/// `(cfg, runs)` — independent of thread count and of run completion
/// order — and adding runs never perturbs earlier ones.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficEnsemble {
    /// Per-run results, in run (stream-id) order.
    pub runs: Vec<TrafficResult>,
    /// Delivered throughput across runs (Mbps).
    pub delivered_mbps: RunningStats,
    /// Mean frame delay across runs (µs).
    pub mean_delay_us: RunningStats,
    /// Dropped frames across runs.
    pub dropped: RunningStats,
}

/// Runs `runs` independently seeded copies of [`simulate_traffic`] on the
/// `WLAN_THREADS` pool and aggregates them.
///
/// Run `r` replaces `cfg.seed` with `WlanRng::seed_from_u64(cfg.seed)
/// .fork(r).seed()`; statistics are folded in run order, so the ensemble
/// is bit-identical at any thread count.
///
/// # Panics
///
/// Panics if `runs` is zero, or on any [`simulate_traffic`] precondition.
pub fn simulate_traffic_multi(cfg: &TrafficConfig, runs: usize) -> TrafficEnsemble {
    assert!(runs > 0, "need at least one run");
    let seeds: Vec<u64> = (0..runs).map(|r| ensemble_seed(cfg.seed, r)).collect();
    let results = par::parallel_map(&seeds, |_, &seed| {
        simulate_traffic(&TrafficConfig { seed, ..*cfg })
    });
    let mut delivered_mbps = RunningStats::new();
    let mut mean_delay_us = RunningStats::new();
    let mut dropped = RunningStats::new();
    for r in &results {
        delivered_mbps.push(r.delivered_mbps);
        mean_delay_us.push(r.mean_delay_us);
        dropped.push(r.dropped as f64);
    }
    TrafficEnsemble {
        runs: results,
        delivered_mbps,
        mean_delay_us,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcf::{simulate_dcf, DcfConfig};

    fn cfg(rate_hz: f64) -> TrafficConfig {
        TrafficConfig {
            profile: MacProfile::dot11a(54.0),
            n_stations: 10,
            payload_bytes: 1500,
            arrival_rate_hz: rate_hz,
            // Long enough that Poisson arrival noise (~1/sqrt(N)) sits well
            // inside the 5% delivered-vs-offered tolerance below.
            sim_time_us: 12_000_000.0,
            seed: 77,
            arq: ArqConfig::disabled(),
            loss: GeLossConfig::clean(),
        }
    }

    #[test]
    fn light_load_is_delivered_in_full() {
        // 10 stations × 20 f/s × 12 kbit = 2.4 Mbps offered, far below
        // capacity: everything gets through with low delay.
        let out = simulate_traffic(&cfg(20.0));
        assert!(
            (out.delivered_mbps / out.offered_mbps - 1.0).abs() < 0.05,
            "delivered {} vs offered {}",
            out.delivered_mbps,
            out.offered_mbps
        );
        assert!(out.mean_delay_us < 2_000.0, "delay {}", out.mean_delay_us);
        assert!(out.backlog < 5);
    }

    #[test]
    fn overload_saturates_at_dcf_capacity() {
        // 10 stations × 300 f/s = 36 Mbps offered ≫ capacity: delivery must
        // pin near the saturation throughput from the DCF simulator.
        let out = simulate_traffic(&cfg(300.0));
        let sat = simulate_dcf(&DcfConfig {
            profile: MacProfile::dot11a(54.0),
            n_stations: 10,
            payload_bytes: 1500,
            rts_cts: false,
            sim_time_us: 3_000_000.0,
            seed: 77,
        });
        let ratio = out.delivered_mbps / sat.throughput_mbps;
        assert!(
            (0.85..=1.1).contains(&ratio),
            "unsaturated-overload {} vs saturation {}",
            out.delivered_mbps,
            sat.throughput_mbps
        );
        assert!(out.backlog > 100, "queues must blow up: {}", out.backlog);
    }

    #[test]
    fn delay_explodes_at_the_knee() {
        let light = simulate_traffic(&cfg(20.0));
        let heavy = simulate_traffic(&cfg(300.0));
        assert!(
            heavy.mean_delay_us > 20.0 * light.mean_delay_us,
            "heavy {} vs light {}",
            heavy.mean_delay_us,
            light.mean_delay_us
        );
        assert!(heavy.p95_delay_us >= heavy.mean_delay_us * 0.5);
    }

    #[test]
    fn delivered_increases_with_offered_until_knee() {
        let mut prev = 0.0;
        for rate in [10.0, 50.0, 100.0] {
            let out = simulate_traffic(&cfg(rate));
            assert!(out.delivered_mbps >= prev - 0.2, "rate {rate}");
            prev = out.delivered_mbps;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_traffic(&cfg(50.0));
        let b = simulate_traffic(&cfg(50.0));
        assert_eq!(a, b);
    }

    #[test]
    fn clean_channel_never_retries_or_drops() {
        let out = simulate_traffic(&TrafficConfig {
            arq: ArqConfig::basic(),
            ..cfg(50.0)
        });
        assert_eq!(out.retries, 0);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.protected_tx, 0);
    }

    #[test]
    fn bursty_loss_without_arq_drops_frames() {
        let out = simulate_traffic(&TrafficConfig {
            loss: GeLossConfig::bursty(),
            sim_time_us: 3_000_000.0,
            ..cfg(100.0)
        });
        assert!(out.dropped > 0, "unprotected losses must drop frames");
        assert_eq!(out.retries, 0, "ARQ disabled");
        let clean = simulate_traffic(&TrafficConfig {
            sim_time_us: 3_000_000.0,
            ..cfg(100.0)
        });
        assert!(
            out.delivered_mbps < clean.delivered_mbps,
            "bursts must cost goodput: {} vs {}",
            out.delivered_mbps,
            clean.delivered_mbps
        );
    }

    #[test]
    fn arq_recovers_goodput_under_bursts() {
        let lossy = |arq: ArqConfig| {
            simulate_traffic(&TrafficConfig {
                arq,
                loss: GeLossConfig::bursty(),
                sim_time_us: 3_000_000.0,
                ..cfg(100.0)
            })
        };
        let none = lossy(ArqConfig::disabled());
        let basic = lossy(ArqConfig::basic());
        assert!(basic.retries > 0, "retries must happen under loss");
        assert!(
            basic.delivered_mbps > none.delivered_mbps,
            "ARQ {} vs none {}",
            basic.delivered_mbps,
            none.delivered_mbps
        );
        assert!(
            basic.dropped < none.dropped,
            "retry limit must save frames: {} vs {}",
            basic.dropped,
            none.dropped
        );
    }

    #[test]
    fn rts_fallback_engages_and_limits_burst_damage() {
        let lossy = |arq: ArqConfig| {
            simulate_traffic(&TrafficConfig {
                arq,
                loss: GeLossConfig::bursty(),
                sim_time_us: 3_000_000.0,
                ..cfg(100.0)
            })
        };
        let basic = lossy(ArqConfig::basic());
        let rts = lossy(ArqConfig::with_rts_fallback(1));
        assert!(rts.protected_tx > 0, "fallback must engage under bursts");
        assert_eq!(basic.protected_tx, 0);
        // Retried frames now burn a short RTS inside bursts instead of a
        // full data frame, so delivery must not get materially worse.
        assert!(
            rts.delivered_mbps > 0.9 * basic.delivered_mbps,
            "RTS fallback {} vs basic ARQ {}",
            rts.delivered_mbps,
            basic.delivered_mbps
        );
    }

    #[test]
    fn ensemble_is_thread_count_invariant() {
        // The parallel unit is the run: any thread count must reproduce
        // the same per-run results and the same fold, bit for bit.
        let base = TrafficConfig {
            sim_time_us: 400_000.0,
            ..cfg(80.0)
        };
        let runs = 4;
        let serial: Vec<TrafficResult> = (0..runs)
            .map(|r| {
                let seed = WlanRng::seed_from_u64(base.seed).fork(r as u64).seed();
                simulate_traffic(&TrafficConfig { seed, ..base })
            })
            .collect();
        let ensemble = simulate_traffic_multi(&base, runs);
        assert_eq!(ensemble.runs, serial);
        assert_eq!(simulate_traffic_multi(&base, runs), ensemble);
        assert_eq!(ensemble.delivered_mbps.count(), runs as u64);
        assert!(!ensemble.delivered_mbps.variance().is_nan());
    }

    #[test]
    fn ensemble_runs_are_decorrelated_but_consistent() {
        let base = TrafficConfig {
            sim_time_us: 400_000.0,
            ..cfg(80.0)
        };
        let e = simulate_traffic_multi(&base, 3);
        // Independent seeds: the delay statistic varies across runs...
        assert!(e.runs.windows(2).any(|w| w[0] != w[1]), "runs must differ");
        // ...but every run sees the same offered load and a sane delivery.
        for r in &e.runs {
            assert_eq!(r.offered_mbps, e.runs[0].offered_mbps);
            assert!((r.delivered_mbps / r.offered_mbps - 1.0).abs() < 0.1);
        }
    }

    #[test]
    fn step_budget_truncates_deterministically_and_reports_it() {
        let base = cfg(50.0);
        let full = simulate_traffic_stepped(&base, u64::MAX);
        assert!(!full.truncated);
        assert!(full.steps > 1000, "a 12 s run takes many steps: {}", full.steps);
        assert_eq!(full.result, simulate_traffic(&base), "uncapped = legacy");
        let cut = simulate_traffic_stepped(&base, 500);
        assert!(cut.truncated, "500 steps cannot cover 12 s");
        assert_eq!(cut.steps, 500);
        assert_eq!(
            cut,
            simulate_traffic_stepped(&base, 500),
            "truncation is a pure function of the config"
        );
        // Throughput is normalized over the span actually simulated, so a
        // truncated light-load run still shows sane delivery.
        assert!(
            (cut.result.delivered_mbps / cut.result.offered_mbps - 1.0).abs() < 0.3,
            "delivered {} vs offered {}",
            cut.result.delivered_mbps,
            cut.result.offered_mbps
        );
    }

    #[test]
    fn ensemble_seed_matches_multi_derivation() {
        let base = TrafficConfig {
            sim_time_us: 200_000.0,
            ..cfg(80.0)
        };
        let e = simulate_traffic_multi(&base, 3);
        for (r, res) in e.runs.iter().enumerate() {
            let seed = ensemble_seed(base.seed, r);
            assert_eq!(*res, simulate_traffic(&TrafficConfig { seed, ..base }));
        }
    }

    #[test]
    fn lossy_results_are_deterministic_per_seed() {
        let run = || {
            simulate_traffic(&TrafficConfig {
                arq: ArqConfig::with_rts_fallback(1),
                loss: GeLossConfig::bursty(),
                sim_time_us: 2_000_000.0,
                ..cfg(80.0)
            })
        };
        assert_eq!(run(), run());
    }
}
