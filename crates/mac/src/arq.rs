//! Stop-and-wait ARQ: retry limits, backoff escalation and the RTS/CTS
//! fallback that rescues goodput under bursty interference.
//!
//! The DCF simulators in [`crate::dcf`] and [`crate::traffic`] treat the
//! channel as error-free: the only way to lose a frame is a collision.
//! Real 2.4/5 GHz channels also *erase* frames — microwave ovens, radar
//! bursts and co-channel interferers corrupt whole frames regardless of
//! contention. This module adds the two MAC answers 802.11 gives:
//!
//! 1. **Retransmission** (the retry counters of §9.3.4): a lost frame is
//!    retried up to a retry limit, escalating the contention-window stage
//!    exactly as a collision would, before being dropped.
//! 2. **Protection fallback**: after a configurable number of consecutive
//!    failures the station precedes the retry with an RTS/CTS exchange,
//!    so a burst now corrupts a 20-byte RTS instead of a 1500-byte data
//!    frame — the airtime-economics argument of experiment E16.
//!
//! Burst losses follow the same Gilbert–Elliott chain the PHY fault
//! injectors use ([`wlan_fault::GeProcess`]), discretised over airtime so
//! the loss state evolves while frames are on the air.

use wlan_fault::{GeParams, GeProcess};
use wlan_math::rng::{Rng, WlanRng};

/// Retry policy of a station's transmit queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArqConfig {
    /// Retransmissions allowed after the first attempt; 0 with `enabled`
    /// means drop on first loss.
    pub max_retries: u32,
    /// Attempt index (0-based) from which RTS/CTS protection is used;
    /// `u32::MAX` disables the fallback.
    pub rts_cts_after: u32,
    /// Master switch; disabled means every loss is a drop.
    pub enabled: bool,
}

impl ArqConfig {
    /// No retransmission at all: a lost frame is gone.
    pub fn disabled() -> Self {
        ArqConfig {
            max_retries: 0,
            rts_cts_after: u32::MAX,
            enabled: false,
        }
    }

    /// Plain retransmission with the 802.11 long-retry default of 7
    /// attempts, never falling back to RTS/CTS.
    pub fn basic() -> Self {
        ArqConfig {
            max_retries: 6,
            rts_cts_after: u32::MAX,
            enabled: true,
        }
    }

    /// Retransmission that arms RTS/CTS protection from the given attempt
    /// index onward (e.g. 1 = every retry is protected).
    pub fn with_rts_fallback(rts_cts_after: u32) -> Self {
        ArqConfig {
            max_retries: 6,
            rts_cts_after,
            enabled: true,
        }
    }

    /// Whether the attempt with this 0-based index transmits under
    /// RTS/CTS protection.
    pub fn protects(&self, attempt: u32) -> bool {
        self.enabled && attempt >= self.rts_cts_after
    }
}

/// A Gilbert–Elliott frame-loss channel expressed in airtime.
///
/// `mean_good_us`/`mean_bad_us` are the expected dwell times of the two
/// states; while *good*, frames are lost with probability `loss_good`,
/// while *bad* with `loss_bad`. The chain is advanced in `step_us`
/// increments as simulated time passes, so long frames straddle bursts
/// the same way short ones dodge them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeLossConfig {
    /// Mean dwell in the good state, µs.
    pub mean_good_us: f64,
    /// Mean dwell in the bad (burst) state, µs.
    pub mean_bad_us: f64,
    /// Per-frame loss probability in the good state.
    pub loss_good: f64,
    /// Per-frame loss probability in the bad state.
    pub loss_bad: f64,
    /// Discretisation step for advancing the chain, µs.
    pub step_us: f64,
}

impl GeLossConfig {
    /// A loss-free channel: the simulator draws nothing and behaves
    /// bit-identically to the pre-ARQ code.
    pub fn clean() -> Self {
        GeLossConfig {
            mean_good_us: 1.0,
            mean_bad_us: 1.0,
            loss_good: 0.0,
            loss_bad: 0.0,
            step_us: 100.0,
        }
    }

    /// A microwave-oven-style duty cycle: ~9 ms bursts every ~20 ms that
    /// kill almost every overlapping frame, while the good state is
    /// nearly clean.
    pub fn bursty() -> Self {
        GeLossConfig {
            mean_good_us: 12_000.0,
            mean_bad_us: 8_000.0,
            loss_good: 0.02,
            loss_bad: 0.9,
            step_us: 100.0,
        }
    }

    /// True when no frame can ever be lost (the simulator then skips the
    /// chain entirely, preserving the RNG draw sequence of loss-free
    /// configurations).
    pub fn is_clean(&self) -> bool {
        self.loss_good == 0.0 && self.loss_bad == 0.0
    }
}

/// Runtime state of the airtime-driven Gilbert–Elliott loss channel.
#[derive(Debug, Clone)]
pub struct FrameLossProcess {
    cfg: GeLossConfig,
    ge: GeProcess,
    /// Airtime carried over that has not yet filled a whole step.
    residual_us: f64,
}

impl FrameLossProcess {
    /// Builds the process from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if dwell times or the step are not positive and finite, or
    /// loss probabilities are outside `[0, 1]`.
    pub fn new(cfg: GeLossConfig) -> Self {
        assert!(
            cfg.mean_good_us > 0.0 && cfg.mean_good_us.is_finite(),
            "good dwell must be positive"
        );
        assert!(
            cfg.mean_bad_us > 0.0 && cfg.mean_bad_us.is_finite(),
            "bad dwell must be positive"
        );
        assert!(
            cfg.step_us > 0.0 && cfg.step_us.is_finite(),
            "step must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.loss_good) && (0.0..=1.0).contains(&cfg.loss_bad),
            "loss probabilities must lie in [0, 1]"
        );
        // Per-step transition probabilities, clamped into the open-unit
        // interval GeParams demands even when a dwell is shorter than the
        // step.
        let p_gb = (cfg.step_us / cfg.mean_good_us).min(1.0);
        let p_bg = (cfg.step_us / cfg.mean_bad_us).min(1.0);
        let ge = GeProcess::new(GeParams::new(p_gb, p_bg));
        FrameLossProcess {
            cfg,
            ge,
            residual_us: 0.0,
        }
    }

    /// Advances the chain by `dt_us` of simulated time.
    pub fn advance(&mut self, dt_us: f64, rng: &mut WlanRng) {
        self.residual_us += dt_us.max(0.0);
        while self.residual_us >= self.cfg.step_us {
            self.residual_us -= self.cfg.step_us;
            self.ge.step(rng);
        }
    }

    /// Whether the chain currently sits in the burst state.
    pub fn in_burst(&self) -> bool {
        self.ge.is_bad()
    }

    /// Draws whether a frame transmitted now is lost (one RNG draw).
    pub fn frame_lost(&mut self, rng: &mut WlanRng) -> bool {
        let p = if self.ge.is_bad() {
            self.cfg.loss_bad
        } else {
            self.cfg.loss_good
        };
        rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_never_loses() {
        let mut p = FrameLossProcess::new(GeLossConfig::clean());
        let mut rng = WlanRng::seed_from_u64(3);
        for _ in 0..1000 {
            p.advance(250.0, &mut rng);
            assert!(!p.frame_lost(&mut rng));
        }
    }

    #[test]
    fn bursty_channel_loses_in_bursts() {
        let mut p = FrameLossProcess::new(GeLossConfig::bursty());
        let mut rng = WlanRng::seed_from_u64(9);
        let mut lost_in_burst = 0u32;
        let mut lost_in_good = 0u32;
        let mut bursts = 0u32;
        for _ in 0..20_000 {
            p.advance(100.0, &mut rng);
            let burst = p.in_burst();
            bursts += burst as u32;
            if p.frame_lost(&mut rng) {
                if burst {
                    lost_in_burst += 1;
                } else {
                    lost_in_good += 1;
                }
            }
        }
        assert!(bursts > 1000, "chain must visit the burst state: {bursts}");
        assert!(
            lost_in_burst > 10 * lost_in_good.max(1),
            "losses concentrate in bursts: {lost_in_burst} vs {lost_in_good}"
        );
    }

    #[test]
    fn burst_dwell_matches_configuration() {
        let cfg = GeLossConfig::bursty();
        let mut p = FrameLossProcess::new(cfg);
        let mut rng = WlanRng::seed_from_u64(21);
        let mut in_burst = 0u64;
        let n = 200_000u64;
        for _ in 0..n {
            p.advance(cfg.step_us, &mut rng);
            in_burst += p.in_burst() as u64;
        }
        let expect = cfg.mean_bad_us / (cfg.mean_good_us + cfg.mean_bad_us);
        let got = in_burst as f64 / n as f64;
        assert!(
            (got - expect).abs() < 0.1 * expect,
            "burst fraction {got} vs stationary {expect}"
        );
    }

    #[test]
    fn protection_arms_at_the_configured_attempt() {
        let arq = ArqConfig::with_rts_fallback(2);
        assert!(!arq.protects(0));
        assert!(!arq.protects(1));
        assert!(arq.protects(2));
        assert!(arq.protects(6));
        assert!(!ArqConfig::basic().protects(6));
        assert!(!ArqConfig::disabled().protects(0));
    }

    #[test]
    fn residual_airtime_accumulates_across_advances() {
        let cfg = GeLossConfig {
            step_us: 100.0,
            ..GeLossConfig::bursty()
        };
        let mut a = FrameLossProcess::new(cfg);
        let mut b = FrameLossProcess::new(cfg);
        let mut rng_a = WlanRng::seed_from_u64(5);
        let mut rng_b = WlanRng::seed_from_u64(5);
        // 4 × 50 µs must step the chain exactly as often as 1 × 200 µs.
        for _ in 0..4 {
            a.advance(50.0, &mut rng_a);
        }
        b.advance(200.0, &mut rng_b);
        assert_eq!(a.in_burst(), b.in_burst());
        assert_eq!(rng_a.next_f64(), rng_b.next_f64(), "same draw count");
    }

    #[test]
    #[should_panic(expected = "loss probabilities")]
    fn invalid_loss_probability_is_rejected() {
        FrameLossProcess::new(GeLossConfig {
            loss_bad: 1.5,
            ..GeLossConfig::bursty()
        });
    }
}
