//! ERP protection: the price 802.11g paid to share 2.4 GHz with 802.11b.
//!
//! The paper notes OFDM "was allowed into the 2.4 GHz band and was
//! standardized as 802.11g" — but legacy DSSS stations cannot hear OFDM
//! preambles, so a mixed cell forces every OFDM exchange to be announced
//! with a DSSS-rate CTS-to-self (or RTS/CTS). This module quantifies the
//! famous result: one 802.11b station in the cell roughly halves 802.11g
//! throughput.
//!
//! Each quantity ships in two forms: a `try_*` function returning a typed
//! [`WlanError`] on degenerate inputs (zero payload, nonpositive or
//! non-finite rates) for programmatic callers like the city simulator, and
//! a legacy panicking wrapper whose input contract is documented under
//! `# Panics`. Neither form can silently return NaN/∞: every input that
//! would is rejected up front. A DSSS CTS rate *faster* than the g data
//! rate is unusual but physically meaningful (11 Mbps CCK CTS protecting a
//! 6 Mbps OFDM frame) and is deliberately allowed — the overhead formula
//! stays well-defined and the penalty just shrinks.

use crate::params::{MacProfile, CTS_BYTES};
use wlan_math::WlanError;

fn validate_dsss_rate(dsss_rate_mbps: f64) -> Result<(), WlanError> {
    if !(dsss_rate_mbps > 0.0 && dsss_rate_mbps.is_finite()) {
        return Err(WlanError::InvalidConfig(
            "DSSS CTS rate must be positive and finite",
        ));
    }
    Ok(())
}

fn validate_erp(
    g_rate_mbps: f64,
    payload: usize,
    dsss_cts_rate_mbps: f64,
) -> Result<(), WlanError> {
    if payload == 0 {
        return Err(WlanError::InvalidConfig("payload must be nonempty"));
    }
    if !(g_rate_mbps > 0.0 && g_rate_mbps.is_finite()) {
        return Err(WlanError::InvalidConfig(
            "g rate must be positive and finite",
        ));
    }
    validate_dsss_rate(dsss_cts_rate_mbps)
}

/// Post-validation CTS-to-self arithmetic shared by both entry points.
fn cts_overhead_core(dsss_rate_mbps: f64) -> f64 {
    let b = MacProfile::dot11b(dsss_rate_mbps);
    // CTS at the DSSS rate with the long PLCP preamble, then SIFS before
    // the protected OFDM exchange.
    b.phy_overhead_us + (CTS_BYTES * 8) as f64 / dsss_rate_mbps + b.sifs_us
}

/// Post-validation throughput arithmetic shared by both entry points.
fn erp_core(g_rate_mbps: f64, payload: usize, protection: bool, dsss_cts_rate_mbps: f64) -> f64 {
    let g = MacProfile::dot11g(g_rate_mbps);
    let mut cycle = g.difs_us() + g.data_frame_us(payload) + g.sifs_us + g.ack_us();
    if protection {
        cycle += cts_overhead_core(dsss_cts_rate_mbps);
    }
    (payload * 8) as f64 / cycle
}

/// Airtime of the DSSS-rate CTS-to-self announcement plus its SIFS, in µs.
///
/// Uses the 802.11b long-preamble profile at the given DSSS control rate.
///
/// # Errors
///
/// [`WlanError::InvalidConfig`] if the rate is nonpositive, infinite, or
/// NaN (which would otherwise yield an infinite or NaN airtime).
pub fn try_cts_to_self_overhead_us(dsss_rate_mbps: f64) -> Result<f64, WlanError> {
    validate_dsss_rate(dsss_rate_mbps)?;
    Ok(cts_overhead_core(dsss_rate_mbps))
}

/// Panicking form of [`try_cts_to_self_overhead_us`].
///
/// # Panics
///
/// Panics if the rate is nonpositive, infinite, or NaN.
pub fn cts_to_self_overhead_us(dsss_rate_mbps: f64) -> f64 {
    assert!(
        dsss_rate_mbps > 0.0 && dsss_rate_mbps.is_finite(),
        "DSSS CTS rate must be positive and finite"
    );
    cts_overhead_core(dsss_rate_mbps)
}

/// Single-station (no-contention) 802.11g throughput in Mbps with or
/// without protection.
///
/// # Errors
///
/// [`WlanError::InvalidConfig`] if `payload` is zero or either rate is
/// nonpositive, infinite, or NaN.
pub fn try_erp_throughput_mbps(
    g_rate_mbps: f64,
    payload: usize,
    protection: bool,
    dsss_cts_rate_mbps: f64,
) -> Result<f64, WlanError> {
    validate_erp(g_rate_mbps, payload, dsss_cts_rate_mbps)?;
    Ok(erp_core(g_rate_mbps, payload, protection, dsss_cts_rate_mbps))
}

/// Panicking form of [`try_erp_throughput_mbps`].
///
/// # Panics
///
/// Panics if `payload` is zero or either rate is nonpositive, infinite,
/// or NaN.
pub fn erp_throughput_mbps(
    g_rate_mbps: f64,
    payload: usize,
    protection: bool,
    dsss_cts_rate_mbps: f64,
) -> f64 {
    assert!(payload > 0, "payload must be nonempty");
    assert!(
        g_rate_mbps > 0.0 && g_rate_mbps.is_finite(),
        "g rate must be positive and finite"
    );
    assert!(
        dsss_cts_rate_mbps > 0.0 && dsss_cts_rate_mbps.is_finite(),
        "DSSS CTS rate must be positive and finite"
    );
    erp_core(g_rate_mbps, payload, protection, dsss_cts_rate_mbps)
}

/// The protection penalty: protected / unprotected throughput (≤ 1).
///
/// # Errors
///
/// [`WlanError::InvalidConfig`] on the same inputs
/// [`try_erp_throughput_mbps`] rejects. With valid inputs both cycle
/// times are finite and positive, so the ratio is always a finite value
/// in `(0, 1]`.
pub fn try_protection_penalty(
    g_rate_mbps: f64,
    payload: usize,
    dsss_cts_rate_mbps: f64,
) -> Result<f64, WlanError> {
    validate_erp(g_rate_mbps, payload, dsss_cts_rate_mbps)?;
    Ok(erp_core(g_rate_mbps, payload, true, dsss_cts_rate_mbps)
        / erp_core(g_rate_mbps, payload, false, dsss_cts_rate_mbps))
}

/// Panicking form of [`try_protection_penalty`].
///
/// # Panics
///
/// Panics if `payload` is zero or either rate is nonpositive, infinite,
/// or NaN.
pub fn protection_penalty(g_rate_mbps: f64, payload: usize, dsss_cts_rate_mbps: f64) -> f64 {
    erp_throughput_mbps(g_rate_mbps, payload, true, dsss_cts_rate_mbps)
        / erp_throughput_mbps(g_rate_mbps, payload, false, dsss_cts_rate_mbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cts_overhead_is_dominated_by_the_long_preamble() {
        // 192 µs preamble + 112 bits at 1 Mbps + 10 µs SIFS ≈ 314 µs.
        let o = cts_to_self_overhead_us(1.0);
        assert!((o - 314.0).abs() < 1.0, "overhead {o}");
        // At 11 Mbps the preamble still dominates.
        assert!(cts_to_self_overhead_us(11.0) > 200.0);
    }

    #[test]
    fn protection_roughly_halves_54mbps_short_frames() {
        // The classic mixed-cell number: small/medium frames at 54 Mbps
        // lose ~40-60 % to a 1 Mbps CTS-to-self.
        let penalty = protection_penalty(54.0, 500, 1.0);
        assert!(
            penalty > 0.25 && penalty < 0.6,
            "penalty {penalty} out of the expected band"
        );
    }

    #[test]
    fn penalty_shrinks_for_large_frames_and_fast_cts() {
        let small = protection_penalty(54.0, 250, 1.0);
        let large = protection_penalty(54.0, 2000, 1.0);
        assert!(large > small, "amortization over frame size");
        let fast_cts = protection_penalty(54.0, 500, 11.0);
        let slow_cts = protection_penalty(54.0, 500, 1.0);
        assert!(fast_cts > slow_cts, "11 Mbps CTS hurts less");
    }

    #[test]
    fn penalty_negligible_at_low_g_rates() {
        // A 6 Mbps OFDM frame is so long the CTS barely registers.
        let penalty = protection_penalty(6.0, 1500, 11.0);
        assert!(penalty > 0.85, "penalty {penalty}");
    }

    #[test]
    fn unprotected_matches_plain_g_profile() {
        let via_fn = erp_throughput_mbps(54.0, 1500, false, 1.0);
        let g = MacProfile::dot11g(54.0);
        let manual =
            (1500 * 8) as f64 / (g.difs_us() + g.data_frame_us(1500) + g.sifs_us + g.ack_us());
        assert!((via_fn - manual).abs() < 1e-9);
    }

    #[test]
    fn try_forms_match_panicking_forms_on_valid_inputs() {
        assert_eq!(
            try_cts_to_self_overhead_us(1.0).expect("valid"),
            cts_to_self_overhead_us(1.0)
        );
        assert_eq!(
            try_erp_throughput_mbps(54.0, 1500, true, 1.0).expect("valid"),
            erp_throughput_mbps(54.0, 1500, true, 1.0)
        );
        assert_eq!(
            try_protection_penalty(54.0, 500, 1.0).expect("valid"),
            protection_penalty(54.0, 500, 1.0)
        );
    }

    #[test]
    fn degenerate_inputs_are_typed_errors_never_nan_or_inf() {
        // Zero payload.
        assert!(matches!(
            try_erp_throughput_mbps(54.0, 0, false, 1.0),
            Err(WlanError::InvalidConfig(_))
        ));
        // Zero / negative / non-finite g rate.
        for g in [0.0, -6.0, f64::NAN, f64::INFINITY] {
            assert!(try_erp_throughput_mbps(g, 1500, false, 1.0).is_err(), "g={g}");
            assert!(try_protection_penalty(g, 1500, 1.0).is_err(), "g={g}");
        }
        // Zero / negative / non-finite DSSS CTS rate.
        for r in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(try_cts_to_self_overhead_us(r).is_err(), "r={r}");
            assert!(try_erp_throughput_mbps(54.0, 1500, true, r).is_err(), "r={r}");
        }
        // Everything that passes validation is finite.
        for (g, p, cts) in [(54.0, 1, 1.0), (0.1, 4000, 11.0), (600.0, 1500, 1.0)] {
            let t = try_erp_throughput_mbps(g, p, true, cts).expect("valid");
            assert!(t.is_finite() && t > 0.0, "throughput {t}");
            let pen = try_protection_penalty(g, p, cts).expect("valid");
            assert!(pen.is_finite() && pen > 0.0 && pen <= 1.0, "penalty {pen}");
        }
    }

    #[test]
    fn cts_faster_than_g_rate_is_allowed_and_shrinks_the_penalty() {
        // 11 Mbps CCK CTS announcing a 6 Mbps OFDM frame: unusual but
        // well-defined. The penalty must stay in (0, 1] and beat the
        // 1 Mbps CTS case.
        let fast = try_protection_penalty(6.0, 1500, 11.0).expect("valid");
        let slow = try_protection_penalty(6.0, 1500, 1.0).expect("valid");
        assert!(fast > slow && fast <= 1.0, "fast {fast} slow {slow}");
    }
}
