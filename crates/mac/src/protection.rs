//! ERP protection: the price 802.11g paid to share 2.4 GHz with 802.11b.
//!
//! The paper notes OFDM "was allowed into the 2.4 GHz band and was
//! standardized as 802.11g" — but legacy DSSS stations cannot hear OFDM
//! preambles, so a mixed cell forces every OFDM exchange to be announced
//! with a DSSS-rate CTS-to-self (or RTS/CTS). This module quantifies the
//! famous result: one 802.11b station in the cell roughly halves 802.11g
//! throughput.

use crate::params::{MacProfile, CTS_BYTES};

/// Airtime of the DSSS-rate CTS-to-self announcement plus its SIFS, in µs.
///
/// Uses the 802.11b long-preamble profile at the given DSSS control rate.
pub fn cts_to_self_overhead_us(dsss_rate_mbps: f64) -> f64 {
    let b = MacProfile::dot11b(dsss_rate_mbps);
    // CTS at the DSSS rate with the long PLCP preamble, then SIFS before
    // the protected OFDM exchange.
    b.phy_overhead_us + (CTS_BYTES * 8) as f64 / dsss_rate_mbps + b.sifs_us
}

/// Single-station (no-contention) 802.11g throughput in Mbps with or
/// without protection.
///
/// # Panics
///
/// Panics if `payload` is zero.
pub fn erp_throughput_mbps(
    g_rate_mbps: f64,
    payload: usize,
    protection: bool,
    dsss_cts_rate_mbps: f64,
) -> f64 {
    assert!(payload > 0, "payload must be nonempty");
    let g = MacProfile::dot11g(g_rate_mbps);
    let mut cycle = g.difs_us() + g.data_frame_us(payload) + g.sifs_us + g.ack_us();
    if protection {
        cycle += cts_to_self_overhead_us(dsss_cts_rate_mbps);
    }
    (payload * 8) as f64 / cycle
}

/// The protection penalty: protected / unprotected throughput (≤ 1).
pub fn protection_penalty(g_rate_mbps: f64, payload: usize, dsss_cts_rate_mbps: f64) -> f64 {
    erp_throughput_mbps(g_rate_mbps, payload, true, dsss_cts_rate_mbps)
        / erp_throughput_mbps(g_rate_mbps, payload, false, dsss_cts_rate_mbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cts_overhead_is_dominated_by_the_long_preamble() {
        // 192 µs preamble + 112 bits at 1 Mbps + 10 µs SIFS ≈ 314 µs.
        let o = cts_to_self_overhead_us(1.0);
        assert!((o - 314.0).abs() < 1.0, "overhead {o}");
        // At 11 Mbps the preamble still dominates.
        assert!(cts_to_self_overhead_us(11.0) > 200.0);
    }

    #[test]
    fn protection_roughly_halves_54mbps_short_frames() {
        // The classic mixed-cell number: small/medium frames at 54 Mbps
        // lose ~40-60 % to a 1 Mbps CTS-to-self.
        let penalty = protection_penalty(54.0, 500, 1.0);
        assert!(
            penalty > 0.25 && penalty < 0.6,
            "penalty {penalty} out of the expected band"
        );
    }

    #[test]
    fn penalty_shrinks_for_large_frames_and_fast_cts() {
        let small = protection_penalty(54.0, 250, 1.0);
        let large = protection_penalty(54.0, 2000, 1.0);
        assert!(large > small, "amortization over frame size");
        let fast_cts = protection_penalty(54.0, 500, 11.0);
        let slow_cts = protection_penalty(54.0, 500, 1.0);
        assert!(fast_cts > slow_cts, "11 Mbps CTS hurts less");
    }

    #[test]
    fn penalty_negligible_at_low_g_rates() {
        // A 6 Mbps OFDM frame is so long the CTS barely registers.
        let penalty = protection_penalty(6.0, 1500, 11.0);
        assert!(penalty > 0.85, "penalty {penalty}");
    }

    #[test]
    fn unprotected_matches_plain_g_profile() {
        let via_fn = erp_throughput_mbps(54.0, 1500, false, 1.0);
        let g = MacProfile::dot11g(54.0);
        let manual =
            (1500 * 8) as f64 / (g.difs_us() + g.data_frame_us(1500) + g.sifs_us + g.ack_us());
        assert!((via_fn - manual).abs() < 1e-9);
    }
}
