//! Bianchi's saturation-throughput model (IEEE JSAC 2000).
//!
//! The classic two-equation fixed point: a station transmits in a random
//! slot with probability `τ`, conditioned on collision probability
//! `p = 1 − (1−τ)^{n−1}`, and
//!
//! ```text
//! τ = 2(1−2p) / ((1−2p)(W+1) + pW(1−(2p)^m))
//! ```
//!
//! where `W = CWmin+1` and `m` the maximum backoff stage. Saturation
//! throughput follows from the expected slot durations. The DCF simulator
//! ([`crate::dcf`]) must land on these curves — that is the E13 validation.

use crate::params::MacProfile;

/// Result of the analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BianchiResult {
    /// Per-station transmission probability τ.
    pub tau: f64,
    /// Conditional collision probability p.
    pub collision_probability: f64,
    /// Saturation throughput in Mbps.
    pub throughput_mbps: f64,
}

/// Solves the Bianchi fixed point and computes saturation throughput.
///
/// # Panics
///
/// Panics if `n_stations` is zero.
pub fn saturation_throughput(
    profile: &MacProfile,
    n_stations: usize,
    payload_bytes: usize,
    rts_cts: bool,
) -> BianchiResult {
    assert!(n_stations > 0, "need at least one station");
    let n = n_stations as f64;
    let w = (profile.cw_min + 1) as f64;
    // Backoff stages until CWmax.
    let m = ((profile.cw_max + 1) as f64 / w).log2().round().max(0.0);

    let tau_of_p = |p: f64| -> f64 {
        if p >= 0.5 {
            // The closed form is still valid; guard the 1−2p factor.
            let denom = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powf(m));
            if denom.abs() < 1e-12 {
                return 2.0 / (w + 1.0);
            }
            2.0 * (1.0 - 2.0 * p) / denom
        } else {
            2.0 * (1.0 - 2.0 * p)
                / ((1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powf(m)))
        }
    };

    // Bisection on p: f(p) = p − (1 − (1−τ(p))^{n−1}) is monotone.
    let f = |p: f64| -> f64 {
        let tau = tau_of_p(p).clamp(0.0, 1.0);
        p - (1.0 - (1.0 - tau).powf(n - 1.0))
    };
    let mut lo = 0.0;
    let mut hi = 0.999_999;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let p = 0.5 * (lo + hi);
    let tau = tau_of_p(p).clamp(0.0, 1.0);

    // Slot-type probabilities.
    let p_tr = 1.0 - (1.0 - tau).powf(n);
    let p_s = if p_tr > 0.0 {
        n * tau * (1.0 - tau).powf(n - 1.0) / p_tr
    } else {
        0.0
    };

    let sigma = profile.slot_us;
    let (ts, tc) = if rts_cts {
        (
            profile.rts_success_duration_us(payload_bytes),
            profile.rts_collision_duration_us(),
        )
    } else {
        (
            profile.success_duration_us(payload_bytes),
            profile.collision_duration_us(payload_bytes),
        )
    };

    let payload_bits = (payload_bytes * 8) as f64;
    let denom = (1.0 - p_tr) * sigma + p_tr * p_s * ts + p_tr * (1.0 - p_s) * tc;
    let throughput_mbps = p_tr * p_s * payload_bits / denom;

    BianchiResult {
        tau,
        collision_probability: p,
        throughput_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcf::{simulate_dcf, DcfConfig};

    #[test]
    fn fixed_point_is_consistent() {
        let r = saturation_throughput(&MacProfile::dot11a(54.0), 10, 1500, false);
        // p must equal 1 − (1−τ)^(n−1) at the solution.
        let implied = 1.0 - (1.0 - r.tau).powf(9.0);
        assert!((r.collision_probability - implied).abs() < 1e-6);
        assert!(r.tau > 0.0 && r.tau < 1.0);
    }

    #[test]
    fn single_station_never_collides() {
        let r = saturation_throughput(&MacProfile::dot11a(54.0), 1, 1500, false);
        assert!(r.collision_probability < 1e-9);
    }

    #[test]
    fn throughput_decreases_with_contention() {
        let profile = MacProfile::dot11a(54.0);
        let mut prev = f64::INFINITY;
        for n in [2, 5, 10, 20, 50] {
            let r = saturation_throughput(&profile, n, 1500, false);
            assert!(
                r.throughput_mbps < prev,
                "n={n}: {} not below {prev}",
                r.throughput_mbps
            );
            prev = r.throughput_mbps;
        }
    }

    #[test]
    fn rts_flattens_the_contention_penalty() {
        let profile = MacProfile::dot11a(54.0);
        let basic_50 = saturation_throughput(&profile, 50, 2000, false).throughput_mbps;
        let rts_50 = saturation_throughput(&profile, 50, 2000, true).throughput_mbps;
        assert!(rts_50 > basic_50, "RTS {rts_50} vs basic {basic_50}");
    }

    #[test]
    fn simulation_matches_model() {
        // The E13 headline check: event simulation within ~10 % of Bianchi
        // across a range of station counts.
        let profile = MacProfile::dot11a(54.0);
        for n in [2usize, 5, 10, 20] {
            let model = saturation_throughput(&profile, n, 1500, false);
            let sim = simulate_dcf(&DcfConfig {
                profile,
                n_stations: n,
                payload_bytes: 1500,
                rts_cts: false,
                sim_time_us: 4_000_000.0,
                seed: 11,
            });
            let err = (sim.throughput_mbps - model.throughput_mbps).abs()
                / model.throughput_mbps;
            assert!(
                err < 0.1,
                "n={n}: sim {} vs model {} ({:.1} % off)",
                sim.throughput_mbps,
                model.throughput_mbps,
                err * 100.0
            );
        }
    }

    #[test]
    fn collision_probability_matches_simulation() {
        let profile = MacProfile::dot11a(54.0);
        let n = 15;
        let model = saturation_throughput(&profile, n, 1500, false);
        let sim = simulate_dcf(&DcfConfig {
            profile,
            n_stations: n,
            payload_bytes: 1500,
            rts_cts: false,
            sim_time_us: 4_000_000.0,
            seed: 3,
        });
        assert!(
            (sim.collision_probability - model.collision_probability).abs() < 0.08,
            "sim p={} vs model p={}",
            sim.collision_probability,
            model.collision_probability
        );
    }
}
