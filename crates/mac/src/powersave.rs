//! Legacy 802.11 power-save mode (PSM).
//!
//! The paper closes by noting WLAN protocols "make few concessions to
//! issues of power management". The one concession 802.11 did make is PSM:
//! a station tells the AP it is dozing, wakes only for beacons, checks the
//! TIM bitmap, and polls for buffered frames when indicated. This module
//! models the awake/doze duty cycle and the latency cost, feeding the
//! energy comparison of experiment E12.

use wlan_math::rng::Rng;
use wlan_sim::{Scheduler, Time, MICROSECOND};

/// PSM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsmConfig {
    /// Beacon interval in µs (typically 102_400 = 102.4 ms).
    pub beacon_interval_us: f64,
    /// Listen interval: station wakes every `n` beacons.
    pub listen_interval: u32,
    /// Time awake around each beacon (receive + TIM decode) in µs.
    pub beacon_awake_us: f64,
    /// Time to retrieve one buffered frame (PS-Poll + data + ACK) in µs.
    pub retrieval_us: f64,
    /// Mean downlink frame arrival rate (frames per second).
    pub arrival_rate_hz: f64,
    /// Simulated time in µs.
    pub sim_time_us: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PsmConfig {
    fn default() -> Self {
        PsmConfig {
            beacon_interval_us: 102_400.0,
            listen_interval: 1,
            beacon_awake_us: 2_000.0,
            retrieval_us: 1_500.0,
            arrival_rate_hz: 5.0,
            sim_time_us: 10_000_000.0,
            seed: 1,
        }
    }
}

/// PSM simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsmResult {
    /// Fraction of time the radio was awake (duty cycle).
    pub awake_fraction: f64,
    /// Mean delivery latency of buffered frames in µs.
    pub mean_latency_us: f64,
    /// Frames delivered.
    pub delivered: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Beacon,
    Arrival,
}

/// Simulates PSM doze/wake cycles with Poisson downlink arrivals buffered
/// at the AP until the station's next listened beacon.
///
/// # Panics
///
/// Panics if intervals or rates are not positive.
pub fn simulate_psm(cfg: &PsmConfig) -> PsmResult {
    assert!(cfg.beacon_interval_us > 0.0, "beacon interval must be positive");
    assert!(cfg.listen_interval >= 1, "listen interval must be at least 1");
    assert!(cfg.sim_time_us > 0.0, "simulation time must be positive");
    use wlan_math::rng::WlanRng;
    let mut rng = WlanRng::seed_from_u64(cfg.seed);

    let to_ns = |us: f64| -> Time { (us * MICROSECOND as f64).round() as Time };
    let horizon = to_ns(cfg.sim_time_us);
    let mut sim: Scheduler<Event> = Scheduler::new();
    sim.schedule_at(to_ns(cfg.beacon_interval_us), Event::Beacon);
    let exp_gap = |rng: &mut WlanRng| -> Time {
        let u: f64 = 1.0 - rng.gen::<f64>();
        to_ns(-u.ln() / cfg.arrival_rate_hz * 1e6)
    };
    let first = exp_gap(&mut rng);
    sim.schedule_at(first, Event::Arrival);

    let mut beacon_count = 0u64;
    let mut awake_ns = 0f64;
    let mut buffered: Vec<Time> = Vec::new();
    let mut latency_sum_ns = 0f64;
    let mut delivered = 0u64;

    while let Some((t, ev)) = sim.pop() {
        if t >= horizon {
            break;
        }
        match ev {
            Event::Arrival => {
                buffered.push(t);
                sim.schedule_in(exp_gap(&mut rng), Event::Arrival);
            }
            Event::Beacon => {
                beacon_count += 1;
                sim.schedule_in(to_ns(cfg.beacon_interval_us), Event::Beacon);
                // Station listens every `listen_interval` beacons.
                if !beacon_count.is_multiple_of(cfg.listen_interval as u64) {
                    continue;
                }
                awake_ns += to_ns(cfg.beacon_awake_us) as f64;
                // TIM indicated: retrieve everything buffered.
                for &arrival in &buffered {
                    awake_ns += to_ns(cfg.retrieval_us) as f64;
                    latency_sum_ns += (t - arrival) as f64;
                    delivered += 1;
                }
                buffered.clear();
            }
        }
    }

    PsmResult {
        awake_fraction: awake_ns / horizon as f64,
        mean_latency_us: if delivered > 0 {
            latency_sum_ns / delivered as f64 / MICROSECOND as f64
        } else {
            0.0
        },
        delivered,
    }
}

/// The always-on duty cycle for comparison (trivially 1.0, but kept as a
/// function so energy models treat both modes uniformly).
pub fn constant_awake_fraction() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_is_far_below_always_on() {
        let out = simulate_psm(&PsmConfig::default());
        assert!(
            out.awake_fraction < 0.15,
            "PSM duty cycle {} should be ≪ 1",
            out.awake_fraction
        );
        assert!(out.awake_fraction > 0.0);
    }

    #[test]
    fn mean_latency_is_half_listen_period() {
        // Poisson arrivals buffered until the next listened beacon wait half
        // a listen period on average.
        let cfg = PsmConfig::default();
        let out = simulate_psm(&cfg);
        let expect = cfg.beacon_interval_us * cfg.listen_interval as f64 / 2.0;
        assert!(
            (out.mean_latency_us - expect).abs() < 0.15 * expect,
            "latency {} vs expected {expect}",
            out.mean_latency_us
        );
    }

    #[test]
    fn longer_listen_interval_trades_energy_for_latency() {
        let base = PsmConfig::default();
        let eager = simulate_psm(&base);
        let lazy = simulate_psm(&PsmConfig {
            listen_interval: 5,
            ..base
        });
        assert!(lazy.awake_fraction < eager.awake_fraction);
        assert!(lazy.mean_latency_us > 3.0 * eager.mean_latency_us);
    }

    #[test]
    fn busier_traffic_increases_duty_cycle() {
        let base = PsmConfig::default();
        let quiet = simulate_psm(&PsmConfig {
            arrival_rate_hz: 1.0,
            ..base
        });
        let busy = simulate_psm(&PsmConfig {
            arrival_rate_hz: 50.0,
            ..base
        });
        assert!(busy.awake_fraction > quiet.awake_fraction);
        assert!(busy.delivered > quiet.delivered);
    }

    #[test]
    fn all_arrivals_before_horizon_minus_beacon_are_delivered() {
        let cfg = PsmConfig {
            sim_time_us: 5_000_000.0,
            arrival_rate_hz: 20.0,
            ..PsmConfig::default()
        };
        let out = simulate_psm(&cfg);
        // ~100 expected arrivals; allow boundary losses of a beacon's worth.
        let expected = cfg.arrival_rate_hz * cfg.sim_time_us / 1e6;
        assert!(
            (out.delivered as f64) > 0.7 * expected,
            "delivered {} of ~{expected}",
            out.delivered
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate_psm(&PsmConfig::default());
        let b = simulate_psm(&PsmConfig::default());
        assert_eq!(a, b);
    }
}
