//! The coordinator: wave-aligned leases over a fleet of mortal workers.
//!
//! The coordinator owns the campaign state (tallies, stopping decisions,
//! budgets, the journal) and never runs trials itself unless every
//! worker is gone. Workers own nothing: each lease names an exact
//! `(point, trial-range)` whose result is a pure function of the
//! campaign seed, so a worker's death loses only wall-clock time — the
//! lease is re-dispatched (with exponential backoff and deterministic
//! jitter) to any surviving worker, or run in-process as a last resort.
//!
//! # Bit-identity argument
//!
//! * A lease's rounds are aligned to the single-process wave grid
//!   ([`ROUND_TRIALS`] frames, anchored at frame 0), and each trial
//!   draws its universe from `seed → fork(point) → fork(frame)` — the
//!   same addressing [`run_per_campaign`](wlan_runner::per::run_per_campaign)
//!   uses. So lease results do not depend on which worker ran them, how
//!   many times they were re-dispatched, or whether they fell back
//!   in-process.
//! * The coordinator folds results *in frame order per point* (a lease
//!   completing out of order waits in a buffer until the point's
//!   frontier reaches it) and applies
//!   [`evaluate_status`](wlan_runner::per::evaluate_status) after every
//!   folded round — the same pure stopping rule at the same round
//!   boundaries. Rounds past a stopping decision are discarded unfolded,
//!   exactly as the single-process campaign would never have run them.
//! * Therefore per-point tallies, stopping decisions, and the trial
//!   quarantine ledger are bit-identical to the single-process
//!   campaign's for **any** worker count and **any** kill schedule —
//!   the chaos harness in `tests/tests/dist_chaos.rs` pins this.
//!
//! Only *liveness* is wall-clock dependent (which worker dies, how often
//! a lease retries); *results* never are.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use wlan_fault::TransportFaults;
use wlan_math::rng::{Rng, WlanRng};
use wlan_obs::json;
use wlan_runner::budget::{BudgetMeter, Outcome, StopReason};
use wlan_runner::journal::{self, f64_from_hex, f64_to_hex, kv_u64, JournalError};
use wlan_core::linksim::PhyLink;
use wlan_fault::FaultChain;
use wlan_runner::per::{
    evaluate_status, fresh_points, parse_point_line, PerCampaignConfig, PointProgress, PointStatus,
    ROUND_TRIALS,
};
use wlan_runner::quarantine::QuarantinedTrial;
use wlan_runner::Resume;

use crate::catalog::{FaultSpec, LinkSpec};
use crate::duplex::{pipe, relay, PipeCloser};
use crate::proto::{read_msg, write_msg, Msg, ProtoError, RoundTally};
use crate::worker::{run_lease, serve, LeaseJob};

/// Configuration for a distributed PER campaign: the underlying
/// campaign plus the fleet geometry and failure-handling knobs.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// The campaign itself (snrs, payload, budgets, journal). The
    /// `threads` field only affects in-process fallback execution.
    pub per: PerCampaignConfig,
    /// Worker fleet size; `0` means pure in-process execution.
    pub workers: usize,
    /// Rounds of [`ROUND_TRIALS`] trials per lease.
    pub lease_rounds: u64,
    /// A lease (or a pending hello) past this deadline kills its worker.
    pub lease_timeout_ms: u64,
    /// Ping cadence for idle workers; an idle worker silent for four
    /// heartbeats is declared dead.
    pub heartbeat_ms: u64,
    /// At-most-K dispatch: a lease failing this many times is
    /// quarantined and its point abandoned.
    pub max_dispatches: u32,
    /// Base re-dispatch backoff; doubles per attempt, plus
    /// deterministic jitter in `[0, backoff/2)`.
    pub retry_backoff_ms: u64,
    /// Run leases in-process when no worker survives (graceful
    /// degradation). With this off, losing the whole fleet abandons the
    /// campaign instead.
    pub fallback_in_process: bool,
    /// Chaos harness: kill workers this long after start.
    pub chaos_kill_after_ms: Option<u64>,
    /// How many workers the chaos kill takes down.
    pub chaos_kill_count: usize,
    /// Outstanding leases per point (pipelining depth).
    pub speculation: usize,
}

impl DistConfig {
    /// Defaults tuned for subprocess fleets; tests shrink the timeouts.
    pub fn new(per: PerCampaignConfig, workers: usize) -> Self {
        Self {
            per,
            workers,
            lease_rounds: 4,
            lease_timeout_ms: 30_000,
            heartbeat_ms: 500,
            max_dispatches: 3,
            retry_backoff_ms: 50,
            fallback_in_process: true,
            chaos_kill_after_ms: None,
            chaos_kill_count: 1,
            speculation: 2,
        }
    }

    /// Sets the per-lease (and hello) deadline.
    pub fn with_lease_timeout_ms(mut self, ms: u64) -> Self {
        self.lease_timeout_ms = ms;
        self
    }

    /// Sets the idle-worker heartbeat cadence.
    pub fn with_heartbeat_ms(mut self, ms: u64) -> Self {
        self.heartbeat_ms = ms;
        self
    }

    /// Arms the chaos kill: take down `count` workers after `ms`.
    pub fn with_chaos_kill(mut self, ms: u64, count: usize) -> Self {
        self.chaos_kill_after_ms = Some(ms);
        self.chaos_kill_count = count;
        self
    }

    /// Disables in-process fallback (fleet loss abandons the campaign).
    pub fn without_fallback(mut self) -> Self {
        self.fallback_in_process = false;
        self
    }

    /// The deadline for a lease spanning `[start, end)`:
    /// `lease_timeout_ms` *per round* of work, so a big lease gets
    /// proportionally more time. (Bugfix: the deadline used to be flat
    /// per lease, so a multi-round lease of slow faulted points could
    /// blow it while making perfectly healthy progress — the coordinator
    /// then killed the worker and re-dispatched work that was nearly
    /// done, and at the quarantine limit abandoned the point outright.
    /// `multi_round_leases_get_scaled_deadlines` pins the fix.)
    pub fn lease_deadline(&self, start: u64, end: u64) -> Duration {
        let rounds = end.saturating_sub(start).div_ceil(ROUND_TRIALS).max(1);
        Duration::from_millis(self.lease_timeout_ms.saturating_mul(rounds))
    }
}

/// The I/O a coordinator holds onto one worker: its stdin, its stdout,
/// and a way to kill it.
pub struct WorkerIo {
    /// Coordinator → worker (the worker's stdin).
    pub writer: Box<dyn Write + Send>,
    /// Worker → coordinator (the worker's stdout).
    pub reader: Box<dyn Read + Send>,
    /// Terminates the worker and releases its resources (idempotent).
    pub kill: Box<dyn FnMut() + Send>,
}

/// Spawns workers. Two implementations ship: [`ProcessFactory`]
/// (subprocesses over stdio) and [`InProcessFactory`] (threads over
/// in-memory pipes, optionally behind fault-injecting relays — the
/// chaos harness's workhorse).
pub trait WorkerFactory {
    /// Spawns worker `id` and returns its I/O handles.
    fn spawn(&mut self, id: usize) -> std::io::Result<WorkerIo>;
}

/// Spawns real subprocesses: `program args...` with piped stdio. The
/// program must enter worker mode ([`serve`] on stdio) when given these
/// arguments — conventionally the same binary re-invoked with
/// `--worker`.
pub struct ProcessFactory {
    /// Worker executable (usually `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments selecting worker mode.
    pub args: Vec<String>,
}

impl WorkerFactory for ProcessFactory {
    fn spawn(&mut self, _id: usize) -> std::io::Result<WorkerIo> {
        let mut child = Command::new(&self.program)
            .args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| std::io::Error::from(std::io::ErrorKind::BrokenPipe))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| std::io::Error::from(std::io::ErrorKind::BrokenPipe))?;
        Ok(WorkerIo {
            writer: Box::new(stdin),
            reader: Box::new(stdout),
            kill: Box::new(move || {
                let _ = child.kill();
                let _ = child.wait();
            }),
        })
    }
}

/// Spawns worker *threads* over in-memory pipes, with optional
/// transport-fault relays in each direction. "Killing" such a worker
/// severs its pipes: readers see EOF, writers see `BrokenPipe`, exactly
/// like a subprocess dying — which lets the chaos harness exercise every
/// coordinator failure path deterministically and cheaply.
pub struct InProcessFactory {
    /// Faults on the coordinator → worker direction.
    pub to_worker: TransportFaults,
    /// Faults on the worker → coordinator direction.
    pub from_worker: TransportFaults,
    /// Seed for the relays' fault schedules (worker `id` forks it).
    pub relay_seed: u64,
}

impl InProcessFactory {
    /// A factory with clean, fault-free transport.
    pub fn clean() -> Self {
        Self {
            to_worker: TransportFaults::none(),
            from_worker: TransportFaults::none(),
            relay_seed: 0,
        }
    }
}

impl WorkerFactory for InProcessFactory {
    fn spawn(&mut self, id: usize) -> std::io::Result<WorkerIo> {
        let mut closers: Vec<PipeCloser> = Vec::new();
        let (coord_w, coord_r): (Box<dyn Write + Send>, Box<dyn Read + Send>) =
            if self.to_worker.is_clean() && self.from_worker.is_clean() {
                let (cw, wr, c1) = pipe();
                let (ww, cr, c2) = pipe();
                closers.extend([c1, c2]);
                std::thread::spawn(move || serve(wr, ww));
                (Box::new(cw), Box::new(cr))
            } else {
                // coordinator → relay → worker, worker → relay → coordinator
                let (cw, to_relay, c1) = pipe();
                let (from_relay, wr, c2) = pipe();
                let (ww, to_back, c3) = pipe();
                let (from_back, cr, c4) = pipe();
                closers.extend([c1, c2, c3, c4]);
                let tw = self.to_worker;
                let fw = self.from_worker;
                let base = WlanRng::seed_from_u64(self.relay_seed).fork(id as u64);
                let fwd_rng = base.fork(0);
                let rev_rng = base.fork(1);
                std::thread::spawn(move || relay(to_relay, from_relay, tw, fwd_rng));
                std::thread::spawn(move || relay(to_back, from_back, fw, rev_rng));
                std::thread::spawn(move || serve(wr, ww));
                (Box::new(cw), Box::new(cr))
            };
        Ok(WorkerIo {
            writer: coord_w,
            reader: coord_r,
            kill: Box::new(move || {
                for c in &closers {
                    c.close();
                }
            }),
        })
    }
}

/// A lease that exhausted its dispatch budget: the exact trial range
/// and the last failure, enough to replay the work standalone. Written
/// to the journal for post-mortems (and skipped on restore, so a
/// re-invocation retries the range fresh).
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedLease {
    /// SNR point index.
    pub point: usize,
    /// SNR in dB.
    pub snr_db: f64,
    /// First frame of the leased range.
    pub start: u64,
    /// One past the last frame.
    pub end: u64,
    /// Dispatch attempts spent.
    pub attempts: u32,
    /// The last failure's description.
    pub error: String,
}

impl QuarantinedLease {
    /// Journal body line (free-text error last, as with `quar` lines).
    pub fn to_line(&self) -> String {
        format!(
            "qlease point={} start={} end={} attempts={} snr={} error={}",
            self.point,
            self.start,
            self.end,
            self.attempts,
            f64_to_hex(self.snr_db),
            self.error
        )
    }

    /// Parses [`QuarantinedLease::to_line`]; `None` on malformation.
    pub fn from_line(line: &str) -> Option<Self> {
        let rest = line.strip_prefix("qlease ")?;
        let (coords, error) = rest.split_once(" error=")?;
        let mut tokens = coords.split_whitespace();
        let point = kv_u64(tokens.next()?, "point")? as usize;
        let start = kv_u64(tokens.next()?, "start")?;
        let end = kv_u64(tokens.next()?, "end")?;
        let attempts = kv_u64(tokens.next()?, "attempts")? as u32;
        let snr_db = f64_from_hex(tokens.next()?.strip_prefix("snr=")?)?;
        if tokens.next().is_some() || start >= end {
            return None;
        }
        Some(Self {
            point,
            snr_db,
            start,
            end,
            attempts,
            error: error.to_owned(),
        })
    }
}

/// Fleet-health counters for one coordinator invocation. These describe
/// *liveness* (wall-clock-dependent) and are deliberately outside the
/// bit-identity contract, unlike the tallies they sit next to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Workers successfully spawned.
    pub workers_spawned: u64,
    /// Workers declared dead (EOF, timeout, kill, corrupt stream).
    pub worker_deaths: u64,
    /// Leases whose deadline expired.
    pub timeouts: u64,
    /// Lease re-dispatches (after worker death or invalid results).
    pub redispatches: u64,
    /// Protocol frames that failed checksum/format validation.
    pub corrupt_frames: u64,
    /// Leases executed in-process after fleet loss.
    pub fallback_leases: u64,
    /// Leases that completed with valid results.
    pub leases_completed: u64,
}

/// The result of a distributed campaign invocation: the single-process
/// report fields (bit-identical tallies and trial quarantine) plus the
/// lease quarantine and fleet statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DistPerReport {
    /// Link name.
    pub name: String,
    /// Fault chain name.
    pub fault: String,
    /// PHY rate in Mbps.
    pub rate_mbps: f64,
    /// Master seed.
    pub seed: u64,
    /// Per-point tallies — bit-identical to the single-process
    /// campaign's at any worker count and kill schedule.
    pub points: Vec<PointProgress>,
    /// Trial quarantine ledger in canonical `(point, frame)` order
    /// (lease completion order is timing-dependent, so the distributed
    /// report sorts; the single-process report keeps execution order,
    /// which for it is the same thing).
    pub quarantine: Vec<QuarantinedTrial>,
    /// Leases abandoned after exhausting their dispatch budget, in
    /// `(point, start)` order.
    pub lease_quarantine: Vec<QuarantinedLease>,
    /// Whether the campaign finished, aggregated across all points via
    /// [`Outcome::merge`].
    pub outcome: Outcome,
    /// How this invocation started (fresh / resumed / salvaged / cold).
    pub resume: Resume,
    /// First checkpoint-write failure, if any (campaign continues).
    pub journal_error: Option<JournalError>,
    /// Fleet-health counters (wall-clock-dependent; not part of the
    /// bit-identity contract).
    pub stats: DistStats,
}

impl DistPerReport {
    /// Total trials banked across all points.
    pub fn completed_trials(&self) -> u64 {
        self.points.iter().map(|p| p.trials).sum()
    }

    /// Writes the deterministic result table: campaign header, one row
    /// per point, then the quarantine tallies. The bytes contain no
    /// timing, fleet state, or paths, so they are identical at any
    /// worker count, kill schedule, or transport — the ci smokes diff
    /// exactly this output across fleet geometries.
    pub fn render_table(&self, out: &mut dyn Write) -> std::io::Result<()> {
        writeln!(out, "campaign {} / {}", self.name, self.fault)?;
        writeln!(
            out,
            "{:>8} {:>8} {:>8} {:>10} {:>10} {:>22}",
            "snr_db", "trials", "errors", "per", "erasure", "wilson95"
        )?;
        for p in &self.points {
            let ci = p.ci().map_or_else(
                || "n/a".to_owned(),
                |ci| format!("[{:.6}, {:.6}]", ci.lo, ci.hi),
            );
            writeln!(
                out,
                "{:>8.1} {:>8} {:>8} {:>10.6} {:>10.6} {:>22}",
                p.snr_db,
                p.trials,
                p.errors,
                p.per(),
                p.erasure_rate(),
                ci
            )?;
        }
        writeln!(out, "quarantined {}", self.quarantine.len())?;
        writeln!(out, "abandoned leases {}", self.lease_quarantine.len())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaseState {
    Pending,
    InFlight,
    Done,
    Quarantined,
    Cancelled,
}

struct Lease {
    point: usize,
    start: u64,
    end: u64,
    attempts: u32,
    state: LeaseState,
    not_before: Instant,
    worker: Option<usize>,
    deadline: Instant,
    quars: Vec<(u64, String)>,
    last_error: String,
}

struct Slot {
    writer: Box<dyn Write + Send>,
    kill: Box<dyn FnMut() + Send>,
    alive: bool,
    ready: bool,
    strikes: u32,
    inflight: Option<u64>,
    last_seen: Instant,
    last_ping: Instant,
    hello_sent: Instant,
    hello_resends: u32,
}

enum Event {
    Msg(usize, Msg),
    Corrupt(usize),
    Eof(usize),
}

fn reader_loop(w: usize, reader: Box<dyn Read + Send>, tx: mpsc::Sender<Event>) {
    let mut r = BufReader::new(reader);
    loop {
        match read_msg(&mut r) {
            Ok(Some(msg)) => {
                if tx.send(Event::Msg(w, msg)).is_err() {
                    return;
                }
            }
            Ok(None) | Err(ProtoError::Io(_)) => {
                let _ = tx.send(Event::Eof(w));
                return;
            }
            Err(_) => {
                if tx.send(Event::Corrupt(w)).is_err() {
                    return;
                }
            }
        }
    }
}

/// A fleet of worker connections that can outlive a single campaign:
/// the worker slots, the event channel their reader threads feed, the
/// next lease id, and an optional channel of *late-joining* workers (a
/// TCP acceptor's output). [`run_dist_per_campaign_on`] runs one
/// campaign over a fleet and leaves it connected, which is what lets a
/// `campaign serve` service run queued campaigns back-to-back on the
/// same workers — and lets a worker that reconnects mid-campaign rejoin
/// the pool as a fresh slot.
///
/// Lease ids live here, not in the per-campaign state, so they are
/// globally unique across every campaign a fleet ever runs: a `done`
/// frame from a worker still chewing on campaign N's lease can never be
/// mistaken for a result in campaign N+1.
pub struct Fleet {
    slots: Vec<Option<Slot>>,
    tx: mpsc::Sender<Event>,
    rx: mpsc::Receiver<Event>,
    joiners: Option<mpsc::Receiver<WorkerIo>>,
    next_lease: u64,
    /// Workers attached since the last campaign took credit for them.
    fresh_spawns: u64,
}

impl Fleet {
    fn new_empty() -> Self {
        let (tx, rx) = mpsc::channel();
        Self {
            slots: Vec::new(),
            tx,
            rx,
            joiners: None,
            next_lease: 0,
            fresh_spawns: 0,
        }
    }

    /// Spawns `workers` workers up front from `factory`. A failed spawn
    /// leaves an empty slot (the campaign degrades rather than aborts).
    pub fn spawn(workers: usize, factory: &mut dyn WorkerFactory) -> Self {
        let mut fleet = Self::new_empty();
        let now = Instant::now();
        for w in 0..workers {
            match factory.spawn(w) {
                Ok(io) => {
                    fleet.attach(io, now);
                }
                Err(_) => fleet.slots.push(None),
            }
        }
        fleet
    }

    /// An initially-empty fleet fed by `joiners` — every [`WorkerIo`]
    /// sent down the channel (a freshly handshaken TCP worker, say) is
    /// attached at the next coordinator pass, mid-campaign included.
    pub fn from_joiners(joiners: mpsc::Receiver<WorkerIo>) -> Self {
        let mut fleet = Self::new_empty();
        fleet.joiners = Some(joiners);
        fleet
    }

    /// Attaches a connected worker as a new slot (slots are never
    /// reused: a reconnecting worker gets a fresh index, and its old
    /// slot stays dead). Returns the slot index.
    pub fn attach(&mut self, io: WorkerIo, now: Instant) -> usize {
        let w = self.slots.len();
        let tx = self.tx.clone();
        let reader = io.reader;
        std::thread::spawn(move || reader_loop(w, reader, tx));
        self.slots.push(Some(Slot {
            writer: io.writer,
            kill: io.kill,
            alive: true,
            ready: false,
            strikes: 0,
            inflight: None,
            last_seen: now,
            last_ping: now,
            hello_sent: now,
            hello_resends: 0,
        }));
        self.fresh_spawns += 1;
        wlan_obs::global().event(
            wlan_obs::events::DIST_WORKER_SPAWN,
            &[("worker", json::Value::U64(w as u64))],
        );
        w
    }

    /// Workers currently alive (attached and not declared dead).
    pub fn alive_workers(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.as_ref().map(|s| s.alive).unwrap_or(false))
            .count()
    }

    /// Keeps an idle fleet warm between campaigns: attaches queued
    /// joiners, pings every live worker on roughly `heartbeat_ms`
    /// cadence, and reaps streams that ended. A `campaign serve`
    /// service calls this while lingering for its next campaign (or a
    /// shutdown frame), so idle TCP workers see traffic inside their
    /// read deadlines instead of timing out and churning reconnects.
    pub fn idle_tick(&mut self, heartbeat_ms: u64) {
        let now = Instant::now();
        let mut ios = Vec::new();
        if let Some(rx) = &self.joiners {
            while let Ok(io) = rx.try_recv() {
                ios.push(io);
            }
        }
        for io in ios {
            self.attach(io, now);
        }
        let heartbeat = Duration::from_millis(heartbeat_ms.max(1));
        for slot in self.slots.iter_mut().flatten() {
            if slot.alive && now.duration_since(slot.last_ping) >= heartbeat {
                slot.last_ping = now;
                if write_msg(&mut slot.writer, &Msg::Ping { n: 0 }).is_err() {
                    slot.alive = false;
                    (slot.kill)();
                }
            }
        }
        while let Ok(ev) = self.rx.try_recv() {
            match ev {
                Event::Eof(w) => {
                    if let Some(Some(slot)) = self.slots.get_mut(w) {
                        if slot.alive {
                            slot.alive = false;
                            (slot.kill)();
                        }
                    }
                }
                Event::Msg(w, _) => {
                    if let Some(Some(slot)) = self.slots.get_mut(w) {
                        slot.last_seen = now;
                    }
                }
                Event::Corrupt(_) => {}
            }
        }
    }

    /// Polite shutdown frame to every live worker, then the hard kill
    /// (which also reaps subprocesses and severs in-process pipes).
    pub fn shutdown(&mut self) {
        for slot in self.slots.iter_mut().flatten() {
            if slot.alive {
                let _ = write_msg(&mut slot.writer, &Msg::Shutdown);
                (slot.kill)();
                slot.alive = false;
            }
        }
    }
}

/// Everything the coordinator mutates while the fleet runs.
/// A validated lease result buffered until the fold frontier reaches
/// it: the per-round tallies plus the quarantined `(frame, error)`
/// pairs.
type LeaseResult = (Vec<RoundTally>, Vec<(u64, String)>);

struct Coord<'a> {
    cfg: &'a DistConfig,
    fleet: &'a mut Fleet,
    link_id: String,
    fault_id: String,
    snrs: Vec<f64>,
    points: Vec<PointProgress>,
    quarantine: Vec<QuarantinedTrial>,
    seen_quars: HashSet<(usize, u64)>,
    lease_quarantine: Vec<QuarantinedLease>,
    abandoned: HashSet<usize>,
    leases: BTreeMap<u64, Lease>,
    dispatched: Vec<u64>,
    completed: HashMap<(usize, u64), LeaseResult>,
    stats: DistStats,
    obs: &'static wlan_obs::Recorder,
}

impl Coord<'_> {
    fn emit(&self, event: &str, fields: &[(&str, json::Value)]) {
        self.obs.event(event, fields);
    }

    fn alive_workers(&self) -> usize {
        self.fleet.alive_workers()
    }

    /// Takes credit for workers the fleet attached since the last call
    /// (initial spawns and late joiners alike).
    fn credit_spawns(&mut self) {
        self.stats.workers_spawned += std::mem::take(&mut self.fleet.fresh_spawns);
    }

    /// Attaches any queued late joiners and sends them this campaign's
    /// hello — a reconnecting (or brand-new) worker rejoins the pool
    /// mid-campaign as a fresh slot.
    fn drain_joiners(&mut self, now: Instant) {
        let mut ios = Vec::new();
        if let Some(rx) = &self.fleet.joiners {
            while let Ok(io) = rx.try_recv() {
                ios.push(io);
            }
        }
        for io in ios {
            let w = self.fleet.attach(io, now);
            self.send_hello(w, now);
        }
        self.credit_spawns();
    }

    /// Sends the campaign hello to slot `w` and resets its per-campaign
    /// bookkeeping.
    fn send_hello(&mut self, w: usize, now: Instant) {
        let hello = self.hello_msg();
        let failed = {
            let Some(slot) = self.fleet.slots[w].as_mut() else {
                return;
            };
            if !slot.alive {
                return;
            }
            slot.ready = false;
            slot.strikes = 0;
            slot.inflight = None;
            slot.last_seen = now;
            slot.last_ping = now;
            slot.hello_sent = now;
            slot.hello_resends = 0;
            write_msg(&mut slot.writer, &hello).is_err()
        };
        if failed {
            // The reader thread will also deliver the EOF; declaring
            // the death now just reclaims the slot promptly.
            self.worker_dead(w, "write failed", now);
        }
    }

    /// Receives events, blocking up to `wait` for the first one.
    fn pump_events(&mut self, wait: Duration) {
        match self.fleet.rx.recv_timeout(wait) {
            Ok(ev) => self.handle_event(ev, Instant::now()),
            Err(_) => return,
        }
        while let Ok(ev) = self.fleet.rx.try_recv() {
            self.handle_event(ev, Instant::now());
        }
    }

    /// Receives any already-queued events without blocking.
    fn drain_events(&mut self, now: Instant) {
        while let Ok(ev) = self.fleet.rx.try_recv() {
            self.handle_event(ev, now);
        }
    }

    fn point_resolved(&self, p: usize) -> bool {
        self.points[p].status != PointStatus::Active || self.abandoned.contains(&p)
    }

    fn all_resolved(&self) -> bool {
        (0..self.points.len()).all(|p| self.point_resolved(p))
    }

    /// Declares worker `w` dead: kills it, frees its slot, and fails
    /// whatever lease it held.
    fn worker_dead(&mut self, w: usize, reason: &str, now: Instant) {
        let Some(slot) = self.fleet.slots[w].as_mut() else {
            return;
        };
        if !slot.alive {
            return;
        }
        slot.alive = false;
        slot.ready = false;
        (slot.kill)();
        let inflight = slot.inflight.take();
        self.stats.worker_deaths += 1;
        self.emit(
            wlan_obs::events::DIST_WORKER_DEATH,
            &[
                ("worker", json::Value::U64(w as u64)),
                ("reason", json::Value::Str(reason.to_owned())),
            ],
        );
        if let Some(id) = inflight {
            self.fail_lease(id, &format!("worker {w} died: {reason}"), now);
        }
    }

    /// A lease attempt failed: re-dispatch with backoff, or quarantine
    /// the lease (and abandon its point) once the dispatch budget is
    /// spent.
    fn fail_lease(&mut self, id: u64, reason: &str, now: Instant) {
        let Some(lease) = self.leases.get_mut(&id) else {
            return;
        };
        if !matches!(lease.state, LeaseState::InFlight | LeaseState::Pending) {
            return;
        }
        lease.worker = None;
        lease.quars.clear();
        lease.last_error = reason.to_owned();
        if lease.attempts >= self.cfg.max_dispatches {
            lease.state = LeaseState::Quarantined;
            let (point, start, end, attempts, error) = (
                lease.point,
                lease.start,
                lease.end,
                lease.attempts,
                lease.last_error.clone(),
            );
            self.lease_quarantine.push(QuarantinedLease {
                point,
                snr_db: self.snrs[point],
                start,
                end,
                attempts,
                error,
            });
            self.emit(
                wlan_obs::events::DIST_LEASE_QUARANTINED,
                &[
                    ("lease", json::Value::U64(id)),
                    ("point", json::Value::U64(point as u64)),
                    ("attempts", json::Value::U64(attempts as u64)),
                ],
            );
            self.abandon_point(point);
        } else {
            // Exponential backoff with deterministic jitter: the jitter
            // stream is a pure function of (seed, lease, attempt), so a
            // replayed failure schedule backs off identically.
            let attempts = lease.attempts;
            let shift = (attempts.saturating_sub(1)).min(10);
            let base = self.cfg.retry_backoff_ms.saturating_mul(1 << shift);
            let jitter = (WlanRng::seed_from_u64(self.cfg.per.seed ^ 0x9e37_79b9_7f4a_7c15)
                .fork(id)
                .fork(attempts as u64)
                .next_f64()
                * (base as f64 / 2.0)) as u64;
            let backoff = base + jitter;
            lease.state = LeaseState::Pending;
            lease.not_before = now + Duration::from_millis(backoff);
            self.stats.redispatches += 1;
            self.emit(
                wlan_obs::events::DIST_REDISPATCH,
                &[
                    ("lease", json::Value::U64(id)),
                    ("attempt", json::Value::U64(attempts as u64)),
                    ("backoff_ms", json::Value::U64(backoff)),
                ],
            );
        }
    }

    /// Abandons a point: its outstanding leases are cancelled and no
    /// new ones are created. Its banked tallies stay (they are an exact
    /// prefix); its remaining trials become `Partial { remaining }`.
    fn abandon_point(&mut self, point: usize) {
        self.abandoned.insert(point);
        self.cancel_point_leases(point);
    }

    fn cancel_point_leases(&mut self, point: usize) {
        for lease in self.leases.values_mut() {
            if lease.point == point
                && matches!(lease.state, LeaseState::Pending | LeaseState::InFlight)
            {
                lease.state = LeaseState::Cancelled;
                // An in-flight worker finishes and its stale result is
                // ignored; the slot frees when Done (or death) arrives.
            }
        }
        self.completed.retain(|(p, _), _| *p != point);
    }

    /// Validates a `done` against its lease's exact round grid. Chaos
    /// transports can deliver structurally valid but damaged results;
    /// anything that fails validation is treated like a worker failure
    /// (strike + re-dispatch), never folded.
    fn valid_done(lease: &Lease, rounds: &[RoundTally]) -> bool {
        let span = lease.end - lease.start;
        let expect_rounds = span.div_ceil(ROUND_TRIALS);
        if rounds.len() as u64 != expect_rounds {
            return false;
        }
        let mut off = 0u64;
        for r in rounds {
            let want = ROUND_TRIALS.min(span - off);
            if r.trials != want || r.errors > r.trials || r.erasures > r.errors {
                return false;
            }
            // Every erasure must carry a quarantine entry for a unique
            // frame inside this round, else entries were lost in transit.
            let round_quars = lease
                .quars
                .iter()
                .filter(|(f, _)| (lease.start + off..lease.start + off + want).contains(f))
                .count() as u64;
            if round_quars != r.erasures {
                return false;
            }
            off += want;
        }
        let frames: HashSet<u64> = lease.quars.iter().map(|(f, _)| *f).collect();
        frames.len() == lease.quars.len()
            && frames.iter().all(|f| (lease.start..lease.end).contains(f))
    }

    fn handle_done(&mut self, w: usize, id: u64, rounds: Vec<RoundTally>, now: Instant) {
        if let Some(slot) = self.fleet.slots[w].as_mut() {
            if slot.inflight == Some(id) {
                slot.inflight = None;
            }
        }
        let Some(lease) = self.leases.get(&id) else {
            return;
        };
        if lease.state != LeaseState::InFlight || lease.worker != Some(w) {
            return; // stale or cancelled result
        }
        if !Self::valid_done(lease, &rounds) {
            self.strike(w, now);
            self.fail_lease(id, "result failed validation", now);
            return;
        }
        let trials: u64 = rounds.iter().map(|r| r.trials).sum();
        let Some(lease) = self.leases.get_mut(&id) else {
            return;
        };
        lease.state = LeaseState::Done;
        let key = (lease.point, lease.start);
        let quars = std::mem::take(&mut lease.quars);
        self.completed.insert(key, (rounds, quars));
        self.stats.leases_completed += 1;
        self.emit(
            wlan_obs::events::DIST_ACK,
            &[
                ("lease", json::Value::U64(id)),
                ("worker", json::Value::U64(w as u64)),
                ("trials", json::Value::U64(trials)),
            ],
        );
    }

    fn strike(&mut self, w: usize, now: Instant) {
        if let Some(slot) = self.fleet.slots[w].as_mut() {
            slot.strikes += 1;
            if slot.strikes >= 3 {
                self.worker_dead(w, "too many corrupt frames", now);
            }
        }
    }

    fn handle_event(&mut self, ev: Event, now: Instant) {
        match ev {
            Event::Eof(w) => self.worker_dead(w, "stream ended", now),
            Event::Corrupt(w) => {
                self.stats.corrupt_frames += 1;
                self.strike(w, now);
            }
            Event::Msg(w, msg) => {
                if let Some(slot) = self.fleet.slots[w].as_mut() {
                    slot.last_seen = now;
                }
                match msg {
                    Msg::Ready => {
                        if let Some(slot) = self.fleet.slots[w].as_mut() {
                            slot.ready = true;
                        }
                    }
                    Msg::Pong { .. } => {}
                    Msg::QuarTrial {
                        lease: id,
                        frame,
                        error,
                    } => {
                        if let Some(lease) = self.leases.get_mut(&id) {
                            if lease.state == LeaseState::InFlight && lease.worker == Some(w) {
                                lease.quars.push((frame, error));
                            }
                        }
                    }
                    Msg::Done { lease, rounds } => self.handle_done(w, lease, rounds, now),
                    // Coordinator-bound streams carrying coordinator
                    // messages mean chaos mangled something; ignore.
                    Msg::Hello { .. } | Msg::Lease { .. } | Msg::Ping { .. } | Msg::Shutdown => {}
                }
            }
        }
    }

    /// Folds completed leases into the per-point tallies, in frame
    /// order, applying the stopping rule at every round boundary.
    /// Returns the number of rounds folded (for checkpoint cadence).
    fn fold(&mut self, meter: &mut BudgetMeter) -> u64 {
        let mut folded = 0u64;
        for p in 0..self.points.len() {
            'point: while self.points[p].status == PointStatus::Active
                && !self.abandoned.contains(&p)
            {
                let pos = self.points[p].trials;
                let Some((rounds, quars)) = self.completed.remove(&(p, pos)) else {
                    break;
                };
                let mut off = 0u64;
                for r in &rounds {
                    // The budget caps trials *banked*, checked at the
                    // same round granularity the single-process wave
                    // loop uses; surplus results a worker already
                    // computed are discarded, keeping the tallies an
                    // exact round-aligned prefix.
                    if meter.exhausted().is_some() {
                        return folded;
                    }
                    let round_start = pos + off;
                    let round_end = round_start + r.trials;
                    let pt = &mut self.points[p];
                    pt.trials += r.trials;
                    pt.errors += r.errors;
                    pt.erasures += r.erasures;
                    meter.add_trials(r.trials);
                    folded += 1;
                    for (frame, error) in &quars {
                        if (round_start..round_end).contains(frame)
                            && self.seen_quars.insert((p, *frame))
                        {
                            self.quarantine.push(QuarantinedTrial {
                                seed: self.cfg.per.seed,
                                point: p,
                                snr_db: self.snrs[p],
                                frame: *frame,
                                error: error.clone(),
                            });
                        }
                    }
                    let status = evaluate_status(&self.points[p], &self.cfg.per);
                    self.points[p].status = status;
                    if status != PointStatus::Active {
                        // The single-process campaign never runs past a
                        // stopping decision; discard the rest unfolded.
                        self.cancel_point_leases(p);
                        break 'point;
                    }
                    off += r.trials;
                }
            }
        }
        folded
    }

    /// Creates new wave-aligned leases up to the speculation depth for
    /// every point that still owes trials.
    fn create_leases(&mut self, now: Instant) {
        for p in 0..self.points.len() {
            if self.point_resolved(p) {
                continue;
            }
            loop {
                let outstanding = self
                    .leases
                    .values()
                    .filter(|l| {
                        l.point == p
                            && matches!(l.state, LeaseState::Pending | LeaseState::InFlight)
                    })
                    .count();
                // Count buffered-but-unfolded leases against the depth
                // (their results still sit in `completed` waiting for
                // the frontier), or a stalled point would lease
                // unboundedly ahead. Folded leases stay `Done` in the
                // map but no longer hold a buffered result, so they
                // must not count — they would starve the point of new
                // leases once the first `speculation` folded.
                let done_waiting = self
                    .leases
                    .values()
                    .filter(|l| {
                        l.point == p
                            && l.state == LeaseState::Done
                            && self.completed.contains_key(&(l.point, l.start))
                    })
                    .count();
                if outstanding + done_waiting >= self.cfg.speculation.max(1)
                    || self.dispatched[p] >= self.cfg.per.max_frames
                {
                    break;
                }
                let start = self.dispatched[p];
                let end = self
                    .cfg
                    .per
                    .max_frames
                    .min(start + self.cfg.lease_rounds.max(1) * ROUND_TRIALS);
                self.dispatched[p] = end;
                let id = self.fleet.next_lease;
                self.fleet.next_lease += 1;
                self.leases.insert(
                    id,
                    Lease {
                        point: p,
                        start,
                        end,
                        attempts: 0,
                        state: LeaseState::Pending,
                        not_before: now,
                        worker: None,
                        deadline: now,
                        quars: Vec::new(),
                        last_error: String::new(),
                    },
                );
            }
        }
    }

    /// Dispatches due pending leases to idle ready workers.
    fn dispatch(&mut self, now: Instant) {
        let due: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.state == LeaseState::Pending && now >= l.not_before)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            // `worker_dead` clears `alive`, so a failed write naturally
            // drops that slot out of the next search.
            let Some(w) = (0..self.fleet.slots.len()).find(|&w| {
                self.fleet.slots[w]
                    .as_ref()
                    .map(|s| s.alive && s.ready && s.inflight.is_none())
                    .unwrap_or(false)
            }) else {
                break;
            };
            let Some(lease) = self.leases.get_mut(&id) else {
                continue;
            };
            let msg = Msg::Lease {
                id,
                point: lease.point,
                start: lease.start,
                end: lease.end,
            };
            let Some(slot) = self.fleet.slots[w].as_mut() else {
                continue;
            };
            if write_msg(&mut slot.writer, &msg).is_err() {
                // The lease stays Pending (it never reached the worker,
                // so this is not a dispatch attempt) and retries on a
                // surviving worker next pass.
                self.worker_dead(w, "write failed", now);
                continue;
            }
            lease.state = LeaseState::InFlight;
            lease.worker = Some(w);
            lease.attempts += 1;
            lease.deadline = now + self.cfg.lease_deadline(lease.start, lease.end);
            let (point, attempt) = (lease.point, lease.attempts);
            slot.inflight = Some(id);
            self.emit(
                wlan_obs::events::DIST_DISPATCH,
                &[
                    ("lease", json::Value::U64(id)),
                    ("worker", json::Value::U64(w as u64)),
                    ("point", json::Value::U64(point as u64)),
                    ("attempt", json::Value::U64(attempt as u64)),
                ],
            );
        }
    }

    /// Liveness: hello deadlines, lease deadlines, idle heartbeats.
    fn police(&mut self, now: Instant) {
        let timeout = Duration::from_millis(self.cfg.lease_timeout_ms);
        let heartbeat = Duration::from_millis(self.cfg.heartbeat_ms.max(1));
        for w in 0..self.fleet.slots.len() {
            let Some(slot) = self.fleet.slots[w].as_mut() else {
                continue;
            };
            if !slot.alive {
                continue;
            }
            if !slot.ready {
                if now.duration_since(slot.hello_sent) >= timeout {
                    if slot.hello_resends < 2 {
                        slot.hello_resends += 1;
                        slot.hello_sent = now;
                        let hello = self.hello_msg();
                        let Some(slot) = self.fleet.slots[w].as_mut() else {
                            continue;
                        };
                        if write_msg(&mut slot.writer, &hello).is_err() {
                            self.worker_dead(w, "write failed", now);
                        }
                    } else {
                        self.worker_dead(w, "never became ready", now);
                    }
                }
                continue;
            }
            if let Some(id) = slot.inflight {
                let expired = self
                    .leases
                    .get(&id)
                    .map(|l| l.state == LeaseState::InFlight && now >= l.deadline)
                    .unwrap_or(false);
                if expired {
                    self.stats.timeouts += 1;
                    let attempt = self.leases.get(&id).map(|l| l.attempts).unwrap_or(0);
                    self.emit(
                        wlan_obs::events::DIST_TIMEOUT,
                        &[
                            ("lease", json::Value::U64(id)),
                            ("worker", json::Value::U64(w as u64)),
                            ("attempt", json::Value::U64(attempt as u64)),
                        ],
                    );
                    // A worker that blows a deadline is indistinguishable
                    // from a hung one; reclaim the slot the hard way.
                    self.worker_dead(w, "lease deadline exceeded", now);
                }
            } else {
                if now.duration_since(slot.last_seen) > 4 * heartbeat {
                    self.worker_dead(w, "heartbeat silence", now);
                    continue;
                }
                if now.duration_since(slot.last_ping) >= heartbeat {
                    slot.last_ping = now;
                    let n = now.duration_since(slot.last_seen).as_millis() as u64;
                    let Some(slot) = self.fleet.slots[w].as_mut() else {
                        continue;
                    };
                    if write_msg(&mut slot.writer, &Msg::Ping { n }).is_err() {
                        self.worker_dead(w, "write failed", now);
                    }
                }
            }
        }
    }

    fn hello_msg(&self) -> Msg {
        Msg::Hello {
            seed: self.cfg.per.seed,
            payload_len: self.cfg.per.payload_len,
            link: self.link_id.clone(),
            fault: self.fault_id.clone(),
            snrs: self.snrs.clone(),
        }
    }

    /// Runs one pending lease on the coordinator's own thread — the
    /// graceful-degradation path once every worker is gone. Inline
    /// execution uses the same [`run_lease`] the workers do, so results
    /// stay bit-identical; it simply cannot fail or time out.
    fn run_inline(&mut self, id: u64, link: &dyn PhyLink, faults: &FaultChain) {
        let Some(lease) = self.leases.get_mut(&id) else {
            return;
        };
        if lease.state != LeaseState::Pending {
            return;
        }
        lease.state = LeaseState::Done;
        lease.attempts += 1;
        let (point, start, end) = (lease.point, lease.start, lease.end);
        let (rounds, quars) = run_lease(
            link,
            faults,
            self.cfg.per.seed,
            self.cfg.per.payload_len,
            LeaseJob {
                point,
                snr_db: self.snrs[point],
                start,
                end,
            },
        );
        self.completed.insert((point, start), (rounds, quars));
        self.stats.fallback_leases += 1;
        self.stats.leases_completed += 1;
    }

    fn checkpoint(&self, key: &str) -> Result<(), JournalError> {
        let Some(path) = self.cfg.per.journal.as_deref() else {
            return Ok(());
        };
        // Ledgers first, tallies after — the same salvage-consistency
        // ordering the single-process campaign uses (lost tallies re-run
        // and their quarantine entries deduplicate; a tally never
        // survives without its ledger entries).
        let mut body: Vec<String> = self.quarantine.iter().map(QuarantinedTrial::to_line).collect();
        body.extend(self.lease_quarantine.iter().map(QuarantinedLease::to_line));
        body.extend(self.points.iter().enumerate().map(|(i, p)| p.to_line(i)));
        journal::save(path, key, &body)
    }
}

/// Runs (or resumes) a distributed PER campaign over a worker fleet.
///
/// Per-point tallies, stopping decisions, and the trial-quarantine
/// ledger are bit-identical to
/// [`run_per_campaign`](wlan_runner::per::run_per_campaign) with the
/// same [`PerCampaignConfig`] — for any worker count, any kill
/// schedule, and the in-process fallback (see the module docs for the
/// argument, and `tests/tests/dist_chaos.rs` for the harness pinning
/// it).
///
/// This is the one-shot entry point: it spawns `cfg.workers` workers
/// from `factory`, runs the campaign, and shuts the fleet down. To run
/// several campaigns back-to-back on one fleet (or over TCP joiners),
/// build a [`Fleet`] yourself and call [`run_dist_per_campaign_on`].
///
/// # Panics
///
/// Panics on a vacuous configuration, with the same preconditions as
/// the single-process campaign (no SNR points, zero payload, zero
/// frames).
pub fn run_dist_per_campaign(
    link_spec: LinkSpec,
    fault_spec: FaultSpec,
    cfg: &DistConfig,
    factory: &mut dyn WorkerFactory,
) -> DistPerReport {
    let mut fleet = Fleet::spawn(cfg.workers, factory);
    let report = run_dist_per_campaign_on(link_spec, fault_spec, cfg, &mut fleet, "", None);
    fleet.shutdown();
    report
}

/// Runs (or resumes) one distributed PER campaign over an existing
/// [`Fleet`], leaving the fleet connected for the next campaign.
///
/// `key_suffix` is appended verbatim to the journal key — a
/// `campaign serve` service uses it to bind each queued campaign's
/// journal entry to its listen address and queue position, so two
/// services sharing a journal file never cross-resume. Pass `""` for
/// the classic one-shot identity.
///
/// `stop` is a cooperative drain flag: once it reads `true`, no new
/// leases are created or dispatched, in-flight leases are allowed to
/// finish (still policed by their deadlines), and the campaign exits
/// with [`StopReason::Interrupted`] — checkpointed, so a later run
/// resumes bit-identically where the drain stopped.
///
/// # Panics
///
/// Same preconditions as [`run_dist_per_campaign`].
pub fn run_dist_per_campaign_on(
    link_spec: LinkSpec,
    fault_spec: FaultSpec,
    cfg: &DistConfig,
    fleet: &mut Fleet,
    key_suffix: &str,
    stop: Option<&std::sync::atomic::AtomicBool>,
) -> DistPerReport {
    assert!(!cfg.per.snrs_db.is_empty(), "need at least one SNR point");
    assert!(cfg.per.payload_len > 0, "payload must be nonempty");
    assert!(cfg.per.max_frames > 0, "need at least one frame per point");
    assert!(cfg.per.min_frames > 0, "min_frames must be at least 1");

    let link = link_spec.build();
    let faults = fault_spec.build();
    // Same campaign identity as the single-process journal key, plus a
    // marker so the two journal families never collide on one path.
    let key = format!(
        "{} dist v1{key_suffix}",
        cfg.per.journal_key(link.as_ref(), &faults)
    );

    let (points, quarantine, resume) = restore_dist(&cfg.per, &key);
    let banked: u64 = points.iter().map(|p| p.trials).sum();
    let mut meter = BudgetMeter::resumed(cfg.per.budget, banked);
    let mut journal_error: Option<JournalError> = None;

    let obs = wlan_obs::global();
    let start = Instant::now();

    let seen_quars: HashSet<(usize, u64)> =
        quarantine.iter().map(|q| (q.point, q.frame)).collect();
    let mut coord = Coord {
        cfg,
        fleet,
        link_id: link_spec.id(),
        fault_id: fault_spec.id(),
        snrs: cfg.per.snrs_db.clone(),
        points,
        quarantine,
        seen_quars,
        lease_quarantine: Vec::new(),
        abandoned: HashSet::new(),
        leases: BTreeMap::new(),
        dispatched: Vec::new(),
        completed: HashMap::new(),
        stats: DistStats::default(),
        obs,
    };
    // Take credit for the fleet's existing spawns, then (re)hello every
    // connected worker — a fleet that just finished campaign N has
    // slots whose per-campaign state (ready, strikes, inflight) belongs
    // to N; the hello reset scrubs it for this campaign.
    coord.credit_spawns();
    for w in 0..coord.fleet.slots.len() {
        coord.send_hello(w, start);
    }
    for p in &mut coord.points {
        p.status = evaluate_status(p, &cfg.per);
    }
    coord.dispatched = coord.points.iter().map(|p| p.trials).collect();

    obs.event(
        "campaign_start",
        &[
            ("kind", json::Value::Str("dist_per".into())),
            ("link", json::Value::Str(link.name())),
            ("workers", json::Value::U64(cfg.workers as u64)),
            ("banked_trials", json::Value::U64(banked)),
        ],
    );

    let mut chaos_done = false;
    let mut fallback_announced = false;
    let mut rounds_since_checkpoint: u64 = 0;
    let stop_reason = loop {
        let now = Instant::now();
        // Joiners first: a worker queued before the campaign started (or
        // one reconnecting right now) must be attached before the
        // zero-workers fallback/abandon decision below sees the fleet.
        coord.drain_joiners(now);
        if let Some(ms) = cfg.chaos_kill_after_ms {
            if !chaos_done && now.duration_since(start) >= Duration::from_millis(ms) {
                chaos_done = true;
                let victims: Vec<usize> = (0..coord.fleet.slots.len())
                    .filter(|&w| {
                        coord.fleet.slots[w]
                            .as_ref()
                            .map(|s| s.alive)
                            .unwrap_or(false)
                    })
                    .take(cfg.chaos_kill_count)
                    .collect();
                for w in victims {
                    coord.worker_dead(w, "chaos kill", now);
                }
            }
        }

        let folded = coord.fold(&mut meter);
        rounds_since_checkpoint += folded;
        if folded > 0 && rounds_since_checkpoint >= cfg.per.checkpoint_every_rounds {
            rounds_since_checkpoint = 0;
            if let Err(e) = coord.checkpoint(&key) {
                journal_error.get_or_insert(e);
            }
        }
        if coord.all_resolved() {
            break None;
        }
        if let Some(reason) = meter.exhausted() {
            break Some(reason);
        }

        // Cooperative drain: stop creating and dispatching work, let
        // in-flight leases finish (deadlines still policed so a hung
        // worker cannot wedge the drain), fold what arrives, and exit
        // Interrupted once nothing is in flight. The checkpoint below
        // makes the drained state the resume point.
        if stop.is_some_and(|s| s.load(std::sync::atomic::Ordering::Relaxed)) {
            let inflight = coord
                .leases
                .values()
                .any(|l| l.state == LeaseState::InFlight);
            if !inflight {
                break Some(StopReason::Interrupted);
            }
            coord.police(now);
            coord.pump_events(Duration::from_millis(5));
            continue;
        }

        coord.police(now);
        coord.create_leases(now);
        coord.dispatch(now);

        if coord.alive_workers() == 0 {
            if !cfg.fallback_in_process {
                break Some(StopReason::Abandoned);
            }
            let pending: Vec<u64> = coord
                .leases
                .iter()
                .filter(|(_, l)| l.state == LeaseState::Pending)
                .map(|(id, _)| *id)
                .collect();
            if !fallback_announced {
                fallback_announced = true;
                coord.emit(
                    wlan_obs::events::DIST_FALLBACK,
                    &[("leases_left", json::Value::U64(pending.len() as u64))],
                );
            }
            if let Some(&id) = pending.first() {
                coord.run_inline(id, link.as_ref(), &faults);
            }
            coord.drain_events(now);
            continue;
        }

        coord.pump_events(Duration::from_millis(5));
    };

    // Final checkpoint: a budget-stopped campaign resumes from its exact
    // exit state; a complete one re-loads as complete.
    if let Err(e) = coord.checkpoint(&key) {
        journal_error.get_or_insert(e);
    }

    let mut outcome = Outcome::Complete;
    for (p, pt) in coord.points.iter().enumerate() {
        if pt.status == PointStatus::Active {
            let reason = if coord.abandoned.contains(&p) {
                StopReason::Abandoned
            } else {
                stop_reason.unwrap_or(StopReason::Abandoned)
            };
            outcome = outcome.merge(Outcome::Partial {
                completed: pt.trials,
                remaining: cfg.per.max_frames - pt.trials,
                reason,
            });
        }
    }
    // `merge` summed only the unfinished points' trials; report
    // `completed` over the whole campaign, finished points included.
    if let Outcome::Partial {
        remaining, reason, ..
    } = outcome
    {
        outcome = Outcome::Partial {
            completed: coord.points.iter().map(|p| p.trials).sum(),
            remaining,
            reason,
        };
    }

    coord.quarantine.sort_by_key(|q| (q.point, q.frame));
    coord.lease_quarantine.sort_by_key(|q| (q.point, q.start));

    obs.event(
        "campaign_done",
        &[
            ("kind", json::Value::Str("dist_per".into())),
            ("complete", json::Value::Bool(outcome.is_complete())),
            (
                "banked_trials",
                json::Value::U64(coord.points.iter().map(|p| p.trials).sum()),
            ),
            ("worker_deaths", json::Value::U64(coord.stats.worker_deaths)),
            ("quarantined", json::Value::U64(coord.quarantine.len() as u64)),
        ],
    );

    DistPerReport {
        name: link.name(),
        fault: faults.name(),
        rate_mbps: link.rate_mbps(),
        seed: cfg.per.seed,
        points: coord.points,
        quarantine: coord.quarantine,
        lease_quarantine: coord.lease_quarantine,
        outcome,
        resume,
        journal_error,
        stats: coord.stats,
    }
}

/// Loads distributed-campaign state from the journal (verified,
/// salvaged, or cold-started) — the same tolerance ladder as the
/// single-process campaign, plus `qlease` ledger lines, which are
/// validated but *not* restored: a re-invocation retries abandoned
/// ranges fresh rather than inheriting last run's fleet failures.
fn restore_dist(
    cfg: &PerCampaignConfig,
    key: &str,
) -> (Vec<PointProgress>, Vec<QuarantinedTrial>, Resume) {
    let Some(path) = cfg.journal.as_deref() else {
        return (fresh_points(cfg), Vec::new(), Resume::Fresh);
    };
    match journal::load_salvage(path, key) {
        (body, None) => match parse_dist_body(cfg, &body, true) {
            Ok((points, quarantine)) => {
                let trials = points.iter().map(|p| p.trials).sum();
                (points, quarantine, Resume::Resumed { trials })
            }
            Err(error) => (fresh_points(cfg), Vec::new(), Resume::ColdStart { error }),
        },
        (_, Some(JournalError::Io(std::io::ErrorKind::NotFound))) => {
            (fresh_points(cfg), Vec::new(), Resume::Fresh)
        }
        (body, Some(error)) => match parse_dist_body(cfg, &body, false) {
            Ok((points, quarantine))
                if points.iter().any(|p| p.trials > 0) || !quarantine.is_empty() =>
            {
                let trials = points.iter().map(|p| p.trials).sum();
                (points, quarantine, Resume::Salvaged { trials, error })
            }
            _ => (fresh_points(cfg), Vec::new(), Resume::ColdStart { error }),
        },
    }
}

fn parse_dist_body(
    cfg: &PerCampaignConfig,
    body: &[String],
    complete: bool,
) -> Result<(Vec<PointProgress>, Vec<QuarantinedTrial>), JournalError> {
    let mut points: Vec<PointProgress> = Vec::with_capacity(cfg.snrs_db.len());
    let mut quarantine = Vec::new();
    for (idx, line) in body.iter().enumerate() {
        // Body line `idx` sits at file line `idx + 3` (header, key first).
        let malformed = JournalError::Malformed { line: idx + 3 };
        if line.starts_with("point ") {
            let Some((i, trials, errors, erasures, status)) = parse_point_line(line) else {
                return Err(malformed);
            };
            // Distributed folds stop only at round boundaries, so any
            // restored frontier must sit on the lease grid.
            let aligned = trials % ROUND_TRIALS == 0 || trials == cfg.max_frames;
            let in_bounds = i == points.len() && i < cfg.snrs_db.len() && trials <= cfg.max_frames;
            if !in_bounds || !aligned || errors > trials || erasures > errors {
                return Err(malformed);
            }
            points.push(PointProgress {
                snr_db: cfg.snrs_db[i],
                trials,
                errors,
                erasures,
                status,
            });
        } else if line.starts_with("quar ") {
            let Some(q) = QuarantinedTrial::from_line(line, cfg.seed) else {
                return Err(malformed);
            };
            quarantine.push(q);
        } else if line.starts_with("qlease ") {
            if QuarantinedLease::from_line(line).is_none() {
                return Err(malformed);
            }
        } else {
            return Err(malformed);
        }
    }
    if complete && points.len() != cfg.snrs_db.len() {
        return Err(JournalError::Truncated);
    }
    while points.len() < cfg.snrs_db.len() {
        points.push(PointProgress {
            snr_db: cfg.snrs_db[points.len()],
            trials: 0,
            errors: 0,
            erasures: 0,
            status: PointStatus::Active,
        });
    }
    Ok((points, quarantine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_runner::budget::Budget;
    use wlan_runner::per::run_per_campaign;

    fn base_per() -> PerCampaignConfig {
        PerCampaignConfig::new(&[2.0, 5.0, 8.0], 20, 64, 99)
            .with_budget(Budget::unlimited())
            .with_threads(1)
    }

    fn sorted_quarantine(mut q: Vec<QuarantinedTrial>) -> Vec<QuarantinedTrial> {
        q.sort_by(|a, b| (a.point, a.frame).cmp(&(b.point, b.frame)));
        q
    }

    #[test]
    fn one_worker_matches_single_process_bit_exactly() {
        let spec = LinkSpec::Fhss;
        let fault = FaultSpec::Clean;
        let baseline = run_per_campaign(&*spec.build(), &fault.build(), &base_per());

        let cfg = DistConfig::new(base_per(), 1);
        let mut factory = InProcessFactory::clean();
        let report = run_dist_per_campaign(spec, fault, &cfg, &mut factory);

        assert!(report.outcome.is_complete());
        assert_eq!(report.points, baseline.points);
        assert_eq!(
            report.quarantine,
            sorted_quarantine(baseline.quarantine.clone())
        );
        assert!(report.lease_quarantine.is_empty());
        assert_eq!(report.stats.worker_deaths, 0);
    }

    /// Points longer than `speculation × lease_rounds × 32` frames need
    /// the coordinator to keep minting leases *after* the first batch
    /// folds. (Regression: folded leases stay `Done` in the lease map;
    /// counting them against the speculation depth starved every long
    /// point after its first two leases, hanging the campaign.)
    #[test]
    fn long_points_keep_leasing_past_the_speculation_depth() {
        let spec = LinkSpec::Fhss;
        let fault = FaultSpec::Clean;
        // 320 frames per point: with lease_rounds=4 (128 trials) and
        // speculation=2, completing a point takes 3 lease generations.
        let per = PerCampaignConfig::new(&[2.0, 5.0], 20, 320, 99)
            .with_budget(Budget::unlimited())
            .with_threads(1);
        let baseline = run_per_campaign(&*spec.build(), &fault.build(), &per);

        for workers in [1usize, 2] {
            let cfg = DistConfig::new(per.clone(), workers);
            let mut factory = InProcessFactory::clean();
            let report = run_dist_per_campaign(spec, fault, &cfg, &mut factory);
            assert!(report.outcome.is_complete(), "workers={workers}");
            assert_eq!(report.points, baseline.points, "workers={workers}");
        }
    }

    #[test]
    fn three_workers_with_erasures_match_single_process() {
        let spec = LinkSpec::Fhss;
        let fault = FaultSpec::Single {
            kind: wlan_fault::FaultKind::FrameTruncation,
            severity: 1.0,
        };
        let baseline = run_per_campaign(&*spec.build(), &fault.build(), &base_per());
        assert!(
            !baseline.quarantine.is_empty(),
            "need erasures to test ledger merging"
        );

        let cfg = DistConfig::new(base_per(), 3);
        let mut factory = InProcessFactory::clean();
        let report = run_dist_per_campaign(spec, fault, &cfg, &mut factory);

        assert_eq!(report.points, baseline.points);
        assert_eq!(report.quarantine, sorted_quarantine(baseline.quarantine));
    }

    #[test]
    fn zero_workers_fall_back_in_process() {
        let spec = LinkSpec::Fhss;
        let fault = FaultSpec::Clean;
        let baseline = run_per_campaign(&*spec.build(), &fault.build(), &base_per());

        let cfg = DistConfig::new(base_per(), 0);
        let mut factory = InProcessFactory::clean();
        let report = run_dist_per_campaign(spec, fault, &cfg, &mut factory);

        assert!(report.outcome.is_complete());
        assert_eq!(report.points, baseline.points);
        assert!(report.stats.fallback_leases > 0);
        assert_eq!(report.stats.workers_spawned, 0);
    }

    #[test]
    fn fleet_loss_without_fallback_abandons() {
        let cfg = DistConfig::new(base_per(), 0).without_fallback();
        let mut factory = InProcessFactory::clean();
        let report = run_dist_per_campaign(LinkSpec::Fhss, FaultSpec::Clean, &cfg, &mut factory);
        let Outcome::Partial {
            completed,
            remaining,
            reason,
        } = report.outcome
        else {
            panic!("expected partial, got {:?}", report.outcome);
        };
        assert_eq!(completed, 0);
        assert_eq!(remaining, 3 * 64);
        assert_eq!(reason, StopReason::Abandoned);
    }

    #[test]
    fn early_stopping_folds_at_the_same_boundaries() {
        // Leases run 4 rounds ahead, but the coordinator must stop a
        // point exactly where the single-process wave loop would, and
        // discard the surplus rounds unfolded.
        let mut per = PerCampaignConfig::new(&[12.0], 20, 4096, 7)
            .with_budget(Budget::unlimited())
            .with_threads(1)
            .with_target_half_width(0.05);
        per.min_frames = 32;
        let baseline = run_per_campaign(&FhssLinkForTest, &FaultChain::clean(), &per);

        let cfg = DistConfig::new(per, 2);
        let mut factory = InProcessFactory::clean();
        let report = run_dist_per_campaign(LinkSpec::Fhss, FaultSpec::Clean, &cfg, &mut factory);
        assert_eq!(report.points, baseline.points);
        assert_eq!(report.points[0].status, PointStatus::StoppedEarly);
    }

    use wlan_core::linksim::FhssLink as FhssLinkForTest;

    #[test]
    fn trial_budget_yields_aggregated_partial() {
        // 3 points x 64 frames = 192 trials of work under a 96-trial
        // budget: banking stops at the 96-trial round boundary and the
        // merged outcome owes exactly the rest.
        let per = base_per().with_budget(Budget::unlimited().with_max_trials(96));
        let cfg = DistConfig::new(per, 2);
        let mut factory = InProcessFactory::clean();
        let report = run_dist_per_campaign(LinkSpec::Fhss, FaultSpec::Clean, &cfg, &mut factory);
        let Outcome::Partial {
            completed,
            remaining,
            reason,
        } = report.outcome
        else {
            panic!("expected partial, got {:?}", report.outcome);
        };
        assert_eq!(reason, StopReason::TrialBudget);
        assert_eq!(completed, 96);
        assert_eq!(remaining, 96);
        assert_eq!(report.completed_trials(), 96);
        assert_eq!(
            report.points.iter().map(|p| p.trials % ROUND_TRIALS).sum::<u64>(),
            0,
            "budget stops land on round boundaries"
        );
    }

    #[test]
    fn chaos_kill_mid_run_still_matches_single_process() {
        let spec = LinkSpec::Fhss;
        let fault = FaultSpec::Clean;
        let baseline = run_per_campaign(&*spec.build(), &fault.build(), &base_per());

        // Kill 2 of 3 workers essentially immediately: the survivors
        // (or the fallback) must still produce identical results.
        let cfg = DistConfig::new(base_per(), 3)
            .with_chaos_kill(1, 2)
            .with_lease_timeout_ms(2_000)
            .with_heartbeat_ms(50);
        let mut factory = InProcessFactory::clean();
        let report = run_dist_per_campaign(spec, fault, &cfg, &mut factory);
        assert!(report.outcome.is_complete(), "{:?}", report.outcome);
        assert_eq!(report.points, baseline.points);
        assert!(report.stats.worker_deaths >= 2);
    }

    #[test]
    fn qlease_line_round_trips() {
        let q = QuarantinedLease {
            point: 2,
            snr_db: -1.5,
            start: 64,
            end: 192,
            attempts: 3,
            error: "worker 1 died: stream ended".to_owned(),
        };
        assert_eq!(QuarantinedLease::from_line(&q.to_line()), Some(q));
        assert_eq!(QuarantinedLease::from_line("qlease nope"), None);
        assert_eq!(
            QuarantinedLease::from_line(
                "qlease point=0 start=64 end=64 attempts=1 snr=0000000000000000 error=x"
            ),
            None,
            "empty ranges are malformed"
        );
    }

    #[test]
    fn journal_resume_is_bit_identical_across_invocations() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wlan_dist_resume_{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let baseline = run_per_campaign(
            &FhssLinkForTest,
            &FaultChain::clean(),
            &base_per(),
        );

        // Budget-interrupt after every 32 banked trials, resuming each
        // time, until complete.
        let mut completed = 0u64;
        let mut invocations = 0;
        let report = loop {
            let per = base_per()
                .with_journal(path.clone())
                .with_budget(Budget::unlimited().with_max_trials(completed + 1));
            let cfg = DistConfig::new(per, 1);
            let mut factory = InProcessFactory::clean();
            let r = run_dist_per_campaign(LinkSpec::Fhss, FaultSpec::Clean, &cfg, &mut factory);
            assert!(r.journal_error.is_none(), "{:?}", r.journal_error);
            invocations += 1;
            assert!(invocations < 100, "failed to converge");
            completed = r.completed_trials();
            if r.outcome.is_complete() {
                break r;
            }
        };
        assert!(invocations > 1, "interruption never happened");
        assert_eq!(report.points, baseline.points);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lease_deadline_scales_with_rounds() {
        let cfg = DistConfig::new(base_per(), 1).with_lease_timeout_ms(100);
        // One round (or less) gets the base deadline.
        assert_eq!(cfg.lease_deadline(0, 32), Duration::from_millis(100));
        assert_eq!(cfg.lease_deadline(5, 5), Duration::from_millis(100));
        // Four rounds get four times the base.
        assert_eq!(cfg.lease_deadline(0, 128), Duration::from_millis(400));
        // Partial rounds round up.
        assert_eq!(cfg.lease_deadline(64, 97), Duration::from_millis(200));
    }

    /// The bugfix test for flat per-lease deadlines: a multi-round lease
    /// on a slow transport must get proportionally more time. With the
    /// old flat deadline this configuration timed out its only worker's
    /// first lease, killed the worker, and abandoned the campaign.
    #[test]
    fn multi_round_leases_get_scaled_deadlines() {
        let spec = LinkSpec::Fhss;
        let fault = FaultSpec::Clean;
        // One point of 256 frames, leased as a single 8-round lease.
        let per = PerCampaignConfig::new(&[2.0], 20, 256, 99)
            .with_budget(Budget::unlimited())
            .with_threads(1);
        let baseline = run_per_campaign(&*spec.build(), &fault.build(), &per);

        // Every worker→coordinator line crosses a relay that stalls it
        // 500 ms (and lines queue serially behind each other): far over
        // the old flat 300 ms deadline, comfortably under the scaled
        // 8 × 300 ms one.
        let mut cfg = DistConfig::new(per, 1)
            .with_lease_timeout_ms(300)
            .without_fallback();
        cfg.lease_rounds = 8;
        let mut factory = InProcessFactory {
            to_worker: TransportFaults::none(),
            from_worker: TransportFaults {
                stall: 1.0,
                stall_ms: 500,
                ..TransportFaults::none()
            },
            relay_seed: 0,
        };
        let report = run_dist_per_campaign(spec, fault, &cfg, &mut factory);
        assert!(report.outcome.is_complete(), "{:?}", report.outcome);
        assert_eq!(report.stats.timeouts, 0, "healthy progress must not time out");
        assert_eq!(report.points, baseline.points);
    }

    #[test]
    fn one_fleet_runs_queued_campaigns_back_to_back() {
        // Two different campaigns over the same two workers; each must
        // match its own one-shot baseline bit-exactly, and the second
        // must not have needed fresh spawns.
        let per_a = base_per();
        let per_b = PerCampaignConfig::new(&[1.0, 4.0], 24, 96, 1234)
            .with_budget(Budget::unlimited())
            .with_threads(1);
        let base_a = run_per_campaign(
            &*LinkSpec::Fhss.build(),
            &FaultChain::clean(),
            &per_a,
        );
        let base_b = run_per_campaign(
            &*LinkSpec::Dsss(wlan_core::dsss::DsssRate::Dqpsk2M).build(),
            &FaultChain::clean(),
            &per_b,
        );

        let mut factory = InProcessFactory::clean();
        let mut fleet = Fleet::spawn(2, &mut factory);
        let cfg_a = DistConfig::new(per_a, 2);
        let ra = run_dist_per_campaign_on(LinkSpec::Fhss, FaultSpec::Clean, &cfg_a, &mut fleet, "", None);
        let cfg_b = DistConfig::new(per_b, 2);
        let rb = run_dist_per_campaign_on(
            LinkSpec::Dsss(wlan_core::dsss::DsssRate::Dqpsk2M),
            FaultSpec::Clean,
            &cfg_b,
            &mut fleet,
            "",
            None,
        );
        fleet.shutdown();

        assert!(ra.outcome.is_complete() && rb.outcome.is_complete());
        assert_eq!(ra.points, base_a.points);
        assert_eq!(rb.points, base_b.points);
        assert_eq!(ra.stats.workers_spawned, 2);
        assert_eq!(rb.stats.workers_spawned, 0, "campaign 2 reuses the fleet");
        assert_eq!(rb.stats.worker_deaths, 0);
    }

    #[test]
    fn queued_joiner_is_attached_before_fallback_decision() {
        // A worker queued on the joiners channel before the campaign
        // starts must be attached before the zero-workers abandon/
        // fallback decision — even with fallback disabled, the campaign
        // completes on the joiner.
        let (tx, rx) = mpsc::channel();
        let mut factory = InProcessFactory::clean();
        let io = factory.spawn(0).expect("in-process spawn is infallible");
        tx.send(io).expect("queue the joiner");

        let baseline = run_per_campaign(
            &*LinkSpec::Fhss.build(),
            &FaultChain::clean(),
            &base_per(),
        );
        let cfg = DistConfig::new(base_per(), 0).without_fallback();
        let mut fleet = Fleet::from_joiners(rx);
        let report =
            run_dist_per_campaign_on(LinkSpec::Fhss, FaultSpec::Clean, &cfg, &mut fleet, "", None);
        fleet.shutdown();

        assert!(report.outcome.is_complete(), "{:?}", report.outcome);
        assert_eq!(report.points, baseline.points);
        assert_eq!(report.stats.workers_spawned, 1);
        assert_eq!(report.stats.fallback_leases, 0);
    }

    #[test]
    fn late_joiner_attaches_mid_campaign() {
        // 320 frames per point keeps the campaign busy long enough for
        // a second worker to dial in halfway; results stay bit-identical.
        let per = PerCampaignConfig::new(&[2.0, 5.0], 20, 320, 99)
            .with_budget(Budget::unlimited())
            .with_threads(1);
        let baseline = run_per_campaign(&*LinkSpec::Fhss.build(), &FaultChain::clean(), &per);

        let (tx, rx) = mpsc::channel();
        let mut factory = InProcessFactory::clean();
        let first = factory.spawn(0).expect("spawn");
        tx.send(first).expect("queue the first worker");
        let late = factory.spawn(1).expect("spawn");
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let _ = tx.send(late);
        });

        let cfg = DistConfig::new(per, 0).without_fallback();
        let mut fleet = Fleet::from_joiners(rx);
        let report =
            run_dist_per_campaign_on(LinkSpec::Fhss, FaultSpec::Clean, &cfg, &mut fleet, "", None);
        fleet.shutdown();

        assert!(report.outcome.is_complete(), "{:?}", report.outcome);
        assert_eq!(report.points, baseline.points);
        assert!(report.stats.workers_spawned >= 1);
    }

    #[test]
    fn stop_flag_drains_and_interrupts_then_resumes_bit_identically() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wlan_dist_stop_{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let baseline = run_per_campaign(
            &FhssLinkForTest,
            &FaultChain::clean(),
            &base_per(),
        );

        // Stop requested before the first lease: the campaign must exit
        // Interrupted without dispatching anything, checkpointed.
        let stop = std::sync::atomic::AtomicBool::new(true);
        let per = base_per().with_journal(path.clone());
        let cfg = DistConfig::new(per.clone(), 1);
        let mut factory = InProcessFactory::clean();
        let mut fleet = Fleet::spawn(1, &mut factory);
        let interrupted = run_dist_per_campaign_on(
            LinkSpec::Fhss,
            FaultSpec::Clean,
            &cfg,
            &mut fleet,
            "",
            Some(&stop),
        );
        fleet.shutdown();
        let Outcome::Partial { reason, .. } = interrupted.outcome else {
            panic!("expected partial, got {:?}", interrupted.outcome);
        };
        assert_eq!(reason, StopReason::Interrupted);

        // Re-run without the stop flag: resumes and completes with
        // bit-identical results.
        let cfg = DistConfig::new(per, 1);
        let mut factory = InProcessFactory::clean();
        let resumed = run_dist_per_campaign(LinkSpec::Fhss, FaultSpec::Clean, &cfg, &mut factory);
        assert!(resumed.outcome.is_complete(), "{:?}", resumed.outcome);
        assert_eq!(resumed.points, baseline.points);
        let _ = std::fs::remove_file(&path);
    }
}
