//! The coordinator↔worker wire protocol.
//!
//! Every message travels as one newline-terminated, length-prefixed,
//! FNV-checksummed frame:
//!
//! ```text
//! WLND <len> <fnv64hex> <payload>\n
//! ```
//!
//! `len` is the decimal byte length of `payload`; `fnv64hex` is the
//! 16-hex-digit FNV-1a-64 digest of the payload bytes (the same hash the
//! checkpoint journals use). Payloads are single-line, space-separated
//! `key=value` text — human-greppable in a captured stream, and every
//! numeric field is either an exact integer or an IEEE-754 bit pattern
//! in hex, so nothing loses precision in flight.
//!
//! # Corruption model
//!
//! The transport under this protocol is a pipe pair to a subprocess —
//! or, in the chaos harness, a relay deliberately dropping, duplicating,
//! truncating and bit-flipping frames ([`wlan_fault::TransportFaults`]).
//! The framing is designed so any such damage is *detected and
//! contained to one frame*:
//!
//! * a flipped bit fails the checksum;
//! * a truncated frame either fails the length check or (cut before the
//!   newline) merges with the next line into one unparsable lump;
//! * readers resynchronise at the next newline, so one damaged frame
//!   never desyncs the stream.
//!
//! Decoding therefore distinguishes *end of stream* ([`read_frame`]
//! returning `Ok(None)`) from *damaged frame* (`Err`), and never panics
//! on any input.

use std::io::{BufRead, Write};

use wlan_runner::journal::{f64_from_hex, f64_to_hex, fnv1a64, kv, kv_u64};

/// Frame prefix magic.
pub const MAGIC: &str = "WLND";
/// Hard cap on a frame's payload length: no legitimate message comes
/// close, and the cap stops a corrupted length field from asking the
/// reader to buffer gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(std::io::ErrorKind),
    /// The line is not `WLND <len> <sum> <payload>` (bad magic, bad
    /// length field, missing separators, or stream cut mid-line).
    Malformed,
    /// The payload length disagrees with the length field.
    LengthMismatch,
    /// The payload checksum disagrees with the checksum field.
    ChecksumMismatch,
    /// The frame was intact but the payload is not a known message.
    UnknownMessage,
    /// The payload length field exceeds [`MAX_FRAME`].
    Oversized,
    /// The peers speak different protocol versions or were built from
    /// different experiment catalogs — leases from one would be
    /// meaningless (or silently *wrong*) on the other, so the handshake
    /// refuses the connection instead. Terminal: reconnecting with the
    /// same binary cannot help, so backoff loops must not retry it.
    Incompatible {
        /// This side's identity, e.g. `v1 catalog=58f9…`.
        ours: String,
        /// What the peer advertised.
        theirs: String,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(kind) => write!(f, "transport error: {kind:?}"),
            ProtoError::Malformed => write!(f, "malformed frame"),
            ProtoError::LengthMismatch => write!(f, "frame length mismatch"),
            ProtoError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            ProtoError::UnknownMessage => write!(f, "unknown message"),
            ProtoError::Oversized => write!(f, "frame exceeds size cap"),
            ProtoError::Incompatible { ours, theirs } => {
                write!(f, "incompatible peer: we are [{ours}], peer is [{theirs}]")
            }
        }
    }
}

/// Encodes `payload` as one wire frame (with trailing newline).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 32);
    out.extend_from_slice(
        format!("{MAGIC} {} {:016x} ", payload.len(), fnv1a64(payload)).as_bytes(),
    );
    out.extend_from_slice(payload);
    out.push(b'\n');
    out
}

/// Reads one frame from `r`: `Ok(Some(payload))` on success, `Ok(None)`
/// on clean end-of-stream, `Err` on a damaged frame (the stream remains
/// usable — the reader consumed exactly one line).
pub fn read_frame(r: &mut impl BufRead) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut line = Vec::new();
    // Bounded read: take_ref style guards live in decode; read_until on
    // a hostile stream is bounded by the next newline, and a newline-free
    // flood is cut off at 2×MAX_FRAME by reading through a Take adapter.
    let mut limited = std::io::Read::take(&mut *r, 2 * MAX_FRAME as u64);
    let n = limited
        .read_until(b'\n', &mut line)
        .map_err(|e| ProtoError::Io(e.kind()))?;
    if n == 0 {
        return Ok(None);
    }
    if line.last() != Some(&b'\n') {
        // Stream ended (or size cap hit) mid-line: a torn final frame.
        return Err(ProtoError::Malformed);
    }
    line.pop();
    decode_frame(&line).map(Some)
}

/// Decodes one frame line (without its trailing newline) into its
/// payload, verifying length and checksum.
pub fn decode_frame(line: &[u8]) -> Result<Vec<u8>, ProtoError> {
    let rest = line
        .strip_prefix(MAGIC.as_bytes())
        .and_then(|r| r.strip_prefix(b" "))
        .ok_or(ProtoError::Malformed)?;
    let sp1 = rest
        .iter()
        .position(|&b| b == b' ')
        .ok_or(ProtoError::Malformed)?;
    let len: usize = std::str::from_utf8(&rest[..sp1])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(ProtoError::Malformed)?;
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized);
    }
    let rest = &rest[sp1 + 1..];
    let sp2 = rest
        .iter()
        .position(|&b| b == b' ')
        .ok_or(ProtoError::Malformed)?;
    let sum = std::str::from_utf8(&rest[..sp2])
        .ok()
        .filter(|s| s.len() == 16)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or(ProtoError::Malformed)?;
    let payload = &rest[sp2 + 1..];
    if payload.len() != len {
        return Err(ProtoError::LengthMismatch);
    }
    if fnv1a64(payload) != sum {
        return Err(ProtoError::ChecksumMismatch);
    }
    Ok(payload.to_vec())
}

/// Writes one message as a frame and flushes (pipes deliver nothing
/// until flushed).
pub fn write_msg(w: &mut impl Write, msg: &Msg) -> std::io::Result<()> {
    w.write_all(&encode_frame(msg.to_payload().as_bytes()))?;
    w.flush()
}

/// Reads one message: `Ok(None)` on clean end-of-stream, `Err` on a
/// damaged or unintelligible frame.
pub fn read_msg(r: &mut impl BufRead) -> Result<Option<Msg>, ProtoError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => {
            let text = std::str::from_utf8(&payload).map_err(|_| ProtoError::UnknownMessage)?;
            Msg::parse(text).ok_or(ProtoError::UnknownMessage).map(Some)
        }
    }
}

/// Integer tallies for one round (≤ `ROUND_TRIALS` frame trials) of a
/// lease: `(trials, errors, erasures)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundTally {
    /// Frame trials run in this round.
    pub trials: u64,
    /// Frames the receiver got wrong.
    pub errors: u64,
    /// Trials ending in a typed erasure.
    pub erasures: u64,
}

/// Every protocol message. Coordinator→worker: `Hello`, `Lease`,
/// `Ping`, `Shutdown`; worker→coordinator: `Ready`, `Pong`,
/// `QuarTrial`, `Done`.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Campaign identity: everything a worker needs to reconstruct the
    /// exact link, fault chain, and trial streams.
    Hello {
        /// Campaign master seed.
        seed: u64,
        /// Payload bytes per frame trial.
        payload_len: usize,
        /// Link catalog id ([`crate::catalog::LinkSpec`]).
        link: String,
        /// Fault catalog id ([`crate::catalog::FaultSpec`]).
        fault: String,
        /// SNR points in dB (bit-exact hex on the wire).
        snrs: Vec<f64>,
    },
    /// Run trials `[start, end)` of `point` and report per-round tallies.
    Lease {
        /// Lease id (unique per coordinator run).
        id: u64,
        /// SNR point index.
        point: usize,
        /// First frame index (inclusive).
        start: u64,
        /// Last frame index (exclusive).
        end: u64,
    },
    /// Liveness probe; the worker echoes `n` back in a [`Msg::Pong`].
    Ping {
        /// Probe sequence number.
        n: u64,
    },
    /// Orderly termination request.
    Shutdown,
    /// The worker processed [`Msg::Hello`] and accepts leases.
    Ready,
    /// Echo of a [`Msg::Ping`].
    Pong {
        /// The probe sequence number being echoed.
        n: u64,
    },
    /// One quarantined trial inside a lease (sent before its `Done`).
    QuarTrial {
        /// The lease this trial belongs to.
        lease: u64,
        /// Frame index within the point.
        frame: u64,
        /// Display form of the typed error (newlines stripped).
        error: String,
    },
    /// A lease finished; tallies are reported per round so the
    /// coordinator can apply stopping rules at the same boundaries as a
    /// single-process campaign.
    Done {
        /// The finished lease.
        lease: u64,
        /// One tally per round, in frame order.
        rounds: Vec<RoundTally>,
    },
}

impl Msg {
    /// Serialises to the single-line wire payload.
    pub fn to_payload(&self) -> String {
        match self {
            Msg::Hello {
                seed,
                payload_len,
                link,
                fault,
                snrs,
            } => {
                let snrs: Vec<String> = snrs.iter().map(|&s| f64_to_hex(s)).collect();
                format!(
                    "hello seed={seed} payload={payload_len} link={link} fault={fault} snrs={}",
                    snrs.join(",")
                )
            }
            Msg::Lease {
                id,
                point,
                start,
                end,
            } => format!("lease id={id} point={point} start={start} end={end}"),
            Msg::Ping { n } => format!("ping n={n}"),
            Msg::Shutdown => "shutdown".to_owned(),
            Msg::Ready => "ready".to_owned(),
            Msg::Pong { n } => format!("pong n={n}"),
            Msg::QuarTrial {
                lease,
                frame,
                error,
            } => {
                // The free-text error rides last (it may contain spaces
                // and `=`); newlines would break framing, so strip them.
                let error = error.replace(['\n', '\r'], " ");
                format!("quar lease={lease} frame={frame} error={error}")
            }
            Msg::Done { lease, rounds } => {
                let rounds: Vec<String> = rounds
                    .iter()
                    .map(|r| format!("{}:{}:{}", r.trials, r.errors, r.erasures))
                    .collect();
                format!("done lease={lease} rounds={}", rounds.join(","))
            }
        }
    }

    /// Parses a wire payload; `None` on any malformation.
    pub fn parse(text: &str) -> Option<Msg> {
        let (verb, rest) = match text.split_once(' ') {
            Some((v, r)) => (v, r),
            None => (text, ""),
        };
        match verb {
            "hello" => {
                let mut t = rest.split_whitespace();
                let seed = kv_u64(t.next()?, "seed")?;
                let payload_len = kv_u64(t.next()?, "payload")? as usize;
                let link = kv(t.next()?, "link")?.to_owned();
                let fault = kv(t.next()?, "fault")?.to_owned();
                let snrs_csv = kv(t.next()?, "snrs")?;
                if t.next().is_some() {
                    return None;
                }
                let snrs: Option<Vec<f64>> = snrs_csv.split(',').map(f64_from_hex).collect();
                Some(Msg::Hello {
                    seed,
                    payload_len,
                    link,
                    fault,
                    snrs: snrs?,
                })
            }
            "lease" => {
                let mut t = rest.split_whitespace();
                let id = kv_u64(t.next()?, "id")?;
                let point = kv_u64(t.next()?, "point")? as usize;
                let start = kv_u64(t.next()?, "start")?;
                let end = kv_u64(t.next()?, "end")?;
                if t.next().is_some() || start >= end {
                    return None;
                }
                Some(Msg::Lease {
                    id,
                    point,
                    start,
                    end,
                })
            }
            "ping" => {
                let mut t = rest.split_whitespace();
                let n = kv_u64(t.next()?, "n")?;
                if t.next().is_some() {
                    return None;
                }
                Some(Msg::Ping { n })
            }
            "shutdown" if rest.is_empty() => Some(Msg::Shutdown),
            "ready" if rest.is_empty() => Some(Msg::Ready),
            "pong" => {
                let mut t = rest.split_whitespace();
                let n = kv_u64(t.next()?, "n")?;
                if t.next().is_some() {
                    return None;
                }
                Some(Msg::Pong { n })
            }
            "quar" => {
                let (coords, error) = rest.split_once(" error=")?;
                let mut t = coords.split_whitespace();
                let lease = kv_u64(t.next()?, "lease")?;
                let frame = kv_u64(t.next()?, "frame")?;
                if t.next().is_some() {
                    return None;
                }
                Some(Msg::QuarTrial {
                    lease,
                    frame,
                    error: error.to_owned(),
                })
            }
            "done" => {
                let mut t = rest.split_whitespace();
                let lease = kv_u64(t.next()?, "lease")?;
                let rounds_csv = kv(t.next()?, "rounds")?;
                if t.next().is_some() {
                    return None;
                }
                let rounds: Option<Vec<RoundTally>> = rounds_csv
                    .split(',')
                    .map(|r| {
                        let mut f = r.split(':');
                        let trials = f.next()?.parse().ok()?;
                        let errors = f.next()?.parse().ok()?;
                        let erasures = f.next()?.parse().ok()?;
                        if f.next().is_some() {
                            return None;
                        }
                        Some(RoundTally {
                            trials,
                            errors,
                            erasures,
                        })
                    })
                    .collect();
                Some(Msg::Done {
                    lease,
                    rounds: rounds?,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn all_msgs() -> Vec<Msg> {
        vec![
            Msg::Hello {
                seed: 77,
                payload_len: 150,
                link: "ofdm:12".into(),
                fault: "single:adc-clip:3fe0000000000000".into(),
                snrs: vec![-2.5, 0.0, 7.25],
            },
            Msg::Lease {
                id: 9,
                point: 2,
                start: 64,
                end: 192,
            },
            Msg::Ping { n: 3 },
            Msg::Shutdown,
            Msg::Ready,
            Msg::Pong { n: 3 },
            Msg::QuarTrial {
                lease: 9,
                frame: 71,
                error: "stream ended mid-frame: wanted 64 bits, got 12".into(),
            },
            Msg::Done {
                lease: 9,
                rounds: vec![
                    RoundTally {
                        trials: 32,
                        errors: 4,
                        erasures: 1,
                    },
                    RoundTally {
                        trials: 16,
                        errors: 0,
                        erasures: 0,
                    },
                ],
            },
        ]
    }

    #[test]
    fn every_message_round_trips_through_the_wire() {
        for msg in all_msgs() {
            let mut wire = Vec::new();
            write_msg(&mut wire, &msg).unwrap();
            let mut r = Cursor::new(wire);
            assert_eq!(read_msg(&mut r).unwrap(), Some(msg.clone()), "{msg:?}");
            assert_eq!(read_msg(&mut r).unwrap(), None, "stream must be drained");
        }
    }

    #[test]
    fn snrs_survive_bit_exactly() {
        let msg = Msg::Hello {
            seed: 1,
            payload_len: 1,
            link: "fhss".into(),
            fault: "clean".into(),
            snrs: vec![0.1 + 0.2, f64::MIN_POSITIVE, -0.0],
        };
        let Some(Msg::Hello { snrs, .. }) = Msg::parse(&msg.to_payload()) else {
            panic!("parse failed");
        };
        assert_eq!(snrs[0].to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(snrs[1].to_bits(), f64::MIN_POSITIVE.to_bits());
        assert_eq!(snrs[2].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn bit_flip_anywhere_is_detected_never_panics() {
        let msg = Msg::Done {
            lease: 3,
            rounds: vec![RoundTally {
                trials: 32,
                errors: 2,
                erasures: 0,
            }],
        };
        let wire = encode_frame(msg.to_payload().as_bytes());
        for byte in 0..wire.len() - 1 {
            for bit in 0..8 {
                let mut mangled = wire.clone();
                mangled[byte] ^= 1 << bit;
                let mut r = Cursor::new(&mangled);
                // Either an error, or (for flips inside the checksum
                // field that happen to still parse) — never the wrong
                // message silently accepted without checksum agreement.
                match read_msg(&mut r) {
                    Err(_) => {}
                    Ok(got) => {
                        assert_eq!(
                            got,
                            Some(msg.clone()),
                            "byte {byte} bit {bit}: corrupted frame decoded differently"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn truncated_frame_errors_and_stream_resyncs() {
        let a = encode_frame(Msg::Ping { n: 1 }.to_payload().as_bytes());
        let b = encode_frame(Msg::Ping { n: 2 }.to_payload().as_bytes());
        // Cut frame `a` before its newline: it merges with `b` into one
        // bad line; the stream then ends cleanly.
        let mut wire = a[..a.len() - 3].to_vec();
        wire.extend_from_slice(&b);
        let mut r = Cursor::new(&wire);
        assert!(read_msg(&mut r).is_err(), "merged lump must fail");
        assert_eq!(read_msg(&mut r).unwrap(), None, "then clean EOF");

        // Cut frame `a` mid-line at end of stream: torn final frame.
        let mut r = Cursor::new(&a[..a.len() - 3]);
        assert_eq!(read_msg(&mut r), Err(ProtoError::Malformed));
    }

    #[test]
    fn oversized_length_field_is_rejected() {
        let line = format!("{MAGIC} {} {:016x} x", MAX_FRAME + 1, 0);
        assert_eq!(
            decode_frame(line.as_bytes()),
            Err(ProtoError::Oversized)
        );
    }

    #[test]
    fn garbage_lines_never_panic() {
        for garbage in [
            &b""[..],
            b"WLND",
            b"WLND ",
            b"WLND x y z",
            b"WLND 5 deadbeef hello",
            b"WLND 5 000000000000dead hell",
            b"WLND 18446744073709551616 0000000000000000 x",
            b"\xff\xfe\x00",
            b"WLND 3 0000000000000000 \xff\xff\xff",
        ] {
            assert!(decode_frame(garbage).is_err());
        }
    }

    #[test]
    fn quar_error_newlines_are_stripped() {
        let msg = Msg::QuarTrial {
            lease: 1,
            frame: 2,
            error: "line one\nline two".into(),
        };
        let payload = msg.to_payload();
        assert!(!payload.contains('\n'));
        let Some(Msg::QuarTrial { error, .. }) = Msg::parse(&payload) else {
            panic!("parse failed");
        };
        assert_eq!(error, "line one line two");
    }
}
