//! # wlan-dist — fault-tolerant distributed campaign execution
//!
//! Shards `wlan-runner` Monte-Carlo campaigns across a fleet of worker
//! processes that are allowed to die. A coordinator owns all campaign
//! state and hands out wave-aligned `(point, trial-range)` leases over
//! a length-prefixed, checksummed stdio protocol; workers are pure
//! functions of the lease coordinates, so any lease can be re-run
//! anywhere — on another worker after a `SIGKILL`, or in-process once
//! the whole fleet is gone — and the campaign's tallies, stopping
//! decisions, and quarantine ledger come out bit-identical to the
//! single-process run ([`coord`] has the full argument).
//!
//! The failure model, layer by layer:
//!
//! * **Transport** ([`proto`]): newline-delimited frames carrying an
//!   FNV-64 checksum and explicit length. Bit flips, truncations, and
//!   garbage are contained to one frame and typed as [`ProtoError`];
//!   streams resynchronise at the next newline.
//! * **Workers** ([`worker`]): stateless beyond their `hello`; damaged
//!   input frames are skipped, out-of-catalog campaigns are refused,
//!   and only EOF (a dead coordinator) stops them.
//! * **Coordinator** ([`coord`]): heartbeat liveness, per-lease
//!   deadlines, exponential backoff with deterministic jitter,
//!   at-most-K re-dispatch, lease quarantine (reusing the PR-4 ledger
//!   idea one level up), and graceful degradation to in-process
//!   execution.
//! * **Chaos tooling** ([`duplex`], [`catalog`]): in-memory pipes and
//!   deterministic fault-injecting relays so the whole stack is
//!   testable under kill schedules and transport corruption without
//!   subprocess nondeterminism.

#![warn(missing_docs)]

pub mod catalog;
pub mod coord;
pub mod duplex;
pub mod proto;
pub mod worker;

pub use catalog::{FaultSpec, LinkSpec};
pub use coord::{
    run_dist_per_campaign, DistConfig, DistPerReport, DistStats, InProcessFactory,
    ProcessFactory, QuarantinedLease, WorkerFactory, WorkerIo,
};
pub use proto::{Msg, ProtoError, RoundTally};
pub use worker::{run_lease, serve, LeaseJob};
