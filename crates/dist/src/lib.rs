//! # wlan-dist — fault-tolerant distributed campaign execution
//!
//! Shards `wlan-runner` Monte-Carlo campaigns across a fleet of worker
//! processes that are allowed to die. A coordinator owns all campaign
//! state and hands out wave-aligned `(point, trial-range)` leases over
//! a length-prefixed, checksummed stdio protocol; workers are pure
//! functions of the lease coordinates, so any lease can be re-run
//! anywhere — on another worker after a `SIGKILL`, or in-process once
//! the whole fleet is gone — and the campaign's tallies, stopping
//! decisions, and quarantine ledger come out bit-identical to the
//! single-process run ([`coord`] has the full argument).
//!
//! The failure model, layer by layer:
//!
//! * **Transport** ([`proto`]): newline-delimited frames carrying an
//!   FNV-64 checksum and explicit length. Bit flips, truncations, and
//!   garbage are contained to one frame and typed as [`ProtoError`];
//!   streams resynchronise at the next newline.
//! * **Workers** ([`worker`]): stateless beyond their `hello`; damaged
//!   input frames are skipped, out-of-catalog campaigns are refused,
//!   and only EOF (a dead coordinator) stops them.
//! * **Coordinator** ([`coord`]): heartbeat liveness, per-lease
//!   deadlines, exponential backoff with deterministic jitter,
//!   at-most-K re-dispatch, lease quarantine (reusing the PR-4 ledger
//!   idea one level up), and graceful degradation to in-process
//!   execution.
//! * **TCP fleets** ([`transport`]): the same frames over
//!   `std::net::TcpStream` for multi-machine fleets — a versioned
//!   handshake carrying the catalog digest (mismatch is a typed
//!   [`ProtoError::Incompatible`]), read deadlines, `TCP_NODELAY`, and
//!   DCF-style seeded reconnect backoff on the worker side.
//! * **Service mode** ([`service`]): a long-running coordinator that
//!   listens on `WLAN_DIST_ADDR`, accepts late-joining workers, runs
//!   queued campaigns back-to-back on one persistent fleet, streams
//!   `serve_*`/`conn_*` events to subscriber sockets, and drains
//!   cleanly on a shutdown frame — journal-backed, so a killed service
//!   resumes bit-identically.
//! * **Chaos tooling** ([`duplex`], [`catalog`]): in-memory pipes and
//!   deterministic fault-injecting relays so the whole stack is
//!   testable under kill schedules and transport corruption without
//!   subprocess nondeterminism.

#![warn(missing_docs)]

pub mod catalog;
pub mod coord;
pub mod duplex;
pub mod proto;
pub mod service;
pub mod transport;
pub mod worker;

pub use catalog::{catalog_digest, FaultSpec, LinkSpec};
pub use coord::{
    run_dist_per_campaign, run_dist_per_campaign_on, DistConfig, DistPerReport, DistStats, Fleet,
    InProcessFactory, ProcessFactory, QuarantinedLease, WorkerFactory, WorkerIo,
};
pub use proto::{Msg, ProtoError, RoundTally};
pub use service::{run_campaign_service, Acceptor, ServeCampaign, ServeConfig, ServeReport};
pub use transport::{
    connect_role, connect_worker, run_tcp_worker, server_handshake, Role, Transport, WorkerOpts,
};
pub use worker::{run_lease, serve, LeaseJob, ServeEnd};
