//! TCP transport for multi-machine worker fleets.
//!
//! The frame protocol in [`proto`](crate::proto) is deliberately
//! transport-agnostic: newline-delimited, length-prefixed, checksummed
//! byte lines that work identically over stdio pipes, in-memory duplex
//! pairs, and — here — `std::net::TcpStream`. This module adds the three
//! things a socket needs that a pipe does not:
//!
//! 1. **A handshake.** A pipe's two ends are the same binary by
//!    construction; a socket's are not. Before any protocol frame flows,
//!    the connecting side sends `connect v=<version> catalog=<digest>
//!    role=<role>` and the accepting side answers `accept …` or
//!    `reject …`. A version or catalog mismatch is a typed
//!    [`ProtoError::Incompatible`] — *terminal*, never retried, because
//!    two binaries with different experiment catalogs would disagree
//!    about what `ofdm:12` even means and corrupt results silently.
//! 2. **Deadlines.** Reads carry timeouts (`set_read_timeout`) so a
//!    half-closed peer costs bounded time, and `TCP_NODELAY` keeps the
//!    small control frames from queueing behind Nagle.
//! 3. **Reconnect with DCF-style backoff.** A worker that loses its
//!    coordinator re-dials under a capped binary-exponential backoff
//!    whose jitter is drawn from a seeded [`WlanRng`] — the same
//!    contention discipline the MAC uses on the air, and just as
//!    reproducible: a given seed replays the same reconnect schedule.
//!
//! Env knobs ([`ADDR_ENV`], [`HEARTBEAT_MS_ENV`], [`CONNECT_RETRIES_ENV`])
//! follow the `WLAN_OBS` convention: garbage warns once on stderr and
//! falls back to the default, never panics.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use wlan_math::rng::{Rng, WlanRng};

use crate::catalog::catalog_digest;
use crate::coord::WorkerIo;
use crate::proto::{encode_frame, read_frame, ProtoError};
use crate::worker::{serve, ServeEnd};

/// Version of the connection-layer handshake + message protocol. Bump
/// whenever a frame's meaning changes incompatibly.
pub const PROTO_VERSION: u64 = 1;

/// How long either side waits for the peer's half of the handshake
/// before declaring the connection dead. Generous: a handshake is two
/// small frames, so 5 s only ever matters against a hung peer.
pub const HANDSHAKE_TIMEOUT_MS: u64 = 5_000;

/// Environment knob: `host:port` the campaign service listens on and
/// workers dial.
pub const ADDR_ENV: &str = "WLAN_DIST_ADDR";
/// Environment knob: coordinator heartbeat interval in milliseconds.
pub const HEARTBEAT_MS_ENV: &str = "WLAN_DIST_HEARTBEAT_MS";
/// Environment knob: consecutive connect failures a TCP worker absorbs
/// before giving up.
pub const CONNECT_RETRIES_ENV: &str = "WLAN_DIST_CONNECT_RETRIES";

/// Default listen/dial address (loopback; multi-machine fleets set
/// [`ADDR_ENV`]).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7690";
/// Default heartbeat interval.
pub const DEFAULT_HEARTBEAT_MS: u64 = 500;
/// Default connect-retry budget.
pub const DEFAULT_CONNECT_RETRIES: u32 = 5;

/// What a connection wants to be once handshaken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Runs leases (the fleet).
    Worker,
    /// Sends control frames (shutdown).
    Control,
    /// Receives the service's JSONL event stream.
    Events,
}

impl Role {
    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Role::Worker => "worker",
            Role::Control => "control",
            Role::Events => "events",
        }
    }

    /// Inverse of [`Role::as_str`].
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "worker" => Some(Role::Worker),
            "control" => Some(Role::Control),
            "events" => Some(Role::Events),
            _ => None,
        }
    }
}

/// Formats a handshake identity (the parser reads the same `key=value`
/// tokens the `connect` frame uses).
fn identity_of(version: u64, digest: u64) -> String {
    format!("v={version} catalog={digest:016x}")
}

/// This binary's handshake identity: protocol version + catalog digest.
pub fn identity() -> String {
    identity_of(PROTO_VERSION, catalog_digest())
}

/// Encodes the client side's opening handshake frame.
pub fn encode_connect(version: u64, digest: u64, role: Role) -> Vec<u8> {
    encode_frame(
        format!(
            "connect v={version} catalog={digest:016x} role={}",
            role.as_str()
        )
        .as_bytes(),
    )
}

fn hex_field<'a>(tokens: &[&'a str], key: &str) -> Option<&'a str> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

fn parse_connect(payload: &[u8]) -> Option<(u64, u64, Role)> {
    let text = std::str::from_utf8(payload).ok()?;
    let tokens: Vec<&str> = text.split_ascii_whitespace().collect();
    if tokens.first() != Some(&"connect") {
        return None;
    }
    let version = hex_field(&tokens, "v")?.parse::<u64>().ok()?;
    let digest = u64::from_str_radix(hex_field(&tokens, "catalog")?, 16).ok()?;
    let role = Role::parse(hex_field(&tokens, "role")?)?;
    Some((version, digest, role))
}

/// Interprets the server's reply to a `connect` frame: `Ok(())` on a
/// matching `accept`, [`ProtoError::Incompatible`] on a `reject` or an
/// `accept` whose identity differs from ours, [`ProtoError::Malformed`]
/// on anything else.
pub fn parse_handshake_reply(payload: &[u8]) -> Result<(), ProtoError> {
    let Ok(text) = std::str::from_utf8(payload) else {
        return Err(ProtoError::Malformed);
    };
    let tokens: Vec<&str> = text.split_ascii_whitespace().collect();
    let verdict = tokens.first().copied().unwrap_or_default();
    if verdict != "accept" && verdict != "reject" {
        return Err(ProtoError::Malformed);
    }
    let theirs = match (
        hex_field(&tokens, "v").and_then(|v| v.parse::<u64>().ok()),
        hex_field(&tokens, "catalog").and_then(|d| u64::from_str_radix(d, 16).ok()),
    ) {
        (Some(v), Some(d)) => identity_of(v, d),
        _ => return Err(ProtoError::Malformed),
    };
    if verdict == "accept" && theirs == identity() {
        Ok(())
    } else {
        Err(ProtoError::Incompatible {
            ours: identity(),
            theirs,
        })
    }
}

fn io_err(e: &std::io::Error) -> ProtoError {
    ProtoError::Io(e.kind())
}

/// A connected, handshaken worker-side TCP connection: the buffered
/// reader half (any bytes the handshake over-read stay buffered here —
/// never rebuild it from the raw stream) and the writer half.
#[derive(Debug)]
pub struct WorkerConn {
    /// Coordinator → worker frames.
    pub reader: BufReader<TcpStream>,
    /// Worker → coordinator frames.
    pub writer: TcpStream,
}

/// Tuning for a TCP worker's dial/serve/re-dial loop.
#[derive(Debug, Clone)]
pub struct WorkerOpts {
    /// Consecutive connect failures tolerated before giving up. The
    /// counter resets on every successful connect, so a long-lived
    /// worker survives any number of *transient* outages.
    pub retries: u32,
    /// Backoff window for the first retry, in milliseconds; doubles per
    /// consecutive failure (DCF-style) up to `backoff_cap_ms`.
    pub backoff_ms: u64,
    /// Upper bound on the backoff window.
    pub backoff_cap_ms: u64,
    /// Read deadline once serving, in milliseconds (0 = none). The
    /// coordinator pings idle workers every heartbeat, so a read that
    /// outlasts this means the coordinator is gone, not merely quiet.
    pub read_timeout_ms: u64,
    /// Seeds the backoff jitter (reproducible reconnect schedules).
    pub seed: u64,
    /// Re-dial after a served session disconnects. `false` makes the
    /// worker one-shot: serve once, then return.
    pub reconnect: bool,
}

impl Default for WorkerOpts {
    fn default() -> Self {
        Self {
            retries: DEFAULT_CONNECT_RETRIES,
            backoff_ms: 100,
            backoff_cap_ms: 3_200,
            read_timeout_ms: 30_000,
            seed: 0x57_4c_41_4e, // "WLAN"
            reconnect: true,
        }
    }
}

impl WorkerOpts {
    /// Defaults with the retry budget read from [`CONNECT_RETRIES_ENV`].
    pub fn from_env() -> Self {
        Self {
            retries: connect_retries_from_env(),
            ..Self::default()
        }
    }
}

/// The wait before reconnect attempt `attempt` (1-based): a DCF-style
/// contention window that doubles per consecutive failure up to the
/// cap, with the actual wait drawn as `cw/2 + uniform[0, cw/2)` from a
/// fork addressed by the attempt number — a deterministic floor so
/// retries never hammer, plus seeded jitter so a rebooted fleet's
/// workers don't re-dial in lockstep (the thundering-herd analogue of
/// synchronized slot counters).
pub fn reconnect_backoff(opts: &WorkerOpts, attempt: u32) -> Duration {
    const BACKOFF_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
    let doublings = attempt.saturating_sub(1).min(16);
    let cw = opts
        .backoff_ms
        .saturating_mul(1u64 << doublings)
        .min(opts.backoff_cap_ms.max(1))
        .max(1);
    let mut rng = WlanRng::seed_from_u64(opts.seed ^ BACKOFF_SALT).fork(u64::from(attempt));
    let jitter = (rng.next_f64() * (cw as f64 / 2.0)) as u64;
    Duration::from_millis(cw / 2 + jitter)
}

fn handshake_deadline(stream: &TcpStream) -> Result<(), ProtoError> {
    stream
        .set_read_timeout(Some(Duration::from_millis(HANDSHAKE_TIMEOUT_MS)))
        .map_err(|e| io_err(&e))
}

/// Dials `addr`, handshakes as `role`, and returns the connected halves.
/// `Err(Incompatible)` when the peer speaks a different protocol or
/// catalog; other errors are transient (retryable).
pub fn connect_role(addr: &str, role: Role, opts: &WorkerOpts) -> Result<WorkerConn, ProtoError> {
    let stream = TcpStream::connect(addr).map_err(|e| io_err(&e))?;
    let _ = stream.set_nodelay(true);
    handshake_deadline(&stream)?;
    let mut writer = stream.try_clone().map_err(|e| io_err(&e))?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(&encode_connect(PROTO_VERSION, catalog_digest(), role))
        .and_then(|()| writer.flush())
        .map_err(|e| io_err(&e))?;
    let Some(reply) = read_frame(&mut reader)? else {
        // The acceptor hung up without answering — transient.
        return Err(ProtoError::Io(std::io::ErrorKind::UnexpectedEof));
    };
    parse_handshake_reply(&reply)?;
    let timeout = (opts.read_timeout_ms > 0).then(|| Duration::from_millis(opts.read_timeout_ms));
    let _ = reader.get_ref().set_read_timeout(timeout);
    Ok(WorkerConn { reader, writer })
}

/// [`connect_role`] as a worker.
pub fn connect_worker(addr: &str, opts: &WorkerOpts) -> Result<WorkerConn, ProtoError> {
    connect_role(addr, Role::Worker, opts)
}

/// Accept-side handshake: reads the peer's `connect` frame, answers
/// `accept` or `reject`, and returns the peer's role plus the stream
/// halves. The returned [`BufReader`] holds any bytes read past the
/// handshake frame — callers must keep using it, never re-wrap the raw
/// stream (a control client may pipeline its shutdown frame right
/// behind `connect`).
pub fn server_handshake(
    stream: TcpStream,
) -> Result<(Role, BufReader<TcpStream>, TcpStream), ProtoError> {
    let _ = stream.set_nodelay(true);
    handshake_deadline(&stream)?;
    let mut writer = stream.try_clone().map_err(|e| io_err(&e))?;
    let mut reader = BufReader::new(stream);
    let Some(payload) = read_frame(&mut reader)? else {
        return Err(ProtoError::Io(std::io::ErrorKind::UnexpectedEof));
    };
    match parse_connect(&payload) {
        Some((v, d, role)) if v == PROTO_VERSION && d == catalog_digest() => {
            writer
                .write_all(&encode_frame(
                    format!("accept {}", identity()).as_bytes(),
                ))
                .and_then(|()| writer.flush())
                .map_err(|e| io_err(&e))?;
            let _ = reader.get_ref().set_read_timeout(None);
            Ok((role, reader, writer))
        }
        Some((v, d, _)) => {
            let _ = writer.write_all(&encode_frame(
                format!("reject {}", identity()).as_bytes(),
            ));
            let _ = writer.flush();
            Err(ProtoError::Incompatible {
                ours: identity(),
                theirs: identity_of(v, d),
            })
        }
        None => Err(ProtoError::Malformed),
    }
}

/// A connected, handshaken duplex stream carrying the frame protocol —
/// what the coordinator plugs into its fleet. [`TcpTransport`] is the
/// socket implementation; stdio pipes and the in-memory duplex satisfy
/// the same contract directly through
/// [`WorkerFactory`](crate::coord::WorkerFactory).
pub trait Transport {
    /// Human-readable peer identity for logs and `conn_*` events.
    fn peer(&self) -> String;
    /// Splits into the coordinator-facing halves plus a kill hook that
    /// unblocks the peer's reader (socket shutdown, pipe close, …).
    fn into_worker_io(self: Box<Self>) -> WorkerIo;
}

/// A handshaken TCP connection as a coordinator-side [`Transport`].
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: String,
}

impl TcpTransport {
    /// Wraps the halves [`server_handshake`] returned.
    pub fn new(reader: BufReader<TcpStream>, writer: TcpStream) -> Self {
        let peer = writer
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_owned());
        Self {
            reader,
            writer,
            peer,
        }
    }
}

impl Transport for TcpTransport {
    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn into_worker_io(self: Box<Self>) -> WorkerIo {
        let closer = self.writer.try_clone().ok();
        WorkerIo {
            writer: Box::new(self.writer),
            reader: Box::new(self.reader),
            kill: Box::new(move || {
                if let Some(s) = &closer {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                }
            }),
        }
    }
}

/// Any paired reader/writer (stdio, duplex pipes) as a [`Transport`]
/// with a caller-supplied kill hook.
pub struct PipeTransport {
    /// Peer label for logs.
    pub label: String,
    /// The already-connected I/O.
    pub io: WorkerIo,
}

impl Transport for PipeTransport {
    fn peer(&self) -> String {
        self.label.clone()
    }

    fn into_worker_io(self: Box<Self>) -> WorkerIo {
        self.io
    }
}

/// Runs a TCP worker against `addr`: dial (with handshake), serve
/// leases, and on disconnect re-dial under [`reconnect_backoff`] — for
/// as long as consecutive failures stay within `opts.retries`.
///
/// Returns the number of served sessions. An orderly [`Msg::Shutdown`]
/// (fleet teardown) ends the loop immediately;
/// [`ProtoError::Incompatible`] is terminal and returned as `Err`; a
/// worker that exhausts its retry budget without ever serving returns
/// the last connect error.
///
/// [`Msg::Shutdown`]: crate::proto::Msg::Shutdown
pub fn run_tcp_worker(addr: &str, opts: &WorkerOpts) -> Result<u64, ProtoError> {
    let mut sessions: u64 = 0;
    let mut failures: u32 = 0;
    loop {
        match connect_worker(addr, opts) {
            Ok(conn) => {
                failures = 0;
                sessions += 1;
                let end = serve(conn.reader, conn.writer);
                if end == ServeEnd::Shutdown || !opts.reconnect {
                    return Ok(sessions);
                }
            }
            Err(e @ ProtoError::Incompatible { .. }) => return Err(e),
            Err(e) => {
                failures += 1;
                if failures > opts.retries {
                    return if sessions > 0 { Ok(sessions) } else { Err(e) };
                }
                std::thread::sleep(reconnect_backoff(opts, failures));
            }
        }
    }
}

// --- env knobs (the WLAN_OBS convention: parse pure, warn once, never
// panic) ---------------------------------------------------------------

/// Parses [`ADDR_ENV`]: unset means [`DEFAULT_ADDR`]; anything that is
/// not `host:port` with a valid port is an error carrying the warning
/// text.
pub fn parse_dist_addr(raw: Option<&str>) -> Result<String, String> {
    let Some(raw) = raw else {
        return Ok(DEFAULT_ADDR.to_owned());
    };
    let s = raw.trim();
    let valid = s
        .rsplit_once(':')
        .is_some_and(|(host, port)| !host.is_empty() && port.parse::<u16>().is_ok());
    if valid {
        Ok(s.to_owned())
    } else {
        Err(format!(
            "ignoring invalid {ADDR_ENV}={raw:?} (want host:port); using {DEFAULT_ADDR}"
        ))
    }
}

/// Parses [`HEARTBEAT_MS_ENV`]: unset means [`DEFAULT_HEARTBEAT_MS`];
/// zero or garbage is an error carrying the warning text.
pub fn parse_heartbeat_ms(raw: Option<&str>) -> Result<u64, String> {
    let Some(raw) = raw else {
        return Ok(DEFAULT_HEARTBEAT_MS);
    };
    match raw.trim().parse::<u64>() {
        Ok(v) if v > 0 => Ok(v),
        _ => Err(format!(
            "ignoring invalid {HEARTBEAT_MS_ENV}={raw:?} (want a positive integer); \
             using {DEFAULT_HEARTBEAT_MS}"
        )),
    }
}

/// Parses [`CONNECT_RETRIES_ENV`]: unset means
/// [`DEFAULT_CONNECT_RETRIES`]; garbage is an error carrying the
/// warning text. Zero is *valid* (a one-shot worker that never
/// retries).
pub fn parse_connect_retries(raw: Option<&str>) -> Result<u32, String> {
    let Some(raw) = raw else {
        return Ok(DEFAULT_CONNECT_RETRIES);
    };
    match raw.trim().parse::<u32>() {
        Ok(v) => Ok(v),
        Err(_) => Err(format!(
            "ignoring invalid {CONNECT_RETRIES_ENV}={raw:?} (want a non-negative integer); \
             using {DEFAULT_CONNECT_RETRIES}"
        )),
    }
}

static WARNED_ADDR: AtomicBool = AtomicBool::new(false);
static WARNED_HEARTBEAT: AtomicBool = AtomicBool::new(false);
static WARNED_RETRIES: AtomicBool = AtomicBool::new(false);

fn env_or_default<T>(
    name: &str,
    warned: &AtomicBool,
    parse: impl Fn(Option<&str>) -> Result<T, String>,
    default: T,
) -> T {
    let raw = std::env::var(name).ok();
    match parse(raw.as_deref()) {
        Ok(v) => v,
        Err(msg) => {
            if !warned.swap(true, Ordering::Relaxed) {
                eprintln!("wlan-dist: {msg}");
            }
            default
        }
    }
}

/// [`ADDR_ENV`] with the warn-once fallback applied.
pub fn dist_addr_from_env() -> String {
    env_or_default(
        ADDR_ENV,
        &WARNED_ADDR,
        parse_dist_addr,
        DEFAULT_ADDR.to_owned(),
    )
}

/// [`HEARTBEAT_MS_ENV`] with the warn-once fallback applied.
pub fn heartbeat_ms_from_env() -> u64 {
    env_or_default(
        HEARTBEAT_MS_ENV,
        &WARNED_HEARTBEAT,
        parse_heartbeat_ms,
        DEFAULT_HEARTBEAT_MS,
    )
}

/// [`CONNECT_RETRIES_ENV`] with the warn-once fallback applied.
pub fn connect_retries_from_env() -> u32 {
    env_or_default(
        CONNECT_RETRIES_ENV,
        &WARNED_RETRIES,
        parse_connect_retries,
        DEFAULT_CONNECT_RETRIES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_payloads_round_trip() {
        let frame = encode_connect(PROTO_VERSION, catalog_digest(), Role::Worker);
        let payload = crate::proto::decode_frame(frame.strip_suffix(b"\n").unwrap()).unwrap();
        assert_eq!(
            parse_connect(&payload),
            Some((PROTO_VERSION, catalog_digest(), Role::Worker))
        );
        for role in [Role::Worker, Role::Control, Role::Events] {
            assert_eq!(Role::parse(role.as_str()), Some(role));
        }
    }

    #[test]
    fn handshake_reply_accepts_only_our_identity() {
        let ok = format!("accept {}", identity());
        assert_eq!(parse_handshake_reply(ok.as_bytes()), Ok(()));

        let stale = format!("accept v={} catalog={:016x}", PROTO_VERSION + 1, 7u64);
        let Err(ProtoError::Incompatible { ours, theirs }) =
            parse_handshake_reply(stale.as_bytes())
        else {
            panic!("version skew must be Incompatible");
        };
        assert_eq!(ours, identity());
        assert!(theirs.starts_with(&format!("v={}", PROTO_VERSION + 1)));

        let reject = format!("reject {}", identity());
        assert!(matches!(
            parse_handshake_reply(reject.as_bytes()),
            Err(ProtoError::Incompatible { .. })
        ));
        assert_eq!(
            parse_handshake_reply(b"what even is this"),
            Err(ProtoError::Malformed)
        );
        assert_eq!(parse_handshake_reply(b"accept"), Err(ProtoError::Malformed));
    }

    #[test]
    fn connect_parser_rejects_garbage() {
        assert_eq!(parse_connect(b""), None);
        assert_eq!(parse_connect(b"connect"), None);
        assert_eq!(parse_connect(b"connect v=x catalog=00 role=worker"), None);
        assert_eq!(
            parse_connect(b"connect v=1 catalog=zz role=worker"),
            None
        );
        assert_eq!(
            parse_connect(b"connect v=1 catalog=0123456789abcdef role=manager"),
            None
        );
        assert_eq!(parse_connect(&[0xff, 0xfe, b'\n']), None);
    }

    #[test]
    fn backoff_is_capped_exponential_and_deterministic() {
        let opts = WorkerOpts {
            backoff_ms: 100,
            backoff_cap_ms: 800,
            seed: 9,
            ..WorkerOpts::default()
        };
        for attempt in 1..=12u32 {
            let a = reconnect_backoff(&opts, attempt);
            let b = reconnect_backoff(&opts, attempt);
            assert_eq!(a, b, "attempt {attempt} must replay identically");
            let cw = (100u64 << (attempt - 1).min(16)).min(800);
            let ms = a.as_millis() as u64;
            assert!(
                ms >= cw / 2 && ms < cw + 1,
                "attempt {attempt}: {ms}ms outside [{}, {cw}]",
                cw / 2
            );
        }
        // The window saturates at the cap.
        assert!(reconnect_backoff(&opts, 30).as_millis() as u64 <= 800);
        // Different seeds give different jitter somewhere in the schedule.
        let other = WorkerOpts { seed: 10, ..opts };
        assert!(
            (1..=12).any(|n| reconnect_backoff(&opts, n) != reconnect_backoff(&other, n)),
            "jitter must depend on the seed"
        );
    }

    #[test]
    fn env_knobs_parse_like_wlan_obs() {
        // Unset → defaults.
        assert_eq!(parse_dist_addr(None), Ok(DEFAULT_ADDR.to_owned()));
        assert_eq!(parse_heartbeat_ms(None), Ok(DEFAULT_HEARTBEAT_MS));
        assert_eq!(parse_connect_retries(None), Ok(DEFAULT_CONNECT_RETRIES));

        // Valid values, surrounding whitespace tolerated.
        assert_eq!(
            parse_dist_addr(Some(" 10.0.0.7:9000 ")),
            Ok("10.0.0.7:9000".to_owned())
        );
        assert_eq!(parse_heartbeat_ms(Some("250")), Ok(250));
        assert_eq!(parse_connect_retries(Some("0")), Ok(0));

        // Garbage → Err carrying a warning that names the knob.
        for bad in ["", "localhost", "host:", "host:notaport", "host:99999"] {
            let err = parse_dist_addr(Some(bad)).unwrap_err();
            assert!(err.contains(ADDR_ENV), "{err}");
        }
        for bad in ["", "0", "-4", "fast", "1.5"] {
            let err = parse_heartbeat_ms(Some(bad)).unwrap_err();
            assert!(err.contains(HEARTBEAT_MS_ENV), "{err}");
        }
        for bad in ["", "-1", "many", "2.0"] {
            let err = parse_connect_retries(Some(bad)).unwrap_err();
            assert!(err.contains(CONNECT_RETRIES_ENV), "{err}");
        }
    }

    #[test]
    fn tcp_handshake_end_to_end_over_localhost() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            server_handshake(stream)
        });
        let conn = connect_worker(&addr, &WorkerOpts::default()).expect("handshake must succeed");
        let (role, _r, _w) = server.join().unwrap().expect("server side must accept");
        assert_eq!(role, Role::Worker);
        drop(conn);
    }

    #[test]
    fn tcp_handshake_mismatch_is_typed_and_bounded() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            server_handshake(stream)
        });
        // A peer from the future: wrong protocol version.
        let started = std::time::Instant::now();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(&encode_connect(PROTO_VERSION + 1, catalog_digest(), Role::Worker))
            .unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let reply = read_frame(&mut reader).unwrap().expect("reject frame");
        assert!(matches!(
            parse_handshake_reply(&reply),
            Err(ProtoError::Incompatible { .. })
        ));
        let server_err = server.join().unwrap().unwrap_err();
        assert!(matches!(server_err, ProtoError::Incompatible { .. }));
        assert!(
            started.elapsed() < Duration::from_millis(HANDSHAKE_TIMEOUT_MS),
            "mismatch must resolve fast, not hang"
        );
    }

    #[test]
    fn silent_acceptor_times_out_with_typed_error() {
        // An acceptor that never answers the handshake: the client's
        // read deadline must convert the hang into a typed Io error.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let _keep = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Hold the socket open, never reply.
            std::thread::sleep(Duration::from_millis(HANDSHAKE_TIMEOUT_MS + 2_000));
            drop(stream);
        });
        let started = std::time::Instant::now();
        let err = connect_worker(&addr, &WorkerOpts::default()).unwrap_err();
        assert!(matches!(err, ProtoError::Io(_)), "got {err:?}");
        assert!(
            started.elapsed() < Duration::from_millis(HANDSHAKE_TIMEOUT_MS + 1_500),
            "handshake hang must be bounded by the deadline"
        );
    }
}
