//! In-memory byte pipes and a fault-injecting relay.
//!
//! The chaos harness needs to run a *real* coordinator against *real*
//! workers under deterministic transport faults, without the
//! nondeterminism (and per-test cost) of spawning subprocesses. These
//! pipes give worker threads the same blocking `Read`/`Write` interface
//! a subprocess's stdio has — including the failure modes that matter:
//! reads return `Ok(0)` (EOF) once the write side is gone, writes fail
//! with `BrokenPipe` once the read side is gone, and a [`PipeCloser`]
//! can sever a pipe from a third thread, which is how the in-process
//! factory "kills" a worker.
//!
//! [`relay`] sits between two pipes and pushes whole protocol frames
//! (newline-delimited lines) through a
//! [`TransportFaults`](wlan_fault::TransportFaults) schedule — the
//! transport-level analogue of the sample-level fault chains.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use wlan_fault::TransportFaults;
use wlan_math::rng::WlanRng;

/// Lock, recovering from poisoning: pipe state is a byte queue plus two
/// flags, valid after any interleaving, and transport plumbing must
/// outlive panicking test threads.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct PipeState {
    buf: VecDeque<u8>,
    write_closed: bool,
    read_closed: bool,
}

type Shared = Arc<(Mutex<PipeState>, Condvar)>;

/// The write end of an in-memory pipe.
pub struct PipeWriter {
    shared: Shared,
}

/// The read end of an in-memory pipe.
pub struct PipeReader {
    shared: Shared,
}

/// A handle that severs a pipe from any thread: readers see EOF,
/// writers see `BrokenPipe` — exactly what killing a subprocess does to
/// its stdio.
#[derive(Clone)]
pub struct PipeCloser {
    shared: Shared,
}

impl PipeCloser {
    /// Sever the pipe now (idempotent).
    pub fn close(&self) {
        let (lock, cvar) = &*self.shared;
        let mut st = locked(lock);
        st.write_closed = true;
        st.read_closed = true;
        cvar.notify_all();
    }
}

/// An unbounded in-memory pipe: `(writer, reader, closer)`.
pub fn pipe() -> (PipeWriter, PipeReader, PipeCloser) {
    let shared: Shared = Arc::new((
        Mutex::new(PipeState {
            buf: VecDeque::new(),
            write_closed: false,
            read_closed: false,
        }),
        Condvar::new(),
    ));
    (
        PipeWriter {
            shared: Arc::clone(&shared),
        },
        PipeReader {
            shared: Arc::clone(&shared),
        },
        PipeCloser { shared },
    )
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let (lock, cvar) = &*self.shared;
        let mut st = locked(lock);
        if st.read_closed {
            return Err(std::io::ErrorKind::BrokenPipe.into());
        }
        st.buf.extend(data);
        cvar.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.shared;
        locked(lock).write_closed = true;
        cvar.notify_all();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let (lock, cvar) = &*self.shared;
        let mut st = locked(lock);
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    // The queue holds ≥ n bytes under this lock.
                    *slot = st.buf.pop_front().unwrap_or_default();
                }
                return Ok(n);
            }
            if st.write_closed || st.read_closed {
                return Ok(0);
            }
            st = cvar
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.shared;
        locked(lock).read_closed = true;
        cvar.notify_all();
    }
}

/// Pumps newline-delimited frames from `src` to `dst` through a
/// transport-fault schedule until EOF, then drops `dst` (propagating
/// the close). Frame `i`'s fate draws from `rng.fork(i)`, so a fault
/// schedule is a pure function of the relay seed. Runs on the calling
/// thread; spawn it.
pub fn relay(src: PipeReader, dst: PipeWriter, faults: TransportFaults, rng: WlanRng) {
    let mut src = BufReader::new(src);
    let mut dst = dst;
    let mut seq: u64 = 0;
    loop {
        let mut line = Vec::new();
        match src.read_until(b'\n', &mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if faults.is_clean() {
            if dst.write_all(&line).is_err() {
                return;
            }
            seq += 1;
            continue;
        }
        let delivery = faults.perturb(&line, &mut rng.fork(seq));
        seq += 1;
        if delivery.stall_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delivery.stall_ms));
        }
        for frame in delivery.frames {
            if dst.write_all(&frame).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_moves_bytes_and_eofs_on_writer_drop() {
        let (mut w, mut r, _closer) = pipe();
        w.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        drop(w);
        assert_eq!(r.read(&mut buf).unwrap(), 0, "EOF after writer drop");
    }

    #[test]
    fn blocked_reader_wakes_on_write_from_another_thread() {
        let (mut w, mut r, _closer) = pipe();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 4];
            let n = r.read(&mut buf).unwrap();
            buf[..n].to_vec()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        w.write_all(b"ok").unwrap();
        assert_eq!(t.join().unwrap(), b"ok");
    }

    #[test]
    fn closer_kills_both_directions() {
        let (mut w, mut r, closer) = pipe();
        closer.close();
        assert_eq!(r.read(&mut [0u8; 4]).unwrap(), 0, "reader sees EOF");
        assert!(w.write_all(b"x").is_err(), "writer sees broken pipe");
    }

    #[test]
    fn reader_drop_breaks_the_writer() {
        let (mut w, r, _closer) = pipe();
        drop(r);
        assert!(w.write_all(b"x").is_err());
    }

    #[test]
    fn clean_relay_is_transparent() {
        let (mut w_in, r_in, _c1) = pipe();
        let (w_out, mut r_out, _c2) = pipe();
        let t = std::thread::spawn(move || {
            relay(
                r_in,
                w_out,
                TransportFaults::none(),
                WlanRng::seed_from_u64(1),
            )
        });
        w_in.write_all(b"alpha\nbeta\n").unwrap();
        drop(w_in);
        t.join().unwrap();
        let mut all = Vec::new();
        r_out.read_to_end(&mut all).unwrap();
        assert_eq!(all, b"alpha\nbeta\n");
    }

    #[test]
    fn chaotic_relay_propagates_eof_and_never_hangs() {
        let (mut w_in, r_in, _c1) = pipe();
        let (w_out, mut r_out, _c2) = pipe();
        let faults = TransportFaults {
            stall_ms: 1,
            ..TransportFaults::chaos(1.0)
        };
        let t = std::thread::spawn(move || relay(r_in, w_out, faults, WlanRng::seed_from_u64(2)));
        for i in 0..200 {
            writeln!(w_in, "frame number {i}").unwrap();
        }
        drop(w_in);
        t.join().unwrap();
        let mut all = Vec::new();
        r_out.read_to_end(&mut all).unwrap(); // EOF propagated: returns
        // With drops/dups/truncations anything goes content-wise; the
        // contract here is liveness plus clean shutdown.
    }
}
