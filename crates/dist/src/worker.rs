//! The worker side of a distributed campaign.
//!
//! A worker is the same binary as the coordinator, re-invoked in worker
//! mode: it reads protocol frames from stdin, runs leased trial ranges,
//! and writes results to stdout. It holds *no* campaign state beyond
//! the `hello` configuration — every lease names its exact trial range,
//! so a worker can die at any instant and lose nothing the coordinator
//! cannot re-dispatch.
//!
//! Workers are deliberately forgiving on input: a damaged frame (the
//! chaos relay bit-flips and truncates) is skipped, not fatal — the
//! coordinator's lease deadline covers the case where the damaged frame
//! was a lease. Only end-of-stream or an unwritable output pipe ends
//! the worker, because both mean the coordinator is gone.

use std::io::{BufReader, Read, Write};

use wlan_core::linksim::{frame_trial_at, PhyLink};
use wlan_fault::FaultChain;
use wlan_math::rng::WlanRng;
use wlan_runner::per::ROUND_TRIALS;

use crate::catalog::{FaultSpec, LinkSpec};
use crate::proto::{read_msg, write_msg, Msg, ProtoError, RoundTally};

/// Campaign identity a worker reconstructs from [`Msg::Hello`].
struct WorkerState {
    link: Box<dyn PhyLink>,
    faults: FaultChain,
    seed: u64,
    payload_len: usize,
    snrs: Vec<f64>,
}

/// The coordinates of one lease execution: which point, at what SNR,
/// over which wave-aligned frame range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaseJob {
    /// SNR point index (the RNG stream id).
    pub point: usize,
    /// SNR in dB at that point.
    pub snr_db: f64,
    /// First frame of the leased range.
    pub start: u64,
    /// One past the last frame.
    pub end: u64,
}

/// Runs one lease's trials: rounds of [`ROUND_TRIALS`] frames aligned
/// from `job.start`, each trial drawing its universe from
/// `seed → fork(point) → fork(frame)` — the identical stream addressing
/// the single-process campaign uses, which is what makes lease results
/// independent of *which* worker runs them, how often they are
/// re-dispatched, or whether they fall back in-process.
///
/// Returns the per-round tallies and the quarantined trials as
/// `(frame, error)` pairs in frame order.
pub fn run_lease(
    link: &dyn PhyLink,
    faults: &FaultChain,
    seed: u64,
    payload_len: usize,
    job: LeaseJob,
) -> (Vec<RoundTally>, Vec<(u64, String)>) {
    let LeaseJob {
        point,
        snr_db,
        start,
        end,
    } = job;
    let point_rng = WlanRng::seed_from_u64(seed).fork(point as u64);
    let mut rounds = Vec::new();
    let mut quars = Vec::new();
    let mut frame = start;
    while frame < end {
        let round_end = end.min(frame + ROUND_TRIALS);
        let mut tally = RoundTally {
            trials: 0,
            errors: 0,
            erasures: 0,
        };
        while frame < round_end {
            tally.trials += 1;
            match frame_trial_at(link, faults, snr_db, payload_len, &point_rng, frame) {
                Ok(true) => {}
                Ok(false) => tally.errors += 1,
                Err(e) => {
                    tally.errors += 1;
                    tally.erasures += 1;
                    quars.push((frame, e.to_string()));
                }
            }
            frame += 1;
        }
        rounds.push(tally);
    }
    (rounds, quars)
}

/// How a worker's serve loop ended — the reconnect loop in
/// [`transport`](crate::transport) keys off this: an orderly
/// [`Msg::Shutdown`] means "fleet is done, do not reconnect", while a
/// disconnect is exactly what the backoff loop exists to heal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEnd {
    /// The coordinator sent a shutdown frame.
    Shutdown,
    /// The stream ended or broke (EOF, I/O error, unwritable output).
    Disconnected,
}

/// Serves the worker protocol until end-of-stream, a `shutdown`
/// message, or an unwritable output. Never panics on any input byte
/// stream.
pub fn serve(input: impl Read, output: impl Write) -> ServeEnd {
    let mut reader = BufReader::new(input);
    let mut writer = output;
    let mut state: Option<WorkerState> = None;

    loop {
        let msg = match read_msg(&mut reader) {
            Ok(None) => return ServeEnd::Disconnected,
            Ok(Some(msg)) => msg,
            // A damaged frame: skip it. If it was a lease, the
            // coordinator's deadline re-dispatches it; protocol streams
            // resynchronise at the next newline.
            Err(ProtoError::Io(_)) => return ServeEnd::Disconnected,
            Err(_) => continue,
        };
        match msg {
            Msg::Hello {
                seed,
                payload_len,
                link,
                fault,
                snrs,
            } => {
                let (Some(link), Some(fault)) = (LinkSpec::parse(&link), FaultSpec::parse(&fault))
                else {
                    // Outside the catalog: stay un-ready; the
                    // coordinator will give up on this worker.
                    continue;
                };
                if payload_len == 0 || snrs.is_empty() {
                    continue;
                }
                state = Some(WorkerState {
                    link: link.build(),
                    faults: fault.build(),
                    seed,
                    payload_len,
                    snrs,
                });
                if write_msg(&mut writer, &Msg::Ready).is_err() {
                    return ServeEnd::Disconnected;
                }
            }
            Msg::Lease {
                id,
                point,
                start,
                end,
            } => {
                let Some(st) = state.as_ref() else {
                    continue; // lease before (or with a lost) hello
                };
                let Some(&snr_db) = st.snrs.get(point) else {
                    continue;
                };
                let (rounds, quars) = run_lease(
                    st.link.as_ref(),
                    &st.faults,
                    st.seed,
                    st.payload_len,
                    LeaseJob {
                        point,
                        snr_db,
                        start,
                        end,
                    },
                );
                for (frame, error) in quars {
                    let msg = Msg::QuarTrial {
                        lease: id,
                        frame,
                        error,
                    };
                    if write_msg(&mut writer, &msg).is_err() {
                        return ServeEnd::Disconnected;
                    }
                }
                if write_msg(&mut writer, &Msg::Done { lease: id, rounds }).is_err() {
                    return ServeEnd::Disconnected;
                }
            }
            Msg::Ping { n } => {
                if write_msg(&mut writer, &Msg::Pong { n }).is_err() {
                    return ServeEnd::Disconnected;
                }
            }
            Msg::Shutdown => return ServeEnd::Shutdown,
            // Worker-to-coordinator messages arriving here mean a
            // confused (or chaos-mangled) stream; ignore them.
            Msg::Ready | Msg::Pong { .. } | Msg::QuarTrial { .. } | Msg::Done { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::encode_frame;
    use std::io::Cursor;
    use wlan_core::linksim::FhssLink;

    fn job(point: usize, snr_db: f64, start: u64, end: u64) -> LeaseJob {
        LeaseJob {
            point,
            snr_db,
            start,
            end,
        }
    }

    fn hello() -> Msg {
        Msg::Hello {
            seed: 99,
            payload_len: 20,
            link: "fhss".into(),
            fault: "clean".into(),
            snrs: vec![2.0, 5.0, 8.0],
        }
    }

    fn serve_script(msgs: &[Msg]) -> Vec<Msg> {
        let mut input = Vec::new();
        for m in msgs {
            input.extend_from_slice(&encode_frame(m.to_payload().as_bytes()));
        }
        let mut output = Vec::new();
        serve(Cursor::new(input), &mut output);
        let mut out_msgs = Vec::new();
        let mut r = std::io::BufReader::new(Cursor::new(output));
        while let Ok(Some(m)) = read_msg(&mut r) {
            out_msgs.push(m);
        }
        out_msgs
    }

    #[test]
    fn hello_lease_done_round_trip_matches_direct_execution() {
        let out = serve_script(&[
            hello(),
            Msg::Lease {
                id: 7,
                point: 1,
                start: 0,
                end: 64,
            },
            Msg::Shutdown,
        ]);
        assert_eq!(out.first(), Some(&Msg::Ready));
        let Some(Msg::Done { lease, rounds }) = out.last() else {
            panic!("expected done, got {out:?}");
        };
        assert_eq!(*lease, 7);
        let direct = run_lease(&FhssLink, &FaultChain::clean(), 99, 20, job(1, 5.0, 0, 64));
        assert_eq!(*rounds, direct.0, "served lease must equal direct run");
        assert_eq!(rounds.len(), 2);
        assert!(rounds.iter().all(|r| r.trials == 32));
    }

    #[test]
    fn lease_results_are_worker_independent() {
        // The same lease run twice (as by two different workers after a
        // re-dispatch) is bit-identical.
        let l = FhssLink;
        let a = run_lease(&l, &FaultChain::clean(), 42, 20, job(0, 3.0, 32, 160));
        let b = run_lease(&l, &FaultChain::clean(), 42, 20, job(0, 3.0, 32, 160));
        assert_eq!(a, b);
    }

    #[test]
    fn lease_rounds_partition_like_single_process_waves() {
        // Two half-leases and one full lease must tally identically,
        // round by round: the round grid is anchored at frame 0, so any
        // lease split on a round boundary reproduces the same rounds.
        let l = FhssLink;
        let full = run_lease(&l, &FaultChain::clean(), 7, 20, job(0, 2.0, 0, 96));
        let first = run_lease(&l, &FaultChain::clean(), 7, 20, job(0, 2.0, 0, 32));
        let rest = run_lease(&l, &FaultChain::clean(), 7, 20, job(0, 2.0, 32, 96));
        let mut stitched = first.0.clone();
        stitched.extend(rest.0.clone());
        assert_eq!(full.0, stitched);
    }

    #[test]
    fn quarantined_trials_are_reported_before_done() {
        let out = serve_script(&[
            Msg::Hello {
                seed: 99,
                payload_len: 20,
                link: "fhss".into(),
                fault: FaultSpec::Single {
                    kind: wlan_fault::FaultKind::FrameTruncation,
                    severity: 1.0,
                }
                .id(),
                snrs: vec![2.0],
            },
            Msg::Lease {
                id: 1,
                point: 0,
                start: 0,
                end: 64,
            },
        ]);
        let quars: Vec<&Msg> = out
            .iter()
            .filter(|m| matches!(m, Msg::QuarTrial { .. }))
            .collect();
        assert!(!quars.is_empty(), "hard truncation must quarantine trials");
        let done_pos = out
            .iter()
            .position(|m| matches!(m, Msg::Done { .. }))
            .expect("done must arrive");
        for (i, m) in out.iter().enumerate() {
            if matches!(m, Msg::QuarTrial { .. }) {
                assert!(i < done_pos, "quar after done");
            }
        }
        // Erasure counts in rounds must match the quar messages.
        let Some(Msg::Done { rounds, .. }) = out.get(done_pos) else {
            unreachable!()
        };
        let erasures: u64 = rounds.iter().map(|r| r.erasures).sum();
        assert_eq!(erasures, quars.len() as u64);
    }

    #[test]
    fn garbage_and_out_of_catalog_input_is_survived() {
        // Damaged frames, unknown links, leases before hello, leases
        // out of range: the worker must skip them all and still serve
        // the valid tail.
        let mut input = Vec::new();
        input.extend_from_slice(b"not a frame at all\n");
        input.extend_from_slice(&encode_frame(
            Msg::Lease {
                id: 1,
                point: 0,
                start: 0,
                end: 32,
            }
            .to_payload()
            .as_bytes(),
        ));
        input.extend_from_slice(&encode_frame(
            Msg::Hello {
                seed: 1,
                payload_len: 8,
                link: "quantum:1".into(),
                fault: "clean".into(),
                snrs: vec![0.0],
            }
            .to_payload()
            .as_bytes(),
        ));
        input.extend_from_slice(&encode_frame(hello().to_payload().as_bytes()));
        input.extend_from_slice(&encode_frame(
            Msg::Lease {
                id: 2,
                point: 99,
                start: 0,
                end: 32,
            }
            .to_payload()
            .as_bytes(),
        ));
        input.extend_from_slice(&encode_frame(
            Msg::Lease {
                id: 3,
                point: 0,
                start: 0,
                end: 32,
            }
            .to_payload()
            .as_bytes(),
        ));
        let mut output = Vec::new();
        serve(Cursor::new(input), &mut output);
        let mut r = std::io::BufReader::new(Cursor::new(output));
        let mut msgs = Vec::new();
        while let Ok(Some(m)) = read_msg(&mut r) {
            msgs.push(m);
        }
        assert_eq!(
            msgs.iter()
                .filter(|m| matches!(m, Msg::Done { lease: 3, .. }))
                .count(),
            1,
            "valid lease after garbage must complete: {msgs:?}"
        );
        assert!(
            !msgs.iter().any(|m| matches!(m, Msg::Done { lease: 1, .. })
                || matches!(m, Msg::Done { lease: 2, .. })),
            "invalid leases must not produce results"
        );
    }
}
