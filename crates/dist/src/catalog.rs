//! Wire-addressable catalog of links and fault chains.
//!
//! A worker subprocess reconstructs the coordinator's exact campaign
//! from the `hello` message alone, so every link and fault chain the
//! distributed layer supports needs a stable, space-free string id that
//! round-trips bit-exactly. That is deliberately a *catalog*, not
//! open-ended serialisation: the ids cover the PHY generations and the
//! single-injector fault chains the campaigns sweep, and anything
//! outside the catalog simply runs in-process instead.

use wlan_core::dsss::DsssRate;
use wlan_core::linksim::{DsssLink, FhssLink, OfdmLink, PhyLink};
use wlan_core::ofdm::OfdmRate;
use wlan_fault::{FaultChain, FaultKind};
use wlan_runner::journal::{f64_from_hex, f64_to_hex};

/// A wire-addressable PHY link (AWGN variants of each generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSpec {
    /// 1 Mbps FHSS 2-FSK.
    Fhss,
    /// First/second-generation DSSS/CCK at the given rate.
    Dsss(DsssRate),
    /// 802.11a OFDM over AWGN at the given rate.
    Ofdm(OfdmRate),
}

impl LinkSpec {
    /// The stable wire id (no spaces), e.g. `fhss`, `dsss:11`, `ofdm:54`.
    pub fn id(&self) -> String {
        match self {
            LinkSpec::Fhss => "fhss".to_owned(),
            LinkSpec::Dsss(rate) => {
                let tag = match rate {
                    DsssRate::Dbpsk1M => "1",
                    DsssRate::Dqpsk2M => "2",
                    DsssRate::Cck5_5M => "5.5",
                    DsssRate::Cck11M => "11",
                };
                format!("dsss:{tag}")
            }
            LinkSpec::Ofdm(rate) => {
                let tag = match rate {
                    OfdmRate::R6 => "6",
                    OfdmRate::R9 => "9",
                    OfdmRate::R12 => "12",
                    OfdmRate::R18 => "18",
                    OfdmRate::R24 => "24",
                    OfdmRate::R36 => "36",
                    OfdmRate::R48 => "48",
                    OfdmRate::R54 => "54",
                };
                format!("ofdm:{tag}")
            }
        }
    }

    /// Inverse of [`LinkSpec::id`]; `None` for ids outside the catalog.
    pub fn parse(id: &str) -> Option<LinkSpec> {
        if id == "fhss" {
            return Some(LinkSpec::Fhss);
        }
        if let Some(tag) = id.strip_prefix("dsss:") {
            let rate = match tag {
                "1" => DsssRate::Dbpsk1M,
                "2" => DsssRate::Dqpsk2M,
                "5.5" => DsssRate::Cck5_5M,
                "11" => DsssRate::Cck11M,
                _ => return None,
            };
            return Some(LinkSpec::Dsss(rate));
        }
        if let Some(tag) = id.strip_prefix("ofdm:") {
            let rate = match tag {
                "6" => OfdmRate::R6,
                "9" => OfdmRate::R9,
                "12" => OfdmRate::R12,
                "18" => OfdmRate::R18,
                "24" => OfdmRate::R24,
                "36" => OfdmRate::R36,
                "48" => OfdmRate::R48,
                "54" => OfdmRate::R54,
                _ => return None,
            };
            return Some(LinkSpec::Ofdm(rate));
        }
        None
    }

    /// Constructs the link this spec names.
    pub fn build(&self) -> Box<dyn PhyLink> {
        match self {
            LinkSpec::Fhss => Box::new(FhssLink),
            LinkSpec::Dsss(rate) => Box::new(DsssLink { rate: *rate }),
            LinkSpec::Ofdm(rate) => Box::new(OfdmLink::awgn(*rate)),
        }
    }

    /// Every catalogued link, in generation order.
    pub fn all() -> Vec<LinkSpec> {
        let mut out = vec![LinkSpec::Fhss];
        for rate in [
            DsssRate::Dbpsk1M,
            DsssRate::Dqpsk2M,
            DsssRate::Cck5_5M,
            DsssRate::Cck11M,
        ] {
            out.push(LinkSpec::Dsss(rate));
        }
        for rate in [
            OfdmRate::R6,
            OfdmRate::R9,
            OfdmRate::R12,
            OfdmRate::R18,
            OfdmRate::R24,
            OfdmRate::R36,
            OfdmRate::R48,
            OfdmRate::R54,
        ] {
            out.push(LinkSpec::Ofdm(rate));
        }
        out
    }
}

/// A wire-addressable fault chain: clean, or one catalogued injector at
/// a bit-exact severity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// No faults.
    Clean,
    /// One injector from the [`FaultKind`] catalog.
    Single {
        /// The fault family.
        kind: FaultKind,
        /// Severity in `[0, 1]` (hex bit pattern on the wire).
        severity: f64,
    },
}

impl FaultSpec {
    /// The stable wire id, e.g. `clean` or
    /// `single:adc-clip:3fe0000000000000`.
    pub fn id(&self) -> String {
        match self {
            FaultSpec::Clean => "clean".to_owned(),
            FaultSpec::Single { kind, severity } => {
                format!("single:{}:{}", kind.name(), f64_to_hex(*severity))
            }
        }
    }

    /// Inverse of [`FaultSpec::id`]; `None` for unknown kinds, malformed
    /// severities, or severities outside `[0, 1]`.
    pub fn parse(id: &str) -> Option<FaultSpec> {
        if id == "clean" {
            return Some(FaultSpec::Clean);
        }
        let rest = id.strip_prefix("single:")?;
        let (name, sev_hex) = rest.rsplit_once(':')?;
        let kind = FaultKind::all().into_iter().find(|k| k.name() == name)?;
        let severity = f64_from_hex(sev_hex)?;
        if !severity.is_finite() || !(0.0..=1.0).contains(&severity) {
            return None;
        }
        Some(FaultSpec::Single { kind, severity })
    }

    /// Constructs the fault chain this spec names.
    pub fn build(&self) -> FaultChain {
        match self {
            FaultSpec::Clean => FaultChain::clean(),
            FaultSpec::Single { kind, severity } => kind.chain(*severity),
        }
    }
}

/// A digest of the whole catalog: FNV-1a over every link id and every
/// fault-kind name, in catalog order.
///
/// The TCP handshake exchanges this alongside the protocol version.
/// Two binaries that frame messages identically but were built from
/// different catalogs would not disagree loudly — a worker would
/// happily run `ofdm:12` with *its* idea of what that id means — so
/// the digest turns "silently different results" into a typed
/// [`ProtoError::Incompatible`](crate::proto::ProtoError::Incompatible)
/// at connect time.
pub fn catalog_digest() -> u64 {
    let mut text = String::new();
    for link in LinkSpec::all() {
        text.push_str(&link.id());
        text.push('\n');
    }
    for kind in FaultKind::all() {
        text.push_str(kind.name());
        text.push('\n');
    }
    wlan_runner::journal::fnv1a64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_digest_is_stable_and_sensitive() {
        // Deterministic across calls (the handshake depends on it).
        assert_eq!(catalog_digest(), catalog_digest());
        // Sanity: it actually covers the catalog — recomputing with one
        // link removed gives a different value.
        let mut text = String::new();
        for link in LinkSpec::all().iter().skip(1) {
            text.push_str(&link.id());
            text.push('\n');
        }
        for kind in FaultKind::all() {
            text.push_str(kind.name());
            text.push('\n');
        }
        assert_ne!(
            catalog_digest(),
            wlan_runner::journal::fnv1a64(text.as_bytes())
        );
    }

    #[test]
    fn every_link_id_round_trips_and_builds_the_same_link() {
        for spec in LinkSpec::all() {
            let id = spec.id();
            assert!(!id.contains(' '), "{id}");
            assert_eq!(LinkSpec::parse(&id), Some(spec), "{id}");
            // Same campaign identity both sides of the wire.
            assert_eq!(spec.build().name(), spec.build().name());
        }
        // Ids are unique.
        let ids: std::collections::HashSet<String> =
            LinkSpec::all().iter().map(LinkSpec::id).collect();
        assert_eq!(ids.len(), LinkSpec::all().len());
    }

    #[test]
    fn fault_ids_round_trip_bit_exactly() {
        for kind in FaultKind::all() {
            for severity in [0.0, 0.1 + 0.2, 1.0] {
                let spec = FaultSpec::Single { kind, severity };
                let back = FaultSpec::parse(&spec.id());
                assert_eq!(back, Some(spec), "{}", spec.id());
                assert_eq!(spec.build().name(), back.into_iter().next().map(|s| s.build().name()).unwrap_or_default());
            }
        }
        assert_eq!(FaultSpec::parse("clean"), Some(FaultSpec::Clean));
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert_eq!(LinkSpec::parse("ofdm:7"), None);
        assert_eq!(LinkSpec::parse("mimo:2x2"), None);
        assert_eq!(FaultSpec::parse("single:nope:3fe0000000000000"), None);
        assert_eq!(FaultSpec::parse("single:adc-clip:zz"), None);
        // Severity outside [0,1] must be rejected before build() would
        // panic.
        let bad = format!("single:adc-clip:{}", f64_to_hex(1.5));
        assert_eq!(FaultSpec::parse(&bad), None);
        let nan = format!("single:adc-clip:{}", f64_to_hex(f64::NAN));
        assert_eq!(FaultSpec::parse(&nan), None);
    }
}
