//! `campaign serve` — a long-running distributed-campaign service.
//!
//! [`run_campaign_service`] binds a TCP listener, builds a [`Fleet`]
//! fed by every worker that completes the [`transport`](crate::transport)
//! handshake (before the first campaign or in the middle of one — late
//! joiners attach at the next coordinator pass), and runs its queued
//! campaigns back-to-back on that one fleet. Three connection roles
//! multiplex on the same port, distinguished by the handshake:
//!
//! * **worker** — joins the fleet and receives leases.
//! * **control** — may send a [`Msg::Shutdown`] frame; the service then
//!   *drains*: in-flight leases finish (still policed by their
//!   deadlines), the current campaign checkpoints and exits with
//!   [`StopReason::Interrupted`](wlan_runner::budget::StopReason), and
//!   queued campaigns after it never start.
//! * **events** — receives the service's `serve_*`/`conn_*` narration
//!   as JSONL, one object per line, mirroring the `WLAN_OBS` sink.
//!
//! Every campaign journals under a key that appends the service's
//! listen address and the campaign's queue position to the classic
//! `dist v1` identity, so a SIGKILLed service re-run with the same
//! address resumes each campaign bit-identically — and two services
//! sharing one journal file can never resume each other's entries.

use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::Duration;

use wlan_obs::json;

use crate::catalog::{FaultSpec, LinkSpec};
use crate::coord::{run_dist_per_campaign_on, DistConfig, DistPerReport, Fleet, WorkerIo};
use crate::proto::{read_msg, Msg, ProtoError};
use crate::transport::{server_handshake, Role, DEFAULT_HEARTBEAT_MS};

/// Locks a mutex, recovering from poison: a panicked subscriber write
/// must not take the whole service down with it.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// State shared between the service loop, the accept loop, and every
/// per-connection handler thread.
struct Shared {
    /// Set by a control client's shutdown frame (or [`Acceptor::request_stop`]).
    stop: AtomicBool,
    /// Cleared when the acceptor closes; the accept loop exits on the
    /// next connection instead of handling it.
    accepting: AtomicBool,
    /// Monotonic connection counter (for `conn_*` event correlation).
    conns: AtomicU64,
    /// Live event-subscriber sockets; pruned on write failure.
    subscribers: Mutex<Vec<TcpStream>>,
}

impl Shared {
    /// Emits to the process-wide `WLAN_OBS` recorder *and* fans the
    /// same JSONL line out to every event subscriber.
    fn emit(&self, name: &str, fields: &[(&str, json::Value)]) {
        wlan_obs::global().event(name, fields);
        let mut pairs = Vec::with_capacity(fields.len() + 1);
        pairs.push(("event".to_owned(), json::Value::Str(name.to_owned())));
        for (k, v) in fields {
            pairs.push(((*k).to_owned(), v.clone()));
        }
        let mut line = json::Value::Obj(pairs).to_json();
        line.push('\n');
        let mut subs = locked(&self.subscribers);
        subs.retain_mut(|s| {
            s.write_all(line.as_bytes())
                .and_then(|()| s.flush())
                .is_ok()
        });
    }
}

/// A bound service listener: accepts connections, handshakes them, and
/// routes workers into the channel returned by [`Acceptor::bind`] —
/// pair it with [`Fleet::from_joiners`]. [`run_campaign_service`] wraps
/// all of this; tests and bespoke services can use the acceptor
/// directly.
pub struct Acceptor {
    local_addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Acceptor {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop. Returns the acceptor and the channel of
    /// handshaken workers.
    pub fn bind(addr: &str) -> std::io::Result<(Acceptor, mpsc::Receiver<WorkerIo>)> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            accepting: AtomicBool::new(true),
            conns: AtomicU64::new(0),
            subscribers: Mutex::new(Vec::new()),
        });
        let (tx, rx) = mpsc::channel();
        let accept_shared = Arc::clone(&shared);
        let accept_thread =
            std::thread::spawn(move || accept_loop(listener, accept_shared, tx));
        Ok((
            Acceptor {
                local_addr,
                shared,
                accept_thread: Mutex::new(Some(accept_thread)),
            },
            rx,
        ))
    }

    /// The actually-bound address (resolves an `:0` ephemeral port).
    pub fn local_addr(&self) -> String {
        self.local_addr.to_string()
    }

    /// Whether a shutdown has been requested (control frame or
    /// [`Acceptor::request_stop`]).
    pub fn stop_requested(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Requests a drain, exactly as a control client's shutdown frame
    /// would.
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Stops accepting connections and waits for the accept loop to
    /// exit (so the port is genuinely released when this returns —
    /// a restarted service can rebind the same address immediately).
    /// Already-handshaken connections are unaffected.
    pub fn close(&self) {
        self.shared.accepting.store(false, Ordering::SeqCst);
        // The listener blocks in accept(); a throwaway connection wakes
        // it so it can observe `accepting == false` and exit.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = locked(&self.accept_thread).take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, tx: mpsc::Sender<WorkerIo>) {
    for stream in listener.incoming() {
        if !shared.accepting.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        let conn_tx = tx.clone();
        std::thread::spawn(move || handle_conn(stream, conn_shared, conn_tx));
    }
}

fn handle_conn(stream: TcpStream, shared: Arc<Shared>, tx: mpsc::Sender<WorkerIo>) {
    match server_handshake(stream) {
        Ok((role, reader, writer)) => {
            let conn = shared.conns.fetch_add(1, Ordering::SeqCst);
            shared.emit(
                wlan_obs::events::CONN_ACCEPT,
                &[
                    ("conn", json::Value::U64(conn)),
                    ("role", json::Value::Str(role.as_str().to_owned())),
                ],
            );
            match role {
                Role::Worker => {
                    let kill_stream = writer.try_clone().ok();
                    // The handshake's BufReader travels with the slot:
                    // any bytes the worker pipelined behind its connect
                    // frame are already buffered in it.
                    let io = WorkerIo {
                        writer: Box::new(writer),
                        reader: Box::new(reader),
                        kill: Box::new(move || {
                            if let Some(s) = &kill_stream {
                                let _ = s.shutdown(Shutdown::Both);
                            }
                        }),
                    };
                    let _ = tx.send(io);
                }
                Role::Control => {
                    let mut r = reader;
                    loop {
                        match read_msg(&mut r) {
                            Ok(Some(Msg::Shutdown)) => {
                                shared.stop.store(true, Ordering::SeqCst);
                                break;
                            }
                            Ok(Some(_)) => continue,
                            Ok(None) | Err(ProtoError::Io(_)) => break,
                            // Damaged frames resync at the next newline,
                            // same as the worker loop.
                            Err(_) => continue,
                        }
                    }
                    // Obs-only (no subscriber fan-out): closes are
                    // bookkeeping, not service lifecycle.
                    wlan_obs::global().event(
                        wlan_obs::events::CONN_CLOSE,
                        &[("conn", json::Value::U64(conn))],
                    );
                }
                Role::Events => {
                    locked(&shared.subscribers).push(writer);
                }
            }
        }
        Err(e) => {
            shared.emit(
                wlan_obs::events::CONN_REJECT,
                &[("reason", json::Value::Str(e.to_string()))],
            );
        }
    }
}

/// One queued campaign: what to run and how to run it. The fleet
/// geometry fields of `cfg` (`workers`) are ignored — the service's
/// fleet is whoever connected.
pub struct ServeCampaign {
    /// The PHY link under test.
    pub link: LinkSpec,
    /// The fault chain under test.
    pub fault: FaultSpec,
    /// Campaign and failure-handling configuration.
    pub cfg: DistConfig,
}

/// Configuration for [`run_campaign_service`].
pub struct ServeConfig {
    /// Listen address (`host:port`; port `0` picks an ephemeral one).
    /// Defaults come from `WLAN_DIST_ADDR` via
    /// [`dist_addr_from_env`](crate::transport::dist_addr_from_env).
    pub addr: String,
    /// Campaigns to run back-to-back, in order.
    pub campaigns: Vec<ServeCampaign>,
    /// Keep serving after the queue drains — pinging idle workers and
    /// accepting joiners — until a shutdown frame arrives. Off, the
    /// service exits once the queue is done.
    pub linger: bool,
}

/// What [`run_campaign_service`] did.
#[derive(Debug)]
pub struct ServeReport {
    /// The actually-bound listen address.
    pub bound_addr: String,
    /// One report per campaign that ran (a drain cuts the queue short).
    pub reports: Vec<DistPerReport>,
    /// Whether a shutdown was requested (vs. the queue running dry).
    pub shutdown_requested: bool,
}

/// Runs the `campaign serve` service: bind, accept workers, run the
/// queued campaigns on one persistent fleet, drain on shutdown.
///
/// `on_campaign` fires after each campaign completes (index in the
/// queue, its report) — the serve example streams progress from it.
///
/// Campaign `q`'s journal key is the one-shot key plus
/// `" serve addr=<bound> q=<q>"`, so a killed service re-run on the
/// same address resumes every finished campaign as complete and the
/// interrupted one from its last checkpoint — bit-identically.
pub fn run_campaign_service(
    cfg: &ServeConfig,
    mut on_campaign: impl FnMut(usize, &DistPerReport),
) -> std::io::Result<ServeReport> {
    let (acceptor, joiners) = Acceptor::bind(&cfg.addr)?;
    let bound = acceptor.local_addr();
    acceptor.shared.emit(
        wlan_obs::events::SERVE_START,
        &[("addr", json::Value::Str(bound.clone()))],
    );

    let mut fleet = Fleet::from_joiners(joiners);
    let mut reports = Vec::new();
    for (q, c) in cfg.campaigns.iter().enumerate() {
        if acceptor.stop_requested() {
            break;
        }
        acceptor.shared.emit(
            wlan_obs::events::SERVE_CAMPAIGN_START,
            &[
                ("q", json::Value::U64(q as u64)),
                ("link", json::Value::Str(c.link.id())),
                ("fault", json::Value::Str(c.fault.id())),
            ],
        );
        let suffix = format!(" serve addr={bound} q={q}");
        let report = run_dist_per_campaign_on(
            c.link,
            c.fault,
            &c.cfg,
            &mut fleet,
            &suffix,
            Some(&acceptor.shared.stop),
        );
        acceptor.shared.emit(
            wlan_obs::events::SERVE_CAMPAIGN_DONE,
            &[
                ("q", json::Value::U64(q as u64)),
                ("complete", json::Value::Bool(report.outcome.is_complete())),
                ("trials", json::Value::U64(report.completed_trials())),
            ],
        );
        on_campaign(q, &report);
        reports.push(report);
    }

    if cfg.linger {
        let heartbeat_ms = cfg
            .campaigns
            .first()
            .map(|c| c.cfg.heartbeat_ms)
            .unwrap_or(DEFAULT_HEARTBEAT_MS);
        while !acceptor.stop_requested() {
            fleet.idle_tick(heartbeat_ms);
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    let shutdown_requested = acceptor.stop_requested();
    acceptor.shared.emit(
        wlan_obs::events::SERVE_SHUTDOWN,
        &[
            ("campaigns", json::Value::U64(reports.len() as u64)),
            ("requested", json::Value::Bool(shutdown_requested)),
        ],
    );
    fleet.shutdown();
    acceptor.close();
    Ok(ServeReport {
        bound_addr: bound,
        reports,
        shutdown_requested,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::{run_dist_per_campaign, InProcessFactory};
    use crate::transport::{connect_role, run_tcp_worker, WorkerOpts};
    use crate::proto::write_msg;
    use wlan_runner::per::PerCampaignConfig;

    fn small_per(seed: u64, journal: Option<std::path::PathBuf>) -> PerCampaignConfig {
        let mut per = PerCampaignConfig::new(&[2.0, 4.0], 24, 96, seed);
        per.journal = journal;
        per
    }

    fn dist_cfg(per: PerCampaignConfig) -> DistConfig {
        DistConfig::new(per, 0)
            .with_lease_timeout_ms(10_000)
            .with_heartbeat_ms(50)
    }

    fn points_bits(r: &DistPerReport) -> Vec<(u64, u64, u64)> {
        r.points
            .iter()
            .map(|p| (p.trials, p.errors, p.per().to_bits()))
            .collect()
    }

    #[test]
    fn service_runs_queued_campaigns_on_tcp_workers_bit_identically() {
        let serve_cfg = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            campaigns: vec![
                ServeCampaign {
                    link: LinkSpec::Ofdm(wlan_core::ofdm::OfdmRate::R12),
                    fault: FaultSpec::Clean,
                    cfg: dist_cfg(small_per(11, None)),
                },
                ServeCampaign {
                    link: LinkSpec::Dsss(wlan_core::dsss::DsssRate::Dqpsk2M),
                    fault: FaultSpec::Clean,
                    cfg: dist_cfg(small_per(12, None)),
                },
            ],
            linger: false,
        };

        // The service publishes its bound address through the report,
        // but workers need it *before* the service returns — run the
        // service on a thread and discover the port via an addr probe.
        let (addr_tx, addr_rx) = mpsc::channel::<String>();
        let svc = std::thread::spawn(move || {
            // Bind first so the address exists before workers dial.
            run_campaign_service_with_probe(&serve_cfg, addr_tx)
        });
        let addr = addr_rx
            .recv_timeout(Duration::from_secs(10))
            .unwrap_or_default();
        assert!(!addr.is_empty(), "service never reported its address");

        let opts = WorkerOpts {
            retries: 20,
            backoff_ms: 5,
            backoff_cap_ms: 40,
            read_timeout_ms: 5_000,
            ..WorkerOpts::default()
        };
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                let opts = opts.clone();
                std::thread::spawn(move || run_tcp_worker(&addr, &opts))
            })
            .collect();

        let report = match svc.join() {
            Ok(Ok(r)) => r,
            other => panic!("service failed: {other:?}"),
        };
        assert_eq!(report.reports.len(), 2);
        for r in &report.reports {
            assert!(r.outcome.is_complete(), "{:?}", r.outcome);
        }
        // Workers got an orderly shutdown, not an error.
        for w in workers {
            let sessions = match w.join() {
                Ok(Ok(n)) => n,
                other => panic!("worker failed: {other:?}"),
            };
            assert!(sessions >= 1);
        }

        // Bit-identity: each served campaign matches the classic
        // one-shot in-process run of the same config.
        for (q, seed) in [(0usize, 11u64), (1, 12)] {
            let cfg = dist_cfg(small_per(seed, None));
            let baseline = match q {
                0 => run_dist_per_campaign(
                    LinkSpec::Ofdm(wlan_core::ofdm::OfdmRate::R12),
                    FaultSpec::Clean,
                    &DistConfig { workers: 2, ..cfg },
                    &mut InProcessFactory::clean(),
                ),
                _ => run_dist_per_campaign(
                    LinkSpec::Dsss(wlan_core::dsss::DsssRate::Dqpsk2M),
                    FaultSpec::Clean,
                    &DistConfig { workers: 2, ..cfg },
                    &mut InProcessFactory::clean(),
                ),
            };
            assert_eq!(
                points_bits(&report.reports[q]),
                points_bits(&baseline),
                "campaign {q} diverged from its one-shot baseline"
            );
        }
    }

    /// Like [`run_campaign_service`] but reports the bound address on a
    /// channel as soon as the listener exists (test plumbing only).
    fn run_campaign_service_with_probe(
        cfg: &ServeConfig,
        addr_tx: mpsc::Sender<String>,
    ) -> std::io::Result<ServeReport> {
        let (acceptor, joiners) = Acceptor::bind(&cfg.addr)?;
        let bound = acceptor.local_addr();
        let _ = addr_tx.send(bound.clone());
        let mut fleet = Fleet::from_joiners(joiners);
        // Give the workers a moment to dial before the first campaign
        // decides whether to fall back in-process; joiners arriving
        // later would still attach mid-campaign.
        std::thread::sleep(Duration::from_millis(100));
        let mut reports = Vec::new();
        for (q, c) in cfg.campaigns.iter().enumerate() {
            if acceptor.stop_requested() {
                break;
            }
            let suffix = format!(" serve addr={bound} q={q}");
            reports.push(run_dist_per_campaign_on(
                c.link,
                c.fault,
                &c.cfg,
                &mut fleet,
                &suffix,
                Some(&acceptor.shared.stop),
            ));
        }
        let shutdown_requested = acceptor.stop_requested();
        fleet.shutdown();
        acceptor.close();
        Ok(ServeReport {
            bound_addr: bound,
            reports,
            shutdown_requested,
        })
    }

    #[test]
    fn control_shutdown_frame_stops_a_lingering_service() {
        let serve_cfg = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            campaigns: Vec::new(),
            linger: true,
        };
        let (addr_tx, addr_rx) = mpsc::channel::<String>();
        let svc = std::thread::spawn(move || {
            let (acceptor, joiners) = Acceptor::bind(&serve_cfg.addr)?;
            let _ = addr_tx.send(acceptor.local_addr());
            let mut fleet = Fleet::from_joiners(joiners);
            while !acceptor.stop_requested() {
                fleet.idle_tick(50);
                std::thread::sleep(Duration::from_millis(5));
            }
            fleet.shutdown();
            acceptor.close();
            Ok::<bool, std::io::Error>(acceptor.stop_requested())
        });
        let addr = addr_rx
            .recv_timeout(Duration::from_secs(10))
            .unwrap_or_default();
        assert!(!addr.is_empty());

        let mut control = match connect_role(&addr, Role::Control, &WorkerOpts::default()) {
            Ok(c) => c,
            Err(e) => panic!("control connect failed: {e}"),
        };
        assert!(write_msg(&mut control.writer, &Msg::Shutdown).is_ok());

        match svc.join() {
            Ok(Ok(true)) => {}
            other => panic!("service did not observe the shutdown: {other:?}"),
        }
    }

    #[test]
    fn serves_never_cross_resume_across_addresses_or_queue_slots() {
        // S6 regression: the journal key carries the listen address and
        // queue position. A campaign completed by a service at address A
        // must never be "resumed" (i.e. skipped) by a service at address
        // B, nor may queue slot 1 resume slot 0's completed entry — each
        // runs in full and all arrive at bit-identical results.
        let dir = std::env::temp_dir().join(format!(
            "wlan_serve_keys_{}_{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or_default()
        ));
        std::fs::create_dir_all(&dir).ok();
        let journal = dir.join("serve.journal");

        // Zero workers + no joiners dialling in: campaigns degrade to
        // in-process fallback, keeping this test free of socket timing.
        let one_campaign = || ServeCampaign {
            link: LinkSpec::Ofdm(wlan_core::ofdm::OfdmRate::R12),
            fault: FaultSpec::Clean,
            cfg: dist_cfg(small_per(21, Some(journal.clone()))),
        };
        let serve = |addr: &str, n: usize| ServeConfig {
            addr: addr.to_owned(),
            campaigns: (0..n).map(|_| one_campaign()).collect(),
            linger: false,
        };

        // Service A: two *identical* campaigns sharing one journal path.
        // Slot 1 must not load slot 0's completed entry and skip itself
        // — its key differs in `q=`, so it refuses the file (ColdStart)
        // and runs in full.
        let a = match run_campaign_service(&serve("127.0.0.1:0", 2), |_, _| {}) {
            Ok(r) => r,
            Err(e) => panic!("service A failed: {e}"),
        };
        assert_eq!(a.reports.len(), 2);
        assert_eq!(a.reports[0].resume, wlan_runner::Resume::Fresh);
        match a.reports[1].resume {
            wlan_runner::Resume::ColdStart { .. } => {}
            ref other => panic!("slot 1 must refuse slot 0's journal entry, got {other:?}"),
        }
        assert!(a.reports[1].outcome.is_complete());
        assert_eq!(points_bits(&a.reports[0]), points_bits(&a.reports[1]));

        // Service B, different (ephemeral) address, same journal: must
        // refuse A's entry for the same reason.
        let b = match run_campaign_service(&serve("127.0.0.1:0", 1), |_, _| {}) {
            Ok(r) => r,
            Err(e) => panic!("service B failed: {e}"),
        };
        assert_ne!(a.bound_addr, b.bound_addr);
        match b.reports[0].resume {
            wlan_runner::Resume::ColdStart { .. } => {}
            ref other => panic!("B must refuse A's journal entry, got {other:?}"),
        }
        assert_eq!(points_bits(&a.reports[0]), points_bits(&b.reports[0]));

        // Re-running B's exact address and queue slot *does* resume —
        // the key binds identity, it does not forbid resumption.
        let rerun = match run_campaign_service(&serve(&b.bound_addr, 1), |_, _| {}) {
            Ok(r) => r,
            Err(e) => panic!("rerun failed: {e}"),
        };
        match rerun.reports[0].resume {
            wlan_runner::Resume::Resumed { .. } => {}
            ref other => panic!("expected a resume, got {other:?}"),
        }
        assert_eq!(points_bits(&b.reports[0]), points_bits(&rerun.reports[0]));

        std::fs::remove_dir_all(&dir).ok();
    }
}
