//! Spatial-multiplexing detectors.
//!
//! Given `y = H·x + n` with `N_ss` unit-power streams and noise variance
//! `n0` per receive antenna, recover `x`. Zero-forcing inverts the channel
//! (noise-enhancing on ill-conditioned channels), MMSE regularizes by the
//! noise level, and exhaustive ML is provided for 2×2 as the optimal
//! reference. The ZF/MMSE gap at low SNR is one of the E7 ablations.

use wlan_math::{CMatrix, Complex, WlanError};

/// Detector choice for the spatial-multiplexing receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Detector {
    /// Zero-forcing (channel pseudo-inverse).
    ZeroForcing,
    /// Linear minimum mean-square error.
    Mmse,
}

/// Result of linear detection: per-stream estimates and reliabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Detected {
    /// Unbiased per-stream symbol estimates.
    pub symbols: Vec<Complex>,
    /// Per-stream post-detection SINR (linear) — the CSI weight for soft
    /// demapping.
    pub sinr: Vec<f64>,
}

/// Validates the shared preconditions of the linear detectors: consistent
/// dimensions, a positive finite noise variance, and finite inputs. A
/// singular realization under fault injection must surface as a typed
/// decode failure, never as a panic in the hot loop.
fn check_inputs(h: &CMatrix, y: &[Complex], n0: f64) -> Result<(), WlanError> {
    if y.len() != h.rows() {
        return Err(WlanError::LengthMismatch {
            expected: h.rows(),
            got: y.len(),
        });
    }
    if !n0.is_finite() {
        return Err(WlanError::NonFinite("noise variance"));
    }
    if n0 <= 0.0 {
        return Err(WlanError::InvalidConfig("noise variance must be positive"));
    }
    if !y.iter().all(|v| v.is_finite()) {
        return Err(WlanError::NonFinite("received vector"));
    }
    for r in 0..h.rows() {
        for c in 0..h.cols() {
            if !h.get(r, c).is_finite() {
                return Err(WlanError::NonFinite("channel matrix"));
            }
        }
    }
    Ok(())
}

/// Zero-forcing detection: `x̂ = (HᴴH)⁻¹Hᴴ·y`.
///
/// # Errors
///
/// Returns [`WlanError::SingularChannel`] when `HᴴH` is singular
/// (rank-deficient channel), [`WlanError::LengthMismatch`] on inconsistent
/// dimensions, and [`WlanError::NonFinite`] / [`WlanError::InvalidConfig`]
/// on degenerate inputs. Never panics.
pub fn zero_forcing(h: &CMatrix, y: &[Complex], n0: f64) -> Result<Detected, WlanError> {
    check_inputs(h, y, n0)?;
    let gram = h.gram();
    let gram_inv = gram.inverse()?;
    let hh = h.hermitian();
    let matched = hh.mul_vec(y);
    let symbols = gram_inv.mul_vec(&matched);
    // Post-ZF SNR of stream i: 1 / (n0 · [(HᴴH)⁻¹]_ii).
    let sinr = (0..h.cols())
        .map(|i| {
            let d = gram_inv.get(i, i).re.max(1e-300);
            1.0 / (n0 * d)
        })
        .collect();
    Ok(Detected { symbols, sinr })
}

/// Linear MMSE detection with unbiasing:
/// `x̂ = (HᴴH + n0·I)⁻¹Hᴴ·y`, rescaled per stream.
///
/// # Errors
///
/// Returns [`WlanError::SingularChannel`] only in pathological cases (the
/// regularized matrix is almost always invertible); input validation
/// matches [`zero_forcing`]. Never panics.
pub fn mmse(h: &CMatrix, y: &[Complex], n0: f64) -> Result<Detected, WlanError> {
    check_inputs(h, y, n0)?;
    let gram = h.gram();
    let reg_inv = gram.add_diagonal(n0).inverse()?;
    let matched = h.hermitian().mul_vec(y);
    let biased = reg_inv.mul_vec(&matched);

    // Error covariance E = (I + HᴴH/n0)⁻¹ = n0·(HᴴH + n0 I)⁻¹.
    // SINR_i = 1/E_ii − 1; bias factor of stream i is (1 − E_ii).
    let mut symbols = Vec::with_capacity(h.cols());
    let mut sinr = Vec::with_capacity(h.cols());
    for (i, &b) in biased.iter().enumerate() {
        let e_ii = (n0 * reg_inv.get(i, i).re).clamp(1e-12, 1.0);
        let s = (1.0 / e_ii - 1.0).max(0.0);
        sinr.push(s);
        symbols.push(b / (1.0 - e_ii).max(1e-12));
    }
    Ok(Detected { symbols, sinr })
}

/// Runs the chosen linear detector.
///
/// # Errors
///
/// Propagates [`WlanError`] from the underlying detector.
pub fn detect(
    detector: Detector,
    h: &CMatrix,
    y: &[Complex],
    n0: f64,
) -> Result<Detected, WlanError> {
    match detector {
        Detector::ZeroForcing => zero_forcing(h, y, n0),
        Detector::Mmse => mmse(h, y, n0),
    }
}

/// A linear detector prepared once per (channel, noise) pair and applied to
/// a batch of observations — the structure-of-arrays half of the MIMO-OFDM
/// receive kernel.
///
/// For OFDM the channel matrix of a subcarrier is constant across all of a
/// frame's symbols, so the expensive factorization (Gram matrix, regularized
/// inverse, per-stream SINR and unbiasing gains) is hoisted out of the
/// per-symbol loop. Application preserves the exact floating-point operation
/// sequence of [`mmse`] / [`zero_forcing`] — matched filter, then inverse,
/// then per-stream unbiasing — so batched and per-symbol detection are
/// bit-identical; the batch equivalence suite pins this.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearDetector {
    /// `Hᴴ` (matched filter).
    hh: CMatrix,
    /// `(HᴴH)⁻¹` for ZF, `(HᴴH + n0·I)⁻¹` for MMSE.
    inv: CMatrix,
    /// Per-stream post-detection SINR (the CSI weight for soft demapping).
    sinr: Vec<f64>,
    /// Per-stream unbiasing divisors `(1 − E_ii)` — `None` for ZF, which is
    /// already unbiased.
    unbias: Option<Vec<f64>>,
    n_rx: usize,
    n_ss: usize,
    /// Matched-filter / output scratch, reused across observations.
    scratch: Vec<Complex>,
}

impl LinearDetector {
    /// Factors the detector for one `(h, n0)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`WlanError::SingularChannel`] on a rank-deficient channel
    /// (ZF only, in practice), [`WlanError::NonFinite`] /
    /// [`WlanError::InvalidConfig`] on degenerate inputs. Never panics.
    pub fn prepare(detector: Detector, h: &CMatrix, n0: f64) -> Result<Self, WlanError> {
        if !n0.is_finite() {
            return Err(WlanError::NonFinite("noise variance"));
        }
        if n0 <= 0.0 {
            return Err(WlanError::InvalidConfig("noise variance must be positive"));
        }
        for r in 0..h.rows() {
            for c in 0..h.cols() {
                if !h.get(r, c).is_finite() {
                    return Err(WlanError::NonFinite("channel matrix"));
                }
            }
        }
        let gram = h.gram();
        let (inv, sinr, unbias) = match detector {
            Detector::ZeroForcing => {
                let gram_inv = gram.inverse()?;
                // Post-ZF SNR of stream i: 1 / (n0 · [(HᴴH)⁻¹]_ii).
                let sinr = (0..h.cols())
                    .map(|i| {
                        let d = gram_inv.get(i, i).re.max(1e-300);
                        1.0 / (n0 * d)
                    })
                    .collect();
                (gram_inv, sinr, None)
            }
            Detector::Mmse => {
                let reg_inv = gram.add_diagonal(n0).inverse()?;
                // Error covariance E = n0·(HᴴH + n0 I)⁻¹: SINR_i = 1/E_ii − 1
                // and the bias factor of stream i is (1 − E_ii).
                let mut sinr = Vec::with_capacity(h.cols());
                let mut unbias = Vec::with_capacity(h.cols());
                for i in 0..h.cols() {
                    let e_ii = (n0 * reg_inv.get(i, i).re).clamp(1e-12, 1.0);
                    sinr.push((1.0 / e_ii - 1.0).max(0.0));
                    unbias.push((1.0 - e_ii).max(1e-12));
                }
                (reg_inv, sinr, Some(unbias))
            }
        };
        Ok(LinearDetector {
            hh: h.hermitian(),
            inv,
            sinr,
            unbias,
            n_rx: h.rows(),
            n_ss: h.cols(),
            scratch: Vec::new(),
        })
    }

    /// Per-stream post-detection SINR (constant across a batch).
    pub fn sinr(&self) -> &[f64] {
        &self.sinr
    }

    /// Number of spatial streams each observation resolves into.
    pub fn n_streams(&self) -> usize {
        self.n_ss
    }

    /// Detects one observation, appending `n_streams` symbol estimates to
    /// `symbols`; on error nothing is appended.
    ///
    /// # Errors
    ///
    /// [`WlanError::LengthMismatch`] on a wrong observation length,
    /// [`WlanError::NonFinite`] on a non-finite observation.
    pub fn detect_append(
        &mut self,
        y: &[Complex],
        symbols: &mut Vec<Complex>,
    ) -> Result<(), WlanError> {
        if y.len() != self.n_rx {
            return Err(WlanError::LengthMismatch {
                expected: self.n_rx,
                got: y.len(),
            });
        }
        if !y.iter().all(|v| v.is_finite()) {
            return Err(WlanError::NonFinite("received vector"));
        }
        // Matched filter then inverse — the op order of mmse()/zero_forcing().
        self.scratch.clear();
        self.hh.mul_vec_append(y, &mut self.scratch);
        let base = symbols.len();
        self.inv.mul_vec_append(&self.scratch, symbols);
        if let Some(unbias) = &self.unbias {
            for (s, &d) in symbols[base..].iter_mut().zip(unbias) {
                // Componentwise division, matching `mmse`'s `b / divisor`
                // exactly (not a multiply by the reciprocal).
                let unbiased = *s / d;
                *s = unbiased;
            }
        }
        Ok(())
    }

    /// Detects a structure-of-arrays batch: `ys` holds whole `n_rx`-length
    /// observations back to back (`ys.len() / n_rx` of them, e.g. one
    /// subcarrier across all of a frame's OFDM symbols). Appends
    /// `n_streams` estimates per observation to `symbols` and one flag per
    /// observation to `ok`; a failed observation (non-finite input) appends
    /// `n_streams` zeros and `false`, so downstream demapping can emit
    /// erasures without disturbing the batch layout.
    ///
    /// # Errors
    ///
    /// [`WlanError::LengthMismatch`] if `ys` is not whole observations.
    pub fn detect_batch(
        &mut self,
        ys: &[Complex],
        symbols: &mut Vec<Complex>,
        ok: &mut Vec<bool>,
    ) -> Result<(), WlanError> {
        if !ys.len().is_multiple_of(self.n_rx) {
            return Err(WlanError::LengthMismatch {
                expected: ys.len().next_multiple_of(self.n_rx.max(1)),
                got: ys.len(),
            });
        }
        for y in ys.chunks_exact(self.n_rx) {
            match self.detect_append(y, symbols) {
                Ok(()) => ok.push(true),
                Err(_) => {
                    symbols.extend(std::iter::repeat_n(Complex::ZERO, self.n_ss));
                    ok.push(false);
                }
            }
        }
        Ok(())
    }

    /// Detects one observation into a [`Detected`] (per-call allocation;
    /// the equivalence tests compare this against [`detect`]).
    pub fn detect_one(&mut self, y: &[Complex]) -> Result<Detected, WlanError> {
        let mut symbols = Vec::with_capacity(self.n_ss);
        self.detect_append(y, &mut symbols)?;
        Ok(Detected { symbols, sinr: self.sinr.clone() })
    }
}

/// Exhaustive maximum-likelihood detection over a finite alphabet, for up to
/// a few streams (cost `M^N_ss`). Returns the jointly most likely symbol
/// vector.
///
/// # Panics
///
/// Panics if `alphabet` is empty or dimensions are inconsistent.
pub fn maximum_likelihood(h: &CMatrix, y: &[Complex], alphabet: &[Complex]) -> Vec<Complex> {
    assert!(!alphabet.is_empty(), "alphabet must be nonempty");
    assert_eq!(y.len(), h.rows(), "observation length mismatch");
    let n_ss = h.cols();
    let m = alphabet.len();
    let mut best = vec![alphabet[0]; n_ss];
    let mut best_metric = f64::INFINITY;
    let mut idx = vec![0usize; n_ss];
    loop {
        let candidate: Vec<Complex> = idx.iter().map(|&i| alphabet[i]).collect();
        let predicted = h.mul_vec(&candidate);
        let metric: f64 = y
            .iter()
            .zip(&predicted)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum();
        if metric < best_metric {
            best_metric = metric;
            best = candidate;
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == n_ss {
                return best;
            }
            idx[pos] += 1;
            if idx[pos] < m {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;
    use wlan_channel::noise::complex_gaussian;
    use wlan_channel::MimoChannel;

    fn qpsk_alphabet() -> Vec<Complex> {
        let a = std::f64::consts::FRAC_1_SQRT_2;
        vec![
            Complex::new(a, a),
            Complex::new(a, -a),
            Complex::new(-a, a),
            Complex::new(-a, -a),
        ]
    }

    #[test]
    fn zf_inverts_clean_channel() {
        let mut rng = WlanRng::seed_from_u64(120);
        let ch = MimoChannel::iid_rayleigh(3, 3, &mut rng);
        let x = [Complex::ONE, Complex::I, -Complex::ONE];
        let y = ch.apply(&x);
        let det = zero_forcing(ch.matrix(), &y, 1e-6).unwrap();
        for (a, b) in det.symbols.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-6);
        }
    }

    #[test]
    fn mmse_approaches_zf_at_high_snr() {
        let mut rng = WlanRng::seed_from_u64(121);
        let ch = MimoChannel::iid_rayleigh(2, 2, &mut rng);
        let x = [Complex::new(0.7, 0.7), Complex::new(-0.7, 0.7)];
        let y = ch.apply(&x);
        let n0 = 1e-8;
        let zf = zero_forcing(ch.matrix(), &y, n0).unwrap();
        let mm = mmse(ch.matrix(), &y, n0).unwrap();
        for (a, b) in zf.symbols.iter().zip(&mm.symbols) {
            assert!((*a - *b).norm() < 1e-4);
        }
    }

    #[test]
    fn mmse_beats_zf_at_low_snr() {
        // Average post-detection symbol MSE over random channels at 3 dB.
        let mut rng = WlanRng::seed_from_u64(122);
        let n0: f64 = 0.5;
        let alphabet = qpsk_alphabet();
        let mut zf_err = 0.0;
        let mut mmse_err = 0.0;
        let trials = 3_000;
        for t in 0..trials {
            let ch = MimoChannel::iid_rayleigh(2, 2, &mut rng);
            let x = [
                alphabet[t % 4],
                alphabet[(t / 4) % 4],
            ];
            let mut y = ch.apply(&x);
            for v in y.iter_mut() {
                *v += complex_gaussian(&mut rng).scale(n0.sqrt());
            }
            if let Ok(d) = zero_forcing(ch.matrix(), &y, n0) {
                zf_err += d
                    .symbols
                    .iter()
                    .zip(&x)
                    .map(|(a, b)| (*a - *b).norm_sqr())
                    .sum::<f64>();
            }
            let d = mmse(ch.matrix(), &y, n0).unwrap();
            mmse_err += d
                .symbols
                .iter()
                .zip(&x)
                .map(|(a, b)| (*a - *b).norm_sqr())
                .sum::<f64>();
        }
        assert!(
            mmse_err < zf_err,
            "MMSE ({mmse_err:.1}) should beat ZF ({zf_err:.1}) at low SNR"
        );
    }

    #[test]
    fn sinr_predicts_more_antennas_help() {
        let mut rng = WlanRng::seed_from_u64(123);
        let n0 = 0.1;
        let mean_sinr = |n_rx: usize, rng: &mut WlanRng| -> f64 {
            let mut acc = 0.0;
            let trials = 2_000;
            for _ in 0..trials {
                let ch = MimoChannel::iid_rayleigh(n_rx, 2, rng);
                let y = vec![Complex::ZERO; n_rx];
                let d = mmse(ch.matrix(), &y, n0).unwrap();
                acc += d.sinr.iter().sum::<f64>() / 2.0;
            }
            acc / trials as f64
        };
        let two = mean_sinr(2, &mut rng);
        let four = mean_sinr(4, &mut rng);
        assert!(four > 2.0 * two, "4 RX {four} vs 2 RX {two}");
    }

    #[test]
    fn ml_matches_truth_on_clean_2x2() {
        let mut rng = WlanRng::seed_from_u64(124);
        let alphabet = qpsk_alphabet();
        for t in 0..64 {
            let ch = MimoChannel::iid_rayleigh(2, 2, &mut rng);
            let x = vec![alphabet[t % 4], alphabet[(t / 4) % 4]];
            let y = ch.apply(&x);
            let hat = maximum_likelihood(ch.matrix(), &y, &alphabet);
            assert_eq!(hat, x);
        }
    }

    #[test]
    fn ml_beats_zf_on_ill_conditioned_channel() {
        // A nearly rank-1 channel: ZF explodes the noise, ML does not.
        let mut rng = WlanRng::seed_from_u64(125);
        let alphabet = qpsk_alphabet();
        let h = CMatrix::from_rows(&[
            &[Complex::ONE, Complex::new(0.95, 0.0)],
            &[Complex::new(0.95, 0.0), Complex::new(0.91, 0.0)],
        ]);
        let n0: f64 = 0.05;
        let mut zf_errs = 0usize;
        let mut ml_errs = 0usize;
        let trials = 800;
        for t in 0..trials {
            let x = vec![alphabet[t % 4], alphabet[(t / 4) % 4]];
            let mut y = h.mul_vec(&x);
            for v in y.iter_mut() {
                *v += complex_gaussian(&mut rng).scale(n0.sqrt());
            }
            let zf = zero_forcing(&h, &y, n0).unwrap();
            for (i, s) in zf.symbols.iter().enumerate() {
                let hard = alphabet
                    .iter()
                    .min_by(|a, b| (**a - *s).norm().total_cmp(&(**b - *s).norm()))
                    .unwrap();
                if (*hard - x[i]).norm() > 1e-9 {
                    zf_errs += 1;
                }
            }
            let ml = maximum_likelihood(&h, &y, &alphabet);
            for (a, b) in ml.iter().zip(&x) {
                if (*a - *b).norm() > 1e-9 {
                    ml_errs += 1;
                }
            }
        }
        assert!(
            (ml_errs as f64) < 0.7 * zf_errs as f64,
            "ML ({ml_errs}) should be clearly better than ZF ({zf_errs})"
        );
    }

    #[test]
    fn singular_channel_reported() {
        let h = CMatrix::from_rows(&[
            &[Complex::ONE, Complex::ONE],
            &[Complex::ONE, Complex::ONE],
        ]);
        let y = [Complex::ONE, Complex::ONE];
        assert_eq!(
            zero_forcing(&h, &y, 0.1).unwrap_err(),
            WlanError::SingularChannel
        );
        // MMSE regularization handles it.
        assert!(mmse(&h, &y, 0.1).is_ok());
    }

    #[test]
    fn degenerate_inputs_are_typed_errors_not_panics() {
        let h = CMatrix::identity(2);
        let y = [Complex::ONE, Complex::ONE];
        for det in [Detector::ZeroForcing, Detector::Mmse] {
            // Wrong observation length.
            assert_eq!(
                detect(det, &h, &y[..1], 0.1).unwrap_err(),
                WlanError::LengthMismatch { expected: 2, got: 1 }
            );
            // Degenerate noise variance.
            assert_eq!(
                detect(det, &h, &y, 0.0).unwrap_err(),
                WlanError::InvalidConfig("noise variance must be positive")
            );
            assert_eq!(
                detect(det, &h, &y, f64::NAN).unwrap_err(),
                WlanError::NonFinite("noise variance")
            );
            // Non-finite observation.
            let bad_y = [Complex::new(f64::NAN, 0.0), Complex::ONE];
            assert_eq!(
                detect(det, &h, &bad_y, 0.1).unwrap_err(),
                WlanError::NonFinite("received vector")
            );
            // Non-finite channel coefficient.
            let mut bad_h = CMatrix::identity(2);
            bad_h.set(1, 0, Complex::new(0.0, f64::INFINITY));
            assert_eq!(
                detect(det, &bad_h, &y, 0.1).unwrap_err(),
                WlanError::NonFinite("channel matrix")
            );
        }
    }
}
