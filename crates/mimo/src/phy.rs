//! A spatially-multiplexed MIMO-OFDM frame chain (802.11n HT style).
//!
//! The transmit side runs one encoder over the whole frame, parses the coded
//! bits round-robin onto `N_ss` spatial streams, and sends each stream
//! through the familiar interleave → QAM → IFFT pipeline on its own antenna.
//! Training uses HT-LTF-like orthogonal covers (the `P` matrix) so the
//! receiver can estimate the full per-subcarrier channel matrix, after which
//! MMSE (or ZF) detection separates the streams.
//!
//! Transmit power is normalized: the per-antenna streams are scaled by
//! `1/√N_ss` so a 4-stream transmission radiates the same total power as a
//! SISO one — the fair comparison the range experiment (E5) needs.

use crate::detect::{Detector, LinearDetector};
use wlan_coding::interleaver::Interleaver;
use wlan_coding::puncture::{depuncture, puncture};
use wlan_coding::scrambler::Scrambler;
use wlan_coding::{bits, CodeRate, ConvEncoder, ViterbiDecoder};
use wlan_ofdm::params::{data_carriers, Modulation, N_CP, N_FFT, N_SYM_SAMPLES};
use wlan_ofdm::preamble::ltf_value;
use wlan_ofdm::qam;
use wlan_ofdm::symbol::{assemble_symbol, tx_scale};
use wlan_math::rng::Rng;
use wlan_math::{fft, CMatrix, Complex, WlanError};

/// The 802.11n HT-LTF orthogonal cover matrix `P` (rows = streams,
/// columns = training symbols).
pub const P_HTLTF: [[f64; 4]; 4] = [
    [1.0, -1.0, 1.0, 1.0],
    [1.0, 1.0, -1.0, 1.0],
    [1.0, 1.0, 1.0, -1.0],
    [-1.0, 1.0, 1.0, 1.0],
];

/// Configuration of the MIMO-OFDM link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MimoOfdmConfig {
    /// Number of spatial streams (equals transmit antennas here), 1–4.
    pub n_streams: usize,
    /// Number of receive antennas (≥ `n_streams` for linear detection).
    pub n_rx: usize,
    /// Per-subcarrier modulation.
    pub modulation: Modulation,
    /// Convolutional code rate.
    pub code_rate: CodeRate,
    /// Stream-separation detector.
    pub detector: Detector,
}

/// A complete spatial-multiplexing MIMO-OFDM PHY.
///
/// # Examples
///
/// ```
/// use wlan_coding::CodeRate;
/// use wlan_mimo::detect::Detector;
/// use wlan_mimo::phy::{MimoOfdmConfig, MimoOfdmPhy};
/// use wlan_ofdm::params::Modulation;
///
/// let phy = MimoOfdmPhy::new(MimoOfdmConfig {
///     n_streams: 2,
///     n_rx: 2,
///     modulation: Modulation::Qpsk,
///     code_rate: CodeRate::R1_2,
///     detector: Detector::Mmse,
/// });
/// assert_eq!(phy.data_bits_per_symbol(), 96);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MimoOfdmPhy {
    cfg: MimoOfdmConfig,
    scrambler_seed: u8,
}

impl MimoOfdmPhy {
    /// Creates a PHY.
    ///
    /// # Panics
    ///
    /// Panics if `n_streams` is not 1–4 or `n_rx` is zero.
    pub fn new(cfg: MimoOfdmConfig) -> Self {
        assert!(
            (1..=4).contains(&cfg.n_streams),
            "stream count must be 1-4"
        );
        assert!(cfg.n_rx >= 1, "need at least one receive antenna");
        MimoOfdmPhy {
            cfg,
            scrambler_seed: 0x5D,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MimoOfdmConfig {
        &self.cfg
    }

    /// Number of HT-LTF training symbols (equals streams, except 3 → 4).
    pub fn num_training_symbols(&self) -> usize {
        match self.cfg.n_streams {
            3 => 4,
            n => n,
        }
    }

    /// Coded bits per OFDM symbol per stream.
    pub fn coded_bits_per_symbol_per_stream(&self) -> usize {
        48 * self.cfg.modulation.bits_per_subcarrier()
    }

    /// Data bits per OFDM symbol across all streams.
    pub fn data_bits_per_symbol(&self) -> usize {
        let (n, d) = self.cfg.code_rate.as_fraction();
        self.coded_bits_per_symbol_per_stream() * self.cfg.n_streams * n / d
    }

    /// Number of data symbols for a payload of `len` bytes.
    pub fn num_data_symbols(&self, len: usize) -> usize {
        (16 + 8 * len + 6).div_ceil(self.data_bits_per_symbol())
    }

    /// Per-antenna samples for a payload of `len` bytes.
    pub fn frame_samples(&self, len: usize) -> usize {
        (self.num_training_symbols() + self.num_data_symbols(len)) * N_SYM_SAMPLES
    }

    /// PHY data rate in Mbps (20 MHz, long GI).
    pub fn rate_mbps(&self) -> f64 {
        self.data_bits_per_symbol() as f64 / 4.0
    }

    /// Encodes a payload into `n_streams` per-antenna sample streams
    /// (training followed by data symbols).
    pub fn transmit(&self, payload: &[u8]) -> Vec<Vec<Complex>> {
        let n_ss = self.cfg.n_streams;
        let power_scale = 1.0 / (n_ss as f64).sqrt();
        let mut antennas: Vec<Vec<Complex>> =
            vec![Vec::with_capacity(self.frame_samples(payload.len())); n_ss];

        // HT-LTF training with orthogonal P covers. Each antenna's stream
        // is independent, so filling antenna-by-antenna preserves the
        // symbol order m = 0, 1, … within every stream.
        let ltf_sym = ltf_frequency_symbol();
        let n_ltf = self.num_training_symbols();
        for (i, ant) in antennas.iter_mut().enumerate() {
            for &p in P_HTLTF[i].iter().take(n_ltf) {
                let scale = p * power_scale;
                ant.extend(ltf_sym.iter().map(|&s| s.scale(scale)));
            }
        }

        // One encoder across the frame, then round-robin stream parsing.
        let per_stream_bits = self.per_stream_coded_bits(payload.len());
        let streams = self.encode_streams(payload);
        let il = Interleaver::new(
            self.coded_bits_per_symbol_per_stream(),
            self.cfg.modulation.bits_per_subcarrier(),
        );
        let n_sym = self.num_data_symbols(payload.len());
        for (i, stream_bits) in streams.iter().enumerate() {
            debug_assert_eq!(stream_bits.len(), per_stream_bits);
            let interleaved = il.interleave_stream(stream_bits);
            let points = qam::map_stream(self.cfg.modulation, &interleaved);
            for s in 0..n_sym {
                let chunk = &points[s * 48..(s + 1) * 48];
                let sym = assemble_symbol(chunk, s + 1);
                antennas[i].extend(sym.iter().map(|&v| v.scale(power_scale)));
            }
        }
        antennas
    }

    /// Decodes per-antenna receive streams. `n0` is the noise variance per
    /// receive antenna per sample (genie-aided, as in link simulation
    /// practice); `payload_len` the expected payload size in bytes.
    ///
    /// Malformed input — a wrong antenna count or truncated sample
    /// streams — returns a typed [`WlanError`] instead of panicking, so
    /// injected faults become counted erasures.
    ///
    /// The receive pipeline is batched: every symbol of every antenna is
    /// FFT'd in one planned pass, and each subcarrier's linear detector is
    /// factored once ([`LinearDetector::prepare`]) and applied
    /// structure-of-arrays across all data symbols — identical arithmetic
    /// to per-symbol detection, hoisted out of the hot loop.
    pub fn try_receive(
        &self,
        rx: &[Vec<Complex>],
        n0: f64,
        payload_len: usize,
    ) -> Result<Vec<u8>, WlanError> {
        let n_rx = self.cfg.n_rx;
        let n_ss = self.cfg.n_streams;
        if rx.len() != n_rx {
            return Err(WlanError::LengthMismatch {
                expected: n_rx,
                got: rx.len(),
            });
        }
        let needed = self.frame_samples(payload_len);
        for r in rx {
            if r.len() < needed {
                return Err(WlanError::FrameTruncated {
                    needed,
                    got: r.len(),
                });
            }
        }

        // Batch-FFT every symbol of every antenna in one planned pass:
        // bins[(m·n_rx + r)·64 ..][..64] = spectrum of symbol m, antenna r.
        let n_ltf = self.num_training_symbols();
        let n_sym = self.num_data_symbols(payload_len);
        let total_syms = n_ltf + n_sym;
        let plan = fft::cached_plan(N_FFT);
        let inv_scale = 1.0 / tx_scale();
        let mut bins = Vec::with_capacity(total_syms * n_rx * N_FFT);
        for m in 0..total_syms {
            let offset = m * N_SYM_SAMPLES + N_CP;
            for r in rx {
                bins.extend(r[offset..offset + N_FFT].iter().map(|s| s.scale(inv_scale)));
            }
        }
        plan.try_fft_batch(&mut bins)?;
        let bin_row = |m: usize, r: usize| &bins[(m * n_rx + r) * N_FFT..][..N_FFT];

        // h[k] is the n_rx × n_ss matrix at data carrier k (includes the
        // 1/√N_ss transmit scaling, which is what detection should see),
        // estimated from the orthogonal training covers.
        let carriers = data_carriers();
        let channel: Vec<CMatrix> = carriers
            .iter()
            .map(|&k| {
                let bin = carrier_to_bin(k);
                let l = ltf_value(k);
                let mut h = CMatrix::zeros(n_rx, n_ss);
                for r in 0..n_rx {
                    for (i, p_row) in P_HTLTF.iter().enumerate().take(n_ss) {
                        let mut acc = Complex::ZERO;
                        for (m, &p) in p_row.iter().enumerate().take(n_ltf) {
                            acc += bin_row(m, r)[bin].scale(p);
                        }
                        h.set(r, i, acc.scale(1.0 / (n_ltf as f64 * l)));
                    }
                }
                h
            })
            .collect();

        // Structure-of-arrays detection: factor each subcarrier's detector
        // once, then run it down the frame's symbols. LLR planes are
        // preallocated at zero, so any failed carrier or symbol naturally
        // leaves erasures behind.
        let il = Interleaver::new(
            self.coded_bits_per_symbol_per_stream(),
            self.cfg.modulation.bits_per_subcarrier(),
        );
        // Effective noise after the tx_scale normalization.
        let n0_eff = (n0 / (tx_scale() * tx_scale())).max(1e-12);
        let bpsc = self.cfg.modulation.bits_per_subcarrier();
        let mut stream_llrs: Vec<Vec<f64>> = vec![vec![0.0; n_sym * 48 * bpsc]; n_ss];
        let mut ys: Vec<Complex> = Vec::with_capacity(n_sym * n_rx);
        let mut symbols: Vec<Complex> = Vec::with_capacity(n_sym * n_ss);
        let mut sym_ok: Vec<bool> = Vec::with_capacity(n_sym);
        for (c, &k) in carriers.iter().enumerate() {
            // A carrier whose detector cannot be factored (rank-deficient or
            // non-finite channel) stays all-erasures, exactly as per-symbol
            // detection errors did.
            let Ok(mut det) = LinearDetector::prepare(self.cfg.detector, &channel[c], n0_eff)
            else {
                continue;
            };
            let bin = carrier_to_bin(k);
            ys.clear();
            for s in 0..n_sym {
                for r in 0..n_rx {
                    ys.push(bin_row(n_ltf + s, r)[bin]);
                }
            }
            symbols.clear();
            sym_ok.clear();
            det.detect_batch(&ys, &mut symbols, &mut sym_ok)?;
            for (s, &ok) in sym_ok.iter().enumerate() {
                if !ok {
                    continue; // non-finite observation → erasures
                }
                for (i, llrs) in stream_llrs.iter_mut().enumerate() {
                    let slot = (s * 48 + c) * bpsc;
                    qam::demap_soft_into(
                        self.cfg.modulation,
                        symbols[s * n_ss + i],
                        det.sinr()[i],
                        &mut llrs[slot..slot + bpsc],
                    );
                }
            }
        }

        // Deinterleave per stream, merge (inverse parsing), decode.
        let merged_len = n_sym * self.coded_bits_per_symbol_per_stream() * n_ss;
        let deinterleaved: Vec<Vec<f64>> = stream_llrs
            .iter()
            .map(|l| il.deinterleave_stream_soft(l))
            .collect();
        let coded = self.merge_streams_soft(&deinterleaved, merged_len);
        let total_bits = n_sym * self.data_bits_per_symbol();
        let mother = depuncture(&coded, self.cfg.code_rate, total_bits * 2);
        let scrambled = ViterbiDecoder::new().try_decode_soft_unterminated(&mother, total_bits)?;
        let descrambled = Scrambler::new(self.scrambler_seed).scramble(&scrambled);
        Ok(bits::bits_to_bytes(&descrambled[16..16 + 8 * payload_len]))
    }

    fn per_stream_coded_bits(&self, payload_len: usize) -> usize {
        self.num_data_symbols(payload_len) * self.coded_bits_per_symbol_per_stream()
    }

    /// Scramble → encode → puncture → parse into per-stream bit vectors.
    fn encode_streams(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        let n_sym = self.num_data_symbols(payload.len());
        let total_bits = n_sym * self.data_bits_per_symbol();
        let mut data_bits = vec![0u8; 16];
        data_bits.extend(bits::bytes_to_bits(payload));
        let tail_start = data_bits.len();
        data_bits.resize(total_bits, 0);
        let mut scrambled = Scrambler::new(self.scrambler_seed).scramble(&data_bits);
        for b in scrambled.iter_mut().skip(tail_start).take(6) {
            *b = 0;
        }
        let mut enc = ConvEncoder::new();
        let coded = puncture(&enc.encode(&scrambled), self.cfg.code_rate);

        // 802.11n stream parser: s = max(N_BPSC/2, 1) bits round-robin.
        let s = (self.cfg.modulation.bits_per_subcarrier() / 2).max(1);
        let n_ss = self.cfg.n_streams;
        let mut streams: Vec<Vec<u8>> =
            vec![Vec::with_capacity(coded.len() / n_ss); n_ss];
        for (block_idx, block) in coded.chunks(s).enumerate() {
            streams[block_idx % n_ss].extend_from_slice(block);
        }
        streams
    }

    /// Inverse of the stream parser for soft values.
    fn merge_streams_soft(&self, streams: &[Vec<f64>], total: usize) -> Vec<f64> {
        let s = (self.cfg.modulation.bits_per_subcarrier() / 2).max(1);
        let n_ss = self.cfg.n_streams;
        let mut out = Vec::with_capacity(total);
        let mut cursors = vec![0usize; n_ss];
        let mut stream_idx = 0usize;
        while out.len() < total {
            let c = cursors[stream_idx];
            out.extend_from_slice(&streams[stream_idx][c..c + s]);
            cursors[stream_idx] += s;
            stream_idx = (stream_idx + 1) % n_ss;
        }
        out
    }
}

/// One 80-sample training symbol (CP + IFFT of the LTF sequence at data
/// scale).
fn ltf_frequency_symbol() -> Vec<Complex> {
    let mut bins = vec![Complex::ZERO; N_FFT];
    for k in -26..=26i32 {
        let v = ltf_value(k);
        if v != 0.0 {
            bins[carrier_to_bin(k)] = Complex::from_re(v);
        }
    }
    let time = fft::ifft(&bins);
    let scale = tx_scale();
    let mut out = Vec::with_capacity(N_SYM_SAMPLES);
    out.extend(time[N_FFT - N_CP..].iter().map(|s| s.scale(scale)));
    out.extend(time.iter().map(|s| s.scale(scale)));
    out
}

fn carrier_to_bin(k: i32) -> usize {
    ((k + N_FFT as i32) % N_FFT as i32) as usize
}

/// Propagates per-antenna transmit streams through a frequency-selective
/// MIMO channel and adds AWGN of variance `n0` per receive antenna.
///
/// # Panics
///
/// Panics if `tx.len() != channel.n_tx()`.
pub fn propagate(
    channel: &wlan_channel::mimo::MimoMultipathChannel,
    tx: &[Vec<Complex>],
    n0: f64,
    rng: &mut impl Rng,
) -> Vec<Vec<Complex>> {
    assert_eq!(tx.len(), channel.n_tx(), "transmit antenna count mismatch");
    let len = tx.iter().map(|t| t.len()).max().unwrap_or(0);
    let mut rx = Vec::with_capacity(channel.n_rx());
    for r in 0..channel.n_rx() {
        let mut acc = vec![Complex::ZERO; len];
        for (t, stream) in tx.iter().enumerate() {
            let filtered = channel.pair(r, t).filter(stream);
            for (i, v) in filtered.into_iter().enumerate() {
                if i < len {
                    acc[i] += v;
                }
            }
        }
        if n0 > 0.0 {
            let sigma = n0.sqrt();
            for v in acc.iter_mut() {
                *v += wlan_channel::noise::complex_gaussian(rng).scale(sigma);
            }
        }
        rx.push(acc);
    }
    rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::{Rng, WlanRng};
    use wlan_channel::mimo::MimoMultipathChannel;
    use wlan_channel::PowerDelayProfile;

    fn phy(n_streams: usize, n_rx: usize, modulation: Modulation) -> MimoOfdmPhy {
        MimoOfdmPhy::new(MimoOfdmConfig {
            n_streams,
            n_rx,
            modulation,
            code_rate: CodeRate::R1_2,
            detector: Detector::Mmse,
        })
    }

    #[test]
    fn rate_scales_with_streams() {
        let one = phy(1, 1, Modulation::Qam16).rate_mbps();
        let four = phy(4, 4, Modulation::Qam16).rate_mbps();
        assert!((four / one - 4.0).abs() < 1e-12);
        // 1 stream, 16-QAM, r=1/2: 48·4/2 = 96 bits / 4 µs = 24 Mbps.
        assert!((one - 24.0).abs() < 1e-12);
    }

    #[test]
    fn clean_roundtrip_all_stream_counts() {
        let mut rng = WlanRng::seed_from_u64(160);
        let payload: Vec<u8> = (0..120).map(|_| rng.gen()).collect();
        for n_ss in 1..=4usize {
            let p = phy(n_ss, n_ss, Modulation::Qpsk);
            let tx = p.transmit(&payload);
            assert_eq!(tx.len(), n_ss);
            // Identity channel: rx = tx (pad antennas into rx shape).
            let out = p.try_receive(&tx, 1e-9, payload.len()).unwrap();
            assert_eq!(out, payload, "{n_ss} streams");
        }
    }

    #[test]
    fn three_streams_use_four_training_symbols() {
        assert_eq!(phy(3, 3, Modulation::Bpsk).num_training_symbols(), 4);
        assert_eq!(phy(2, 2, Modulation::Bpsk).num_training_symbols(), 2);
    }

    #[test]
    fn total_transmit_power_is_stream_independent() {
        let payload = vec![0xA5u8; 200];
        for n_ss in [1usize, 2, 4] {
            let tx = phy(n_ss, n_ss, Modulation::Qam16).transmit(&payload);
            let total: f64 = tx
                .iter()
                .map(|a| wlan_math::complex::mean_power(a))
                .sum();
            assert!(
                (total - 1.0).abs() < 0.15,
                "{n_ss} streams: total power {total}"
            );
        }
    }

    #[test]
    fn roundtrip_through_mimo_multipath() {
        let mut rng = WlanRng::seed_from_u64(161);
        let payload: Vec<u8> = (0..80).map(|_| rng.gen()).collect();
        let p = phy(2, 2, Modulation::Qpsk);
        let pdp = PowerDelayProfile::tgn_model('B');
        let n0 = wlan_math::special::db_to_lin(-25.0);
        let mut ok = 0;
        let trials = 10;
        for _ in 0..trials {
            let ch = MimoMultipathChannel::realize(2, 2, &pdp, &mut rng);
            let tx = p.transmit(&payload);
            let rx = propagate(&ch, &tx, n0, &mut rng);
            if p.try_receive(&rx, n0, payload.len()).unwrap() == payload {
                ok += 1;
            }
        }
        assert!(ok >= 8, "only {ok}/{trials} frames decoded at 25 dB");
    }

    #[test]
    fn extra_rx_antennas_help_at_low_snr() {
        let mut rng = WlanRng::seed_from_u64(162);
        let payload: Vec<u8> = (0..60).map(|_| rng.gen()).collect();
        let pdp = PowerDelayProfile::flat();
        let n0 = wlan_math::special::db_to_lin(-14.0);
        let trials = 30;
        let mut ok = [0usize; 2];
        for (idx, n_rx) in [2usize, 4].into_iter().enumerate() {
            let p = phy(2, n_rx, Modulation::Qpsk);
            for _ in 0..trials {
                let ch = MimoMultipathChannel::realize(n_rx, 2, &pdp, &mut rng);
                let tx = p.transmit(&payload);
                let rx = propagate(&ch, &tx, n0, &mut rng);
                if p.try_receive(&rx, n0, payload.len()).unwrap() == payload {
                    ok[idx] += 1;
                }
            }
        }
        assert!(
            ok[1] > ok[0],
            "4 RX ({}) must beat 2 RX ({}) at 14 dB",
            ok[1],
            ok[0]
        );
    }

    #[test]
    fn frame_sample_count_is_consistent() {
        let p = phy(2, 2, Modulation::Qam64);
        let payload = vec![0u8; 100];
        let tx = p.transmit(&payload);
        for ant in &tx {
            assert_eq!(ant.len(), p.frame_samples(payload.len()));
        }
    }

    #[test]
    #[should_panic(expected = "stream count must be 1-4")]
    fn stream_count_validated() {
        let _ = phy(5, 5, Modulation::Bpsk);
    }

    #[test]
    fn try_receive_reports_truncation_as_typed_error() {
        let p = phy(2, 2, Modulation::Qpsk);
        let payload = vec![0x3Cu8; 50];
        let mut tx = p.transmit(&payload);
        // Healthy frame decodes cleanly.
        assert_eq!(p.try_receive(&tx, 1e-9, payload.len()).unwrap(), payload);
        // Truncate one antenna mid-frame: typed error, no panic.
        let cut = tx[1].len() / 2;
        tx[1].truncate(cut);
        let err = p.try_receive(&tx, 1e-9, payload.len()).unwrap_err();
        assert_eq!(
            err,
            WlanError::FrameTruncated {
                needed: p.frame_samples(payload.len()),
                got: cut,
            }
        );
        // Wrong antenna count is a length mismatch.
        let err = p.try_receive(&tx[..1], 1e-9, payload.len()).unwrap_err();
        assert_eq!(err, WlanError::LengthMismatch { expected: 2, got: 1 });
    }
}
