//! The true 802.11n HT-20 waveform (single stream).
//!
//! Where [`crate::phy`] reuses the legacy 48-carrier symbol for simplicity,
//! this module implements the real HT 20 MHz numerology: **52 data
//! subcarriers** (occupying ±28 minus DC and the four pilots), the HT
//! interleaver (13 columns × 4·N_BPSC rows), and the extended HT-LTF.
//! Its per-symbol arithmetic therefore matches the MCS table *exactly* —
//! MCS 7 carries 52·6·(5/6) = 260 bits per 4 µs symbol = 65 Mbps — which
//! the tests assert against [`crate::mcs::HtMcs`].

use wlan_coding::interleaver::HtInterleaver;
use wlan_coding::puncture::{depuncture, puncture};
use wlan_coding::scrambler::Scrambler;
use wlan_coding::{bits, CodeRate, ConvEncoder, ViterbiDecoder};
use wlan_math::{fft, Complex, WlanError};
use wlan_ofdm::params::{Modulation, N_CP, N_FFT, N_SYM_SAMPLES};
use wlan_ofdm::preamble::ltf_value;
use wlan_ofdm::qam;

/// HT-20 data subcarriers per symbol.
pub const N_DATA_HT20: usize = 52;
/// HT-20 pilot subcarrier indices.
pub const PILOT_CARRIERS_HT20: [i32; 4] = [-21, -7, 7, 21];

/// The 52 HT-20 data subcarrier indices in mapping order (−28…28, skipping
/// DC and pilots). Computed once per process; indexed once per symbol on
/// the hot paths.
pub fn ht20_data_carriers() -> &'static [i32; N_DATA_HT20] {
    static CACHE: std::sync::OnceLock<[i32; N_DATA_HT20]> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| {
        let mut table = [0i32; N_DATA_HT20];
        let carriers = (-28..=28).filter(|&k| k != 0 && !PILOT_CARRIERS_HT20.contains(&k));
        for (slot, k) in table.iter_mut().zip(carriers) {
            *slot = k;
        }
        table
    })
}

/// The HT-LTF value at subcarrier `k`: the legacy sequence extended with
/// `+1, +1` at −28, −27 and `−1, −1` at +27, +28 (802.11n equation 20-24).
pub fn ht_ltf_value(k: i32) -> f64 {
    match k {
        -28 | -27 => 1.0,
        27 | 28 => -1.0,
        _ => ltf_value(k),
    }
}

/// A single-stream HT-20 PHY (SISO; the multi-stream machinery lives in
/// [`crate::phy`]).
///
/// # Examples
///
/// ```
/// use wlan_coding::CodeRate;
/// use wlan_mimo::ht::HtPhy;
/// use wlan_ofdm::params::Modulation;
///
/// // MCS 7: 64-QAM rate 5/6 → 65 Mbps at 20 MHz, long GI.
/// let phy = HtPhy::new(Modulation::Qam64, CodeRate::R5_6);
/// assert!((phy.rate_mbps() - 65.0).abs() < 1e-9);
/// let frame = phy.transmit(b"ht numerology");
/// assert_eq!(phy.try_receive(&frame, 13).unwrap(), b"ht numerology");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtPhy {
    modulation: Modulation,
    code_rate: CodeRate,
    scrambler_seed: u8,
}

impl HtPhy {
    /// Creates an HT-20 single-stream PHY.
    pub fn new(modulation: Modulation, code_rate: CodeRate) -> Self {
        HtPhy {
            modulation,
            code_rate,
            scrambler_seed: 0x5D,
        }
    }

    /// Coded bits per OFDM symbol (`N_CBPS = 52·N_BPSC`).
    pub fn coded_bits_per_symbol(&self) -> usize {
        N_DATA_HT20 * self.modulation.bits_per_subcarrier()
    }

    /// Data bits per OFDM symbol.
    pub fn data_bits_per_symbol(&self) -> usize {
        let (n, d) = self.code_rate.as_fraction();
        self.coded_bits_per_symbol() * n / d
    }

    /// PHY rate in Mbps (20 MHz, long GI) — matches the MCS table.
    pub fn rate_mbps(&self) -> f64 {
        self.data_bits_per_symbol() as f64 / 4.0
    }

    /// Data symbols for `len` payload bytes.
    pub fn num_data_symbols(&self, len: usize) -> usize {
        (16 + 8 * len + 6).div_ceil(self.data_bits_per_symbol())
    }

    /// Frame length in samples (1 HT-LTF + data).
    pub fn frame_samples(&self, len: usize) -> usize {
        (1 + self.num_data_symbols(len)) * N_SYM_SAMPLES
    }

    fn interleaver(&self) -> HtInterleaver {
        HtInterleaver::new_20mhz(self.modulation.bits_per_subcarrier())
    }

    /// Encodes a payload into a baseband frame (HT-LTF then data symbols).
    pub fn transmit(&self, payload: &[u8]) -> Vec<Complex> {
        let n_sym = self.num_data_symbols(payload.len());
        let total_bits = n_sym * self.data_bits_per_symbol();

        let mut data_bits = vec![0u8; 16];
        data_bits.extend(bits::bytes_to_bits(payload));
        let tail_start = data_bits.len();
        data_bits.resize(total_bits, 0);
        let mut scrambled = Scrambler::new(self.scrambler_seed).scramble(&data_bits);
        for b in scrambled.iter_mut().skip(tail_start).take(6) {
            *b = 0;
        }
        let mut enc = ConvEncoder::new();
        let coded = puncture(&enc.encode(&scrambled), self.code_rate);
        let interleaved = self.interleaver().interleave_stream(&coded);
        let points = qam::map_stream(self.modulation, &interleaved);

        let mut out = Vec::with_capacity(self.frame_samples(payload.len()));
        out.extend(ht_training_symbol());
        for chunk in points.chunks(N_DATA_HT20) {
            out.extend(assemble_ht_symbol(chunk));
        }
        out
    }

    /// Decodes a received frame (channel estimated from the HT-LTF). A
    /// truncated stream returns [`WlanError::FrameTruncated`] instead of
    /// panicking.
    pub fn try_receive(
        &self,
        samples: &[Complex],
        payload_len: usize,
    ) -> Result<Vec<u8>, WlanError> {
        let needed = self.frame_samples(payload_len);
        if samples.len() < needed {
            return Err(WlanError::FrameTruncated {
                needed,
                got: samples.len(),
            });
        }

        // LS channel estimate from the single HT-LTF.
        let train = symbol_bins(&samples[..N_SYM_SAMPLES]);
        let carriers = ht20_data_carriers();
        let channel: Vec<Complex> = carriers
            .iter()
            .map(|&k| train[carrier_to_bin(k)].scale(1.0 / ht_ltf_value(k)))
            .collect();

        let n_sym = self.num_data_symbols(payload_len);
        let mut llrs = Vec::with_capacity(n_sym * self.coded_bits_per_symbol());
        for s in 0..n_sym {
            let off = (1 + s) * N_SYM_SAMPLES;
            let bins = symbol_bins(&samples[off..off + N_SYM_SAMPLES]);
            for (c, &k) in carriers.iter().enumerate() {
                let h = channel[c];
                let h2 = h.norm_sqr();
                let y = if h2 > 1e-12 {
                    bins[carrier_to_bin(k)] / h
                } else {
                    Complex::ZERO
                };
                llrs.extend(qam::demap_soft(self.modulation, y, h2));
            }
        }
        let deinterleaved = self.interleaver().try_deinterleave_stream_soft(&llrs)?;
        let total_bits = n_sym * self.data_bits_per_symbol();
        let mother = depuncture(&deinterleaved, self.code_rate, total_bits * 2);
        let scrambled = ViterbiDecoder::new().try_decode_soft_unterminated(&mother, total_bits)?;
        let descrambled = Scrambler::new(self.scrambler_seed).scramble(&scrambled);
        Ok(bits::bits_to_bytes(&descrambled[16..16 + 8 * payload_len]))
    }
}

/// HT time-domain scale: 56 occupied carriers.
fn ht_tx_scale() -> f64 {
    N_FFT as f64 / 56f64.sqrt()
}

fn carrier_to_bin(k: i32) -> usize {
    ((k + N_FFT as i32) % N_FFT as i32) as usize
}

fn ht_training_symbol() -> Vec<Complex> {
    let mut bins = vec![Complex::ZERO; N_FFT];
    for k in -28..=28i32 {
        let v = ht_ltf_value(k);
        if v != 0.0 {
            bins[carrier_to_bin(k)] = Complex::from_re(v);
        }
    }
    finish(bins)
}

fn assemble_ht_symbol(data: &[Complex]) -> Vec<Complex> {
    debug_assert_eq!(data.len(), N_DATA_HT20);
    let mut bins = vec![Complex::ZERO; N_FFT];
    for (i, &k) in ht20_data_carriers().iter().enumerate() {
        bins[carrier_to_bin(k)] = data[i];
    }
    // Static unit pilots (no phase noise to track in this simulation).
    for &k in &PILOT_CARRIERS_HT20 {
        bins[carrier_to_bin(k)] = Complex::ONE;
    }
    finish(bins)
}

fn finish(bins: Vec<Complex>) -> Vec<Complex> {
    let time = fft::ifft(&bins);
    let s = ht_tx_scale();
    let mut out = Vec::with_capacity(N_SYM_SAMPLES);
    out.extend(time[N_FFT - N_CP..].iter().map(|v| v.scale(s)));
    out.extend(time.iter().map(|v| v.scale(s)));
    out
}

fn symbol_bins(samples: &[Complex]) -> Vec<Complex> {
    let mut body: Vec<Complex> = samples[N_CP..N_CP + N_FFT]
        .iter()
        .map(|v| v.scale(1.0 / ht_tx_scale()))
        .collect();
    // Planned, in-place: the 64-point length is structural, so the cached
    // plan always applies.
    fft::fft_in_place(&mut body);
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::{Bandwidth, GuardInterval, HtMcs};
    use wlan_math::rng::{Rng, WlanRng};
    use wlan_channel::{Awgn, MultipathChannel, PowerDelayProfile};

    #[test]
    fn carrier_plan_is_52_plus_4() {
        let data = ht20_data_carriers();
        assert_eq!(data.len(), 52);
        assert!(data.contains(&-28) && data.contains(&28));
        assert!(!data.contains(&0));
        for p in PILOT_CARRIERS_HT20 {
            assert!(!data.contains(&p));
        }
    }

    #[test]
    fn waveform_rates_match_mcs_table_exactly() {
        // The headline consistency check: the implemented chain's bits per
        // symbol reproduce every single-stream MCS rate at 20 MHz long GI.
        let combos = [
            (0u8, Modulation::Bpsk, CodeRate::R1_2),
            (1, Modulation::Qpsk, CodeRate::R1_2),
            (2, Modulation::Qpsk, CodeRate::R3_4),
            (3, Modulation::Qam16, CodeRate::R1_2),
            (4, Modulation::Qam16, CodeRate::R3_4),
            (5, Modulation::Qam64, CodeRate::R2_3),
            (6, Modulation::Qam64, CodeRate::R3_4),
            (7, Modulation::Qam64, CodeRate::R5_6),
        ];
        for (idx, m, r) in combos {
            let phy = HtPhy::new(m, r);
            let mcs = HtMcs::new(idx).expect("valid");
            let want = mcs.data_rate_mbps(Bandwidth::Mhz20, GuardInterval::Long);
            assert!(
                (phy.rate_mbps() - want).abs() < 1e-9,
                "MCS{idx}: waveform {} vs table {want}",
                phy.rate_mbps()
            );
        }
    }

    #[test]
    fn clean_roundtrip_all_mcs() {
        let mut rng = WlanRng::seed_from_u64(500);
        let payload: Vec<u8> = (0..90).map(|_| rng.gen()).collect();
        for (m, r) in [
            (Modulation::Bpsk, CodeRate::R1_2),
            (Modulation::Qam16, CodeRate::R3_4),
            (Modulation::Qam64, CodeRate::R5_6),
        ] {
            let phy = HtPhy::new(m, r);
            let frame = phy.transmit(&payload);
            assert_eq!(frame.len(), phy.frame_samples(payload.len()));
            assert_eq!(phy.try_receive(&frame, payload.len()).unwrap(), payload, "{m} r={r}");
        }
    }

    #[test]
    fn roundtrip_through_noise_and_multipath() {
        let mut rng = WlanRng::seed_from_u64(501);
        let payload: Vec<u8> = (0..80).map(|_| rng.gen()).collect();
        let phy = HtPhy::new(Modulation::Qpsk, CodeRate::R1_2);
        let pdp = PowerDelayProfile::tgn_model('B');
        let mut ok = 0;
        for _ in 0..10 {
            let ch = MultipathChannel::realize(&pdp, &mut rng);
            let frame = phy.transmit(&payload);
            let mut rx = ch.filter(&frame);
            rx.truncate(frame.len());
            let noisy = Awgn::from_snr_db(25.0).apply(&rx, &mut rng);
            if phy.try_receive(&noisy, payload.len()).unwrap() == payload {
                ok += 1;
            }
        }
        assert!(ok >= 8, "only {ok}/10 HT frames decoded at 25 dB");
    }

    #[test]
    fn ht_carries_more_than_legacy_at_same_modulation() {
        // 52 vs 48 carriers: 65 vs 54 Mbps at 64-QAM r=3/4... at r=5/6 the
        // HT chain reaches 65; at the common r=3/4 it reaches 58.5.
        let ht = HtPhy::new(Modulation::Qam64, CodeRate::R3_4);
        assert!((ht.rate_mbps() - 58.5).abs() < 1e-9);
        assert!(ht.rate_mbps() > 54.0, "HT must beat the legacy 54 Mbps");
    }

    #[test]
    fn ht_ltf_extension_values() {
        assert_eq!(ht_ltf_value(-28), 1.0);
        assert_eq!(ht_ltf_value(-27), 1.0);
        assert_eq!(ht_ltf_value(27), -1.0);
        assert_eq!(ht_ltf_value(28), -1.0);
        assert_eq!(ht_ltf_value(0), 0.0);
        assert_eq!(ht_ltf_value(-26), ltf_value(-26));
    }

    #[test]
    fn short_stream_rejected() {
        let phy = HtPhy::new(Modulation::Bpsk, CodeRate::R1_2);
        let err = phy.try_receive(&[Complex::ZERO; 100], 50).unwrap_err();
        assert!(matches!(err, WlanError::FrameTruncated { .. }), "{err:?}");
    }

    #[test]
    fn try_receive_turns_truncation_into_typed_error() {
        let phy = HtPhy::new(Modulation::Qpsk, CodeRate::R1_2);
        let payload = b"typed erasure";
        let frame = phy.transmit(payload);
        assert_eq!(
            phy.try_receive(&frame, payload.len()).unwrap(),
            payload.to_vec()
        );
        let err = phy
            .try_receive(&frame[..frame.len() / 3], payload.len())
            .unwrap_err();
        assert!(matches!(err, WlanError::FrameTruncated { .. }), "{err:?}");
    }
}
