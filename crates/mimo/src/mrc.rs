//! Maximal-ratio receive combining.
//!
//! The cheapest MIMO win and the basis of the paper's "switch off all but
//! one receive chain" power optimization (experiment E12): with `N` receive
//! antennas, weighting each branch by its conjugate channel adds the branch
//! SNRs, yielding `N`-fold array gain plus order-`N` diversity.

use wlan_math::Complex;

/// Combines one symbol observed on `N` branches: `Σ h_r*·y_r / Σ|h_r|²`.
///
/// Returns the combined symbol estimate and the effective channel power
/// `Σ|h_r|²` (the SNR multiplier relative to a single unit-gain branch).
///
/// # Panics
///
/// Panics if inputs are empty or lengths differ.
pub fn combine(y: &[Complex], h: &[Complex]) -> (Complex, f64) {
    assert!(!y.is_empty(), "need at least one branch");
    assert_eq!(y.len(), h.len(), "branch count mismatch");
    let gain: f64 = h.iter().map(|c| c.norm_sqr()).sum();
    let num: Complex = y.iter().zip(h).map(|(&yr, &hr)| hr.conj() * yr).sum();
    (num / gain.max(1e-300), gain)
}

/// Combines a block of symbols observed on `N` branches (`rx[r][k]` is
/// symbol `k` on branch `r`, with flat per-branch channels).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn combine_block(rx: &[Vec<Complex>], h: &[Complex]) -> Vec<Complex> {
    assert_eq!(rx.len(), h.len(), "branch count mismatch");
    assert!(!rx.is_empty(), "need at least one branch");
    let len = rx[0].len();
    for r in rx {
        assert_eq!(r.len(), len, "branches must align");
    }
    (0..len)
        .map(|k| {
            let obs: Vec<Complex> = rx.iter().map(|r| r[k]).collect();
            combine(&obs, h).0
        })
        .collect()
}

/// Selection combining: picks the strongest branch instead of weighting all
/// (what a receiver with a single active RF chain plus antenna switch can
/// do — the low-power alternative to full MRC).
///
/// # Panics
///
/// Panics if inputs are empty or lengths differ.
pub fn select_best(y: &[Complex], h: &[Complex]) -> (Complex, f64) {
    assert!(!y.is_empty(), "need at least one branch");
    assert_eq!(y.len(), h.len(), "branch count mismatch");
    // Infallible fold over the (asserted nonempty) branch set, keeping
    // `max_by`'s last-max-wins tie behaviour.
    let mut best = 0usize;
    for i in 1..h.len() {
        if h[i].norm_sqr().total_cmp(&h[best].norm_sqr()) != std::cmp::Ordering::Less {
            best = i;
        }
    }
    let gain = h[best].norm_sqr();
    ((y[best] * h[best].conj()) / gain.max(1e-300), gain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::WlanRng;
    use wlan_channel::noise::complex_gaussian;

    #[test]
    fn clean_combining_recovers_symbol() {
        let s = Complex::new(0.6, -0.8);
        let h = [Complex::new(1.0, 0.5), Complex::new(-0.3, 1.1)];
        let y: Vec<Complex> = h.iter().map(|&hr| hr * s).collect();
        let (est, gain) = combine(&y, &h);
        assert!((est - s).norm() < 1e-12);
        let want: f64 = h.iter().map(|c| c.norm_sqr()).sum();
        assert!((gain - want).abs() < 1e-12);
    }

    #[test]
    fn array_gain_is_n_fold() {
        // Mean effective gain over Rayleigh branches is N (each E|h|² = 1).
        let mut rng = WlanRng::seed_from_u64(140);
        for n in [1usize, 2, 4] {
            let mut acc = 0.0;
            let trials = 20_000;
            for _ in 0..trials {
                let h: Vec<Complex> = (0..n).map(|_| complex_gaussian(&mut rng)).collect();
                let y = vec![Complex::ZERO; n];
                acc += combine(&y, &h).1;
            }
            let mean = acc / trials as f64;
            assert!((mean - n as f64).abs() < 0.05 * n as f64, "N={n}: {mean}");
        }
    }

    #[test]
    fn mrc_reduces_ber_versus_single_branch() {
        let mut rng = WlanRng::seed_from_u64(141);
        let n0 = wlan_math::special::db_to_lin(-8.0);
        let trials = 30_000;
        let mut errs = [0usize; 2]; // [single, mrc-2]
        for t in 0..trials {
            let bit = (t % 2) as u8;
            let s = Complex::from_re(if bit == 1 { 1.0 } else { -1.0 });
            let h: Vec<Complex> = (0..2).map(|_| complex_gaussian(&mut rng)).collect();
            let y: Vec<Complex> = h
                .iter()
                .map(|&hr| hr * s + complex_gaussian(&mut rng).scale(n0.sqrt()))
                .collect();
            // Single branch (first antenna).
            let single = (y[0] * h[0].conj()) / h[0].norm_sqr().max(1e-300);
            if (single.re > 0.0) as u8 != bit {
                errs[0] += 1;
            }
            let (mrc, _) = combine(&y, &h);
            if (mrc.re > 0.0) as u8 != bit {
                errs[1] += 1;
            }
        }
        assert!(
            errs[1] * 3 < errs[0],
            "MRC ({}) must be much better than single ({})",
            errs[1],
            errs[0]
        );
    }

    #[test]
    fn selection_sits_between_single_and_mrc() {
        let mut rng = WlanRng::seed_from_u64(142);
        let mut gains = [0.0f64; 3]; // single, selection-2, mrc-2
        let trials = 30_000;
        for _ in 0..trials {
            let h: Vec<Complex> = (0..2).map(|_| complex_gaussian(&mut rng)).collect();
            let y = vec![Complex::ZERO; 2];
            gains[0] += h[0].norm_sqr();
            gains[1] += select_best(&y, &h).1;
            gains[2] += combine(&y, &h).1;
        }
        assert!(gains[0] < gains[1] && gains[1] < gains[2]);
        // Known averages: 1, 1.5, 2 for Rayleigh.
        let n = trials as f64;
        assert!((gains[0] / n - 1.0).abs() < 0.05);
        assert!((gains[1] / n - 1.5).abs() < 0.05);
        assert!((gains[2] / n - 2.0).abs() < 0.05);
    }

    #[test]
    fn block_combining_matches_scalar() {
        let h = [Complex::new(0.8, 0.1), Complex::new(0.2, -0.9)];
        let sym = [Complex::ONE, Complex::I, -Complex::ONE];
        let rx: Vec<Vec<Complex>> = h
            .iter()
            .map(|&hr| sym.iter().map(|&s| hr * s).collect())
            .collect();
        let combined = combine_block(&rx, &h);
        for (a, b) in combined.iter().zip(&sym) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "branch count")]
    fn shape_checked() {
        let _ = combine(&[Complex::ONE], &[Complex::ONE, Complex::ONE]);
    }
}
