//! LDPC-coded HT transmission — 802.11n's optional advanced coding.
//!
//! The paper: "Other likely enhancements in the 802.11n standard will also
//! increase the range of wireless networks, such as the use of LDPC codes."
//! This module swaps the BCC+interleaver of [`crate::ht::HtPhy`] for
//! per-symbol LDPC codewords (LDPC needs no interleaver: the sparse graph
//! itself spreads bits across the constellation), reproducing the
//! architecture of the 802.11n LDPC option on the HT-20 numerology.

use crate::ht::{ht20_data_carriers, ht_ltf_value, N_DATA_HT20, PILOT_CARRIERS_HT20};
use wlan_coding::ldpc::{LdpcCode, MinSum};
use wlan_coding::scrambler::Scrambler;
use wlan_coding::{bits, CodeRate};
use wlan_math::{fft, Complex, WlanError};
use wlan_ofdm::params::{Modulation, N_CP, N_FFT, N_SYM_SAMPLES};
use wlan_ofdm::qam;

/// A single-stream HT-20 PHY with LDPC coding.
///
/// Codewords are sized near the 802.11n sweet spot (~1296 coded bits) by
/// spanning `L` consecutive OFDM symbols (`n = L·52·N_BPSC`, `k = n·rate`);
/// short graphs lose their waterfall, which is why real 802.11n also uses
/// 648/1296/1944-bit codewords across symbol boundaries. No interleaver
/// and no tail bits are needed.
///
/// # Examples
///
/// ```
/// use wlan_coding::CodeRate;
/// use wlan_mimo::ht_ldpc::HtLdpcPhy;
/// use wlan_ofdm::params::Modulation;
///
/// let phy = HtLdpcPhy::new(Modulation::Qam16, CodeRate::R1_2);
/// let frame = phy.transmit(b"ldpc coded");
/// assert_eq!(phy.try_receive(&frame, 10).unwrap(), b"ldpc coded");
/// ```
#[derive(Debug, Clone)]
pub struct HtLdpcPhy {
    modulation: Modulation,
    span: usize,
    code: LdpcCode,
    scrambler_seed: u8,
    max_iters: usize,
}

impl HtLdpcPhy {
    /// Creates the PHY; the LDPC codeword spans enough symbols to reach
    /// ≥ 1296 coded bits (`n = L·52·N_BPSC`, `k = n·rate`).
    ///
    /// # Panics
    ///
    /// Panics if the rate does not divide the symbol size into integer
    /// `k`/`m` (all four 802.11 rates do for every HT modulation except
    /// BPSK at 5/6-adjacent corner cases — those panic).
    pub fn new(modulation: Modulation, rate: CodeRate) -> Self {
        let n_cbps = N_DATA_HT20 * modulation.bits_per_subcarrier();
        // Span enough symbols to reach ≥ 1296 coded bits per codeword.
        let span = 1296usize.div_ceil(n_cbps);
        let n = span * n_cbps;
        let (num, den) = rate.as_fraction();
        assert!(
            (n * num).is_multiple_of(den),
            "rate {rate} does not divide the {n}-bit codeword"
        );
        let k = n * num / den;
        let m = n - k;
        HtLdpcPhy {
            modulation,
            span,
            code: LdpcCode::new(k, m, 0x11AC),
            scrambler_seed: 0x5D,
            max_iters: 40,
        }
    }

    /// A process-cached PHY for the (modulation, rate) pair.
    ///
    /// The LDPC parity structure is built by a seeded pseudo-random
    /// construction that costs far more than a frame trial, and it is fully
    /// deterministic — so sweeps must share one instance instead of
    /// rebuilding the graph per trial.
    pub fn cached(modulation: Modulation, rate: CodeRate) -> &'static HtLdpcPhy {
        static CACHE: std::sync::Mutex<
            Vec<((Modulation, CodeRate), &'static HtLdpcPhy)>,
        > = std::sync::Mutex::new(Vec::new());
        let mut guard = CACHE.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&(_, phy)) = guard.iter().find(|(key, _)| *key == (modulation, rate)) {
            return phy;
        }
        let phy: &'static HtLdpcPhy = Box::leak(Box::new(HtLdpcPhy::new(modulation, rate)));
        guard.push(((modulation, rate), phy));
        phy
    }

    /// OFDM symbols spanned by one codeword.
    pub fn symbols_per_codeword(&self) -> usize {
        self.span
    }

    /// Information bits per OFDM symbol.
    pub fn data_bits_per_symbol(&self) -> usize {
        self.code.info_len() / self.span
    }

    /// PHY rate in Mbps (20 MHz, long GI).
    pub fn rate_mbps(&self) -> f64 {
        self.data_bits_per_symbol() as f64 / 4.0
    }

    /// Data symbols for `len` payload bytes (16 service bits, no tail —
    /// LDPC needs none), rounded up to whole codewords.
    pub fn num_data_symbols(&self, len: usize) -> usize {
        let codewords = (16 + 8 * len).div_ceil(self.code.info_len());
        codewords * self.span
    }

    /// Frame length in samples.
    pub fn frame_samples(&self, len: usize) -> usize {
        (1 + self.num_data_symbols(len)) * N_SYM_SAMPLES
    }

    /// Encodes a payload (HT-LTF, then codewords of `L` symbols each).
    pub fn transmit(&self, payload: &[u8]) -> Vec<Complex> {
        let n_sym = self.num_data_symbols(payload.len());
        let k_cw = self.code.info_len();
        let codewords = n_sym / self.span;

        let mut data_bits = vec![0u8; 16];
        data_bits.extend(bits::bytes_to_bits(payload));
        data_bits.resize(codewords * k_cw, 0);
        let scrambled = Scrambler::new(self.scrambler_seed).scramble(&data_bits);

        let mut out = Vec::with_capacity(self.frame_samples(payload.len()));
        out.extend(training_symbol());
        for block in scrambled.chunks(k_cw) {
            let cw = self.code.encode(block);
            let points = qam::map_stream(self.modulation, &cw);
            for sym_points in points.chunks(N_DATA_HT20) {
                out.extend(assemble_symbol(sym_points));
            }
        }
        out
    }

    /// Decodes a frame; per-codeword min-sum BP with early termination. A
    /// truncated stream returns [`WlanError::FrameTruncated`] instead of
    /// panicking.
    pub fn try_receive(
        &self,
        samples: &[Complex],
        payload_len: usize,
    ) -> Result<Vec<u8>, WlanError> {
        let needed = self.frame_samples(payload_len);
        if samples.len() < needed {
            return Err(WlanError::FrameTruncated {
                needed,
                got: samples.len(),
            });
        }
        let train = symbol_bins(&samples[..N_SYM_SAMPLES]);
        let carriers = ht20_data_carriers();
        let channel: Vec<Complex> = carriers
            .iter()
            .map(|&k| train[carrier_to_bin(k)].scale(1.0 / ht_ltf_value(k)))
            .collect();

        let n_sym = self.num_data_symbols(payload_len);
        let codewords = n_sym / self.span;
        let bpsc = self.modulation.bits_per_subcarrier();
        let mut scrambled = Vec::with_capacity(codewords * self.code.info_len());
        // One LLR buffer for the whole frame: every slot is overwritten per
        // codeword, and `demap_soft_into` keeps the demapper out of the
        // per-carrier allocator.
        let mut llrs = vec![0.0f64; self.code.codeword_len()];
        for cw_idx in 0..codewords {
            for s in 0..self.span {
                let off = (1 + cw_idx * self.span + s) * N_SYM_SAMPLES;
                let bins = symbol_bins(&samples[off..off + N_SYM_SAMPLES]);
                let base = s * N_DATA_HT20 * bpsc;
                for (c, &kc) in carriers.iter().enumerate() {
                    let h = channel[c];
                    let h2 = h.norm_sqr();
                    let y = if h2 > 1e-12 {
                        bins[carrier_to_bin(kc)] / h
                    } else {
                        Complex::ZERO
                    };
                    let slot = base + c * bpsc;
                    qam::demap_soft_into(self.modulation, y, h2, &mut llrs[slot..slot + bpsc]);
                }
            }
            let decoded = self.code.try_decode(&llrs, self.max_iters, MinSum::Normalized(0.8))?;
            scrambled.extend(decoded.info_bits);
        }
        let descrambled = Scrambler::new(self.scrambler_seed).scramble(&scrambled);
        Ok(bits::bits_to_bytes(&descrambled[16..16 + 8 * payload_len]))
    }
}

fn tx_scale() -> f64 {
    N_FFT as f64 / 56f64.sqrt()
}

fn carrier_to_bin(k: i32) -> usize {
    ((k + N_FFT as i32) % N_FFT as i32) as usize
}

fn training_symbol() -> Vec<Complex> {
    let mut bins = vec![Complex::ZERO; N_FFT];
    for k in -28..=28i32 {
        let v = ht_ltf_value(k);
        if v != 0.0 {
            bins[carrier_to_bin(k)] = Complex::from_re(v);
        }
    }
    finish(bins)
}

fn assemble_symbol(data: &[Complex]) -> Vec<Complex> {
    let mut bins = vec![Complex::ZERO; N_FFT];
    for (i, &k) in ht20_data_carriers().iter().enumerate() {
        bins[carrier_to_bin(k)] = data[i];
    }
    for &k in &PILOT_CARRIERS_HT20 {
        bins[carrier_to_bin(k)] = Complex::ONE;
    }
    finish(bins)
}

fn finish(mut bins: Vec<Complex>) -> Vec<Complex> {
    fft::ifft_in_place(&mut bins);
    let s = tx_scale();
    let mut out = Vec::with_capacity(N_SYM_SAMPLES);
    out.extend(bins[N_FFT - N_CP..].iter().map(|v| v.scale(s)));
    out.extend(bins.iter().map(|v| v.scale(s)));
    out
}

fn symbol_bins(samples: &[Complex]) -> Vec<Complex> {
    let mut body: Vec<Complex> = samples[N_CP..N_CP + N_FFT]
        .iter()
        .map(|v| v.scale(1.0 / tx_scale()))
        .collect();
    fft::fft_in_place(&mut body);
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ht::HtPhy;
    use wlan_math::rng::{Rng, WlanRng};
    use wlan_channel::Awgn;

    #[test]
    fn rates_match_bcc_variant() {
        for (m, r) in [
            (Modulation::Qpsk, CodeRate::R1_2),
            (Modulation::Qam16, CodeRate::R3_4),
            (Modulation::Qam64, CodeRate::R5_6),
        ] {
            let ldpc = HtLdpcPhy::new(m, r);
            let bcc = HtPhy::new(m, r);
            assert!(
                (ldpc.rate_mbps() - bcc.rate_mbps()).abs() < 1e-9,
                "{m} r={r}: {} vs {}",
                ldpc.rate_mbps(),
                bcc.rate_mbps()
            );
        }
    }

    #[test]
    fn clean_roundtrip() {
        let mut rng = WlanRng::seed_from_u64(510);
        let payload: Vec<u8> = (0..100).map(|_| rng.gen()).collect();
        for (m, r) in [
            (Modulation::Qpsk, CodeRate::R1_2),
            (Modulation::Qam64, CodeRate::R5_6),
        ] {
            let phy = HtLdpcPhy::new(m, r);
            let frame = phy.transmit(&payload);
            assert_eq!(phy.try_receive(&frame, payload.len()).unwrap(), payload, "{m} r={r}");
        }
    }

    #[test]
    fn roundtrip_through_noise() {
        let mut rng = WlanRng::seed_from_u64(511);
        let payload: Vec<u8> = (0..120).map(|_| rng.gen()).collect();
        let phy = HtLdpcPhy::new(Modulation::Qpsk, CodeRate::R1_2);
        let mut ok = 0;
        for _ in 0..10 {
            let frame = phy.transmit(&payload);
            let noisy = Awgn::from_snr_db(8.0).apply(&frame, &mut rng);
            if phy.try_receive(&noisy, payload.len()).unwrap() == payload {
                ok += 1;
            }
        }
        assert!(ok >= 9, "LDPC QPSK r=1/2 decoded only {ok}/10 at 8 dB");
    }

    #[test]
    fn ldpc_beats_bcc_at_low_snr() {
        // The paper's range argument: at equal rate and SNR near the BCC
        // threshold, LDPC delivers more frames. The crossover for these short
        // codewords sits near 4.5 dB; at 4.75 dB the LDPC advantage is a
        // solid 4-8 frames per 100 for every seed probed, while by 5.5 dB
        // both coders saturate and the comparison degenerates into noise.
        let mut rng = WlanRng::seed_from_u64(512);
        let payload: Vec<u8> = (0..80).map(|_| rng.gen()).collect();
        let ldpc = HtLdpcPhy::new(Modulation::Qpsk, CodeRate::R1_2);
        let bcc = HtPhy::new(Modulation::Qpsk, CodeRate::R1_2);
        let snr_db = 4.75;
        let trials = 100;
        let mut ldpc_ok = 0;
        let mut bcc_ok = 0;
        for _ in 0..trials {
            let f = ldpc.transmit(&payload);
            let noisy = Awgn::from_snr_db(snr_db).apply(&f, &mut rng);
            if ldpc.try_receive(&noisy, payload.len()).unwrap() == payload {
                ldpc_ok += 1;
            }
            let f = bcc.transmit(&payload);
            let noisy = Awgn::from_snr_db(snr_db).apply(&f, &mut rng);
            if bcc.try_receive(&noisy, payload.len()).unwrap() == payload {
                bcc_ok += 1;
            }
        }
        assert!(
            ldpc_ok > bcc_ok,
            "LDPC ({ldpc_ok}/{trials}) should beat BCC ({bcc_ok}/{trials}) at {snr_db} dB"
        );
    }

    #[test]
    fn no_tail_bits_needed() {
        // LDPC frames spend every data bit on payload: a payload that just
        // fills one codeword needs exactly one codeword's worth of symbols.
        let phy = HtLdpcPhy::new(Modulation::Qam16, CodeRate::R1_2);
        let span = phy.symbols_per_codeword();
        let k_cw = phy.data_bits_per_symbol() * span;
        let fit = (k_cw - 16) / 8;
        assert_eq!(phy.num_data_symbols(fit), span);
        assert_eq!(phy.num_data_symbols(fit + 1), 2 * span);
    }

    #[test]
    fn try_receive_turns_truncation_into_typed_error() {
        let phy = HtLdpcPhy::new(Modulation::Qpsk, CodeRate::R1_2);
        let payload = b"ldpc erasure path";
        let frame = phy.transmit(payload);
        assert_eq!(
            phy.try_receive(&frame, payload.len()).unwrap(),
            payload.to_vec()
        );
        let err = phy.try_receive(&frame[..50], payload.len()).unwrap_err();
        assert!(matches!(err, WlanError::FrameTruncated { .. }), "{err:?}");
    }

    #[test]
    fn codewords_are_near_1296_bits() {
        for m in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let phy = HtLdpcPhy::new(m, CodeRate::R1_2);
            let n = phy.symbols_per_codeword() * 52 * m.bits_per_subcarrier();
            assert!((1296..1296 + 52 * 6).contains(&n), "{m}: n = {n}");
        }
    }
}
