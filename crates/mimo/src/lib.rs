//! The 802.11n MIMO-OFDM physical layer.
//!
//! The paper's "Emerging Developments" section is about exactly this crate:
//! multiple-input multiple-output antenna technology pushing spectral
//! efficiency to ~15 bps/Hz (600 Mbps in 40 MHz) while extending range
//! several-fold through spatial diversity.
//!
//! - [`mcs`] — the HT MCS table 0–31 (1–4 streams, 20/40 MHz, long/short
//!   guard interval), reproducing the 600 Mbps headline rate,
//! - [`detect`] — zero-forcing, MMSE and 2×2 ML detection for spatial
//!   multiplexing,
//! - [`stbc`] — Alamouti space-time block coding (transmit diversity),
//! - [`mrc`] — maximal-ratio receive combining,
//! - [`beamforming`] — closed-loop SVD transmit beamforming with
//!   water-filling power allocation (the paper's "closed loop, transmit
//!   side beamforming"),
//! - [`phy`] — a complete spatially-multiplexed MIMO-OFDM frame chain with
//!   HT-LTF-style orthogonal training and per-subcarrier MMSE detection.
//!
//! # Examples
//!
//! ```
//! use wlan_mimo::mcs::{Bandwidth, GuardInterval, HtMcs};
//!
//! // The paper: "rates potentially as high as 600 Mbps in a 40 MHz channel".
//! let mcs31 = HtMcs::new(31).unwrap();
//! let rate = mcs31.data_rate_mbps(Bandwidth::Mhz40, GuardInterval::Short);
//! assert!((rate - 600.0).abs() < 1e-9);
//! ```

pub mod beamforming;
pub mod detect;
pub mod ht;
pub mod ht_ldpc;
pub mod mcs;
pub mod mrc;
pub mod phy;
pub mod stbc;
pub mod stbc_phy;

pub use mcs::HtMcs;
pub use phy::MimoOfdmPhy;
