//! A frame-level Alamouti STBC OFDM PHY (2 TX antennas, 1 stream).
//!
//! Where [`crate::phy`] spends antennas on *rate* (spatial multiplexing),
//! this chain spends them on *diversity*: the coded single-stream OFDM
//! symbol sequence is Alamouti-encoded per subcarrier across pairs of
//! consecutive OFDM symbols, giving every coded bit order-`2·N_rx`
//! diversity at an unchanged data rate. This is the 802.11n STBC mode the
//! paper's range-extension argument leans on, and the transmit-diversity
//! point of experiment E5.

use wlan_coding::interleaver::Interleaver;
use wlan_coding::puncture::{depuncture, puncture};
use wlan_coding::scrambler::Scrambler;
use wlan_coding::{bits, CodeRate, ConvEncoder, ViterbiDecoder};
use wlan_math::{fft, Complex, WlanError};
use wlan_ofdm::params::{data_carriers, Modulation, N_CP, N_FFT, N_SYM_SAMPLES};
use wlan_ofdm::preamble::ltf_value;
use wlan_ofdm::qam;
use wlan_ofdm::symbol::tx_scale;

use crate::phy::P_HTLTF;

/// An Alamouti 2×N_rx STBC OFDM PHY.
///
/// # Examples
///
/// ```
/// use wlan_coding::CodeRate;
/// use wlan_mimo::stbc_phy::StbcOfdmPhy;
/// use wlan_ofdm::params::Modulation;
///
/// let phy = StbcOfdmPhy::new(Modulation::Qpsk, CodeRate::R1_2, 1);
/// let tx = phy.transmit(b"diversity!");
/// assert_eq!(tx.len(), 2); // always two transmit antennas
/// // Identity channel: feed antenna sums as the single RX observation.
/// let rx: Vec<wlan_math::Complex> = tx[0].iter().zip(&tx[1]).map(|(&a, &b)| a + b).collect();
/// let out = phy.try_receive(&[rx], 1e-9, 10).unwrap();
/// assert_eq!(out, b"diversity!");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StbcOfdmPhy {
    modulation: Modulation,
    code_rate: CodeRate,
    n_rx: usize,
    scrambler_seed: u8,
}

impl StbcOfdmPhy {
    /// Creates a PHY with the given modulation/code rate and receive
    /// antenna count.
    ///
    /// # Panics
    ///
    /// Panics if `n_rx` is zero.
    pub fn new(modulation: Modulation, code_rate: CodeRate, n_rx: usize) -> Self {
        assert!(n_rx >= 1, "need at least one receive antenna");
        StbcOfdmPhy {
            modulation,
            code_rate,
            n_rx,
            scrambler_seed: 0x5D,
        }
    }

    /// Data bits per OFDM symbol (single stream).
    pub fn data_bits_per_symbol(&self) -> usize {
        let (n, d) = self.code_rate.as_fraction();
        48 * self.modulation.bits_per_subcarrier() * n / d
    }

    /// PHY rate in Mbps (STBC keeps the single-stream rate).
    pub fn rate_mbps(&self) -> f64 {
        self.data_bits_per_symbol() as f64 / 4.0
    }

    /// Number of data OFDM symbols (always even: Alamouti works in pairs).
    pub fn num_data_symbols(&self, len: usize) -> usize {
        let n = (16 + 8 * len + 6).div_ceil(self.data_bits_per_symbol());
        n + n % 2
    }

    /// Per-antenna frame length in samples (2 training + data symbols).
    pub fn frame_samples(&self, len: usize) -> usize {
        (2 + self.num_data_symbols(len)) * N_SYM_SAMPLES
    }

    /// Encodes a payload into the two per-antenna sample streams.
    pub fn transmit(&self, payload: &[u8]) -> Vec<Vec<Complex>> {
        let n_sym = self.num_data_symbols(payload.len());
        let total_bits = n_sym * self.data_bits_per_symbol();

        // Identical single-stream bit chain to the 802.11a DATA field.
        let mut data_bits = vec![0u8; 16];
        data_bits.extend(bits::bytes_to_bits(payload));
        let tail_start = data_bits.len();
        data_bits.resize(total_bits, 0);
        let mut scrambled = Scrambler::new(self.scrambler_seed).scramble(&data_bits);
        for b in scrambled.iter_mut().skip(tail_start).take(6) {
            *b = 0;
        }
        let mut enc = ConvEncoder::new();
        let coded = puncture(&enc.encode(&scrambled), self.code_rate);
        let il = Interleaver::new(
            48 * self.modulation.bits_per_subcarrier(),
            self.modulation.bits_per_subcarrier(),
        );
        let interleaved = il.interleave_stream(&coded);
        let points = qam::map_stream(self.modulation, &interleaved);

        // Frequency-domain OFDM symbols (48 points each).
        let symbols: Vec<&[Complex]> = points.chunks(48).collect();
        debug_assert_eq!(symbols.len(), n_sym);

        let g = std::f64::consts::FRAC_1_SQRT_2;
        let mut ant: Vec<Vec<Complex>> = std::iter::repeat_with(|| {
            Vec::with_capacity(self.frame_samples(payload.len()))
        })
        .take(2)
        .collect();

        // Two training symbols with the 2×2 P cover. Streams are
        // independent, so filling antenna-by-antenna keeps each stream's
        // symbol order m = 0, 1.
        let ltf = training_symbol();
        for (i, stream) in ant.iter_mut().enumerate() {
            for &p in P_HTLTF[i].iter().take(2) {
                let scale = p * g;
                stream.extend(ltf.iter().map(|&s| s.scale(scale)));
            }
        }

        // Alamouti pairs: over symbols (2t, 2t+1), per subcarrier:
        //   time 2t:   ant0 → s1,       ant1 → s2
        //   time 2t+1: ant0 → −s2*,     ant1 → s1*
        for pair in symbols.chunks(2) {
            let s1 = pair[0];
            let s2 = pair[1];
            let neg_conj: Vec<Complex> = s2.iter().map(|&v| -v.conj()).collect();
            let conj: Vec<Complex> = s1.iter().map(|&v| v.conj()).collect();
            ant[0].extend(assemble_scaled(s1, g));
            ant[1].extend(assemble_scaled(s2, g));
            ant[0].extend(assemble_scaled(&neg_conj, g));
            ant[1].extend(assemble_scaled(&conj, g));
        }
        ant
    }

    /// Decodes per-antenna receive streams (channel assumed static per
    /// frame, estimated from the training symbols). `n0` is the per-sample
    /// noise variance. Malformed input — wrong antenna count or truncated
    /// streams — returns a typed [`WlanError`] instead of panicking.
    pub fn try_receive(
        &self,
        rx: &[Vec<Complex>],
        n0: f64,
        payload_len: usize,
    ) -> Result<Vec<u8>, WlanError> {
        if rx.len() != self.n_rx {
            return Err(WlanError::LengthMismatch {
                expected: self.n_rx,
                got: rx.len(),
            });
        }
        let needed = self.frame_samples(payload_len);
        for r in rx {
            if r.len() < needed {
                return Err(WlanError::FrameTruncated {
                    needed,
                    got: r.len(),
                });
            }
        }
        let _ = n0; // kept for interface symmetry with MimoOfdmPhy

        // Channel estimation: h[r][i][k] from the two P-covered LTFs.
        let carriers = data_carriers();
        let mut train = Vec::with_capacity(2);
        for m in 0..2 {
            let per_rx: Vec<Vec<Complex>> = rx
                .iter()
                .map(|r| symbol_bins(&r[m * N_SYM_SAMPLES..(m + 1) * N_SYM_SAMPLES]))
                .collect();
            train.push(per_rx);
        }
        // h[r][i] per carrier index c.
        let mut h = vec![vec![vec![Complex::ZERO; carriers.len()]; 2]; self.n_rx];
        for (c, &k) in carriers.iter().enumerate() {
            let bin = carrier_to_bin(k);
            let l = ltf_value(k);
            for r in 0..self.n_rx {
                for i in 0..2 {
                    let mut acc = Complex::ZERO;
                    for (m, t) in train.iter().enumerate() {
                        acc += t[r][bin].scale(P_HTLTF[i][m]);
                    }
                    h[r][i][c] = acc.scale(1.0 / (2.0 * l));
                }
            }
        }

        // Alamouti combining per subcarrier over symbol pairs.
        let n_sym = self.num_data_symbols(payload_len);
        let mut llrs = Vec::with_capacity(n_sym * 48 * self.modulation.bits_per_subcarrier());
        let g = std::f64::consts::FRAC_1_SQRT_2;
        for t in 0..n_sym / 2 {
            let off1 = (2 + 2 * t) * N_SYM_SAMPLES;
            let off2 = off1 + N_SYM_SAMPLES;
            let y1: Vec<Vec<Complex>> = rx
                .iter()
                .map(|r| symbol_bins(&r[off1..off1 + N_SYM_SAMPLES]))
                .collect();
            let y2: Vec<Vec<Complex>> = rx
                .iter()
                .map(|r| symbol_bins(&r[off2..off2 + N_SYM_SAMPLES]))
                .collect();
            let mut sym1 = Vec::with_capacity(48);
            let mut sym2 = Vec::with_capacity(48);
            let mut csi = Vec::with_capacity(48);
            for (c, &k) in carriers.iter().enumerate() {
                let bin = carrier_to_bin(k);
                let mut c1 = Complex::ZERO;
                let mut c2 = Complex::ZERO;
                let mut gain = 0.0;
                for r in 0..self.n_rx {
                    let h1 = h[r][0][c];
                    let h2 = h[r][1][c];
                    let a = y1[r][bin];
                    let b = y2[r][bin];
                    c1 += h1.conj() * a + h2 * b.conj();
                    c2 += h2.conj() * a - h1 * b.conj();
                    gain += h1.norm_sqr() + h2.norm_sqr();
                }
                // The h estimates already include the 1/√2 TX scaling, so
                // the combiner normalization uses the estimated gain itself.
                let norm = gain.max(1e-300);
                sym1.push(c1 / norm);
                sym2.push(c2 / norm);
                csi.push(gain * g * g);
            }
            for (s, w) in sym1.iter().zip(&csi) {
                llrs.extend(qam::demap_soft(self.modulation, *s, *w));
            }
            for (s, w) in sym2.iter().zip(&csi) {
                llrs.extend(qam::demap_soft(self.modulation, *s, *w));
            }
        }

        let il = Interleaver::new(
            48 * self.modulation.bits_per_subcarrier(),
            self.modulation.bits_per_subcarrier(),
        );
        let deinterleaved = il.try_deinterleave_stream_soft(&llrs)?;
        let total_bits = n_sym * self.data_bits_per_symbol();
        let mother = depuncture(&deinterleaved, self.code_rate, total_bits * 2);
        let scrambled = ViterbiDecoder::new().try_decode_soft_unterminated(&mother, total_bits)?;
        let descrambled = Scrambler::new(self.scrambler_seed).scramble(&scrambled);
        Ok(bits::bits_to_bytes(&descrambled[16..16 + 8 * payload_len]))
    }
}

/// One 80-sample training symbol at data scale (no power split applied).
fn training_symbol() -> Vec<Complex> {
    let mut bins = vec![Complex::ZERO; N_FFT];
    for k in -26..=26i32 {
        let v = ltf_value(k);
        if v != 0.0 {
            bins[carrier_to_bin(k)] = Complex::from_re(v);
        }
    }
    finish_symbol(bins)
}

/// Assembles 48 data points (scaled by `scale`) into one 80-sample symbol,
/// pilots omitted (the Alamouti combiner needs no CPE correction in this
/// phase-noise-free simulation).
fn assemble_scaled(data: &[Complex], scale: f64) -> Vec<Complex> {
    let mut bins = vec![Complex::ZERO; N_FFT];
    for (i, &k) in data_carriers().iter().enumerate() {
        bins[carrier_to_bin(k)] = data[i].scale(scale);
    }
    finish_symbol(bins)
}

fn finish_symbol(bins: Vec<Complex>) -> Vec<Complex> {
    let time = fft::ifft(&bins);
    let s = tx_scale();
    let mut out = Vec::with_capacity(N_SYM_SAMPLES);
    out.extend(time[N_FFT - N_CP..].iter().map(|v| v.scale(s)));
    out.extend(time.iter().map(|v| v.scale(s)));
    out
}

fn symbol_bins(samples: &[Complex]) -> Vec<Complex> {
    let mut body: Vec<Complex> = samples[N_CP..N_CP + N_FFT]
        .iter()
        .map(|v| v.scale(1.0 / tx_scale()))
        .collect();
    fft::fft_in_place(&mut body);
    body
}

fn carrier_to_bin(k: i32) -> usize {
    ((k + N_FFT as i32) % N_FFT as i32) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_math::rng::{Rng, WlanRng};
    use wlan_channel::mimo::MimoMultipathChannel;
    use wlan_channel::PowerDelayProfile;

    fn identity_rx(tx: &[Vec<Complex>]) -> Vec<Complex> {
        tx[0].iter().zip(&tx[1]).map(|(&a, &b)| a + b).collect()
    }

    #[test]
    fn clean_roundtrip() {
        let phy = StbcOfdmPhy::new(Modulation::Qpsk, CodeRate::R1_2, 1);
        let payload: Vec<u8> = (0..60).map(|i| (i * 13) as u8).collect();
        let tx = phy.transmit(&payload);
        let rx = identity_rx(&tx);
        assert_eq!(phy.try_receive(&[rx], 1e-9, payload.len()).unwrap(), payload);
    }

    #[test]
    fn data_symbol_count_is_even() {
        let phy = StbcOfdmPhy::new(Modulation::Bpsk, CodeRate::R1_2, 1);
        for len in [1usize, 10, 33, 100] {
            assert_eq!(phy.num_data_symbols(len) % 2, 0, "len {len}");
        }
    }

    #[test]
    fn rate_is_single_stream() {
        // STBC spends the second antenna on diversity, not rate: QPSK r=1/2
        // stays at 12 Mbps.
        let phy = StbcOfdmPhy::new(Modulation::Qpsk, CodeRate::R1_2, 2);
        assert!((phy.rate_mbps() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn total_tx_power_matches_siso() {
        let phy = StbcOfdmPhy::new(Modulation::Qam16, CodeRate::R3_4, 1);
        let tx = phy.transmit(&[0x5Au8; 200]);
        let total: f64 = tx.iter().map(|a| wlan_math::complex::mean_power(a)).sum();
        assert!((total - 1.0).abs() < 0.15, "total TX power {total}");
    }

    #[test]
    fn roundtrip_through_fading_mimo_channel() {
        let mut rng = WlanRng::seed_from_u64(170);
        let phy = StbcOfdmPhy::new(Modulation::Qpsk, CodeRate::R1_2, 2);
        let payload: Vec<u8> = (0..80).map(|_| rng.gen()).collect();
        let pdp = PowerDelayProfile::flat();
        let n0 = wlan_math::special::db_to_lin(-18.0);
        let mut ok = 0;
        let trials = 10;
        for _ in 0..trials {
            let ch = MimoMultipathChannel::realize(2, 2, &pdp, &mut rng);
            let tx = phy.transmit(&payload);
            let rx = crate::phy::propagate(&ch, &tx, n0, &mut rng);
            if phy.try_receive(&rx, n0, payload.len()).unwrap() == payload {
                ok += 1;
            }
        }
        assert!(ok >= 9, "STBC 2x2 decoded only {ok}/{trials} at 18 dB");
    }

    #[test]
    fn stbc_beats_siso_in_deep_fades() {
        // At an SNR where flat-fading SISO frequently loses whole frames to
        // fades, STBC's diversity keeps most frames alive.
        let mut rng = WlanRng::seed_from_u64(171);
        let payload: Vec<u8> = (0..50).map(|_| rng.gen()).collect();
        let pdp = PowerDelayProfile::flat();
        let snr_db = 12.0;
        let n0 = wlan_math::special::db_to_lin(-snr_db);
        let trials = 40;

        // SISO baseline via the spatial-multiplexing PHY at 1 stream.
        use crate::detect::Detector;
        use crate::phy::{MimoOfdmConfig, MimoOfdmPhy};
        let siso = MimoOfdmPhy::new(MimoOfdmConfig {
            n_streams: 1,
            n_rx: 1,
            modulation: Modulation::Qpsk,
            code_rate: CodeRate::R1_2,
            detector: Detector::Mmse,
        });
        let stbc = StbcOfdmPhy::new(Modulation::Qpsk, CodeRate::R1_2, 1);

        let mut siso_ok = 0;
        let mut stbc_ok = 0;
        for _ in 0..trials {
            let ch1 = MimoMultipathChannel::realize(1, 1, &pdp, &mut rng);
            let tx = siso.transmit(&payload);
            let rx = crate::phy::propagate(&ch1, &tx, n0, &mut rng);
            if siso.try_receive(&rx, n0, payload.len()).unwrap() == payload {
                siso_ok += 1;
            }
            let ch2 = MimoMultipathChannel::realize(1, 2, &pdp, &mut rng);
            let tx = stbc.transmit(&payload);
            let rx = crate::phy::propagate(&ch2, &tx, n0, &mut rng);
            if stbc.try_receive(&rx, n0, payload.len()).unwrap() == payload {
                stbc_ok += 1;
            }
        }
        assert!(
            stbc_ok > siso_ok,
            "STBC ({stbc_ok}/{trials}) must beat SISO ({siso_ok}/{trials}) in fading"
        );
    }

    #[test]
    fn try_receive_reports_typed_errors() {
        let phy = StbcOfdmPhy::new(Modulation::Qpsk, CodeRate::R1_2, 1);
        let payload = b"stbc erasure";
        let tx = phy.transmit(payload);
        let rx = identity_rx(&tx);
        assert_eq!(
            phy.try_receive(std::slice::from_ref(&rx), 1e-9, payload.len())
                .unwrap(),
            payload.to_vec()
        );
        let err = phy
            .try_receive(&[rx[..100].to_vec()], 1e-9, payload.len())
            .unwrap_err();
        assert!(matches!(err, WlanError::FrameTruncated { .. }), "{err:?}");
        let err = phy.try_receive(&[], 1e-9, payload.len()).unwrap_err();
        assert_eq!(err, WlanError::LengthMismatch { expected: 1, got: 0 });
    }

    #[test]
    fn rx_count_checked() {
        let phy = StbcOfdmPhy::new(Modulation::Bpsk, CodeRate::R1_2, 2);
        let tx = phy.transmit(&[1, 2, 3]);
        let rx = identity_rx(&tx);
        let err = phy.try_receive(&[rx], 0.1, 3).unwrap_err();
        assert_eq!(err, WlanError::LengthMismatch { expected: 2, got: 1 });
    }
}
