//! The 802.11n HT modulation-and-coding-scheme table.
//!
//! MCS 0–31 cover one to four spatial streams, each cycling through the
//! eight base modulation/rate combinations. Together with the 40 MHz channel
//! and the 400 ns short guard interval this table is where the paper's
//! "600 Mbps" and "~15 bps/Hz" figures come from.

use wlan_coding::CodeRate;
use wlan_ofdm::params::Modulation;

/// Channel bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bandwidth {
    /// 20 MHz: 52 data subcarriers.
    Mhz20,
    /// 40 MHz: 108 data subcarriers.
    Mhz40,
}

impl Bandwidth {
    /// Data subcarriers carried (802.11n HT: 52 / 108).
    pub fn data_subcarriers(self) -> usize {
        match self {
            Bandwidth::Mhz20 => 52,
            Bandwidth::Mhz40 => 108,
        }
    }

    /// Channel width in MHz.
    pub fn mhz(self) -> f64 {
        match self {
            Bandwidth::Mhz20 => 20.0,
            Bandwidth::Mhz40 => 40.0,
        }
    }
}

/// OFDM guard interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardInterval {
    /// 800 ns (4.0 µs symbol).
    Long,
    /// 400 ns (3.6 µs symbol).
    Short,
}

impl GuardInterval {
    /// Total symbol duration in microseconds (3.2 µs FFT + GI).
    pub fn symbol_duration_us(self) -> f64 {
        match self {
            GuardInterval::Long => 4.0,
            GuardInterval::Short => 3.6,
        }
    }
}

/// One row of the HT MCS table.
///
/// # Examples
///
/// ```
/// use wlan_mimo::mcs::{Bandwidth, GuardInterval, HtMcs};
///
/// let mcs15 = HtMcs::new(15).unwrap();
/// assert_eq!(mcs15.spatial_streams(), 2);
/// let r = mcs15.data_rate_mbps(Bandwidth::Mhz20, GuardInterval::Long);
/// assert!((r - 130.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HtMcs {
    index: u8,
}

impl HtMcs {
    /// Creates MCS `index` (0–31). Returns `None` for out-of-range indices.
    pub fn new(index: u8) -> Option<Self> {
        (index < 32).then_some(HtMcs { index })
    }

    /// All 32 MCS entries.
    pub fn all() -> impl Iterator<Item = HtMcs> {
        (0..32).map(|i| HtMcs { index: i })
    }

    /// The MCS index.
    pub fn index(&self) -> u8 {
        self.index
    }

    /// Number of spatial streams (1–4).
    pub fn spatial_streams(&self) -> usize {
        self.index as usize / 8 + 1
    }

    /// Subcarrier modulation.
    pub fn modulation(&self) -> Modulation {
        match self.index % 8 {
            0 => Modulation::Bpsk,
            1 | 2 => Modulation::Qpsk,
            3 | 4 => Modulation::Qam16,
            _ => Modulation::Qam64,
        }
    }

    /// Convolutional/LDPC code rate.
    pub fn code_rate(&self) -> CodeRate {
        match self.index % 8 {
            0 | 1 | 3 => CodeRate::R1_2,
            2 | 4 | 6 => CodeRate::R3_4,
            5 => CodeRate::R2_3,
            _ => CodeRate::R5_6,
        }
    }

    /// Data bits per OFDM symbol across all streams.
    pub fn data_bits_per_symbol(&self, bw: Bandwidth) -> f64 {
        bw.data_subcarriers() as f64
            * self.modulation().bits_per_subcarrier() as f64
            * self.code_rate().as_f64()
            * self.spatial_streams() as f64
    }

    /// PHY data rate in Mbps.
    pub fn data_rate_mbps(&self, bw: Bandwidth, gi: GuardInterval) -> f64 {
        self.data_bits_per_symbol(bw) / gi.symbol_duration_us()
    }

    /// Spectral efficiency in bps/Hz.
    pub fn spectral_efficiency(&self, bw: Bandwidth, gi: GuardInterval) -> f64 {
        self.data_rate_mbps(bw, gi) / bw.mhz()
    }
}

impl std::fmt::Display for HtMcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MCS{} ({}×{}, r={})",
            self.index,
            self.spatial_streams(),
            self.modulation(),
            self.code_rate()
        )
    }
}

/// The peak 802.11n rate: MCS 31, 40 MHz, short GI (600 Mbps).
pub fn peak_rate_mbps() -> f64 {
    // MCS 31 is always constructible; the fallback is its known rate, so
    // this stays total without a panic path.
    HtMcs::new(31)
        .map(|mcs| mcs.data_rate_mbps(Bandwidth::Mhz40, GuardInterval::Short))
        .unwrap_or(600.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcs0_to_7_match_standard_rates() {
        // 20 MHz, long GI single-stream rates from IEEE 802.11n table 20-30.
        let want = [6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0];
        for (i, &w) in want.iter().enumerate() {
            let mcs = HtMcs::new(i as u8).unwrap();
            let r = mcs.data_rate_mbps(Bandwidth::Mhz20, GuardInterval::Long);
            assert!((r - w).abs() < 1e-9, "MCS{i}: {r} vs {w}");
        }
    }

    #[test]
    fn rates_scale_linearly_with_streams() {
        for base in 0..8u8 {
            let one = HtMcs::new(base).unwrap();
            for extra in 1..4u8 {
                let multi = HtMcs::new(base + 8 * extra).unwrap();
                let ratio = multi.data_rate_mbps(Bandwidth::Mhz20, GuardInterval::Long)
                    / one.data_rate_mbps(Bandwidth::Mhz20, GuardInterval::Long);
                assert!((ratio - (extra + 1) as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn peak_rate_is_600() {
        assert!((peak_rate_mbps() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn peak_spectral_efficiency_is_15() {
        // The paper: "efficiencies up to 15 bps/Hz are likely to be specified".
        let se = HtMcs::new(31)
            .unwrap()
            .spectral_efficiency(Bandwidth::Mhz40, GuardInterval::Short);
        assert!((se - 15.0).abs() < 1e-9);
    }

    #[test]
    fn short_gi_gives_10_over_9() {
        let mcs = HtMcs::new(7).unwrap();
        let long = mcs.data_rate_mbps(Bandwidth::Mhz20, GuardInterval::Long);
        let short = mcs.data_rate_mbps(Bandwidth::Mhz20, GuardInterval::Short);
        assert!((short / long - 10.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn mcs_32_is_rejected() {
        assert!(HtMcs::new(32).is_none());
        assert_eq!(HtMcs::all().count(), 32);
    }

    #[test]
    fn mcs_table_modulations_cycle() {
        let m7 = HtMcs::new(7).unwrap();
        assert_eq!(m7.modulation(), Modulation::Qam64);
        assert_eq!(m7.code_rate(), CodeRate::R5_6);
        let m8 = HtMcs::new(8).unwrap();
        assert_eq!(m8.modulation(), Modulation::Bpsk);
        assert_eq!(m8.spatial_streams(), 2);
    }

    #[test]
    fn fivefold_over_dot11a() {
        // The historical trend: each generation ≈ 5× the previous spectral
        // efficiency. 15 bps/Hz vs 802.11a's 2.7 → 5.56×.
        let se_n = HtMcs::new(31)
            .unwrap()
            .spectral_efficiency(Bandwidth::Mhz40, GuardInterval::Short);
        let se_a = 2.7;
        let ratio = se_n / se_a;
        assert!(ratio > 4.5 && ratio < 6.5, "ratio {ratio}");
    }
}
